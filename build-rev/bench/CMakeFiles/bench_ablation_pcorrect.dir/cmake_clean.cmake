file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcorrect.dir/ablation_pcorrect.cc.o"
  "CMakeFiles/bench_ablation_pcorrect.dir/ablation_pcorrect.cc.o.d"
  "bench_ablation_pcorrect"
  "bench_ablation_pcorrect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcorrect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
