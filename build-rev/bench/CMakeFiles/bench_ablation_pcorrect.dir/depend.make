# Empty dependencies file for bench_ablation_pcorrect.
# This may be replaced when dependencies are built.
