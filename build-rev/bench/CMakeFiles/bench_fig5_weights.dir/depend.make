# Empty dependencies file for bench_fig5_weights.
# This may be replaced when dependencies are built.
