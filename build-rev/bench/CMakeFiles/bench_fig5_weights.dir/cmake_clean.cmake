file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_weights.dir/fig5_weights.cc.o"
  "CMakeFiles/bench_fig5_weights.dir/fig5_weights.cc.o.d"
  "bench_fig5_weights"
  "bench_fig5_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
