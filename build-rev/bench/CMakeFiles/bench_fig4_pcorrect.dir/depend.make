# Empty dependencies file for bench_fig4_pcorrect.
# This may be replaced when dependencies are built.
