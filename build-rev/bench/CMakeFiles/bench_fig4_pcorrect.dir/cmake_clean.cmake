file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pcorrect.dir/fig4_pcorrect.cc.o"
  "CMakeFiles/bench_fig4_pcorrect.dir/fig4_pcorrect.cc.o.d"
  "bench_fig4_pcorrect"
  "bench_fig4_pcorrect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pcorrect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
