# Empty dependencies file for bench_ablation_ensemble_size.
# This may be replaced when dependencies are built.
