# Empty dependencies file for bench_fig1_summary.
# This may be replaced when dependencies are built.
