# Empty dependencies file for bench_fig6_vqe.
# This may be replaced when dependencies are built.
