file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vqe.dir/fig6_vqe.cc.o"
  "CMakeFiles/bench_fig6_vqe.dir/fig6_vqe.cc.o.d"
  "bench_fig6_vqe"
  "bench_fig6_vqe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vqe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
