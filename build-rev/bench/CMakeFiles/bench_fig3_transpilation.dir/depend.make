# Empty dependencies file for bench_fig3_transpilation.
# This may be replaced when dependencies are built.
