file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_transpilation.dir/fig3_transpilation.cc.o"
  "CMakeFiles/bench_fig3_transpilation.dir/fig3_transpilation.cc.o.d"
  "bench_fig3_transpilation"
  "bench_fig3_transpilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_transpilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
