# Empty dependencies file for bench_fig9_vqe_weighting.
# This may be replaced when dependencies are built.
