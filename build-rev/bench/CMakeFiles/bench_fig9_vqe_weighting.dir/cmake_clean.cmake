file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vqe_weighting.dir/fig9_vqe_weighting.cc.o"
  "CMakeFiles/bench_fig9_vqe_weighting.dir/fig9_vqe_weighting.cc.o.d"
  "bench_fig9_vqe_weighting"
  "bench_fig9_vqe_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vqe_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
