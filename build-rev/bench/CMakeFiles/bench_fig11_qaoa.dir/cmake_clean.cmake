file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_qaoa.dir/fig11_qaoa.cc.o"
  "CMakeFiles/bench_fig11_qaoa.dir/fig11_qaoa.cc.o.d"
  "bench_fig11_qaoa"
  "bench_fig11_qaoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
