# Empty dependencies file for bench_fig11_qaoa.
# This may be replaced when dependencies are built.
