file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_qaoa_weighting.dir/fig12_qaoa_weighting.cc.o"
  "CMakeFiles/bench_fig12_qaoa_weighting.dir/fig12_qaoa_weighting.cc.o.d"
  "bench_fig12_qaoa_weighting"
  "bench_fig12_qaoa_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_qaoa_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
