# Empty dependencies file for bench_fig12_qaoa_weighting.
# This may be replaced when dependencies are built.
