# Empty dependencies file for bench_table1_devices.
# This may be replaced when dependencies are built.
