file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_devices.dir/table1_devices.cc.o"
  "CMakeFiles/bench_table1_devices.dir/table1_devices.cc.o.d"
  "bench_table1_devices"
  "bench_table1_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
