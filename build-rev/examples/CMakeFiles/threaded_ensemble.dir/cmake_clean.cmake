file(REMOVE_RECURSE
  "CMakeFiles/threaded_ensemble.dir/threaded_ensemble.cpp.o"
  "CMakeFiles/threaded_ensemble.dir/threaded_ensemble.cpp.o.d"
  "threaded_ensemble"
  "threaded_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
