# Empty dependencies file for threaded_ensemble.
# This may be replaced when dependencies are built.
