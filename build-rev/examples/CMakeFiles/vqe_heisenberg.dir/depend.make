# Empty dependencies file for vqe_heisenberg.
# This may be replaced when dependencies are built.
