file(REMOVE_RECURSE
  "CMakeFiles/vqe_heisenberg.dir/vqe_heisenberg.cpp.o"
  "CMakeFiles/vqe_heisenberg.dir/vqe_heisenberg.cpp.o.d"
  "vqe_heisenberg"
  "vqe_heisenberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_heisenberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
