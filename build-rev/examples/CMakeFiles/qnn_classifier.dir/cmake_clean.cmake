file(REMOVE_RECURSE
  "CMakeFiles/qnn_classifier.dir/qnn_classifier.cpp.o"
  "CMakeFiles/qnn_classifier.dir/qnn_classifier.cpp.o.d"
  "qnn_classifier"
  "qnn_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnn_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
