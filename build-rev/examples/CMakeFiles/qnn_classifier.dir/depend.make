# Empty dependencies file for qnn_classifier.
# This may be replaced when dependencies are built.
