# Empty dependencies file for test_kraus.
# This may be replaced when dependencies are built.
