file(REMOVE_RECURSE
  "CMakeFiles/test_kraus.dir/test_kraus.cc.o"
  "CMakeFiles/test_kraus.dir/test_kraus.cc.o.d"
  "test_kraus"
  "test_kraus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kraus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
