# Empty dependencies file for test_trace_helpers.
# This may be replaced when dependencies are built.
