file(REMOVE_RECURSE
  "CMakeFiles/test_trace_helpers.dir/test_trace_helpers.cc.o"
  "CMakeFiles/test_trace_helpers.dir/test_trace_helpers.cc.o.d"
  "test_trace_helpers"
  "test_trace_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
