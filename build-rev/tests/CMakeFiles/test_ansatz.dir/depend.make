# Empty dependencies file for test_ansatz.
# This may be replaced when dependencies are built.
