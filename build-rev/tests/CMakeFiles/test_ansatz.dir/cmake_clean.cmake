file(REMOVE_RECURSE
  "CMakeFiles/test_ansatz.dir/test_ansatz.cc.o"
  "CMakeFiles/test_ansatz.dir/test_ansatz.cc.o.d"
  "test_ansatz"
  "test_ansatz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ansatz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
