file(REMOVE_RECURSE
  "CMakeFiles/test_density_matrix.dir/test_density_matrix.cc.o"
  "CMakeFiles/test_density_matrix.dir/test_density_matrix.cc.o.d"
  "test_density_matrix"
  "test_density_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
