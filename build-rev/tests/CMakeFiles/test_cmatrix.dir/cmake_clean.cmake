file(REMOVE_RECURSE
  "CMakeFiles/test_cmatrix.dir/test_cmatrix.cc.o"
  "CMakeFiles/test_cmatrix.dir/test_cmatrix.cc.o.d"
  "test_cmatrix"
  "test_cmatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
