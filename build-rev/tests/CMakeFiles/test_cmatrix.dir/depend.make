# Empty dependencies file for test_cmatrix.
# This may be replaced when dependencies are built.
