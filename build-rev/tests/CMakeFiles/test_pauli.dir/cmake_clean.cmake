file(REMOVE_RECURSE
  "CMakeFiles/test_pauli.dir/test_pauli.cc.o"
  "CMakeFiles/test_pauli.dir/test_pauli.cc.o.d"
  "test_pauli"
  "test_pauli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
