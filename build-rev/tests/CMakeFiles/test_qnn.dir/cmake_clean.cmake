file(REMOVE_RECURSE
  "CMakeFiles/test_qnn.dir/test_qnn.cc.o"
  "CMakeFiles/test_qnn.dir/test_qnn.cc.o.d"
  "test_qnn"
  "test_qnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
