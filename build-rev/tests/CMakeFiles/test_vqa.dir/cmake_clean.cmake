file(REMOVE_RECURSE
  "CMakeFiles/test_vqa.dir/test_vqa.cc.o"
  "CMakeFiles/test_vqa.dir/test_vqa.cc.o.d"
  "test_vqa"
  "test_vqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
