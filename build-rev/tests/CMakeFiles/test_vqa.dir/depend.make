# Empty dependencies file for test_vqa.
# This may be replaced when dependencies are built.
