# Empty dependencies file for test_coupling_map.
# This may be replaced when dependencies are built.
