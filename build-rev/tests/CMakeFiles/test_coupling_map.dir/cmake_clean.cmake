file(REMOVE_RECURSE
  "CMakeFiles/test_coupling_map.dir/test_coupling_map.cc.o"
  "CMakeFiles/test_coupling_map.dir/test_coupling_map.cc.o.d"
  "test_coupling_map"
  "test_coupling_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupling_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
