file(REMOVE_RECURSE
  "CMakeFiles/test_hamiltonian.dir/test_hamiltonian.cc.o"
  "CMakeFiles/test_hamiltonian.dir/test_hamiltonian.cc.o.d"
  "test_hamiltonian"
  "test_hamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
