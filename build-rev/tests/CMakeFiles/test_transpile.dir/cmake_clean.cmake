file(REMOVE_RECURSE
  "CMakeFiles/test_transpile.dir/test_transpile.cc.o"
  "CMakeFiles/test_transpile.dir/test_transpile.cc.o.d"
  "test_transpile"
  "test_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
