# Empty dependencies file for test_statevector.
# This may be replaced when dependencies are built.
