file(REMOVE_RECURSE
  "CMakeFiles/test_statevector.dir/test_statevector.cc.o"
  "CMakeFiles/test_statevector.dir/test_statevector.cc.o.d"
  "test_statevector"
  "test_statevector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statevector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
