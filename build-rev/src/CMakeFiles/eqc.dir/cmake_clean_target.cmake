file(REMOVE_RECURSE
  "libeqc.a"
)
