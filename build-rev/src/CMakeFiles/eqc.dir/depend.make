# Empty dependencies file for eqc.
# This may be replaced when dependencies are built.
