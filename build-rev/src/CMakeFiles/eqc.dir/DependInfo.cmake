
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ansatz.cc" "src/CMakeFiles/eqc.dir/circuit/ansatz.cc.o" "gcc" "src/CMakeFiles/eqc.dir/circuit/ansatz.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "src/CMakeFiles/eqc.dir/circuit/circuit.cc.o" "gcc" "src/CMakeFiles/eqc.dir/circuit/circuit.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/eqc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/eqc.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/eqc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/eqc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/eqc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/eqc.dir/common/stats.cc.o.d"
  "/root/repo/src/common/task_pool.cc" "src/CMakeFiles/eqc.dir/common/task_pool.cc.o" "gcc" "src/CMakeFiles/eqc.dir/common/task_pool.cc.o.d"
  "/root/repo/src/core/client.cc" "src/CMakeFiles/eqc.dir/core/client.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/client.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/eqc.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/engine.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/CMakeFiles/eqc.dir/core/ensemble.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/ensemble.cc.o.d"
  "/root/repo/src/core/eqc.cc" "src/CMakeFiles/eqc.dir/core/eqc.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/eqc.cc.o.d"
  "/root/repo/src/core/master.cc" "src/CMakeFiles/eqc.dir/core/master.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/master.cc.o.d"
  "/root/repo/src/core/qnn_executor.cc" "src/CMakeFiles/eqc.dir/core/qnn_executor.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/qnn_executor.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/eqc.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/runtime.cc.o.d"
  "/root/repo/src/core/threaded_executor.cc" "src/CMakeFiles/eqc.dir/core/threaded_executor.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/threaded_executor.cc.o.d"
  "/root/repo/src/core/virtual_executor.cc" "src/CMakeFiles/eqc.dir/core/virtual_executor.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/virtual_executor.cc.o.d"
  "/root/repo/src/core/weighting.cc" "src/CMakeFiles/eqc.dir/core/weighting.cc.o" "gcc" "src/CMakeFiles/eqc.dir/core/weighting.cc.o.d"
  "/root/repo/src/device/backend.cc" "src/CMakeFiles/eqc.dir/device/backend.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/backend.cc.o.d"
  "/root/repo/src/device/calibration.cc" "src/CMakeFiles/eqc.dir/device/calibration.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/calibration.cc.o.d"
  "/root/repo/src/device/catalog.cc" "src/CMakeFiles/eqc.dir/device/catalog.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/catalog.cc.o.d"
  "/root/repo/src/device/device.cc" "src/CMakeFiles/eqc.dir/device/device.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/device.cc.o.d"
  "/root/repo/src/device/drift.cc" "src/CMakeFiles/eqc.dir/device/drift.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/drift.cc.o.d"
  "/root/repo/src/device/queue_model.cc" "src/CMakeFiles/eqc.dir/device/queue_model.cc.o" "gcc" "src/CMakeFiles/eqc.dir/device/queue_model.cc.o.d"
  "/root/repo/src/hamiltonian/exact.cc" "src/CMakeFiles/eqc.dir/hamiltonian/exact.cc.o" "gcc" "src/CMakeFiles/eqc.dir/hamiltonian/exact.cc.o.d"
  "/root/repo/src/hamiltonian/heisenberg.cc" "src/CMakeFiles/eqc.dir/hamiltonian/heisenberg.cc.o" "gcc" "src/CMakeFiles/eqc.dir/hamiltonian/heisenberg.cc.o.d"
  "/root/repo/src/hamiltonian/maxcut.cc" "src/CMakeFiles/eqc.dir/hamiltonian/maxcut.cc.o" "gcc" "src/CMakeFiles/eqc.dir/hamiltonian/maxcut.cc.o.d"
  "/root/repo/src/quantum/cmatrix.cc" "src/CMakeFiles/eqc.dir/quantum/cmatrix.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/cmatrix.cc.o.d"
  "/root/repo/src/quantum/density_matrix.cc" "src/CMakeFiles/eqc.dir/quantum/density_matrix.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/density_matrix.cc.o.d"
  "/root/repo/src/quantum/gates.cc" "src/CMakeFiles/eqc.dir/quantum/gates.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/gates.cc.o.d"
  "/root/repo/src/quantum/kernel.cc" "src/CMakeFiles/eqc.dir/quantum/kernel.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/kernel.cc.o.d"
  "/root/repo/src/quantum/kraus.cc" "src/CMakeFiles/eqc.dir/quantum/kraus.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/kraus.cc.o.d"
  "/root/repo/src/quantum/pauli.cc" "src/CMakeFiles/eqc.dir/quantum/pauli.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/pauli.cc.o.d"
  "/root/repo/src/quantum/statevector.cc" "src/CMakeFiles/eqc.dir/quantum/statevector.cc.o" "gcc" "src/CMakeFiles/eqc.dir/quantum/statevector.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/eqc.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/eqc.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/transpile/basis.cc" "src/CMakeFiles/eqc.dir/transpile/basis.cc.o" "gcc" "src/CMakeFiles/eqc.dir/transpile/basis.cc.o.d"
  "/root/repo/src/transpile/coupling_map.cc" "src/CMakeFiles/eqc.dir/transpile/coupling_map.cc.o" "gcc" "src/CMakeFiles/eqc.dir/transpile/coupling_map.cc.o.d"
  "/root/repo/src/transpile/layout.cc" "src/CMakeFiles/eqc.dir/transpile/layout.cc.o" "gcc" "src/CMakeFiles/eqc.dir/transpile/layout.cc.o.d"
  "/root/repo/src/transpile/router.cc" "src/CMakeFiles/eqc.dir/transpile/router.cc.o" "gcc" "src/CMakeFiles/eqc.dir/transpile/router.cc.o.d"
  "/root/repo/src/transpile/transpiler.cc" "src/CMakeFiles/eqc.dir/transpile/transpiler.cc.o" "gcc" "src/CMakeFiles/eqc.dir/transpile/transpiler.cc.o.d"
  "/root/repo/src/vqa/expectation.cc" "src/CMakeFiles/eqc.dir/vqa/expectation.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/expectation.cc.o.d"
  "/root/repo/src/vqa/optimizer.cc" "src/CMakeFiles/eqc.dir/vqa/optimizer.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/optimizer.cc.o.d"
  "/root/repo/src/vqa/parameter_shift.cc" "src/CMakeFiles/eqc.dir/vqa/parameter_shift.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/parameter_shift.cc.o.d"
  "/root/repo/src/vqa/problem.cc" "src/CMakeFiles/eqc.dir/vqa/problem.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/problem.cc.o.d"
  "/root/repo/src/vqa/qnn.cc" "src/CMakeFiles/eqc.dir/vqa/qnn.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/qnn.cc.o.d"
  "/root/repo/src/vqa/trainer.cc" "src/CMakeFiles/eqc.dir/vqa/trainer.cc.o" "gcc" "src/CMakeFiles/eqc.dir/vqa/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
