#!/usr/bin/env python3
"""Fail on broken intra-repo links in the project's markdown docs.

Scans README.md and docs/*.md for markdown links and images. For every
relative target it checks that the referenced file (or directory)
exists, and — when the link carries a #fragment into a markdown file —
that a heading with the matching GitHub-style anchor exists. External
schemes (http, https, mailto) are ignored.

Usage: scripts/check_links.py [repo-root]
Exit status: 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (close enough for ASCII docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(github_anchor(line.lstrip("#")))
    return anchors


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    docs = sorted([root / "README.md", *(root / "docs").glob("*.md")])
    errors = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            continue
        for lineno, target in links_of(doc):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # external scheme
            checked += 1
            raw, _, fragment = target.partition("#")
            dest = (doc.parent / raw).resolve() if raw else doc
            where = f"{doc.relative_to(root)}:{lineno}"
            if not dest.exists():
                errors.append(f"{where}: broken link -> {target}")
                continue
            if fragment and dest.is_file() and dest.suffix == ".md":
                if github_anchor(fragment) not in anchors_of(dest):
                    errors.append(
                        f"{where}: missing anchor #{fragment} "
                        f"in {raw or doc.name}")
    for err in errors:
        print(err, file=sys.stderr)
    print(f"check_links: {checked} intra-repo links checked, "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
