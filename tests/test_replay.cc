/**
 * @file
 * Replay-subsystem tests: JSONL journal round-trips that preserve
 * every double bit-for-bit (denormals, negative zero, non-dyadic
 * fractions), live ServiceNode scenarios (coalescing, a mid-run kill,
 * cache hits) replayed hex-bit-identically from the serialized
 * journal alone — including a deadline shed, a live member join and a
 * mid-flight rider join — chaos schedules that stay clean and
 * byte-identical across TaskPool thread counts (with deadline/churn
 * injection on, and on a SteadyClock where only the timing invariants
 * are checkable), hand-built journals that trip each invariant, and
 * the shard-resolution decay of per-member queue depths.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/task_pool.h"
#include "device/catalog.h"
#include "replay/chaos.h"
#include "replay/replayer.h"
#include "serve/aggregator.h"
#include "serve/service_node.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

using namespace eqc::replay;

// ---------------------------------------------------------------------------
// Journal serialization
// ---------------------------------------------------------------------------

TEST(Journal, RoundTripPreservesAdversarialDoubleBits)
{
    // Doubles that break naive printf round-trips: the smallest
    // denormal, negative zero, non-dyadic fractions, the largest
    // finite double, and a classic accumulated-rounding value.
    const std::vector<double> nasty = {
        5e-324,       -0.0,    1.0 / 3.0, 1.7976931348623157e308,
        -2.2250738585072014e-308, 0.1 + 0.2,
    };

    EventJournal j;
    j.config.seed = 0xDEADBEEFCAFEULL;
    j.config.cacheTtlH = 1.0 / 3.0;
    j.config.minLatencyS = 5e-324;
    j.config.warmBoost = 0.1 + 0.2;
    j.config.devices = {
        {"ibmq_lima", 0.30000000000000004, 9.999999999999998},
        {"ibmq_quito", -1.0, -1.0},
        {"dev\"quote\\slash", -1.0, -1.0}, // exercises escaping
    };
    j.config.workloads = {{"heisenberg_vqe", 7},
                          {"ring_maxcut_qaoa", 99}};

    EventRecord admit;
    admit.kind = EventKind::Admit;
    admit.tH = 1.0 / 7.0;
    admit.jobId = ~0ULL;
    admit.tenant = 3;
    admit.workload = 1;
    admit.shots = 4096;
    admit.priority = 2;
    admit.submitH = -0.0;
    admit.params = nasty;
    j.record(admit);

    EventRecord hit;
    hit.kind = EventKind::CacheHit;
    hit.tH = 0.3;
    hit.workUid = 12;
    hit.storedAtH = -0.0;
    hit.servedShots = 4096;
    hit.shots = 2048;
    hit.energy = -1.0 / 3.0;
    hit.riders = 2;
    j.record(hit);

    EventRecord fin;
    fin.kind = EventKind::Finalize;
    fin.tH = 0.5;
    fin.jobId = 1;
    fin.workUid = 12;
    fin.energy = -0.0;
    fin.variance = 5e-324;
    fin.pCorrect = 0.99999999999999989; // nextafter(1.0, 0.0)
    fin.doneH = 1.0 / 3.0;
    fin.shots = 2048;
    fin.shardsRun = 3;
    fin.circuits = 33;
    fin.degraded = true;
    j.record(fin);

    const std::string text = j.serialize();
    std::string err;
    EventJournal parsed = EventJournal::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(parsed.size(), j.size());

    EXPECT_EQ(parsed.config.seed, j.config.seed);
    EXPECT_TRUE(bitEqual(parsed.config.cacheTtlH, 1.0 / 3.0));
    EXPECT_TRUE(bitEqual(parsed.config.minLatencyS, 5e-324));
    EXPECT_TRUE(bitEqual(parsed.config.warmBoost, 0.1 + 0.2));
    ASSERT_EQ(parsed.config.devices.size(), 3u);
    EXPECT_TRUE(bitEqual(parsed.config.devices[0].spikeRatePerHour,
                         0.30000000000000004));
    EXPECT_EQ(parsed.config.devices[2].name, "dev\"quote\\slash");
    ASSERT_EQ(parsed.config.workloads.size(), 2u);
    EXPECT_EQ(parsed.config.workloads[1].initSeed, 99u);

    const EventRecord &pa = parsed.records()[0];
    EXPECT_EQ(pa.kind, EventKind::Admit);
    EXPECT_EQ(pa.jobId, ~0ULL);
    EXPECT_TRUE(bitEqual(pa.submitH, -0.0)); // sign bit survives
    ASSERT_EQ(pa.params.size(), nasty.size());
    for (std::size_t i = 0; i < nasty.size(); ++i)
        EXPECT_TRUE(bitEqual(pa.params[i], nasty[i]))
            << "param " << i << ": " << hexBits(pa.params[i])
            << " vs " << hexBits(nasty[i]);

    const EventRecord &ph = parsed.records()[1];
    EXPECT_TRUE(bitEqual(ph.storedAtH, -0.0));
    EXPECT_TRUE(bitEqual(ph.energy, -1.0 / 3.0));
    EXPECT_EQ(ph.servedShots, 4096);

    const EventRecord &pf = parsed.records()[2];
    EXPECT_TRUE(bitEqual(pf.energy, -0.0));
    EXPECT_TRUE(bitEqual(pf.variance, 5e-324));
    EXPECT_TRUE(bitEqual(pf.pCorrect, 0.99999999999999989));
    EXPECT_TRUE(pf.degraded);

    // Serialization is a fixed point: text -> journal -> same text.
    EXPECT_TRUE(parsed.serialize() == text);
}

TEST(Journal, ParseReportsMalformedInput)
{
    std::string err;
    EventJournal::parse("{\"k\": \"admit\", \"t\": }\n", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Journal, RoundTripPreservesStreamingRecordKinds)
{
    // The four streaming kinds and their fields survive text exactly:
    // deadline sheds, live joins/leaves, riders, supervised restores,
    // late shard resolutions, and a bounded (runUntil) drain.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    j.config.parkRetryH = 1.0 / 3.0;
    j.config.superviseBaseBackoffH = 0.1 + 0.2;
    j.config.superviseMaxBackoffH = 5e-324;
    j.config.coldStartPenalty = 0.30000000000000004;
    j.config.coldStartH = 1.0 / 7.0;

    EventRecord admit;
    admit.kind = EventKind::Admit;
    admit.jobId = 9;
    admit.shots = 256;
    admit.deadlineH = 1.0 / 3.0;
    admit.params = {0.5};
    j.record(admit);

    EventRecord shed;
    shed.kind = EventKind::DeadlineShed;
    shed.tH = 1.0 / 3.0;
    shed.jobId = 9;
    shed.workUid = 4;
    shed.shots = 128;
    shed.shedShots = 128;
    shed.deadlineH = 1.0 / 3.0;
    j.record(shed);

    EventRecord join;
    join.kind = EventKind::MemberJoin;
    join.member = 1;
    join.atH = -0.0;
    join.name = "ibmq_santiago";
    j.record(join);

    EventRecord leave;
    leave.kind = EventKind::MemberLeave;
    leave.member = 0;
    leave.atH = 0.1 + 0.2;
    j.record(leave);

    EventRecord rider;
    rider.kind = EventKind::RiderJoin;
    rider.jobId = 11;
    rider.workUid = 4;
    rider.shots = 64;
    j.record(rider);

    EventRecord restore;
    restore.kind = EventKind::MemberRestore;
    restore.member = 0;
    restore.autoRestore = true;
    j.record(restore);

    EventRecord lateDone;
    lateDone.kind = EventKind::ShardDone;
    lateDone.workUid = 4;
    lateDone.late = true;
    j.record(lateDone);

    EventRecord bounded;
    bounded.kind = EventKind::Drain;
    bounded.atH = 2.5;
    j.record(bounded);

    EventRecord fin;
    fin.kind = EventKind::Finalize;
    fin.jobId = 9;
    fin.shedShots = 128;
    fin.shed = true;
    fin.degraded = true;
    j.record(fin);

    const std::string text = j.serialize();
    std::string err;
    EventJournal parsed = EventJournal::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_EQ(parsed.size(), j.size());

    EXPECT_TRUE(bitEqual(parsed.config.parkRetryH, 1.0 / 3.0));
    EXPECT_TRUE(
        bitEqual(parsed.config.superviseBaseBackoffH, 0.1 + 0.2));
    EXPECT_TRUE(bitEqual(parsed.config.superviseMaxBackoffH, 5e-324));
    EXPECT_TRUE(
        bitEqual(parsed.config.coldStartPenalty, 0.30000000000000004));

    const auto &recs = parsed.records();
    EXPECT_TRUE(bitEqual(recs[0].deadlineH, 1.0 / 3.0));
    EXPECT_EQ(recs[1].kind, EventKind::DeadlineShed);
    EXPECT_EQ(recs[1].shedShots, 128);
    EXPECT_TRUE(bitEqual(recs[1].deadlineH, 1.0 / 3.0));
    EXPECT_EQ(recs[2].kind, EventKind::MemberJoin);
    EXPECT_EQ(recs[2].name, "ibmq_santiago");
    EXPECT_TRUE(bitEqual(recs[2].atH, -0.0));
    EXPECT_EQ(recs[3].kind, EventKind::MemberLeave);
    EXPECT_TRUE(bitEqual(recs[3].atH, 0.1 + 0.2));
    EXPECT_EQ(recs[4].kind, EventKind::RiderJoin);
    EXPECT_EQ(recs[4].jobId, 11u);
    EXPECT_TRUE(recs[5].autoRestore);
    EXPECT_TRUE(recs[6].late);
    EXPECT_TRUE(bitEqual(recs[7].atH, 2.5));
    EXPECT_TRUE(recs[8].shed);
    EXPECT_EQ(recs[8].shedShots, 128);

    EXPECT_TRUE(parsed.serialize() == text);
}

// ---------------------------------------------------------------------------
// Live scenario -> journal -> bit-identical replay
// ---------------------------------------------------------------------------

TEST(Replayer, LiveScenarioReplaysBitIdentical)
{
    // The full event surface in one run: coalescing pairs, a member
    // killed mid-drain (requeues), then a second drain with a cache
    // hit and a fresh binding. The node is built through the config
    // bridges so the replayer reconstructs exactly this node.
    serve::ServiceOptions o;
    o.seed = 101;
    o.scheduler.minShardShots = 32;
    o.resultCacheTtlH = 0.5;
    EventJournal journal;
    journal.config = describeNode(o,
                                  {{"ibmq_bogota"},
                                   {"ibmq_manila"},
                                   {"ibmq_quito"},
                                   {"ibmq_lima"}},
                                  {{"heisenberg_vqe", 7}});

    serve::ServiceNode node(devicesFor(journal.config),
                            optionsFor(journal.config));
    VqaProblem p = problemByName("heisenberg_vqe", 7);
    serve::WorkloadId wl =
        node.registerWorkload(p.ansatz, p.hamiltonian);
    node.setJournalSink(&journal);

    serve::JobRequest r;
    r.workload = wl;
    r.shots = 4096;
    for (int t = 0; t < 6; ++t) {
        r.tenantId = t;
        r.params = p.initialParams;
        r.params[0] += 0.1 * (t / 2); // pairs coalesce
        r.priority = t % 2;
        r.submitH = 0.01 * t;
        ASSERT_TRUE(node.submit(r).admitted());
    }
    node.failMemberAt(1, 30.0 / 3600.0);
    TaskPool pool(2);
    std::vector<serve::JobOutcome> out = node.drain(&pool);
    ASSERT_EQ(out.size(), 6u);

    r.tenantId = 0;
    r.params = p.initialParams; // repeats drain 1: cache hit
    r.submitH = out.back().completeH + 0.01;
    ASSERT_TRUE(node.submit(r).admitted());
    r.tenantId = 1;
    r.params[0] += 7.5; // fresh binding: executes
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<serve::JobOutcome> again = node.drain(&pool);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_TRUE(again[0].fromCache);
    node.setJournalSink(nullptr);

    // A healthy live journal carries no invariant violations.
    std::vector<Violation> v = InvariantChecker::check(journal);
    EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v.front().detail);

    // The serialized text alone reproduces all 8 outcomes to the bit,
    // on a different thread count than the recording run.
    std::string err;
    EventJournal parsed = EventJournal::parse(journal.serialize(), &err);
    ASSERT_TRUE(err.empty()) << err;
    Replayer replayer(std::move(parsed));
    TaskPool replayPool(3);
    ReplayResult res = replayer.run(&replayPool);
    EXPECT_EQ(res.jobsCompared, 8u);
    EXPECT_TRUE(res.identical())
        << (res.mismatches.empty() ? "" : res.mismatches.front());
}

TEST(Replayer, ShedJoinAndRiderReplayBitIdentical)
{
    // Acceptance scenario for the streaming front door: one job sheds
    // at its deadline mid-flight, a new member joins live, and a rider
    // joins an already-dispatched item through a bounded runUntil —
    // all from the journal text alone, bit-for-bit.
    serve::ServiceOptions o;
    o.seed = 202;
    o.scheduler.minShardShots = 32;
    EventJournal journal;
    journal.config = describeNode(o,
                                  {{"ibmq_bogota"},
                                   {"ibmq_manila"},
                                   {"ibmq_quito"},
                                   {"ibmq_lima"}},
                                  {{"heisenberg_vqe", 7}});

    serve::ServiceNode node(devicesFor(journal.config),
                            optionsFor(journal.config));
    VqaProblem p = problemByName("heisenberg_vqe", 7);
    serve::WorkloadId wl =
        node.registerWorkload(p.ansatz, p.hamiltonian);
    node.setJournalSink(&journal);

    serve::JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 8192;
    r.tenantId = 0;
    r.deadlineH = 0.02; // sheds mid-flight (see test_serve)
    ASSERT_TRUE(node.submit(r).admitted());

    r.tenantId = 1;
    r.params[0] += 0.5;
    r.shots = 4096;
    r.deadlineH = 0.0;
    ASSERT_TRUE(node.submit(r).admitted());

    // Bounded run past intake: both items dispatched, nothing done.
    node.runUntil(1e-4);

    // A rider joins tenant 1's in-flight item...
    r.tenantId = 2;
    r.shots = 2048;
    r.submitH = 1e-4;
    ASSERT_TRUE(node.submit(r).admitted());
    // ...and a fifth device joins the ensemble live.
    node.addMember(
        deviceByName("ibmq_santiago", journal.config.catalogSeed),
        2e-4);

    std::vector<serve::JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 3u);
    node.setJournalSink(nullptr);
    EXPECT_TRUE(out[0].shed);
    EXPECT_GT(out[0].shedShots, 0);
    EXPECT_EQ(node.counters().ridersJoined, 1u);
    EXPECT_EQ(node.counters().memberJoins, 1u);

    std::vector<Violation> v = InvariantChecker::check(journal);
    EXPECT_TRUE(v.empty())
        << (v.empty() ? ""
                      : v.front().invariant + ": " + v.front().detail);

    std::string err;
    EventJournal parsed =
        EventJournal::parse(journal.serialize(), &err);
    ASSERT_TRUE(err.empty()) << err;
    Replayer replayer(std::move(parsed));
    TaskPool replayPool(3);
    ReplayResult res = replayer.run(&replayPool);
    EXPECT_EQ(res.jobsCompared, 3u);
    EXPECT_TRUE(res.identical())
        << (res.mismatches.empty() ? "" : res.mismatches.front());
}

// ---------------------------------------------------------------------------
// Chaos schedules: clean, deterministic, thread-count independent
// ---------------------------------------------------------------------------

std::string
chaosJournalText(uint64_t seed, int threads, ChaosReport *rep)
{
    ChaosOptions co;
    co.seed = seed;
    co.verifyReplay = true;
    ChaosEngine engine(co);
    TaskPool pool(threads);
    ChaosReport r = engine.run(&pool);
    if (rep)
        *rep = r;
    return engine.journal().serialize();
}

TEST(ChaosEngine, SchedulesCleanAndBitIdenticalAcrossThreadCounts)
{
    // Property satellite: randomized drains full of kills, coalescing
    // and cache traffic serialize -> parse -> replay bit-identically,
    // and the journal text itself is byte-identical for 1/2/4 worker
    // threads.
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        ChaosReport r1, r2, r4;
        const std::string t1 = chaosJournalText(seed, 1, &r1);
        const std::string t2 = chaosJournalText(seed, 2, &r2);
        const std::string t4 = chaosJournalText(seed, 4, &r4);
        for (const ChaosReport *r : {&r1, &r2, &r4}) {
            EXPECT_TRUE(r->replayVerified);
            EXPECT_TRUE(r->passed())
                << "seed " << seed << ": "
                << (r->violations.empty()
                        ? ""
                        : r->violations.front().invariant + ": " +
                              r->violations.front().detail);
        }
        EXPECT_GT(r1.jobsCompleted, 0);
        EXPECT_TRUE(t1 == t2) << "seed " << seed;
        EXPECT_TRUE(t1 == t4) << "seed " << seed;
    }
}

TEST(ChaosEngine, SameSeedReproducesTheExactJournal)
{
    ChaosOptions co;
    co.seed = 42;
    ChaosEngine a(co);
    ChaosEngine b(co);
    TaskPool pool(2);
    ChaosReport ra = a.run(&pool);
    ChaosReport rb = b.run(&pool);
    EXPECT_TRUE(ra.passed())
        << (ra.violations.empty() ? "" : ra.violations.front().detail);
    EXPECT_EQ(ra.jobsCompleted, rb.jobsCompleted);
    EXPECT_EQ(ra.kills, rb.kills);
    EXPECT_EQ(ra.restores, rb.restores);
    EXPECT_EQ(ra.floods, rb.floods);
    EXPECT_TRUE(a.journal().serialize() == b.journal().serialize());
}

std::string
streamingChaosText(uint64_t seed, int threads, ChaosReport *rep)
{
    ChaosOptions co;
    co.seed = seed;
    co.rounds = 4;
    co.deadlineProb = 0.5;
    co.churnProb = 0.5;
    co.verifyReplay = true;
    ChaosEngine engine(co);
    TaskPool pool(threads);
    ChaosReport r = engine.run(&pool);
    if (rep)
        *rep = r;
    return engine.journal().serialize();
}

TEST(ChaosEngine, DeadlineAndChurnSchedulesStayCleanAcrossThreads)
{
    // The streaming adversary — deadline sheds plus live joins and
    // leaves on top of kills, floods and skew — still violates no
    // invariant, still replays from text, and still produces
    // byte-identical journals for 1/2/4 worker threads.
    int sheds = 0, joins = 0, leaves = 0;
    for (uint64_t seed = 5; seed <= 7; ++seed) {
        ChaosReport r1, r2, r4;
        const std::string t1 = streamingChaosText(seed, 1, &r1);
        const std::string t2 = streamingChaosText(seed, 2, &r2);
        const std::string t4 = streamingChaosText(seed, 4, &r4);
        for (const ChaosReport *r : {&r1, &r2, &r4}) {
            EXPECT_TRUE(r->replayVerified);
            EXPECT_TRUE(r->passed())
                << "seed " << seed << ": "
                << (r->violations.empty()
                        ? ""
                        : r->violations.front().invariant + ": " +
                              r->violations.front().detail);
        }
        sheds += r1.sheds;
        joins += r1.joins;
        leaves += r1.leaves;
        EXPECT_TRUE(t1 == t2) << "seed " << seed;
        EXPECT_TRUE(t1 == t4) << "seed " << seed;
    }
    // The schedules must actually exercise the streaming paths.
    EXPECT_GT(sheds, 0);
    EXPECT_GT(joins, 0);
    EXPECT_GT(leaves, 0);
}

TEST(ChaosEngine, SteadyClockSchedulesHoldTimingInvariants)
{
    // Chaos on a wall clock: event fire order is real, journals are
    // not bit-replayable, but every invariant — including event-order
    // and shed-before-finalize — must still hold.
    for (uint64_t seed = 21; seed <= 23; ++seed) {
        ChaosOptions co;
        co.seed = seed;
        co.rounds = 3;
        co.deadlineProb = 0.5;
        co.churnProb = 0.4;
        co.steadyClock = true;
        co.timescaleS = 0.001;
        co.verifyReplay = true; // must be skipped, not attempted
        ChaosEngine engine(co);
        ChaosReport rep = engine.run(&TaskPool::shared());
        EXPECT_FALSE(rep.replayVerified);
        EXPECT_TRUE(rep.passed())
            << "seed " << seed << ": "
            << (rep.violations.empty()
                    ? ""
                    : rep.violations.front().invariant + ": " +
                          rep.violations.front().detail);
        EXPECT_EQ(engine.journal().config.clock, "steady");
    }
}

// ---------------------------------------------------------------------------
// Invariant checker on hand-built journals
// ---------------------------------------------------------------------------

/** A Finalize whose aggregate exactly matches re-adding @p s. */
EventRecord
consistentFinalize(uint64_t jobId, uint64_t uid,
                   const serve::ShardResult &s)
{
    serve::Aggregator agg(serve::AggregationMode::FidelityWeighted);
    agg.add(s);
    EventRecord fin;
    fin.kind = EventKind::Finalize;
    fin.tH = s.completeH;
    fin.jobId = jobId;
    fin.workUid = uid;
    fin.shots = agg.shotsExecuted();
    fin.shardsRun = agg.shardsExecuted();
    fin.circuits = agg.circuitsRun();
    fin.energy = agg.energy();
    fin.variance = agg.variance();
    fin.pCorrect = agg.pCorrect();
    fin.doneH = agg.completeH();
    return fin;
}

EventRecord
admitRecord(uint64_t jobId, int shots)
{
    EventRecord r;
    r.kind = EventKind::Admit;
    r.jobId = jobId;
    r.shots = shots;
    r.params = {0.5};
    return r;
}

TEST(InvariantChecker, FlagsAdmittedJobThatNeverFinalizes)
{
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    j.record(admitRecord(7, 64));
    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "admitted-completes");
}

TEST(InvariantChecker, FlagsExpiredCacheHit)
{
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    j.config.cacheTtlH = 0.4;

    serve::ShardResult s;
    s.member = 0;
    s.shots = 128;
    s.pCorrect = 0.8;
    s.energy = -3.25;
    s.variance = 0.5;
    s.completeH = 0.02;
    s.circuitsRun = 11;

    j.record(admitRecord(1, 128));
    EventRecord d;
    d.kind = EventKind::Dispatch;
    d.workUid = 5;
    d.seq = 0;
    d.member = 0;
    d.shots = 128;
    d.pCorrect = s.pCorrect;
    j.record(d);
    EventRecord done;
    done.kind = EventKind::ShardDone;
    done.workUid = 5;
    done.seq = 0;
    done.member = 0;
    done.shots = 128;
    done.energy = s.energy;
    done.variance = s.variance;
    done.pCorrect = s.pCorrect;
    done.circuits = s.circuitsRun;
    done.doneH = s.completeH;
    j.record(done);
    EventRecord fin = consistentFinalize(1, 5, s);
    j.record(fin);

    // An otherwise-plausible hit served 1.0h after the store against
    // a 0.4h TTL.
    EventRecord hit;
    hit.kind = EventKind::CacheHit;
    hit.tH = 1.0;
    hit.workUid = 5;
    hit.storedAtH = 0.0;
    hit.servedShots = 128;
    hit.shots = 128;
    hit.energy = fin.energy;
    j.record(hit);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "cache-freshness");
}

TEST(InvariantChecker, FlagsShardCompletingAfterMemberKill)
{
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};

    serve::ShardResult s;
    s.member = 0;
    s.shots = 128;
    s.pCorrect = 0.8;
    s.energy = -3.25;
    s.variance = 0.5;
    s.completeH = 0.6; // past the kill hour below
    s.circuitsRun = 11;

    j.record(admitRecord(1, 128));
    EventRecord kill;
    kill.kind = EventKind::MemberFail;
    kill.member = 0;
    kill.atH = 0.5;
    j.record(kill);
    EventRecord d;
    d.kind = EventKind::Dispatch;
    d.workUid = 5;
    d.seq = 0;
    d.member = 0;
    d.shots = 128;
    d.pCorrect = s.pCorrect;
    j.record(d);
    EventRecord done;
    done.kind = EventKind::ShardDone;
    done.workUid = 5;
    done.seq = 0;
    done.member = 0;
    done.shots = 128;
    done.energy = s.energy;
    done.variance = s.variance;
    done.pCorrect = s.pCorrect;
    done.circuits = s.circuitsRun;
    done.doneH = s.completeH;
    j.record(done);
    j.record(consistentFinalize(1, 5, s));

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "no-zombie-shards");
}

/** Admit + Dispatch + ShardDone scaffolding for one 128-shot shard. */
void
recordShardLifecycle(EventJournal &j, uint64_t jobId, uint64_t uid,
                     const serve::ShardResult &s, double deadlineH,
                     double dispatchH = 0.0)
{
    EventRecord a = admitRecord(jobId, s.shots);
    a.deadlineH = deadlineH;
    j.record(a);
    EventRecord d;
    d.kind = EventKind::Dispatch;
    d.tH = dispatchH;
    d.workUid = uid;
    d.seq = 0;
    d.member = s.member;
    d.shots = s.shots;
    d.pCorrect = s.pCorrect;
    j.record(d);
    EventRecord done;
    done.kind = EventKind::ShardDone;
    done.tH = s.completeH;
    done.workUid = uid;
    done.seq = 0;
    done.member = s.member;
    done.shots = s.shots;
    done.energy = s.energy;
    done.variance = s.variance;
    done.pCorrect = s.pCorrect;
    done.circuits = s.circuitsRun;
    done.doneH = s.completeH;
    j.record(done);
}

serve::ShardResult
plainShard()
{
    serve::ShardResult s;
    s.member = 0;
    s.shots = 128;
    s.pCorrect = 0.8;
    s.energy = -3.25;
    s.variance = 0.5;
    s.completeH = 0.6;
    s.circuitsRun = 11;
    return s;
}

TEST(InvariantChecker, FlagsDeadlineMissedWithoutShed)
{
    // The job carried a 0.5h SLO, finalized at 0.6h, and no
    // DeadlineShed ever fired: the deadline neither was met nor shed.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    serve::ShardResult s = plainShard();
    recordShardLifecycle(j, 1, 5, s, 0.5);
    EventRecord fin = consistentFinalize(1, 5, s);
    fin.deadlineH = 0.5;
    j.record(fin);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "deadline-resolution");
}

TEST(InvariantChecker, FlagsShedShotMisaccounting)
{
    // Completed (128) plus shed (64) shots must equal the admitted
    // budget (256); here 64 shots simply vanish.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    serve::ShardResult s = plainShard();
    EventRecord a = admitRecord(1, 256);
    a.deadlineH = 0.7;
    j.record(a);
    EventRecord d;
    d.kind = EventKind::Dispatch;
    d.workUid = 5;
    d.seq = 0;
    d.member = 0;
    d.shots = 128;
    d.pCorrect = s.pCorrect;
    j.record(d);
    EventRecord done;
    done.kind = EventKind::ShardDone;
    done.tH = s.completeH;
    done.workUid = 5;
    done.seq = 0;
    done.member = 0;
    done.shots = 128;
    done.energy = s.energy;
    done.variance = s.variance;
    done.pCorrect = s.pCorrect;
    done.circuits = s.circuitsRun;
    done.doneH = s.completeH;
    j.record(done);

    EventRecord shedRec;
    shedRec.kind = EventKind::DeadlineShed;
    shedRec.tH = 0.7;
    shedRec.jobId = 1;
    shedRec.workUid = 5;
    shedRec.shots = 128;
    shedRec.shedShots = 64; // should be 128: budget 256 - done 128
    shedRec.deadlineH = 0.7;
    j.record(shedRec);

    serve::Aggregator agg(serve::AggregationMode::EquiWeighted);
    agg.add(s);
    EventRecord fin;
    fin.kind = EventKind::Finalize;
    fin.tH = 0.7;
    fin.jobId = 1;
    fin.workUid = 5;
    fin.shots = 128;
    fin.shedShots = 64;
    fin.shardsRun = 1;
    fin.circuits = s.circuitsRun;
    fin.energy = agg.energy();
    fin.variance = agg.variance();
    fin.pCorrect = agg.pCorrect();
    fin.doneH = 0.7; // shed items complete at the shed hour
    fin.deadlineH = 0.7;
    fin.shed = true;
    fin.degraded = true;
    j.record(fin);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "shed-shot-accounting");
}

TEST(InvariantChecker, FlagsDispatchBeforeMemberJoin)
{
    // Member 1 joins at 0.5h but a shard lands on it at 0.2h.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    EventRecord join;
    join.kind = EventKind::MemberJoin;
    join.member = 1;
    join.atH = 0.5;
    join.name = "ibmq_santiago";
    j.record(join);

    serve::ShardResult s = plainShard();
    s.member = 1;
    recordShardLifecycle(j, 1, 5, s, 0.0, /*dispatchH=*/0.2);
    j.record(consistentFinalize(1, 5, s));

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "membership-window");
}

TEST(InvariantChecker, FlagsShedAfterFinalize)
{
    // The deadline event must never fire once its item completed.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    serve::ShardResult s = plainShard();
    recordShardLifecycle(j, 1, 5, s, 0.7);
    EventRecord fin = consistentFinalize(1, 5, s);
    fin.deadlineH = 0.7;
    j.record(fin);

    EventRecord shedRec;
    shedRec.kind = EventKind::DeadlineShed;
    shedRec.tH = 0.7;
    shedRec.jobId = 1;
    shedRec.workUid = 5;
    shedRec.shedShots = 128;
    shedRec.deadlineH = 0.7;
    j.record(shedRec);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_FALSE(v.empty());
    bool found = false;
    for (const Violation &viol : v)
        found = found || viol.invariant == "shed-before-finalize";
    EXPECT_TRUE(found);
}

TEST(InvariantChecker, FlagsBackwardsLoopEvents)
{
    // Loop-fired events running backwards in journal time: a finalize
    // recorded at 0.6h followed by a shard completion at 0.4h.
    EventJournal j;
    j.config.devices = {{"ibmq_lima"}};
    serve::ShardResult s1 = plainShard();
    recordShardLifecycle(j, 1, 5, s1, 0.0);
    j.record(consistentFinalize(1, 5, s1));

    serve::ShardResult s2 = plainShard();
    s2.completeH = 0.4; // fires BEFORE the finalize above
    recordShardLifecycle(j, 2, 6, s2, 0.0);
    j.record(consistentFinalize(2, 6, s2));

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_FALSE(v.empty());
    bool found = false;
    for (const Violation &viol : v)
        found = found || viol.invariant == "event-order";
    EXPECT_TRUE(found);
}

/** Two-node journal scaffold for the routed invariants I13/I14. */
EventJournal
routedJournalScaffold()
{
    EventJournal j;
    DeviceSpec home;
    home.name = "ibmq_lima";
    DeviceSpec remote;
    remote.name = "ibmq_lima";
    remote.node = 1;
    j.config.devices = {home, remote};
    j.config.nodes = 2;
    return j;
}

/** Route record sending routed request @p ruid to @p node. */
EventRecord
routeRecord(uint64_t ruid, int node, int shots)
{
    EventRecord r;
    r.kind = EventKind::Route;
    r.ruid = ruid;
    r.node = node;
    r.shots = shots;
    r.params = {0.5};
    return r;
}

/** Full consistent shard lifecycle stamped onto @p node. */
void
recordRoutedLifecycle(EventJournal &j, int node, uint64_t ruid,
                      uint64_t jobId, uint64_t uid,
                      const serve::ShardResult &s)
{
    EventRecord a = admitRecord(jobId, s.shots);
    a.node = node;
    a.ruid = ruid;
    j.record(a);
    EventRecord d;
    d.kind = EventKind::Dispatch;
    d.workUid = uid;
    d.seq = 0;
    d.member = s.member;
    d.shots = s.shots;
    d.pCorrect = s.pCorrect;
    d.node = node;
    j.record(d);
    EventRecord done;
    done.kind = EventKind::ShardDone;
    done.tH = s.completeH;
    done.workUid = uid;
    done.seq = 0;
    done.member = s.member;
    done.shots = s.shots;
    done.energy = s.energy;
    done.variance = s.variance;
    done.pCorrect = s.pCorrect;
    done.circuits = s.circuitsRun;
    done.doneH = s.completeH;
    done.node = node;
    j.record(done);
    EventRecord fin = consistentFinalize(jobId, uid, s);
    fin.node = node;
    j.record(fin);
}

TEST(InvariantChecker, FlagsDoubleRoutedWork)
{
    // One routed request, one Route record — but TWO admissions. Both
    // jobs execute and finalize consistently on their node, so only
    // the exactly-once routing guarantee is broken.
    EventJournal j = routedJournalScaffold();
    j.record(routeRecord(1, 0, 128));
    serve::ShardResult s1 = plainShard();
    recordRoutedLifecycle(j, 0, 1, 1, 5, s1);
    serve::ShardResult s2 = plainShard();
    s2.completeH = 0.7; // keeps node 0's loop-event order monotone
    recordRoutedLifecycle(j, 0, 1, 2, 6, s2);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "routed-exactly-once");
}

TEST(InvariantChecker, FlagsForwardWithoutRejection)
{
    // The router forwarded a request its home node never rejected:
    // the Forward record has no preceding Reject on its from-node.
    // The forward target's admission and execution are themselves
    // consistent, so only I14 fires.
    EventJournal j = routedJournalScaffold();
    j.record(routeRecord(1, 0, 128));
    EventRecord fwd;
    fwd.kind = EventKind::Forward;
    fwd.ruid = 1;
    fwd.fromNode = 0;
    fwd.node = 1;
    fwd.retryAfterS = 5.0;
    j.record(fwd);
    serve::ShardResult s = plainShard();
    recordRoutedLifecycle(j, 1, 1, (uint64_t(1) << 32) + 1,
                          (uint64_t(1) << 32) + 5, s);

    std::vector<Violation> v = InvariantChecker::check(j);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].invariant, "forward-only-on-rejection");
}

// ---------------------------------------------------------------------------
// Member depth decay (shard-resolution events, not intake resets)
// ---------------------------------------------------------------------------

TEST(ServiceNode, MemberDepthsDecayToZeroAfterDrain)
{
    serve::ServiceOptions o;
    o.seed = 11;
    o.scheduler.minShardShots = 32;
    serve::ServiceNode node({deviceByName("ibmq_bogota"),
                             deviceByName("ibmq_manila"),
                             deviceByName("ibmq_quito"),
                             deviceByName("ibmq_lima")},
                            o);
    VqaProblem p = makeHeisenbergVqe();
    serve::WorkloadId wl =
        node.registerWorkload(p.ansatz, p.hamiltonian);

    serve::JobRequest r;
    r.workload = wl;
    r.shots = 4096;
    for (int t = 0; t < 4; ++t) {
        r.tenantId = t;
        r.params = p.initialParams;
        r.params[0] += 0.1 * t;
        ASSERT_TRUE(node.submit(r).admitted());
    }
    // Submission plans nothing: depths only move once shards dispatch.
    for (std::size_t m = 0; m < node.numMembers(); ++m)
        EXPECT_EQ(node.memberQueueDepth(m), 0);

    // A mid-run kill forces requeues: extra dispatches on survivors,
    // failure timeouts on the victim — all must decay back to zero.
    node.failMemberAt(0, 2.0 / 3600.0);
    TaskPool pool(2);
    std::vector<serve::JobOutcome> out = node.drain(&pool);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_GT(node.counters().shardsRequeued, 0u);
    for (std::size_t m = 0; m < node.numMembers(); ++m)
        EXPECT_EQ(node.memberQueueDepth(m), 0);

    // And a second batch starts from those zeros, not stale backlog.
    r.tenantId = 0;
    r.params = p.initialParams;
    r.params[0] += 9.0;
    r.submitH = out.back().completeH + 0.01;
    ASSERT_TRUE(node.submit(r).admitted());
    ASSERT_EQ(node.drain(&pool).size(), 1u);
    for (std::size_t m = 0; m < node.numMembers(); ++m)
        EXPECT_EQ(node.memberQueueDepth(m), 0);
}

} // namespace
} // namespace eqc
