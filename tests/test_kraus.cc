#include <gtest/gtest.h>

#include <cmath>

#include "quantum/kraus.h"

namespace eqc {
namespace {

TEST(Kraus, DepolarizingIsCPTP)
{
    for (double l : {0.0, 0.01, 0.2, 1.0})
        EXPECT_TRUE(depolarizing1q(l).isCPTP()) << l;
    for (double l : {0.0, 0.01, 0.2, 1.0})
        EXPECT_TRUE(depolarizing2q(l).isCPTP()) << l;
}

TEST(Kraus, DampingChannelsAreCPTP)
{
    for (double g : {0.0, 0.1, 0.5, 1.0}) {
        EXPECT_TRUE(amplitudeDamping(g).isCPTP()) << g;
        EXPECT_TRUE(phaseDamping(g).isCPTP()) << g;
    }
}

TEST(Kraus, ThermalRelaxationIsCPTP)
{
    EXPECT_TRUE(thermalRelaxation(100.0, 80.0, 0.1).isCPTP());
    EXPECT_TRUE(thermalRelaxation(50.0, 100.0, 1.0).isCPTP());
    // T2 > 2*T1 must be clamped, still CPTP.
    EXPECT_TRUE(thermalRelaxation(10.0, 50.0, 1.0).isCPTP());
}

TEST(Kraus, CompositionIsCPTP)
{
    KrausChannel c =
        amplitudeDamping(0.2).composeWith(phaseDamping(0.3));
    EXPECT_TRUE(c.isCPTP());
    EXPECT_EQ(c.arity, 1);
}

TEST(Kraus, ZeroNoiseIsIdentityChannel)
{
    KrausChannel c = depolarizing1q(0.0);
    ASSERT_EQ(c.ops.size(), 1u);
    EXPECT_LT(c.ops[0].distance(CMatrix::identity(2)), 1e-12);
}

TEST(Kraus, ReadoutErrorMixesDistribution)
{
    std::vector<double> p = {1.0, 0.0}; // 1 qubit, certainly |0>
    applyReadoutError(p, 0, {0.02, 0.05});
    EXPECT_NEAR(p[0], 0.98, 1e-12);
    EXPECT_NEAR(p[1], 0.02, 1e-12);

    std::vector<double> q = {0.0, 1.0};
    applyReadoutError(q, 0, {0.02, 0.05});
    EXPECT_NEAR(q[0], 0.05, 1e-12);
    EXPECT_NEAR(q[1], 0.95, 1e-12);
}

TEST(Kraus, ReadoutErrorPreservesTotalProbability)
{
    std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
    applyReadoutError(p, 0, {0.03, 0.07});
    applyReadoutError(p, 1, {0.05, 0.01});
    double total = 0;
    for (double v : p)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Kraus, ReadoutErrorTargetsCorrectQubit)
{
    // State |01> (qubit0=1, qubit1=0); flip error only on qubit 1.
    std::vector<double> p = {0.0, 1.0, 0.0, 0.0};
    applyReadoutError(p, 1, {0.5, 0.0});
    EXPECT_NEAR(p[1], 0.5, 1e-12);
    EXPECT_NEAR(p[3], 0.5, 1e-12);
}

} // namespace
} // namespace eqc
