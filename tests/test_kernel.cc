/**
 * @file
 * Randomized equivalence tests for the fast simulation kernels against
 * the reference implementation (detail::applyOperatorKernel), plus
 * bit-determinism of block-parallel apply across task-pool sizes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/rng.h"
#include "common/task_pool.h"
#include "quantum/density_matrix.h"
#include "quantum/gates.h"
#include "quantum/kernel.h"
#include "quantum/kernel_batched.h"
#include "quantum/kraus.h"
#include "quantum/simd_dispatch.h"

namespace eqc {
namespace {

CVector
randomState(uint64_t dim, uint64_t seed)
{
    Rng rng(seed);
    CVector v(dim);
    for (uint64_t i = 0; i < dim; ++i)
        v[i] = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return v;
}

CMatrix
randomMatrix(std::size_t sub, uint64_t seed)
{
    Rng rng(seed);
    CMatrix m(sub, sub);
    for (std::size_t r = 0; r < sub; ++r)
        for (std::size_t c = 0; c < sub; ++c)
            m(r, c) =
                Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

void
expectClose(const CVector &a, const CVector &b, double tol = 1e-10)
{
    ASSERT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    EXPECT_LE(worst, tol);
}

/** Entries of @p m flattened row-major. */
std::vector<Complex>
flat(const CMatrix &m)
{
    std::vector<Complex> out;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out.push_back(m(r, c));
    return out;
}

/** Reference two-bank application of U rho U^dagger on vectorized rho. */
void
superopReference(CVector &rho, int n, const CMatrix &u,
                 std::vector<int> qubits)
{
    const uint64_t full = uint64_t{1} << (2 * n);
    detail::applyOperatorKernel(rho, full, u, qubits);
    for (int &q : qubits)
        q += n;
    detail::applyOperatorKernel(rho, full, u.conjugate(), qubits);
}

/** Reference Kraus application: sum over copy-and-apply per operator. */
CVector
channelReference(const CVector &rho, int n, const KrausChannel &ch,
                 const std::vector<int> &qubits)
{
    CVector acc(rho.size(), Complex(0, 0));
    for (const CMatrix &k : ch.ops) {
        CVector tmp = rho;
        superopReference(tmp, n, k, qubits);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += tmp[i];
    }
    return acc;
}

TEST(Kernel, Gate1MatchesReference)
{
    const int n = 6;
    const uint64_t dim = uint64_t{1} << n;
    for (int q = 0; q < n; ++q) {
        CMatrix u = randomMatrix(2, 11 + q);
        CVector ref = randomState(dim, 99 + q);
        CVector fast = ref;
        detail::applyOperatorKernel(ref, dim, u, {q});
        detail::applyGate1(fast.data(), dim, flat(u).data(), q, nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, Diag1MatchesReference)
{
    const int n = 6;
    const uint64_t dim = uint64_t{1} << n;
    for (int q = 0; q < n; ++q) {
        CMatrix u(2, 2);
        Rng rng(31 + q);
        u(0, 0) = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        u(1, 1) = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        CVector ref = randomState(dim, 7 + q);
        CVector fast = ref;
        detail::applyOperatorKernel(ref, dim, u, {q});
        detail::applyDiag1(fast.data(), dim, u(0, 0), u(1, 1), q,
                           nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, PermPhase1MatchesReference)
{
    const int n = 5;
    const uint64_t dim = uint64_t{1} << n;
    // Anti-diagonal with non-unit phases (a Y-like gate).
    CMatrix u(2, 2);
    u(0, 1) = Complex(0.0, -1.0);
    u(1, 0) = Complex(0.5, 0.5);
    detail::PermPhase pp;
    ASSERT_TRUE(detail::isPermPhase(flat(u).data(), 2, pp));
    EXPECT_FALSE(pp.unitPhases);
    EXPECT_EQ(pp.perm[0], 1);
    EXPECT_EQ(pp.perm[1], 0);
    for (int q = 0; q < n; ++q) {
        CVector ref = randomState(dim, 55 + q);
        CVector fast = ref;
        detail::applyOperatorKernel(ref, dim, u, {q});
        detail::applyPermPhase1(fast.data(), dim, pp, q, nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, Gate2MatchesReferenceBothQubitOrders)
{
    const int n = 6;
    const uint64_t dim = uint64_t{1} << n;
    CMatrix u = randomMatrix(4, 17);
    for (auto [a, b] : {std::pair<int, int>{0, 3}, {3, 0}, {2, 5},
                        {4, 1}, {5, 4}}) {
        CVector ref = randomState(dim, 3 * a + b);
        CVector fast = ref;
        detail::applyOperatorKernel(ref, dim, u, {a, b});
        detail::applyGate2(fast.data(), dim, flat(u).data(), a, b,
                           nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, Diag2MatchesReference)
{
    const int n = 6;
    const uint64_t dim = uint64_t{1} << n;
    CMatrix u(4, 4);
    Rng rng(47);
    for (int j = 0; j < 4; ++j)
        u(j, j) = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const Complex d[4] = {u(0, 0), u(1, 1), u(2, 2), u(3, 3)};
    for (auto [a, b] : {std::pair<int, int>{0, 1}, {4, 2}, {3, 5},
                        {5, 0}}) {
        CVector ref = randomState(dim, 9 * a + b);
        CVector fast = ref;
        detail::applyOperatorKernel(ref, dim, u, {a, b});
        detail::applyDiag2(fast.data(), dim, d, a, b, nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, ClassifyGateDispatchesCorrectly)
{
    Complex d[4];
    detail::PermPhase pp;
    const std::vector<double> theta = {0.7};
    CMatrix rz = gateMatrix(GateType::RZ, theta);
    EXPECT_TRUE(detail::classifyGate(flat(rz).data(), 2, d, pp) ==
                detail::GateKind::Diagonal);
    EXPECT_EQ(d[0], rz(0, 0));
    EXPECT_EQ(d[1], rz(1, 1));
    CMatrix x = gateMatrix(GateType::X);
    EXPECT_TRUE(detail::classifyGate(flat(x).data(), 2, d, pp) ==
                detail::GateKind::PermPhase);
    CMatrix h = gateMatrix(GateType::H);
    EXPECT_TRUE(detail::classifyGate(flat(h).data(), 2, d, pp) ==
                detail::GateKind::General);
    CMatrix cx = gateMatrix(GateType::CX);
    EXPECT_TRUE(detail::classifyGate(flat(cx).data(), 4, d, pp) ==
                detail::GateKind::PermPhase);
    CMatrix rzz = gateMatrix(GateType::RZZ, theta);
    EXPECT_TRUE(detail::classifyGate(flat(rzz).data(), 4, d, pp) ==
                detail::GateKind::Diagonal);
}

TEST(Kernel, PermPhase2MatchesReferenceForCxAndSwap)
{
    const int n = 5;
    const uint64_t dim = uint64_t{1} << n;
    for (GateType t : {GateType::CX, GateType::SWAP}) {
        CMatrix u = gateMatrix(t);
        detail::PermPhase pp;
        ASSERT_TRUE(detail::isPermPhase(flat(u).data(), 4, pp));
        EXPECT_TRUE(pp.unitPhases);
        for (auto [a, b] : {std::pair<int, int>{0, 1}, {3, 1}, {2, 4}}) {
            CVector ref = randomState(dim, 77 + a + 5 * b);
            CVector fast = ref;
            detail::applyOperatorKernel(ref, dim, u, {a, b});
            detail::applyPermPhase2(fast.data(), dim, pp, a, b, nullptr);
            expectClose(ref, fast);
        }
    }
}

TEST(Kernel, GateKMatchesReference)
{
    const int n = 6;
    const uint64_t dim = uint64_t{1} << n;
    CMatrix u = randomMatrix(8, 23);
    const int qubits[3] = {4, 0, 2};
    CVector ref = randomState(dim, 41);
    CVector fast = ref;
    detail::applyOperatorKernel(ref, dim, u, {4, 0, 2});
    detail::KernelScratch scratch;
    detail::applyGateK(fast.data(), dim, u, qubits, 3, scratch);
    expectClose(ref, fast);
    // Scratch is reusable across differing calls.
    const int qubits2[2] = {5, 1};
    CMatrix u2 = randomMatrix(4, 29);
    detail::applyOperatorKernel(ref, dim, u2, {5, 1});
    detail::applyGateK(fast.data(), dim, u2, qubits2, 2, scratch);
    expectClose(ref, fast);
}

TEST(Kernel, FusedSuperop1MatchesTwoPassReference)
{
    const int n = 4;
    const uint64_t full = uint64_t{1} << (2 * n);
    CMatrix u = randomMatrix(2, 61);
    for (int q = 0; q < n; ++q) {
        CVector ref = randomState(full, 13 + q);
        CVector fast = ref;
        superopReference(ref, n, u, {q});
        detail::applySuperop1(fast.data(), n, flat(u).data(), q, nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, FusedSuperop2MatchesTwoPassReference)
{
    const int n = 4;
    const uint64_t full = uint64_t{1} << (2 * n);
    CMatrix u = randomMatrix(4, 67);
    for (auto [a, b] : {std::pair<int, int>{0, 1}, {2, 0}, {3, 1}}) {
        CVector ref = randomState(full, 19 + a + 7 * b);
        CVector fast = ref;
        superopReference(ref, n, u, {a, b});
        detail::applySuperop2(fast.data(), n, flat(u).data(), a, b,
                              nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, FusedSuperopDiagAndPermMatchReference)
{
    const int n = 4;
    const uint64_t full = uint64_t{1} << (2 * n);
    // Diagonal: RZ; permutation: X (unit phases) on the superoperator.
    CMatrix rz = gateMatrix(GateType::RZ, {0.83});
    CVector ref = randomState(full, 83);
    CVector fast = ref;
    superopReference(ref, n, rz, {2});
    const Complex d[2] = {rz(0, 0), rz(1, 1)};
    detail::applySuperopDiag1(fast.data(), n, d, 2, nullptr);
    expectClose(ref, fast);

    CMatrix x = gateMatrix(GateType::X);
    detail::PermPhase pp;
    ASSERT_TRUE(detail::isPermPhase(flat(x).data(), 2, pp));
    superopReference(ref, n, x, {1});
    detail::applySuperopPerm1(fast.data(), n, pp, 1, nullptr);
    expectClose(ref, fast);

    CMatrix cx = gateMatrix(GateType::CX);
    detail::PermPhase pp2;
    ASSERT_TRUE(detail::isPermPhase(flat(cx).data(), 4, pp2));
    superopReference(ref, n, cx, {3, 0});
    detail::applySuperopPerm2(fast.data(), n, pp2, 3, 0, nullptr);
    expectClose(ref, fast);

    CMatrix rzz = gateMatrix(GateType::RZZ, {1.21});
    const Complex d4[4] = {rzz(0, 0), rzz(1, 1), rzz(2, 2), rzz(3, 3)};
    superopReference(ref, n, rzz, {1, 2});
    detail::applySuperopDiag2(fast.data(), n, d4, 1, 2, nullptr);
    expectClose(ref, fast);
}

TEST(Kernel, ChannelSuperopMatrixMatchesReference)
{
    const int n = 3;
    const uint64_t full = uint64_t{1} << (2 * n);
    // 1q channel superoperator applies as a 2-"qubit" gate over the
    // ket and bra bit positions.
    for (const KrausChannel &ch :
         {depolarizing1q(0.13), amplitudeDamping(0.21),
          thermalRelaxation(80.0, 60.0, 1.5)}) {
        CVector state = randomState(full, 101 + ch.ops.size());
        CVector ref = channelReference(state, n, ch, {1});
        CVector fast = state;
        detail::applyGate2(fast.data(), full, ch.superopMatrix().data(),
                           1, 1 + n, nullptr);
        expectClose(ref, fast);
    }

    KrausChannel dep2 = depolarizing2q(0.04);
    CVector state = randomState(full, 211);
    for (auto [a, b] : {std::pair<int, int>{0, 2}, {2, 0}, {1, 2}}) {
        CVector ref = channelReference(state, n, dep2, {a, b});
        CVector fast = state;
        detail::applySuperopMat2(fast.data(), n,
                                 dep2.superopMatrix().data(), a, b,
                                 nullptr);
        expectClose(ref, fast);
    }
}

TEST(Kernel, GateEntriesMatchesGateMatrixForAllGates)
{
    const std::vector<double> angles = {0.91, -0.37, 2.13};
    for (GateType t :
         {GateType::ID, GateType::X, GateType::Y, GateType::Z,
          GateType::H, GateType::S, GateType::SDG, GateType::T,
          GateType::TDG, GateType::SX, GateType::RX, GateType::RY,
          GateType::RZ, GateType::U3, GateType::CX, GateType::CZ,
          GateType::SWAP, GateType::RZZ}) {
        std::vector<double> ps(angles.begin(),
                               angles.begin() + gateParamCount(t));
        CMatrix m = gateMatrix(t, ps);
        Complex entries[16];
        int sub = gateEntries(t, ps.data(), entries);
        ASSERT_EQ(static_cast<std::size_t>(sub), m.rows()) << gateName(t);
        if (isDiagonalGate(t)) {
            for (int j = 0; j < sub; ++j)
                EXPECT_EQ(entries[j], m(j, j)) << gateName(t);
        } else {
            for (int r = 0; r < sub; ++r)
                for (int c = 0; c < sub; ++c)
                    EXPECT_EQ(entries[r * sub + c], m(r, c))
                        << gateName(t);
        }
    }
}

TEST(Kernel, BlockParallelApplyIsBitIdenticalAcrossPoolSizes)
{
    // n = 9 density-matrix bank: 4^9 / 4 = 65536 blocks, comfortably
    // above the parallel threshold, so pools with >1 thread really
    // shard. Disjoint blocks must make results bit-identical.
    const int n = 9;
    const uint64_t full = uint64_t{1} << (2 * n);
    const CVector init = randomState(full, 307);
    CMatrix u1 = randomMatrix(2, 311);
    CMatrix u2 = randomMatrix(4, 313);
    KrausChannel dep2 = depolarizing2q(0.03);

    CVector results[3];
    int poolSizes[3] = {1, 2, 4};
    for (int p = 0; p < 3; ++p) {
        TaskPool pool(poolSizes[p]);
        CVector v = init;
        detail::applySuperop1(v.data(), n, flat(u1).data(), 3, &pool);
        detail::applySuperop2(v.data(), n, flat(u2).data(), 1, 6, &pool);
        detail::applySuperopMat2(v.data(), n,
                                 dep2.superopMatrix().data(), 2, 7,
                                 &pool);
        detail::applyDiag1(v.data(), full, Complex(0.3, 0.4),
                           Complex(0.9, -0.1), 5, &pool);
        results[p] = std::move(v);
    }
    for (int p = 1; p < 3; ++p) {
        bool identical = results[0].size() == results[p].size();
        for (std::size_t i = 0; identical && i < results[0].size(); ++i)
            identical = results[0][i] == results[p][i];
        EXPECT_TRUE(identical) << "pool size " << poolSizes[p];
    }
}

/**
 * Run @p apply twice on the same random state — dispatched, then with
 * the SIMD kill switch forcing the scalar path — and require bitwise
 * equality. On builds/machines without the AVX2 variants both runs are
 * scalar and the check is vacuous (still green).
 */
template <typename Fn>
void
expectSimdMatchesScalar(uint64_t dim, uint64_t seed, Fn &&apply)
{
    CVector fast = randomState(dim, seed);
    CVector scalar = fast;
    apply(fast);
    detail::simdDispatchForcedOff() = true;
    apply(scalar);
    detail::simdDispatchForcedOff() = false;
    bool identical = true;
    for (std::size_t i = 0; identical && i < fast.size(); ++i)
        identical = fast[i] == scalar[i];
    EXPECT_TRUE(identical);
}

TEST(Kernel, SimdGate2BitIdenticalToScalar)
{
    const uint64_t dim = uint64_t{1} << 10;
    CMatrix u = randomMatrix(4, 401);
    // Includes qubit-0/1 pairs: short anchor runs take the scalar
    // fallback inside the dispatched build, which must also match.
    for (auto [a, b] : {std::pair<int, int>{2, 7}, {0, 3}, {5, 1},
                        {8, 9}, {9, 2}})
        expectSimdMatchesScalar(dim, 403 + a + 11 * b, [&](CVector &v) {
            detail::applyGate2(v.data(), dim, flat(u).data(), a, b,
                               nullptr);
        });
}

TEST(Kernel, SimdSuperopsBitIdenticalToScalar)
{
    const int n = 5;
    const uint64_t full = uint64_t{1} << (2 * n);
    CMatrix u1 = randomMatrix(2, 419);
    CMatrix u2 = randomMatrix(4, 421);
    const Complex d2[2] = {Complex(0.6, 0.8), Complex(-0.8, 0.6)};
    const Complex d4[4] = {Complex(1, 0), Complex(0.6, 0.8),
                           Complex(-1, 0), Complex(0.8, -0.6)};
    KrausChannel ch = thermalRelaxation(80.0, 60.0, 1.5);
    for (int q = 0; q < n; ++q) {
        expectSimdMatchesScalar(full, 431 + q, [&](CVector &v) {
            detail::applySuperop1(v.data(), n, flat(u1).data(), q,
                                  nullptr);
        });
        expectSimdMatchesScalar(full, 433 + q, [&](CVector &v) {
            detail::applySuperopDiag1(v.data(), n, d2, q, nullptr);
        });
        expectSimdMatchesScalar(full, 439 + q, [&](CVector &v) {
            detail::applySuperopMat1(v.data(), n,
                                     ch.superopMatrix().data(), q,
                                     nullptr);
        });
    }
    for (auto [a, b] :
         {std::pair<int, int>{0, 1}, {2, 4}, {3, 0}, {1, 3}}) {
        expectSimdMatchesScalar(full, 443 + a + 7 * b, [&](CVector &v) {
            detail::applySuperop2(v.data(), n, flat(u2).data(), a, b,
                                  nullptr);
        });
        expectSimdMatchesScalar(full, 449 + a + 7 * b, [&](CVector &v) {
            detail::applySuperopDiag2(v.data(), n, d4, a, b, nullptr);
        });
    }
}

TEST(Kernel, SimdDepolThermal2qBitIdenticalToScalar)
{
    const int n = 5;
    CMatrix u = randomMatrix(4, 457);
    for (auto [a, b] :
         {std::pair<int, int>{2, 4}, {0, 3}, {1, 0}, {3, 2}}) {
        DensityMatrix fast(n);
        DensityMatrix scalar(n);
        fast.applyGate2(flat(u).data(), a, b);
        scalar.applyGate2(flat(u).data(), a, b);
        fast.applyDepolThermal2q(0.01, a, 0.002, 0.998, b, 0.003,
                                 0.997);
        detail::simdDispatchForcedOff() = true;
        scalar.applyDepolThermal2q(0.01, a, 0.002, 0.998, b, 0.003,
                                   0.997);
        detail::simdDispatchForcedOff() = false;
        bool identical = true;
        for (uint64_t r = 0; identical && r < fast.dim(); ++r)
            for (uint64_t c = 0; identical && c < fast.dim(); ++c)
                identical = fast.element(r, c) == scalar.element(r, c);
        EXPECT_TRUE(identical);
    }
}

TEST(Kernel, BatchedSweepBitIdenticalToSequentialAcrossPools)
{
    // n = 9: the shared-gate block counts clear the parallel threshold,
    // so pools with >1 thread really shard the batched kernels. Every
    // member's batched state must match its own sequential
    // DensityMatrix replay bitwise, for every pool size.
    const int n = 9;
    const int k = 3;
    CMatrix u1 = randomMatrix(2, 461);
    CMatrix u2 = randomMatrix(4, 463);
    const Complex d4[4] = {Complex(1, 0), Complex(0.6, 0.8),
                           Complex(-1, 0), Complex(0.8, -0.6)};

    // Per-member operands: channel superops, thermal factors, and a
    // per-member ZZ-phased CX (member 0 keeps unit phases to exercise
    // the copy path).
    std::vector<Complex> sBuf(16 * k);
    double gamma[k], coh[k], lam[k], gB[k], cB[k];
    std::vector<Complex> ppMats(16 * k);
    detail::PermPhase pp[k];
    CMatrix cx = gateMatrix(GateType::CX);
    for (int m = 0; m < k; ++m) {
        KrausChannel ch = depolarizing1q(0.05 + 0.04 * m);
        std::copy_n(ch.superopMatrix().data(), 16, sBuf.begin() + 16 * m);
        gamma[m] = 0.001 + 0.001 * m;
        coh[m] = 0.999 - 0.001 * m;
        lam[m] = 0.01 + 0.005 * m;
        gB[m] = 0.002 + 0.001 * m;
        cB[m] = 0.998 - 0.001 * m;
        const double th = m == 0 ? 0.0 : 0.1 * m;
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                ppMats[16 * m + r * 4 + c] =
                    std::polar(1.0, th * r) * cx(r, c);
        Complex diag[4];
        ASSERT_EQ(detail::classifyGate(ppMats.data() + 16 * m, 4, diag,
                                       pp[m]),
                  detail::GateKind::PermPhase);
    }

    std::vector<DensityMatrix> seq;
    for (int m = 0; m < k; ++m) {
        seq.emplace_back(n);
        DensityMatrix &dm = seq.back();
        dm.applyGate1(flat(u1).data(), 4);
        dm.applyGate2(flat(u2).data(), 2, 7);
        dm.applyDiag2(d4, 1, 6);
        dm.applyChannelSuperop1(sBuf.data() + 16 * m, 3);
        dm.applyThermalRelaxation(5, gamma[m], coh[m]);
        dm.applyDepolThermal2q(lam[m], 0, gamma[m], coh[m], 8, gB[m],
                               cB[m]);
        dm.applyGate2(ppMats.data() + 16 * m, 2, 7);
    }

    for (int poolSize : {1, 2, 4}) {
        TaskPool pool(poolSize);
        detail::BatchedDensityMatrix bdm(n, k);
        bdm.setTaskPool(&pool);
        bdm.applyGate1(flat(u1).data(), 4);
        bdm.applyGate2(flat(u2).data(), 2, 7);
        bdm.applyDiag2(d4, 1, 6);
        bdm.applyChannelSuperop1PerMember(sBuf.data(), 3);
        bdm.applyThermalRelaxationPerMember(gamma, coh, 5);
        bdm.applyDepolThermal2qPerMember(lam, 0, gamma, coh, 8, gB, cB);
        bdm.applyPermPhase2PerMember(pp, 2, 7);
        for (int m = 0; m < k; ++m) {
            bool identical = true;
            for (uint64_t r = 0; identical && r < bdm.dim(); ++r)
                for (uint64_t c = 0; identical && c < bdm.dim(); ++c)
                    identical =
                        bdm.element(m, r, c) == seq[m].element(r, c);
            EXPECT_TRUE(identical)
                << "member " << m << " pool " << poolSize;
        }
    }
}

TEST(TaskPool, ParallelForCoversRangeExactlyOnce)
{
    TaskPool pool(4);
    const uint64_t count = 100001;
    std::vector<int> hits(count, 0);
    pool.parallelFor(0, count, [&](uint64_t b, uint64_t e) {
        for (uint64_t i = b; i < e; ++i)
            ++hits[i];
    });
    bool allOnce = true;
    for (uint64_t i = 0; i < count; ++i)
        allOnce = allOnce && hits[i] == 1;
    EXPECT_TRUE(allOnce);

    // Empty and tiny ranges run inline without deadlock.
    pool.parallelFor(5, 5, [&](uint64_t, uint64_t) {
        EXPECT_TRUE(false) << "empty range must not invoke the body";
    });
    int tiny = 0;
    pool.parallelFor(0, 2, [&](uint64_t b, uint64_t e) {
        tiny += static_cast<int>(e - b);
    });
    EXPECT_EQ(tiny, 2);
}

TEST(TaskPool, ParallelJobsFansOutSmallCounts)
{
    // Unlike parallelFor, parallelJobs parallelizes even when the job
    // count is below the participant count — and still covers every
    // index exactly once, including count == 0 and count == 1.
    TaskPool pool(4);
    for (uint64_t count : {uint64_t{0}, uint64_t{1}, uint64_t{3},
                           uint64_t{17}}) {
        std::vector<int> hits(count, 0);
        pool.parallelJobs(count, [&](uint64_t b, uint64_t e) {
            for (uint64_t i = b; i < e; ++i)
                ++hits[i];
        });
        bool allOnce = true;
        for (uint64_t i = 0; i < count; ++i)
            allOnce = allOnce && hits[i] == 1;
        EXPECT_TRUE(allOnce) << "count " << count;
    }
}

TEST(TaskPool, AsyncJobsRunAndDrain)
{
    TaskPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i)
        pool.async([&done] { ++done; });
    pool.drainAsync();
    EXPECT_EQ(done.load(), 20);

    // Async jobs may themselves use the pool's parallel-for without
    // deadlocking (a busy pool degrades to inline execution).
    std::atomic<uint64_t> covered{0};
    pool.async([&] {
        pool.parallelFor(0, 10000, [&](uint64_t b, uint64_t e) {
            covered += e - b;
        });
    });
    pool.drainAsync();
    EXPECT_EQ(covered.load(), uint64_t{10000});

    // A 1-thread pool has no resident workers: async runs inline.
    TaskPool serial(1);
    int ran = 0;
    serial.async([&ran] { ++ran; });
    EXPECT_EQ(ran, 1);
    serial.drainAsync();
}

TEST(TaskPool, NestedParallelForFallsBackInline)
{
    TaskPool pool(2);
    std::vector<int> hits(5000, 0);
    pool.parallelFor(0, 5000, [&](uint64_t b, uint64_t e) {
        // A nested call from inside a chunk body must not deadlock; it
        // degrades to inline execution on this thread's sub-range.
        pool.parallelFor(b, e, [&](uint64_t b2, uint64_t e2) {
            for (uint64_t i = b2; i < e2; ++i)
                ++hits[i];
        });
    });
    bool allOnce = true;
    for (int h : hits)
        allOnce = allOnce && h == 1;
    EXPECT_TRUE(allOnce);
}

} // namespace
} // namespace eqc
