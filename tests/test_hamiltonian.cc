#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/exact.h"
#include "hamiltonian/heisenberg.h"
#include "hamiltonian/maxcut.h"

namespace eqc {
namespace {

TEST(Heisenberg, TermCount)
{
    PauliSum h = heisenbergHamiltonian(4, squareLattice4(), 1.0, 1.0);
    // 4 edges x 3 couplings + 4 field terms.
    EXPECT_EQ(h.size(), 16u);
    PauliSum noField = heisenbergHamiltonian(4, squareLattice4(), 1.0,
                                             0.0);
    EXPECT_EQ(noField.size(), 12u);
}

TEST(Heisenberg, MatrixIsHermitian)
{
    PauliSum h = heisenbergHamiltonian(4, squareLattice4(), 1.0, 1.0);
    EXPECT_TRUE(h.matrix().isHermitian());
}

TEST(Heisenberg, TwoSiteGroundEnergy)
{
    // Two-spin XXX singlet: E0 of XX+YY+ZZ is -3 (Pauli units);
    // adding B*(Z1+Z2) does not lower the singlet.
    PauliSum h = heisenbergHamiltonian(2, {{0, 1}}, 1.0, 0.0);
    EXPECT_NEAR(minEigenvalue(h), -3.0, 1e-8);
}

TEST(Heisenberg, RingGroundEnergyMatchesDense)
{
    PauliSum h = heisenbergHamiltonian(4, squareLattice4(), 1.0, 1.0);
    double viaPower = minEigenvalue(h);
    // Reference: dense matrix diagonal dominance check via Rayleigh
    // quotients on all basis vectors only bounds, so instead verify
    // H v = lambda v residual for the power-iteration state by
    // re-deriving from the dense matrix trace bounds.
    CMatrix m = h.matrix();
    // lambda_min <= min diagonal element.
    double minDiag = 1e9;
    for (std::size_t i = 0; i < m.rows(); ++i)
        minDiag = std::min(minDiag, m(i, i).real());
    EXPECT_LE(viaPower, minDiag + 1e-9);
    // And must be >= -sum|coeff|.
    EXPECT_GE(viaPower, -h.coefficientNorm() - 1e-9);
}

TEST(Exact, ApplyPauliSumMatchesDense)
{
    PauliSum h(3);
    h.add(0.7, "XYZ");
    h.add(-1.2, "ZZI");
    h.add(0.3, "IIX");
    CMatrix m = h.matrix();
    CVector x(8);
    for (int i = 0; i < 8; ++i)
        x[i] = Complex(0.1 * i, -0.05 * i);
    CVector viaSparse = applyPauliSum(h, x);
    CVector viaDense = m.apply(x);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(std::abs(viaSparse[i] - viaDense[i]), 0.0, 1e-12);
}

TEST(Exact, MinMaxEigenvaluesOfZ)
{
    PauliSum h(1);
    h.add(1.0, "Z");
    EXPECT_NEAR(minEigenvalue(h), -1.0, 1e-9);
    EXPECT_NEAR(maxEigenvalue(h), 1.0, 1e-9);
}

TEST(Exact, IdentityOffsetShiftsSpectrum)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    h.add(-2.0, "II");
    EXPECT_NEAR(minEigenvalue(h), -3.0, 1e-9);
    EXPECT_NEAR(maxEigenvalue(h), -1.0, 1e-9);
}

TEST(MaxCut, RingInstanceBasics)
{
    MaxCutInstance inst = ringMaxCut4();
    EXPECT_EQ(inst.numNodes, 4);
    EXPECT_EQ(inst.edges.size(), 4u);
    // Alternating partition 0101 cuts all 4 edges.
    EXPECT_EQ(cutValue(inst, 0b0101), 4);
    EXPECT_EQ(cutValue(inst, 0b0000), 0);
    EXPECT_EQ(cutValue(inst, 0b0001), 2);
    EXPECT_EQ(bruteForceMaxCut(inst), 4);
}

TEST(MaxCut, HamiltonianGroundEqualsNegMaxCut)
{
    MaxCutInstance inst = ringMaxCut4();
    PauliSum h = maxcutHamiltonian(inst);
    EXPECT_NEAR(minEigenvalue(h),
                -static_cast<double>(bruteForceMaxCut(inst)), 1e-9);
}

TEST(MaxCut, HamiltonianDiagonalMatchesCutValues)
{
    MaxCutInstance inst = ringMaxCut4();
    PauliSum h = maxcutHamiltonian(inst);
    CMatrix m = h.matrix();
    for (uint64_t a = 0; a < 16; ++a)
        EXPECT_NEAR(m(a, a).real(), -cutValue(inst, a), 1e-12) << a;
}

TEST(MaxCut, PentagonOptimum)
{
    MaxCutInstance pent{5,
                        {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}};
    EXPECT_EQ(bruteForceMaxCut(pent), 4); // odd ring: n-1
    PauliSum h = maxcutHamiltonian(pent);
    EXPECT_NEAR(minEigenvalue(h), -4.0, 1e-8);
}

} // namespace
} // namespace eqc
