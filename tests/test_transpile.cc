#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.h"
#include "common/rng.h"
#include "quantum/pauli.h"
#include "transpile/transpiler.h"

namespace eqc {
namespace {

TEST(Layout, TrivialIsIdentity)
{
    Layout l = trivialLayout(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(l[i], i);
}

TEST(Layout, GreedyFindsZeroSwapChainOnLine)
{
    // The Fig. 8 ansatz uses a linear CNOT chain; on a line device the
    // greedy layout must embed it with zero routing cost.
    QuantumCircuit c = hardwareEfficientAnsatz(4);
    CouplingMap line = CouplingMap::line(5);
    Layout l = greedyLayout(c, line);
    EXPECT_EQ(layoutCost(c, line, l), 0.0);
}

TEST(Layout, GreedyFindsChainInTShape)
{
    // T-shape contains the path 0-1-3-4; a 4-qubit chain embeds freely.
    QuantumCircuit c = hardwareEfficientAnsatz(4);
    CouplingMap t = CouplingMap::tShape();
    Layout l = greedyLayout(c, t);
    EXPECT_EQ(layoutCost(c, t, l), 0.0);
}

TEST(Layout, GreedyBeatsTrivialOnHeavyHex)
{
    QuantumCircuit c = hardwareEfficientAnsatz(5);
    CouplingMap hh = CouplingMap::heavyHex27();
    Layout greedy = greedyLayout(c, hh);
    Layout trivial = trivialLayout(5);
    EXPECT_LE(layoutCost(c, hh, greedy), layoutCost(c, hh, trivial));
}

TEST(Router, AdjacentGateNeedsNoSwap)
{
    QuantumCircuit c(2, 0);
    c.cx(0, 1);
    CouplingMap line = CouplingMap::line(2);
    RoutingResult r = routeCircuit(c, line, trivialLayout(2));
    EXPECT_EQ(r.swapCount, 0);
    EXPECT_TRUE(respectsCoupling(r.routed, line));
}

TEST(Router, DistantGateInsertsSwaps)
{
    QuantumCircuit c(3, 0);
    c.cx(0, 2);
    CouplingMap line = CouplingMap::line(3);
    RoutingResult r = routeCircuit(c, line, trivialLayout(3));
    EXPECT_EQ(r.swapCount, 1);
    EXPECT_TRUE(respectsCoupling(r.routed, line));
    // Logical 0 moved to physical 1.
    EXPECT_EQ(r.finalMapping[0], 1);
}

TEST(Router, RoutedCircuitPreservesSemantics)
{
    // Compare routed circuit (with swaps) against the logical one by
    // tracking the final mapping.
    QuantumCircuit c(3, 0);
    c.h(0);
    c.cx(0, 2); // needs routing on a line
    CouplingMap line = CouplingMap::line(3);
    RoutingResult r = routeCircuit(c, line, trivialLayout(3));

    Statevector logical = simulateIdeal(c);
    Statevector routed = simulateIdeal(r.routed);
    // Expectation of Z on logical qubit q equals Z on finalMapping[q].
    for (int q = 0; q < 3; ++q) {
        PauliString pl(3), pr(3);
        pl.set(q, Pauli::Z);
        pr.set(r.finalMapping[q], Pauli::Z);
        EXPECT_NEAR(logical.expectation(pl), routed.expectation(pr),
                    1e-10);
    }
    // And the ZZ correlator between logical 0 and 2.
    PauliString zz(3), zzr(3);
    zz.set(0, Pauli::Z);
    zz.set(2, Pauli::Z);
    zzr.set(r.finalMapping[0], Pauli::Z);
    zzr.set(r.finalMapping[2], Pauli::Z);
    EXPECT_NEAR(logical.expectation(zz), routed.expectation(zzr), 1e-10);
}

TEST(Basis, DecompositionsMatchUnitaries)
{
    // Every non-basis 1q gate decomposes to an equivalent circuit.
    for (GateType t : {GateType::H, GateType::Y, GateType::Z, GateType::S,
                       GateType::SDG, GateType::T, GateType::TDG}) {
        QuantumCircuit c(1, 0);
        c.addGate(t, {0});
        QuantumCircuit d = decomposeToBasis(c);
        EXPECT_TRUE(isInBasis(d)) << gateName(t);
        // Compare action on two states (|0> and |+>) up to global phase.
        Statevector s1 = simulateIdeal(c);
        Statevector s2 = simulateIdeal(d);
        EXPECT_NEAR(std::abs(s1.inner(s2)), 1.0, 1e-10) << gateName(t);
    }
}

TEST(Basis, RotationsDecomposeForAllAngles)
{
    for (GateType t : {GateType::RX, GateType::RY}) {
        for (double angle : {-2.5, -0.7, 0.0, 0.3, 1.57, 3.14159, 5.9}) {
            QuantumCircuit c(1, 1);
            c.addGate(t, {0}, {ParamExpr::symbol(0)});
            c.h(0); // make the state sensitive to phases
            QuantumCircuit d = decomposeToBasis(c);
            EXPECT_TRUE(isInBasis(d));
            Statevector s1 = simulateIdeal(c, {angle});
            Statevector s2 = simulateIdeal(d, {angle});
            EXPECT_NEAR(std::abs(s1.inner(s2)), 1.0, 1e-9)
                << gateName(t) << " angle " << angle;
        }
    }
}

TEST(Basis, TwoQubitDecompositions)
{
    Rng rng(31);
    for (GateType t : {GateType::CZ, GateType::SWAP, GateType::RZZ}) {
        QuantumCircuit c(2, 1);
        c.ry(0, ParamExpr::constant(0.9));
        c.ry(1, ParamExpr::constant(-1.3));
        if (t == GateType::RZZ)
            c.addGate(t, {0, 1}, {ParamExpr::symbol(0)});
        else
            c.addGate(t, {0, 1});
        c.h(0);
        QuantumCircuit d = decomposeToBasis(c);
        EXPECT_TRUE(isInBasis(d)) << gateName(t);
        double angle = rng.uniform(-3.0, 3.0);
        Statevector s1 = simulateIdeal(c, {angle});
        Statevector s2 = simulateIdeal(d, {angle});
        EXPECT_NEAR(std::abs(s1.inner(s2)), 1.0, 1e-9) << gateName(t);
    }
}

TEST(Basis, SymbolicParametersSurviveTranspilation)
{
    QuantumCircuit c(1, 1);
    c.ry(0, ParamExpr::symbol(0));
    QuantumCircuit d = decomposeToBasis(c);
    // The decomposed circuit must still reference theta[0].
    EXPECT_FALSE(d.paramOccurrences(0).empty());
    // Binding different values must produce different states.
    Statevector a = simulateIdeal(d, {0.4});
    Statevector b = simulateIdeal(d, {2.0});
    EXPECT_LT(std::abs(a.inner(b)), 0.999);
}

TEST(Basis, RzMergePruning)
{
    QuantumCircuit c(1, 0);
    c.s(0);
    c.sdg(0); // S then S-dagger: RZ angles cancel entirely
    QuantumCircuit d = decomposeToBasis(c);
    EXPECT_EQ(d.ops().size(), 0u);
}

// Parameterized sweep over every catalog topology; needs real gtest
// (the bundled shim has no TEST_P support).
#ifndef EQC_MINIGTEST
class TranspileAllTopologies
    : public ::testing::TestWithParam<const char *>
{
  protected:
    CouplingMap
    mapFor(const std::string &name)
    {
        if (name == "line5")
            return CouplingMap::line(5);
        if (name == "tshape")
            return CouplingMap::tShape();
        if (name == "bowtie")
            return CouplingMap::bowtie();
        if (name == "hshape")
            return CouplingMap::hShape();
        if (name == "hh27")
            return CouplingMap::heavyHex27();
        return CouplingMap::heavyHex65();
    }
};

TEST_P(TranspileAllTopologies, AnsatzRespectsCouplingAndSemantics)
{
    CouplingMap map = mapFor(GetParam());
    QuantumCircuit logical = hardwareEfficientAnsatz(4);
    TranspiledCircuit t = transpile(logical, map);

    EXPECT_TRUE(respectsCoupling(t.physical, map));
    EXPECT_TRUE(isInBasis(t.physical));
    EXPECT_EQ(t.counts.measurements, 4);

    // Semantics: Z expectations on logical qubits must match through the
    // final mapping, on the compact circuit, for random parameters.
    Rng rng(hashLabel(GetParam()));
    std::vector<double> params(logical.numParams());
    for (double &p : params)
        p = rng.uniform(-kPi, kPi);
    Statevector ideal = simulateIdeal(logical, params);
    Statevector compact = simulateIdeal(t.compact, params);
    for (int q = 0; q < 4; ++q) {
        PauliString pl(4);
        pl.set(q, Pauli::Z);
        PauliString pc(t.compact.numQubits());
        pc.set(t.logicalToCompact[q], Pauli::Z);
        EXPECT_NEAR(ideal.expectation(pl), compact.expectation(pc), 1e-9)
            << "qubit " << q;
    }
}

TEST_P(TranspileAllTopologies, RandomCircuitsRespectCoupling)
{
    CouplingMap map = mapFor(GetParam());
    Rng rng(hashLabel(GetParam()) ^ 0x1234);
    for (int trial = 0; trial < 5; ++trial) {
        int n = rng.uniformInt(2, std::min(5, map.numQubits()));
        QuantumCircuit c(n, 0);
        for (int g = 0; g < 20; ++g) {
            if (rng.bernoulli(0.5) && n >= 2) {
                int a = rng.uniformInt(0, n - 1);
                int b = (a + 1 + rng.uniformInt(0, n - 2)) % n;
                c.cx(a, b);
            } else {
                c.ry(rng.uniformInt(0, n - 1),
                     ParamExpr::constant(rng.uniform(-3, 3)));
            }
        }
        c.measureAll();
        TranspiledCircuit t = transpile(c, map);
        EXPECT_TRUE(respectsCoupling(t.physical, map));
        EXPECT_TRUE(isInBasis(t.physical));
        EXPECT_EQ(t.counts.measurements, n);
        // Compact circuit uses no more qubits than the device.
        EXPECT_LE(t.compact.numQubits(), map.numQubits());
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TranspileAllTopologies,
                         ::testing::Values("line5", "tshape", "bowtie",
                                           "hshape", "hh27", "hh65"));
#endif // EQC_MINIGTEST

TEST(Transpiler, SwapCountGrowsWithSparsity)
{
    // An all-to-all interaction circuit should need more swaps on a line
    // than on the bowtie.
    QuantumCircuit c(4, 0);
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            c.cx(a, b);
    TranspiledCircuit onLine = transpile(c, CouplingMap::line(5));
    TranspiledCircuit onBowtie = transpile(c, CouplingMap::bowtie());
    EXPECT_GE(onLine.swapCount, onBowtie.swapCount);
}

TEST(Transpiler, MetricsPopulated)
{
    TranspiledCircuit t =
        transpile(hardwareEfficientAnsatz(4), CouplingMap::tShape());
    EXPECT_GT(t.counts.g1, 0);
    EXPECT_GT(t.counts.g2, 0);
    EXPECT_GT(t.criticalDepth, 0);
    EXPECT_GE(t.depth, t.criticalDepth);
    EXPECT_EQ(t.compactToPhysical.size(),
              static_cast<std::size_t>(t.compact.numQubits()));
}

} // namespace
} // namespace eqc
