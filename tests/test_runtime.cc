/**
 * @file
 * Tests of the eqc::Runtime engine API: registry error handling,
 * engine parity (deterministic "virtual" replay, "threaded" reaching a
 * comparable optimum), job queueing/fan-out, and streamed
 * TraceObserver telemetry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/runtime.h"
#include "device/catalog.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

std::vector<Device>
smallEnsemble()
{
    return {deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
            deviceByName("ibmq_quito")};
}

TEST(EngineRegistry, ListsBuiltInEngines)
{
    std::vector<std::string> names = Runtime::engineNames();
    EXPECT_TRUE(std::count(names.begin(), names.end(), "virtual") == 1);
    EXPECT_TRUE(std::count(names.begin(), names.end(), "threaded") == 1);
    EXPECT_TRUE(EngineRegistry::instance().has("virtual"));
    EXPECT_FALSE(EngineRegistry::instance().has("warp-drive"));
}

TEST(EngineRegistry, UnknownEngineFailsWithClearMessage)
{
    VqaProblem p = makeHeisenbergVqe();
    Runtime rt;
    EqcOptions opts;
    opts.engine = "warp-drive";
    EXPECT_THROW(rt.submit(p, smallEnsemble(), opts),
                 std::invalid_argument);
    // The message must name the bad engine and list the registered
    // ones, so a typo is a one-glance fix — no crash, no silent
    // fallback to a default engine.
    std::string message;
    try {
        rt.submit(p, smallEnsemble(), opts);
    } catch (const std::invalid_argument &e) {
        message = e.what();
    }
    EXPECT_NE(message.find("warp-drive"), std::string::npos);
    EXPECT_NE(message.find("virtual"), std::string::npos);
    EXPECT_NE(message.find("threaded"), std::string::npos);
    // And nothing ran: no job is pending in the runtime.
    EXPECT_EQ(rt.pendingJobs(), 0u);
}

TEST(EngineParity, VirtualEngineIsBitDeterministic)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 10;
    opts.seed = 42;
    opts.engine = "virtual";
    Runtime rt;
    EqcTrace a = rt.submit(p, smallEnsemble(), opts).take();
    EqcTrace b = rt.submit(p, smallEnsemble(), opts).take();
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.epochs[i].energyDevice,
                         b.epochs[i].energyDevice);
        EXPECT_DOUBLE_EQ(a.epochs[i].energyIdeal,
                         b.epochs[i].energyIdeal);
        EXPECT_DOUBLE_EQ(a.epochs[i].timeH, b.epochs[i].timeH);
    }
    ASSERT_EQ(a.finalParams.size(), b.finalParams.size());
    for (std::size_t i = 0; i < a.finalParams.size(); ++i)
        EXPECT_DOUBLE_EQ(a.finalParams[i], b.finalParams[i]);
    EXPECT_DOUBLE_EQ(a.totalHours, b.totalHours);
}

TEST(EngineParity, VirtualEngineInvariantAcrossFanoutThreads)
{
    // The virtual engine flushes gradient batches through a TaskPool;
    // per-job forked RNG streams and fixed reduction order must make
    // the trace bit-identical for every pool size.
    VqaProblem p = makeHeisenbergVqe();
    EqcTrace ref;
    for (int threads : {1, 2, 4}) {
        EqcOptions opts;
        opts.master.epochs = 8;
        opts.seed = 7;
        opts.engine = "virtual";
        opts.engineThreads = threads;
        Runtime rt;
        EqcTrace t = rt.submit(p, smallEnsemble(), opts).take();
        if (threads == 1) {
            ref = std::move(t);
            ASSERT_EQ(ref.epochs.size(), 8u);
            continue;
        }
        ASSERT_EQ(t.epochs.size(), ref.epochs.size())
            << "threads " << threads;
        for (std::size_t i = 0; i < ref.epochs.size(); ++i) {
            EXPECT_DOUBLE_EQ(t.epochs[i].energyDevice,
                             ref.epochs[i].energyDevice);
            EXPECT_DOUBLE_EQ(t.epochs[i].energyIdeal,
                             ref.epochs[i].energyIdeal);
            EXPECT_DOUBLE_EQ(t.epochs[i].timeH, ref.epochs[i].timeH);
        }
        ASSERT_EQ(t.finalParams.size(), ref.finalParams.size());
        for (std::size_t i = 0; i < ref.finalParams.size(); ++i)
            EXPECT_DOUBLE_EQ(t.finalParams[i], ref.finalParams[i]);
        EXPECT_DOUBLE_EQ(t.totalHours, ref.totalHours);
    }
}

TEST(EngineParity, ThreadedEngineMatchesVirtualWithinTolerance)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 20;
    opts.seed = 6;
    // Wall compute time counts against the virtual budget at this
    // aggressive scale, so lift the termination rule.
    opts.maxHours = 1e7;
    opts.hoursPerWallSecond = 3000.0;

    Runtime rt;
    opts.engine = "virtual";
    EqcTrace virt = rt.submit(p, smallEnsemble(), opts).take();
    opts.engine = "threaded";
    EqcTrace thr = rt.submit(p, smallEnsemble(), opts).take();

    ASSERT_EQ(virt.epochs.size(), 20u);
    ASSERT_EQ(thr.epochs.size(), 20u);
    // Same protocol, different deployment: both must descend to the
    // same neighborhood. Thread interleaving (and its measurement
    // noise) decides the exact figure, hence the loose band.
    double virtFinal = finalIdealEnergy(virt, 5);
    double thrFinal = finalIdealEnergy(thr, 5);
    EXPECT_LT(thr.epochs.back().energyIdeal,
              thr.epochs.front().energyIdeal + 0.5);
    EXPECT_NEAR(virtFinal, thrFinal, 1.5);
}

TEST(Runtime, QueuedJobsFanOutAcrossEngines)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 6;
    opts.seed = 3;

    Runtime rt;
    std::vector<JobHandle> jobs;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        EqcOptions o = opts;
        o.seed = seed;
        jobs.push_back(rt.submit(p, smallEnsemble(), o));
    }
    EXPECT_EQ(rt.pendingJobs(), 3u);
    for (const JobHandle &job : jobs)
        EXPECT_FALSE(job.done());
    rt.runAll();
    EXPECT_EQ(rt.pendingJobs(), 0u);
    for (JobHandle &job : jobs) {
        EXPECT_TRUE(job.done());
        EXPECT_EQ(job.engine(), std::string("virtual"));
        EXPECT_EQ(job.get().epochs.size(), 6u);
    }
    // Handles carry stable submission-order ids.
    EXPECT_EQ(jobs[0].id(), 0);
    EXPECT_EQ(jobs[2].id(), 2);
    // runAll must match the lazy path bit-for-bit (seed 3 == opts).
    EqcTrace lazy = rt.submit(p, smallEnsemble(), opts).take();
    const EqcTrace &pooled = jobs[2].get();
    ASSERT_EQ(lazy.epochs.size(), pooled.epochs.size());
    for (std::size_t i = 0; i < lazy.epochs.size(); ++i)
        EXPECT_DOUBLE_EQ(lazy.epochs[i].energyDevice,
                         pooled.epochs[i].energyDevice);
}

/** Counts streamed telemetry events as the run progresses. */
class CountingObserver : public TraceObserver
{
  public:
    void
    onResult(RunContext &, std::size_t, const GradientResult &,
             double weight) override
    {
        ++results;
        lastWeight = weight;
    }

    void
    onEpoch(RunContext &, EpochRecord &rec) override
    {
        ++epochs;
        lastEpochTimeH = rec.timeH;
    }

    void onFinish(RunContext &) override { ++finishes; }

    int results = 0;
    int epochs = 0;
    int finishes = 0;
    double lastWeight = 0.0;
    double lastEpochTimeH = 0.0;
};

TEST(Runtime, ObserversStreamTelemetry)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 5;
    opts.master.weightBounds = {0.5, 1.5};
    opts.seed = 9;

    CountingObserver counter;
    Runtime rt;
    EqcTrace trace =
        rt.submit(p, smallEnsemble(), opts, {&counter}).take();

    ASSERT_EQ(trace.epochs.size(), 5u);
    EXPECT_EQ(counter.epochs, 5);
    EXPECT_EQ(counter.finishes, 1);
    // One onResult per applied gradient; the built-in weight timeline
    // observer saw exactly the same stream.
    EXPECT_GT(counter.results, 0);
    EXPECT_EQ(static_cast<std::size_t>(counter.results),
              trace.weights.size());
    EXPECT_GE(counter.lastWeight, 0.5 - 1e-12);
    EXPECT_LE(counter.lastWeight, 1.5 + 1e-12);
    EXPECT_DOUBLE_EQ(counter.lastEpochTimeH,
                     trace.epochs.back().timeH);
}

TEST(Runtime, RecordingSwitchesComposeAsObservers)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 4;
    opts.seed = 5;
    opts.recordWeights = false;
    opts.recordIdealEnergy = false;
    Runtime rt;
    EqcTrace trace = rt.submit(p, smallEnsemble(), opts).take();
    EXPECT_TRUE(trace.weights.empty());
    for (const EpochRecord &rec : trace.epochs)
        EXPECT_DOUBLE_EQ(rec.energyIdeal, 0.0);
    // Core telemetry stays on: jobs-per-device is an always-installed
    // observer and staleness is copied from the master at finish —
    // neither is a recording switch.
    EXPECT_EQ(trace.jobsPerDevice.size(), 3u);
    EXPECT_GT(trace.staleness.count(), 0u);
}

// The deprecated free functions must stay exact aliases of the
// Runtime path while they live.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Runtime, LegacyWrapperMatchesRuntimeBitForBit)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 6;
    opts.seed = 13;
    EqcTrace legacy = runEqcVirtual(p, smallEnsemble(), opts);
    Runtime rt;
    EqcTrace viaRuntime = rt.submit(p, smallEnsemble(), opts).take();
    ASSERT_EQ(legacy.epochs.size(), viaRuntime.epochs.size());
    for (std::size_t i = 0; i < legacy.epochs.size(); ++i)
        EXPECT_DOUBLE_EQ(legacy.epochs[i].energyDevice,
                         viaRuntime.epochs[i].energyDevice);
    ASSERT_EQ(legacy.finalParams.size(), viaRuntime.finalParams.size());
    for (std::size_t i = 0; i < legacy.finalParams.size(); ++i)
        EXPECT_DOUBLE_EQ(legacy.finalParams[i],
                         viaRuntime.finalParams[i]);
}
#pragma GCC diagnostic pop

} // namespace
} // namespace eqc
