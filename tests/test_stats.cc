#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace eqc {
namespace {

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> yneg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> y = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonUncorrelatedNearZero)
{
    // Symmetric design: y independent of x.
    std::vector<double> x = {1, 2, 3, 4, 1, 2, 3, 4};
    std::vector<double> y = {1, 1, 1, 1, -1, -1, -1, -1};
    EXPECT_NEAR(pearson(x, y), 0.0, 1e-12);
}

TEST(Stats, PearsonPValueStrongCorrelationSmall)
{
    EXPECT_LT(pearsonPValue(0.9, 40), 0.001);
    EXPECT_GT(pearsonPValue(0.1, 10), 0.5);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(i);
        y.push_back(0.86 * i + 0.05);
    }
    LinearFit f = linearFit(x, y);
    EXPECT_NEAR(f.slope, 0.86, 1e-12);
    EXPECT_NEAR(f.intercept, 0.05, 1e-10);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitR2Partial)
{
    std::vector<double> x = {0, 1, 2, 3};
    std::vector<double> y = {0, 1, 2, 10};
    LinearFit f = linearFit(x, y);
    EXPECT_GT(f.r2, 0.5);
    EXPECT_LT(f.r2, 1.0);
}

TEST(Stats, MeanStddevVectors)
{
    std::vector<double> xs = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2.0}), 0.0);
}

} // namespace
} // namespace eqc
