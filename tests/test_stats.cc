#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace eqc {
namespace {

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> yneg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    std::vector<double> x = {1, 2, 3};
    std::vector<double> y = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonUncorrelatedNearZero)
{
    // Symmetric design: y independent of x.
    std::vector<double> x = {1, 2, 3, 4, 1, 2, 3, 4};
    std::vector<double> y = {1, 1, 1, 1, -1, -1, -1, -1};
    EXPECT_NEAR(pearson(x, y), 0.0, 1e-12);
}

TEST(Stats, PearsonPValueStrongCorrelationSmall)
{
    EXPECT_LT(pearsonPValue(0.9, 40), 0.001);
    EXPECT_GT(pearsonPValue(0.1, 10), 0.5);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(i);
        y.push_back(0.86 * i + 0.05);
    }
    LinearFit f = linearFit(x, y);
    EXPECT_NEAR(f.slope, 0.86, 1e-12);
    EXPECT_NEAR(f.intercept, 0.05, 1e-10);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitR2Partial)
{
    std::vector<double> x = {0, 1, 2, 3};
    std::vector<double> y = {0, 1, 2, 10};
    LinearFit f = linearFit(x, y);
    EXPECT_GT(f.r2, 0.5);
    EXPECT_LT(f.r2, 1.0);
}

TEST(Percentiles, ExactBelowCapacity)
{
    // 1..100: every quantile is exact while the reservoir holds all
    // observations (nearest-rank with linear interpolation).
    stats::Percentiles p(128);
    for (int i = 100; i >= 1; --i)
        p.add(i);
    EXPECT_EQ(p.count(), 100u);
    EXPECT_EQ(p.sampleSize(), 100u);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_NEAR(p.p50(), 50.5, 1e-12);
    EXPECT_NEAR(p.p95(), 95.05, 1e-12);
    EXPECT_NEAR(p.p99(), 99.01, 1e-12);
}

TEST(Percentiles, ReservoirTracksKnownDistribution)
{
    // Uniform[0, 1) stream much longer than the reservoir: sampled
    // quantiles must stay close to the true ones.
    stats::Percentiles p(512);
    Rng rng(99);
    for (int i = 0; i < 50000; ++i)
        p.add(rng.uniform());
    EXPECT_EQ(p.count(), 50000u);
    EXPECT_EQ(p.sampleSize(), 512u);
    EXPECT_NEAR(p.p50(), 0.50, 0.06);
    EXPECT_NEAR(p.p95(), 0.95, 0.04);
    EXPECT_NEAR(p.p99(), 0.99, 0.03);
}

TEST(Percentiles, DeterministicForIdenticalStreams)
{
    stats::Percentiles a(64), b(64);
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    for (double x : xs) {
        a.add(x);
        b.add(x);
    }
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(Percentiles, MergeConcatenatesExactlyBelowCapacity)
{
    // While both reservoirs fit, a merge is an exact concatenation:
    // the merged estimator matches one that watched both streams.
    stats::Percentiles a(256), b(256), whole(256);
    for (int i = 1; i <= 50; ++i) {
        a.add(i);
        whole.add(i);
    }
    for (int i = 51; i <= 100; ++i) {
        b.add(i);
        whole.add(i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ(a.sampleSize(), 100u);
    for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
    // The source is untouched and nothing was double-counted.
    EXPECT_EQ(b.count(), 50u);
}

TEST(Percentiles, MergeIsDeterministicAndWeightedPastCapacity)
{
    auto fill = [](stats::Percentiles &p, uint64_t seed, double lo,
                   double hi, int n) {
        Rng rng(seed);
        for (int i = 0; i < n; ++i)
            p.add(rng.uniform(lo, hi));
    };

    // Same inputs merged twice must agree bitwise: the replacement
    // draws come from the target's own deterministic stream.
    stats::Percentiles a1(256), b1(256), a2(256), b2(256);
    fill(a1, 5, 0.0, 1.0, 20000);
    fill(a2, 5, 0.0, 1.0, 20000);
    fill(b1, 6, 2.0, 3.0, 20000);
    fill(b2, 6, 2.0, 3.0, 20000);
    a1.merge(b1);
    a2.merge(b2);
    EXPECT_EQ(a1.count(), 40000u);
    EXPECT_EQ(a1.count(), a2.count());
    EXPECT_LE(a1.sampleSize(), 256u);
    for (double q : {0.0, 0.1, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(a1.quantile(q), a2.quantile(q));

    // Equal stream weights: the merged sample splits its mass evenly
    // between the two disjoint ranges, so the quartiles land inside
    // their source range and the median sits in the gap.
    EXPECT_NEAR(a1.quantile(0.25), 0.5, 0.15);
    EXPECT_NEAR(a1.quantile(0.75), 2.5, 0.15);
    EXPECT_GT(a1.p50(), 0.7);
    EXPECT_LT(a1.p50(), 2.3);
}

TEST(Percentiles, EmptyAndSingle)
{
    stats::Percentiles p(8);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
    p.add(42.0);
    EXPECT_DOUBLE_EQ(p.p50(), 42.0);
    EXPECT_DOUBLE_EQ(p.p99(), 42.0);
}

TEST(Stats, MeanStddevVectors)
{
    std::vector<double> xs = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2.0}), 0.0);
}

} // namespace
} // namespace eqc
