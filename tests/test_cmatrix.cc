#include <gtest/gtest.h>

#include "quantum/cmatrix.h"
#include "quantum/gates.h"

namespace eqc {
namespace {

TEST(CMatrix, IdentityAndElementAccess)
{
    CMatrix m = CMatrix::identity(3);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(0, 0), Complex(1, 0));
    EXPECT_EQ(m(0, 1), Complex(0, 0));
}

TEST(CMatrix, Multiply)
{
    CMatrix a(2, 2, {1, 2, 3, 4});
    CMatrix b(2, 2, {5, 6, 7, 8});
    CMatrix c = a * b;
    EXPECT_EQ(c(0, 0), Complex(19, 0));
    EXPECT_EQ(c(0, 1), Complex(22, 0));
    EXPECT_EQ(c(1, 0), Complex(43, 0));
    EXPECT_EQ(c(1, 1), Complex(50, 0));
}

TEST(CMatrix, DaggerConjugatesAndTransposes)
{
    CMatrix a(2, 2, {Complex(1, 1), Complex(0, 2),
                     Complex(3, 0), Complex(0, -4)});
    CMatrix d = a.dagger();
    EXPECT_EQ(d(0, 0), Complex(1, -1));
    EXPECT_EQ(d(0, 1), Complex(3, 0));
    EXPECT_EQ(d(1, 0), Complex(0, -2));
    EXPECT_EQ(d(1, 1), Complex(0, 4));
}

TEST(CMatrix, KroneckerProduct)
{
    CMatrix x = gateMatrix(GateType::X);
    CMatrix z = gateMatrix(GateType::Z);
    CMatrix k = z.kron(x); // Z on high bit, X on low bit
    EXPECT_EQ(k.rows(), 4u);
    // |00> -> |01> with +1 (Z on 0 of high bit).
    EXPECT_EQ(k(1, 0), Complex(1, 0));
    // |10> -> |11> with -1.
    EXPECT_EQ(k(3, 2), Complex(-1, 0));
}

TEST(CMatrix, ApplyVector)
{
    CMatrix h = gateMatrix(GateType::H);
    CVector v = {1.0, 0.0};
    CVector out = h.apply(v);
    EXPECT_NEAR(out[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(out[1].real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CMatrix, TraceAndDistance)
{
    CMatrix a(2, 2, {1, 0, 0, Complex(0, 1)});
    EXPECT_EQ(a.trace(), Complex(1, 1));
    CMatrix b = CMatrix::identity(2);
    EXPECT_NEAR(a.distance(b), std::sqrt(std::norm(Complex(0, 1) -
                                                   Complex(1, 0))),
                1e-12);
}

TEST(CMatrix, UnitarityChecks)
{
    EXPECT_TRUE(gateMatrix(GateType::H).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::SX).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::CX).isUnitary());
    CMatrix notU(2, 2, {1, 0, 0, 2});
    EXPECT_FALSE(notU.isUnitary());
}

TEST(CMatrix, HermiticityChecks)
{
    EXPECT_TRUE(gateMatrix(GateType::X).isHermitian());
    EXPECT_TRUE(gateMatrix(GateType::Y).isHermitian());
    EXPECT_FALSE(gateMatrix(GateType::S).isHermitian());
}

TEST(CMatrix, EqualsUpToPhase)
{
    CMatrix h = gateMatrix(GateType::H);
    Complex phase = std::exp(Complex(0, 1) * 0.7);
    CMatrix hp = h * phase;
    EXPECT_TRUE(h.equalsUpToPhase(hp));
    EXPECT_FALSE(h.equalsUpToPhase(gateMatrix(GateType::X)));
}

} // namespace
} // namespace eqc
