/**
 * @file
 * Campaign-level integration tests: miniature versions of the paper's
 * headline experiments asserting the qualitative results the figures
 * report. These are the repository's regression net for the benches.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "support/run_helpers.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

TEST(Integration, EqcErrorCloseToBestDeviceAndBelowWorst)
{
    // Mini Fig. 6: 50 epochs, best (bogota) / worst (x2) devices vs
    // the weighted ensemble of six.
    VqaProblem p = makeHeisenbergVqe();
    TrainerOptions so;
    so.epochs = 50;
    so.seed = 2;
    TrainingTrace best =
        trainSingleDevice(p, deviceByName("ibmq_bogota"), so);
    TrainingTrace worst =
        trainSingleDevice(p, deviceByName("ibmqx2"), so);

    std::vector<Device> devices = {
        deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
        deviceByName("ibmq_quito"),  deviceByName("ibmq_belem"),
        deviceByName("ibmq_lima"),   deviceByName("ibmqx2")};
    EqcOptions eo;
    eo.master.epochs = 50;
    eo.master.weightBounds = {0.5, 1.5};
    eo.seed = 2;
    EqcTrace eqc = runVirtual(p, devices, eo);

    const double ansatzMin = -6.5715;
    double errBest =
        errorVsReference(finalIdealEnergy(best, 10), ansatzMin);
    double errWorst =
        errorVsReference(finalIdealEnergy(worst, 10), ansatzMin);
    double errEqc =
        errorVsReference(finalIdealEnergy(eqc, 10), ansatzMin);

    // The paper's abstract claim: error very close to the most
    // performant device, i.e. well below the noisy members.
    EXPECT_LT(errEqc, errWorst);
    EXPECT_LT(errEqc, errBest + 0.5); // within 0.5pp of the best
}

TEST(Integration, EqcThroughputIsNearSumOfMembers)
{
    VqaProblem p = makeHeisenbergVqe();
    std::vector<const char *> names = {"ibmq_bogota", "ibmq_manila",
                                       "ibmq_quito"};
    double sumRates = 0.0;
    for (const char *n : names) {
        TrainerOptions o;
        o.epochs = 10;
        o.seed = 4;
        sumRates +=
            trainSingleDevice(p, deviceByName(n), o).epochsPerHour;
    }
    std::vector<Device> devices;
    for (const char *n : names)
        devices.push_back(deviceByName(n));
    EqcOptions eo;
    eo.master.epochs = 10;
    eo.seed = 4;
    EqcTrace eqc = runVirtual(p, devices, eo);
    // Asynchronous pooling approaches the sum of member throughputs.
    EXPECT_GT(eqc.epochsPerHour, 0.6 * sumRates);
    EXPECT_LT(eqc.epochsPerHour, 1.4 * sumRates);
}

TEST(Integration, WeightingImprovesEnsembleWithBadMember)
{
    // Mini Fig. 9 with a deliberately degraded member: the weighted
    // ensemble must end at least as close to the optimum as the
    // unweighted one.
    VqaProblem p = makeHeisenbergVqe();
    Device bad = deviceByName("ibmqx2");
    bad.drift.errorDriftPerHour = 0.2;
    for (auto &q : bad.baseCalibration.qubits)
        q.coherentRxRad *= 3.0;
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_manila"),
                                   deviceByName("ibmq_quito"), bad};

    auto run = [&](WeightBounds b) {
        EqcOptions o;
        o.master.epochs = 60;
        o.master.weightBounds = b;
        o.seed = 6;
        return runVirtual(p, devices, o);
    };
    EqcTrace unweighted = run({1.0, 1.0});
    EqcTrace weighted = run({0.5, 1.5});
    const double ansatzMin = -6.5715;
    double errU =
        errorVsReference(finalIdealEnergy(unweighted, 10), ansatzMin);
    double errW =
        errorVsReference(finalIdealEnergy(weighted, 10), ansatzMin);
    EXPECT_LE(errW, errU + 0.05);
}

TEST(Integration, QaoaEnsembleReachesP1Optimum)
{
    // Mini Fig. 11/12: the ring-MaxCut QAOA must reach the 0.75
    // approximation plateau on a noisy ensemble.
    VqaProblem p = makeRingMaxCutQaoa();
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_quito"),
                                   deviceByName("ibmq_belem")};
    EqcOptions o;
    o.master.epochs = 50;
    o.client.shiftMode = ShiftMode::PerOccurrence;
    o.seed = 2;
    EqcTrace t = runVirtual(p, devices, o);
    double idealCostPerEdge =
        idealEnergy(p.ansatz, p.hamiltonian, t.finalParams) / 4.0;
    EXPECT_LT(idealCostPerEdge, -0.70); // p=1 limit is -0.75
}

TEST(Integration, TwoWeekTerminationMatchesPaper)
{
    // Manhattan cannot finish 250 epochs inside two weeks; Bogota can
    // finish 50 epochs in hours.
    VqaProblem p = makeHeisenbergVqe();
    TrainerOptions o;
    o.epochs = 250;
    o.seed = 1;
    TrainingTrace man =
        trainSingleDevice(p, deviceByName("ibmq_manhattan"), o);
    EXPECT_TRUE(man.terminated);
    EXPECT_LT(man.epochs.size(), 40u);

    o.epochs = 50;
    TrainingTrace bog =
        trainSingleDevice(p, deviceByName("ibmq_bogota"), o);
    EXPECT_FALSE(bog.terminated);
    EXPECT_LT(bog.totalHours, 24.0);
}

TEST(Integration, EqcHonorsTerminationRule)
{
    // An ensemble made only of glacially slow devices must hit the
    // time budget before finishing and report a truncated trace.
    VqaProblem p = makeHeisenbergVqe();
    std::vector<Device> devices = {deviceByName("ibmq_manhattan")};
    EqcOptions o;
    o.master.epochs = 250;
    o.maxHours = 48.0;
    o.seed = 1;
    EqcTrace t = runVirtual(p, devices, o);
    EXPECT_TRUE(t.terminated);
    EXPECT_LT(t.epochs.size(), 250u);
    EXPECT_LE(t.totalHours, 48.0 + 2.0); // in-flight job may overshoot
}

TEST(Integration, GoldenReplayAcrossComponents)
{
    // Full-campaign determinism: the exact final parameter vector must
    // replay across independent runs (DES ordering + RNG forks).
    VqaProblem p = makeHeisenbergVqe();
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmqx2"),
                                   deviceByName("ibmq_casablanca")};
    EqcOptions o;
    o.master.epochs = 8;
    o.master.weightBounds = {0.5, 1.5};
    o.adaptive.enabled = true;
    o.seed = 77;
    EqcTrace a = runVirtual(p, devices, o);
    EqcTrace b = runVirtual(p, devices, o);
    ASSERT_EQ(a.finalParams.size(), b.finalParams.size());
    for (std::size_t i = 0; i < a.finalParams.size(); ++i)
        EXPECT_DOUBLE_EQ(a.finalParams[i], b.finalParams[i]) << i;
    EXPECT_EQ(a.cooldowns, b.cooldowns);
    EXPECT_EQ(a.weights.size(), b.weights.size());
}

} // namespace
} // namespace eqc
