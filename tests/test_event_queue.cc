#include <gtest/gtest.h>

#include <chrono>

#include "common/event_loop.h"
#include "sim/event_queue.h"

namespace eqc {
namespace {

TEST(Simulation, EventsRunInTimeOrder)
{
    Simulation sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesFifoBySequence)
{
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(1.0, [&, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulation, HandlersCanScheduleMoreEvents)
{
    Simulation sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            sim.schedule(0.5, chain);
    };
    sim.schedule(0.0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sim.now(), 4.5);
    EXPECT_EQ(sim.processed(), 10u);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued)
{
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    sim.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.empty());
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, ScheduleAtAbsoluteTime)
{
    Simulation sim;
    double seen = -1.0;
    sim.scheduleAt(7.25, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 7.25);
}

// ---------------------------------------------------------------------------
// The shared EventLoop / Clock core the Simulation wraps
// ---------------------------------------------------------------------------

TEST(EventLoop, VirtualClockMatchesSimulationSemantics)
{
    VirtualClock clock;
    EventLoop loop(clock);
    std::vector<int> order;
    loop.schedule(3.0, [&] { order.push_back(3); });
    loop.schedule(1.0, [&] { order.push_back(1); });
    loop.scheduleAt(2.0, [&] { order.push_back(2); });
    EXPECT_EQ(loop.pending(), 3u);
    loop.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_DOUBLE_EQ(loop.now(), 3.0);
    EXPECT_EQ(loop.processed(), 3u);
    EXPECT_TRUE(clock.isVirtual());
}

TEST(EventLoop, PastTimestampsClampToNow)
{
    VirtualClock clock;
    EventLoop loop(clock);
    double firedAt = -1.0;
    loop.scheduleAt(4.0, [&] {
        // Scheduled "in the past" from hour 4: fires immediately at 4
        // instead of rewinding or being dropped.
        loop.scheduleAt(1.0, [&] { firedAt = loop.now(); });
    });
    loop.run();
    EXPECT_DOUBLE_EQ(firedAt, 4.0);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle)
{
    VirtualClock clock;
    EventLoop loop(clock);
    loop.schedule(1.0, [] {});
    loop.runUntil(6.0);
    EXPECT_TRUE(loop.empty());
    EXPECT_DOUBLE_EQ(loop.now(), 6.0);
}

TEST(EventLoop, SteadyClockFiresInRealTime)
{
    // 0.02 wall seconds per model hour: three events one model hour
    // apart must take at least ~2 x 20 ms of wall time (the first is
    // due immediately by the time the loop starts) and fire in order.
    SteadyClock clock(0.02);
    EventLoop loop(clock);
    std::vector<int> order;
    const auto wall0 = std::chrono::steady_clock::now();
    loop.scheduleAt(2.0, [&] { order.push_back(2); });
    loop.scheduleAt(1.0, [&] { order.push_back(1); });
    loop.scheduleAt(3.0, [&] { order.push_back(3); });
    loop.run();
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_GE(wallS, 0.04);
    EXPECT_GE(loop.now(), 3.0);
    EXPECT_FALSE(clock.isVirtual());
}

TEST(EventLoop, SteadyClockNeverSleepsForThePast)
{
    SteadyClock clock(100.0); // a model hour takes 100 wall seconds
    EventLoop loop(clock);
    int fired = 0;
    const auto wall0 = std::chrono::steady_clock::now();
    loop.scheduleAt(0.0, [&] { ++fired; }); // due immediately
    loop.run();
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    EXPECT_EQ(fired, 1);
    EXPECT_LT(wallS, 5.0); // no sleep anywhere near the hour scale
}

} // namespace
} // namespace eqc
