#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace eqc {
namespace {

TEST(Simulation, EventsRunInTimeOrder)
{
    Simulation sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesFifoBySequence)
{
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule(1.0, [&, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulation, HandlersCanScheduleMoreEvents)
{
    Simulation sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            sim.schedule(0.5, chain);
    };
    sim.schedule(0.0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sim.now(), 4.5);
    EXPECT_EQ(sim.processed(), 10u);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued)
{
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    sim.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.empty());
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulation, ScheduleAtAbsoluteTime)
{
    Simulation sim;
    double seen = -1.0;
    sim.scheduleAt(7.25, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 7.25);
}

} // namespace
} // namespace eqc
