#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace eqc {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, ForkByLabelIsStable)
{
    Rng root(7);
    Rng c1 = root.fork("queue");
    Rng c2 = Rng(7).fork("queue");
    EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng root(7);
    Rng a = root.fork("a");
    Rng b = root.fork("b");
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng r(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int v = r.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        sawLo |= (v == 0);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal(1.5, 2.0);
        sum += x;
        sum2 += x * x;
    }
    double m = sum / n;
    double var = sum2 / n - m * m;
    EXPECT_NEAR(m, 1.5, 0.06);
    EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r(5);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng r(13);
    std::vector<double> w = {0.0, 3.0, 1.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[r.discrete(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.35);
}

TEST(Rng, MultinomialTotalAndDistribution)
{
    Rng r(17);
    std::vector<double> p = {0.5, 0.25, 0.25};
    auto counts = r.multinomial(p, 8192);
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    EXPECT_EQ(total, 8192u);
    EXPECT_NEAR(static_cast<double>(counts[0]) / 8192.0, 0.5, 0.03);
}

TEST(Rng, ExponentialMeanApprox)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.exponentialMean(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, LognormalPositive)
{
    Rng r(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

} // namespace
} // namespace eqc
