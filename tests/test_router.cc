/**
 * @file
 * Router-tier tests: consistent-hash ring keyspace balance and
 * minimal remapping under membership change, key-affine routing with
 * disjoint per-node job-id spans, overflow forwarding on capacity
 * backpressure (least-loaded successor first, never on final
 * rejections), NodeLoad snapshots, the lock-free MPMC intake ring,
 * bit-determinism of the threaded barrier drain against the inline
 * node-order drain (and across shard-pool widths), and routed
 * journals that audit clean and replay bit-identically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/task_pool.h"
#include "device/catalog.h"
#include "replay/chaos.h"
#include "replay/replayer.h"
#include "serve/router.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

using namespace eqc::serve;

// ---------------------------------------------------------------------------
// Hash ring properties
// ---------------------------------------------------------------------------

constexpr int kVnodes = 64;
constexpr std::size_t kKeys = 10000;

std::vector<uint64_t>
sampleKeys()
{
    std::vector<uint64_t> keys(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i)
        keys[i] = splitmix64(0x5EEDull + i);
    return keys;
}

TEST(HashRing, KeyspaceBalancedAcrossMemberCounts)
{
    const std::vector<uint64_t> keys = sampleKeys();
    for (int n = 2; n <= 16; ++n) {
        HashRing ring;
        for (int node = 0; node < n; ++node)
            ring.addNode(node, kVnodes);
        std::map<int, std::size_t> share;
        for (uint64_t k : keys)
            ++share[ring.owner(k)];
        const double mean =
            static_cast<double>(kKeys) / static_cast<double>(n);
        ASSERT_EQ(share.size(), static_cast<std::size_t>(n))
            << n << " nodes but only " << share.size()
            << " own any keyspace";
        for (const auto &kv : share) {
            const double rel =
                static_cast<double>(kv.second) / mean;
            // 64 virtual nodes keep every member within a modest
            // factor of the fair share at any fleet size.
            EXPECT_GT(rel, 0.45) << "node " << kv.first << " of "
                                 << n << " owns only " << kv.second
                                 << " of " << kKeys << " keys";
            EXPECT_LT(rel, 1.80) << "node " << kv.first << " of "
                                 << n << " owns " << kv.second
                                 << " of " << kKeys << " keys";
        }
    }
}

TEST(HashRing, AddingANodeMovesOnlyItsShare)
{
    const std::vector<uint64_t> keys = sampleKeys();
    for (int n : {2, 4, 8, 15}) {
        HashRing ring;
        for (int node = 0; node < n; ++node)
            ring.addNode(node, kVnodes);
        std::vector<int> before(kKeys);
        for (std::size_t i = 0; i < kKeys; ++i)
            before[i] = ring.owner(keys[i]);

        ring.addNode(n, kVnodes);
        std::size_t moved = 0;
        for (std::size_t i = 0; i < kKeys; ++i) {
            const int now = ring.owner(keys[i]);
            if (now != before[i]) {
                ++moved;
                // Consistent hashing: a key only ever moves TO the
                // new node, never between the old ones.
                EXPECT_EQ(now, n)
                    << "key " << i << " moved from node "
                    << before[i] << " to old node " << now;
            }
        }
        const double expect =
            static_cast<double>(kKeys) / static_cast<double>(n + 1);
        EXPECT_GT(static_cast<double>(moved), 0.3 * expect)
            << "adding node " << n << " moved almost nothing";
        EXPECT_LT(static_cast<double>(moved), 2.0 * expect)
            << "adding node " << n << " moved " << moved
            << " of " << kKeys << " keys (~1/" << (n + 1)
            << " expected)";

        // Removing it again restores the original map exactly.
        ring.removeNode(n);
        for (std::size_t i = 0; i < kKeys; ++i)
            ASSERT_EQ(ring.owner(keys[i]), before[i]);
    }
}

TEST(HashRing, SuccessorsAreDistinctAndExcludeOwner)
{
    HashRing ring;
    for (int node = 0; node < 5; ++node)
        ring.addNode(node, kVnodes);
    for (uint64_t k : sampleKeys()) {
        const int home = ring.owner(k);
        const std::vector<int> succ = ring.successors(k, 3);
        ASSERT_EQ(succ.size(), 3u);
        std::vector<int> all = succ;
        all.push_back(home);
        std::sort(all.begin(), all.end());
        ASSERT_EQ(std::unique(all.begin(), all.end()), all.end())
            << "successor list repeats a node (or the owner)";
    }
}

// ---------------------------------------------------------------------------
// MPMC intake ring
// ---------------------------------------------------------------------------

TEST(MpmcQueue, FullRingRejectsPush)
{
    MpmcQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.tryPush(i));
    EXPECT_FALSE(q.tryPush(99)); // backpressure, not blocking
    int out = -1;
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, 0); // FIFO under single consumer
    EXPECT_TRUE(q.tryPush(99));
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 20000;
    MpmcQueue<int> q(1024);
    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int v = p * kPerProducer + i;
                while (!q.tryPush(v))
                    std::this_thread::yield();
            }
        });
    for (int c = 0; c < kConsumers; ++c)
        threads.emplace_back([&] {
            int v;
            while (popped.load() < kProducers * kPerProducer) {
                if (q.tryPop(v)) {
                    sum += v;
                    ++popped;
                } else {
                    std::this_thread::yield();
                }
            }
        });
    for (std::thread &t : threads)
        t.join();

    const long long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Router fixtures
// ---------------------------------------------------------------------------

std::vector<Device>
smallEnsemble(int shift)
{
    std::vector<Device> catalog = evaluationEnsemble();
    return {catalog[static_cast<std::size_t>(shift) % catalog.size()],
            catalog[static_cast<std::size_t>(shift + 1) %
                    catalog.size()]};
}

ServiceOptions
nodeOptions(uint64_t seed = 11)
{
    ServiceOptions o;
    o.seed = seed;
    o.scheduler.minShardShots = 32;
    return o;
}

/** Fleet of @p n two-member nodes with one registered workload. */
WorkloadId
buildFleet(Router &router, int n, const VqaProblem &prob,
           ServiceOptions base = nodeOptions())
{
    for (int i = 0; i < n; ++i)
        router.addNode(smallEnsemble(i), base);
    return router.registerWorkload(prob.ansatz, prob.hamiltonian);
}

JobRequest
requestFor(WorkloadId wl, const VqaProblem &prob, int tenant,
           double bindShift, int shots = 128)
{
    JobRequest req;
    req.tenantId = tenant;
    req.workload = wl;
    req.params = prob.initialParams;
    req.params[0] += bindShift;
    req.shots = shots;
    return req;
}

// ---------------------------------------------------------------------------
// Routing + id spans
// ---------------------------------------------------------------------------

TEST(Router, RoutesKeysToTheirHomeNodeWithSpannedIds)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    Router router;
    const WorkloadId wl = buildFleet(router, 4, prob);

    std::map<int, int> homes;
    for (int b = 0; b < 12; ++b) {
        JobRequest req = requestFor(wl, prob, b % 3, 0.07 * b);
        const int home = router.homeNode(req);
        Ticket t = router.submit(req);
        ASSERT_TRUE(t.admitted());
        // The admitting node is encoded in the id span: node i hands
        // out ids starting at i * 2^32 + 1.
        EXPECT_EQ(static_cast<int>(t.jobId >> 32), home);
        ++homes[home];

        // Same binding, different tenant: same home (key affinity).
        JobRequest again = requestFor(wl, prob, 5, 0.07 * b);
        EXPECT_EQ(router.homeNode(again), home);
    }
    EXPECT_GT(homes.size(), 1u)
        << "12 distinct bindings all hashed to one node";

    std::vector<JobOutcome> out = router.drain();
    EXPECT_EQ(out.size(), 12u);
    EXPECT_EQ(router.counters().routed, 12u);
    EXPECT_EQ(router.counters().forwards, 0u);
}

TEST(Router, ForwardsOverflowToSuccessorsAndCountsIt)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    ServiceOptions tight = nodeOptions();
    tight.admission.maxQueueDepth = 2;
    tight.admission.maxQueuedPerTenant = 64;
    Router router;
    const WorkloadId wl = buildFleet(router, 4, prob, tight);

    // One binding hammered: 2 fill the home queue, the rest must
    // overflow along the ring (2 hops => 2 more nodes of depth 2),
    // and past that the fleet is saturated.
    JobRequest req = requestFor(wl, prob, 0, 0.11);
    const int home = router.homeNode(req);
    std::map<int, int> admittedOn;
    int rejected = 0;
    for (int i = 0; i < 9; ++i) {
        Ticket t = router.submit(req);
        if (t.admitted())
            ++admittedOn[static_cast<int>(t.jobId >> 32)];
        else {
            ++rejected;
            EXPECT_GT(t.retryAfterS, 0.0)
                << "fleet-wide rejection lost its backpressure hint";
        }
    }
    EXPECT_EQ(admittedOn.size(), 3u) // home + both forward hops
        << "overflow did not spread across the ring";
    EXPECT_EQ(admittedOn[home], 2);
    EXPECT_EQ(rejected, 3);
    EXPECT_GT(router.counters().forwards, 0u);
    EXPECT_EQ(router.counters().forwardAdmits, 4u);
    EXPECT_EQ(router.counters().rejectedEverywhere, 3u);

    // A bad request is final — no forwarding on non-capacity
    // rejections.
    const uint64_t forwardsBefore = router.counters().forwards;
    JobRequest bad = req;
    bad.workload = 99;
    Ticket t = router.submit(bad);
    EXPECT_EQ(t.status, AdmitStatus::RejectedBadRequest);
    EXPECT_EQ(router.counters().forwards, forwardsBefore);

    router.drain();
}

TEST(Router, ForwardPrefersTheLeastLoadedSuccessor)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    ServiceOptions tight = nodeOptions();
    tight.admission.maxQueueDepth = 2;
    Router router;
    const WorkloadId wl = buildFleet(router, 4, prob, tight);

    JobRequest req = requestFor(wl, prob, 0, 0.23);
    const uint64_t kh = Router::keyHash(req.workload, req.params);
    const int home = router.ring().owner(kh);
    const std::vector<int> succ = router.ring().successors(kh, 2);
    ASSERT_EQ(succ.size(), 2u);

    // Pile queued work onto the FIRST ring successor so its
    // NodeLoad::score() dominates; the router must then overflow to
    // the second successor first.
    JobRequest filler = requestFor(wl, prob, 3, 0.71);
    router.node(static_cast<std::size_t>(succ[0])).submit(filler);
    filler.params[0] += 0.013;
    router.node(static_cast<std::size_t>(succ[0])).submit(filler);

    Ticket a = router.submit(req);
    Ticket b = router.submit(req);
    ASSERT_TRUE(a.admitted());
    ASSERT_TRUE(b.admitted());
    EXPECT_EQ(static_cast<int>(a.jobId >> 32), home);

    Ticket c = router.submit(req); // home is full now
    ASSERT_TRUE(c.admitted());
    EXPECT_EQ(static_cast<int>(c.jobId >> 32), succ[1])
        << "overflow went to the busier successor";
    EXPECT_EQ(router.counters().forwardAdmits, 1u);

    router.drain();
}

// ---------------------------------------------------------------------------
// NodeLoad snapshots
// ---------------------------------------------------------------------------

TEST(ServiceNodeLoad, SnapshotTracksQueueAndMembership)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    ServiceNode node(smallEnsemble(0), nodeOptions());
    const WorkloadId wl =
        node.registerWorkload(prob.ansatz, prob.hamiltonian);

    NodeLoad idle = node.loadSnapshot();
    EXPECT_EQ(idle.queuedJobs, 0u);
    EXPECT_EQ(idle.activeItems, 0u);
    EXPECT_EQ(idle.inflightShards, 0);
    EXPECT_EQ(idle.aliveMembers, 2u);
    EXPECT_EQ(idle.score(), 0.0);

    JobRequest req = requestFor(wl, prob, 0, 0.0);
    node.submit(req);
    req.params[0] += 0.05;
    node.submit(req);
    NodeLoad queued = node.loadSnapshot();
    EXPECT_EQ(queued.queuedJobs, 2u);
    EXPECT_GT(queued.score(), idle.score());

    TaskPool pool(1);
    node.drain(&pool);
    NodeLoad drained = node.loadSnapshot();
    EXPECT_EQ(drained.queuedJobs, 0u);
    EXPECT_EQ(drained.inflightShards, 0);
    // The drain compiled and executed on both members: their plan
    // caches are warm for this workload now.
    EXPECT_GT(drained.warmKeys, 0u);

    node.failMemberAt(0, node.loop().now());
    EXPECT_EQ(node.loadSnapshot().aliveMembers, 1u);
    // A dead fleet prices itself out of forwarding entirely.
    node.failMemberAt(1, node.loop().now());
    EXPECT_GT(node.loadSnapshot().score(), 1e8);
}

// ---------------------------------------------------------------------------
// Determinism: threaded barrier drain == inline node-order drain
// ---------------------------------------------------------------------------

/** One mixed schedule: two drains with submissions between them. */
std::vector<JobOutcome>
runSchedule(Router &router, WorkloadId wl, const VqaProblem &prob)
{
    std::vector<JobOutcome> all;
    Rng rng = Rng(404).fork("schedule");
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 10; ++i) {
            JobRequest req =
                requestFor(wl, prob, i % 4,
                           0.05 * (i % 5), 64 * rng.uniformInt(1, 3));
            req.priority = rng.uniformInt(0, 2);
            req.submitH = router.node(0).loop().now() +
                          rng.uniform(0.0, 0.05);
            router.submit(req);
        }
        std::vector<JobOutcome> got = router.drain();
        all.insert(all.end(), got.begin(), got.end());
    }
    return all;
}

void
expectBitIdentical(const std::vector<JobOutcome> &a,
                   const std::vector<JobOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].jobId, b[i].jobId);
        EXPECT_TRUE(replay::bitEqual(a[i].energy, b[i].energy))
            << "job " << a[i].jobId << ": "
            << replay::hexBits(a[i].energy) << " vs "
            << replay::hexBits(b[i].energy);
        EXPECT_TRUE(replay::bitEqual(a[i].variance, b[i].variance));
        EXPECT_TRUE(replay::bitEqual(a[i].pCorrect, b[i].pCorrect));
        EXPECT_TRUE(replay::bitEqual(a[i].completeH, b[i].completeH));
        EXPECT_EQ(a[i].shotsExecuted, b[i].shotsExecuted);
        EXPECT_EQ(a[i].shardsExecuted, b[i].shardsExecuted);
        EXPECT_EQ(a[i].primaryMember, b[i].primaryMember);
        EXPECT_EQ(a[i].coalesced, b[i].coalesced);
    }
}

TEST(RouterDeterminism, ThreadedBarrierDrainMatchesInline)
{
    VqaProblem prob = makeHeisenbergVqe(7);

    RouterOptions inlineOpts;
    Router inlineRouter(inlineOpts);
    const WorkloadId wlA = buildFleet(inlineRouter, 3, prob);
    std::vector<JobOutcome> inlineOut =
        runSchedule(inlineRouter, wlA, prob);

    RouterOptions threadedOpts;
    threadedOpts.threadedDrain = true;
    Router threadedRouter(threadedOpts);
    const WorkloadId wlB = buildFleet(threadedRouter, 3, prob);
    ASSERT_EQ(wlA, wlB);
    std::vector<JobOutcome> threadedOut =
        runSchedule(threadedRouter, wlB, prob);
    threadedRouter.stopServe();

    ASSERT_FALSE(inlineOut.empty());
    expectBitIdentical(inlineOut, threadedOut);
}

TEST(RouterDeterminism, ShardPoolWidthDoesNotChangeBits)
{
    // The serve thread drains with whatever pool it was started
    // with; 1-, 2- and 4-wide shard fan-out must agree bit for bit
    // (shard RNG forks from pure ids, aggregation is seq-ordered).
    VqaProblem prob = makeHeisenbergVqe(7);
    auto runWith = [&prob](int width) {
        ServiceNode node(smallEnsemble(0), nodeOptions());
        const WorkloadId wl =
            node.registerWorkload(prob.ansatz, prob.hamiltonian);
        TaskPool pool(width);
        node.startServe(&pool);
        for (int i = 0; i < 8; ++i) {
            JobRequest req = requestFor(wl, prob, i % 3, 0.04 * i,
                                        128 + 64 * (i % 2));
            node.postSubmit(req);
        }
        node.requestDrain(
            std::numeric_limits<double>::infinity());
        node.awaitDrain();
        std::vector<JobOutcome> out = node.collectCompleted();
        node.stopServe();
        return out;
    };
    std::vector<JobOutcome> w1 = runWith(1);
    std::vector<JobOutcome> w2 = runWith(2);
    std::vector<JobOutcome> w4 = runWith(4);
    ASSERT_EQ(w1.size(), 8u);
    expectBitIdentical(w1, w2);
    expectBitIdentical(w1, w4);

    // And the threaded intake path itself changes nothing vs the
    // classic inline submit()+drain().
    ServiceNode inlineNode(smallEnsemble(0), nodeOptions());
    const WorkloadId wl = inlineNode.registerWorkload(
        prob.ansatz, prob.hamiltonian);
    for (int i = 0; i < 8; ++i) {
        JobRequest req = requestFor(wl, prob, i % 3, 0.04 * i,
                                    128 + 64 * (i % 2));
        inlineNode.submit(req);
    }
    TaskPool pool(2);
    std::vector<JobOutcome> inlineOut = inlineNode.drain(&pool);
    expectBitIdentical(w1, inlineOut);
}

// ---------------------------------------------------------------------------
// Routed journal: clean audit + bit-identical replay
// ---------------------------------------------------------------------------

TEST(RouterJournal, RoutedRunAuditsCleanAndReplaysBitIdentical)
{
    replay::ChaosOptions o;
    o.seed = 20260809;
    o.nodes = 3;
    o.members = 2;
    o.rounds = 3;
    o.deadlineProb = 0.2;
    o.verifyReplay = true;
    replay::ChaosEngine engine(o);
    TaskPool pool(1);
    replay::ChaosReport rep = engine.run(&pool);

    EXPECT_TRUE(rep.passed())
        << (rep.violations.empty()
                ? ""
                : rep.violations.front().invariant + ": " +
                      rep.violations.front().detail);
    EXPECT_TRUE(rep.replayVerified);
    EXPECT_GT(rep.jobsCompleted, 0);
    EXPECT_EQ(engine.journal().config.nodes, 3);

    // The journal survives a serialize->parse round trip with its
    // router shape intact.
    std::string err;
    replay::EventJournal parsed =
        replay::EventJournal::parse(engine.journal().serialize(),
                                    &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(parsed.config.nodes, 3);
    EXPECT_EQ(parsed.config.virtualNodes, 64);
    EXPECT_EQ(parsed.config.forwardHops, 2);
    EXPECT_EQ(parsed.size(), engine.journal().size());
}

TEST(RouterJournal, FloodedRoutedRunForwardsAndStaysClean)
{
    replay::ChaosOptions o;
    o.seed = 77;
    o.nodes = 3;
    o.members = 2;
    o.rounds = 3;
    o.floodProb = 1.0; // force overflow forwarding every round
    o.verifyReplay = true;
    replay::ChaosEngine engine(o);
    TaskPool pool(1);
    replay::ChaosReport rep = engine.run(&pool);

    EXPECT_TRUE(rep.passed())
        << (rep.violations.empty()
                ? ""
                : rep.violations.front().invariant + ": " +
                      rep.violations.front().detail);
    EXPECT_GT(rep.forwards, 0)
        << "forced floods never overflowed across nodes";
    EXPECT_GT(rep.forwardAdmits, 0);
    EXPECT_TRUE(rep.replayVerified);
}

} // namespace
} // namespace eqc
