#include <gtest/gtest.h>

#include "core/eqc.h"

namespace eqc {
namespace {

TrainingTrace
traceOf(const std::vector<double> &device,
        const std::vector<double> &ideal = {})
{
    TrainingTrace t;
    for (std::size_t i = 0; i < device.size(); ++i) {
        EpochRecord r;
        r.epoch = static_cast<int>(i);
        r.energyDevice = device[i];
        r.energyIdeal = i < ideal.size() ? ideal[i] : device[i];
        t.epochs.push_back(r);
    }
    return t;
}

TEST(TraceHelpers, ConvergenceEpochBasic)
{
    // Descends to -4 and stays there from index 3.
    std::vector<double> s = {0, -2, -3.5, -4.0, -4.0, -4.0, -4.0, -4.0};
    EXPECT_EQ(convergenceEpoch(s, -4.0, 0.3, 2), 3);
}

TEST(TraceHelpers, ConvergenceNeverReached)
{
    std::vector<double> s = {0, -1, -2, -2.5};
    EXPECT_EQ(convergenceEpoch(s, -4.0, 0.2, 2), -1);
}

TEST(TraceHelpers, ConvergenceRejectsLaterDivergence)
{
    // Converges then drifts away (the Casablanca pattern): the epoch
    // must not count as converged.
    std::vector<double> s(40, -4.0);
    for (int i = 25; i < 40; ++i)
        s[i] = -2.0;
    EXPECT_EQ(convergenceEpoch(s, -4.0, 0.3, 3), -1);
}

TEST(TraceHelpers, ConvergenceWindowSmoothsNoise)
{
    // A single spike inside an otherwise converged tail is tolerated
    // by the rolling window.
    std::vector<double> s(30, -4.0);
    s[20] = -3.5; // spike of 0.5, window 5 dilutes to 0.1
    EXPECT_EQ(convergenceEpoch(s, -4.0, 0.2, 5), 0);
}

TEST(TraceHelpers, EmptySeries)
{
    EXPECT_EQ(convergenceEpoch(std::vector<double>{}, -4.0, 0.1, 5), -1);
}

TEST(TraceHelpers, FinalEnergyAverages)
{
    TrainingTrace t = traceOf({-1, -2, -3, -4});
    EXPECT_DOUBLE_EQ(finalEnergy(t, 2), -3.5);
    EXPECT_DOUBLE_EQ(finalEnergy(t, 10), -2.5); // clamps to size
    TrainingTrace empty;
    EXPECT_DOUBLE_EQ(finalEnergy(empty, 5), 0.0);
}

TEST(TraceHelpers, FinalIdealEnergyUsesIdealSeries)
{
    TrainingTrace t = traceOf({-1, -2}, {-3, -5});
    EXPECT_DOUBLE_EQ(finalIdealEnergy(t, 1), -5.0);
    EXPECT_DOUBLE_EQ(finalIdealEnergy(t, 2), -4.0);
}

TEST(TraceHelpers, SeriesAccessors)
{
    TrainingTrace t = traceOf({-1, -2}, {-3, -4});
    auto dev = t.deviceEnergySeries();
    auto idl = t.idealEnergySeries();
    ASSERT_EQ(dev.size(), 2u);
    EXPECT_DOUBLE_EQ(dev[1], -2.0);
    EXPECT_DOUBLE_EQ(idl[0], -3.0);
}

TEST(TraceHelpers, ErrorVsReference)
{
    EXPECT_NEAR(errorVsReference(-3.9, -4.0), 2.5, 1e-12);
    EXPECT_NEAR(errorVsReference(-4.1, -4.0), 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(errorVsReference(-4.0, -4.0), 0.0);
}

TEST(TraceHelpers, TraceOverloadUsesDeviceSeries)
{
    TrainingTrace t = traceOf({-4, -4, -4, -4}, {0, 0, 0, 0});
    EXPECT_EQ(convergenceEpoch(t, -4.0, 0.1, 2), 0);
}

} // namespace
} // namespace eqc
