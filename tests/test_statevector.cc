#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quantum/gates.h"
#include "quantum/pauli.h"
#include "quantum/statevector.h"

namespace eqc {
namespace {

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_EQ(sv.amplitude(0), Complex(1, 0));
    for (uint64_t i = 1; i < 8; ++i)
        EXPECT_EQ(sv.amplitude(i), Complex(0, 0));
}

TEST(Statevector, XFlipsQubit)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::X), {1});
    EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, 1e-12);
}

TEST(Statevector, HadamardSuperposition)
{
    Statevector sv(1);
    sv.applyGate(gateMatrix(GateType::H), {0});
    EXPECT_NEAR(sv.amplitude(0).real(), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(sv.amplitude(1).real(), 1 / std::sqrt(2.0), 1e-12);
}

TEST(Statevector, BellState)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::H), {0});
    sv.applyGate(gateMatrix(GateType::CX), {0, 1});
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(3)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, 1e-12);
}

TEST(Statevector, CxControlTargetOrder)
{
    // X on qubit 0 (control), then CX(0->1): both end up 1.
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::X), {0});
    sv.applyGate(gateMatrix(GateType::CX), {0, 1});
    EXPECT_NEAR(std::abs(sv.amplitude(3)), 1.0, 1e-12);

    // X on qubit 1 (target position), CX(0->1) should do nothing.
    Statevector sv2(2);
    sv2.applyGate(gateMatrix(GateType::X), {1});
    sv2.applyGate(gateMatrix(GateType::CX), {0, 1});
    EXPECT_NEAR(std::abs(sv2.amplitude(2)), 1.0, 1e-12);
}

TEST(Statevector, TwoQubitGateOnNonAdjacentQubits)
{
    // CX(control=2, target=0) in a 3-qubit register.
    Statevector sv(3);
    sv.applyGate(gateMatrix(GateType::X), {2});
    sv.applyGate(gateMatrix(GateType::CX), {2, 0});
    EXPECT_NEAR(std::abs(sv.amplitude(0b101)), 1.0, 1e-12);
}

TEST(Statevector, SwapGate)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::X), {0});
    sv.applyGate(gateMatrix(GateType::SWAP), {0, 1});
    EXPECT_NEAR(std::abs(sv.amplitude(2)), 1.0, 1e-12);
}

TEST(Statevector, NormPreservedByUnitaries)
{
    Rng rng(5);
    Statevector sv(4);
    for (int i = 0; i < 50; ++i) {
        int q = rng.uniformInt(0, 3);
        sv.applyGate(gateMatrix(GateType::RY, {rng.uniform(0, 6.28)}), {q});
        int q2 = (q + 1) % 4;
        sv.applyGate(gateMatrix(GateType::CX), {q, q2});
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Statevector, ProbabilitiesSumToOne)
{
    Statevector sv(3);
    sv.applyGate(gateMatrix(GateType::H), {0});
    sv.applyGate(gateMatrix(GateType::RY, {0.7}), {1});
    auto p = sv.probabilities();
    double total = 0;
    for (double v : p)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Statevector, PauliExpectationZ)
{
    Statevector sv(2);
    // |00>: <Z0> = +1.
    EXPECT_NEAR(sv.expectation(PauliString("ZI")), 1.0, 1e-12);
    sv.applyGate(gateMatrix(GateType::X), {0});
    EXPECT_NEAR(sv.expectation(PauliString("ZI")), -1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(PauliString("IZ")), 1.0, 1e-12);
}

TEST(Statevector, PauliExpectationXY)
{
    Statevector sv(1);
    sv.applyGate(gateMatrix(GateType::H), {0});
    EXPECT_NEAR(sv.expectation(PauliString("X")), 1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(PauliString("Y")), 0.0, 1e-12);
    // |+i> state: H then S gives <Y> = +1.
    sv.applyGate(gateMatrix(GateType::S), {0});
    EXPECT_NEAR(sv.expectation(PauliString("Y")), 1.0, 1e-12);
}

TEST(Statevector, BellCorrelations)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::H), {0});
    sv.applyGate(gateMatrix(GateType::CX), {0, 1});
    EXPECT_NEAR(sv.expectation(PauliString("ZZ")), 1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(PauliString("XX")), 1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(PauliString("YY")), -1.0, 1e-12);
    EXPECT_NEAR(sv.expectation(PauliString("ZI")), 0.0, 1e-12);
}

TEST(Statevector, ExpectationMatchesDenseMatrix)
{
    // Random-ish state against dense Pauli matrix contraction.
    Statevector sv(3);
    sv.applyGate(gateMatrix(GateType::RY, {0.3}), {0});
    sv.applyGate(gateMatrix(GateType::RX, {1.1}), {1});
    sv.applyGate(gateMatrix(GateType::CX), {0, 2});
    sv.applyGate(gateMatrix(GateType::RZ, {0.5}), {2});
    for (const char *label : {"XYZ", "ZZX", "YIX", "IZI"}) {
        PauliString p(label);
        CMatrix m = p.matrix();
        CVector v(sv.amplitudes());
        CVector mv = m.apply(v);
        Complex acc(0, 0);
        for (std::size_t i = 0; i < v.size(); ++i)
            acc += std::conj(v[i]) * mv[i];
        EXPECT_NEAR(sv.expectation(p), acc.real(), 1e-10) << label;
    }
}

TEST(Statevector, InnerProduct)
{
    Statevector a(1), b(1);
    a.applyGate(gateMatrix(GateType::H), {0});
    EXPECT_NEAR(std::abs(a.inner(b)), 1 / std::sqrt(2.0), 1e-12);
}

TEST(Statevector, SamplingMatchesProbabilities)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::RY, {1.0}), {0});
    Rng rng(99);
    auto counts = sv.sample(20000, rng);
    auto probs = sv.probabilities();
    for (std::size_t i = 0; i < probs.size(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / 20000.0, probs[i],
                    0.02);
}

} // namespace
} // namespace eqc
