#include <gtest/gtest.h>

#include <cmath>

#include "quantum/gates.h"

namespace eqc {
namespace {

TEST(Gates, ArityAndParamCounts)
{
    EXPECT_EQ(gateArity(GateType::H), 1);
    EXPECT_EQ(gateArity(GateType::CX), 2);
    EXPECT_EQ(gateArity(GateType::RZZ), 2);
    EXPECT_EQ(gateParamCount(GateType::RY), 1);
    EXPECT_EQ(gateParamCount(GateType::U3), 3);
    EXPECT_EQ(gateParamCount(GateType::CX), 0);
}

TEST(Gates, NameRoundTrip)
{
    for (GateType t :
         {GateType::ID, GateType::X, GateType::H, GateType::SX,
          GateType::RZ, GateType::CX, GateType::SWAP, GateType::RZZ,
          GateType::MEASURE}) {
        EXPECT_EQ(gateFromName(gateName(t)), t);
    }
}

TEST(Gates, AllUnitariesAreUnitary)
{
    for (GateType t :
         {GateType::ID, GateType::X, GateType::Y, GateType::Z, GateType::H,
          GateType::S, GateType::SDG, GateType::T, GateType::TDG,
          GateType::SX, GateType::CX, GateType::CZ, GateType::SWAP}) {
        EXPECT_TRUE(gateMatrix(t).isUnitary()) << gateName(t);
    }
    EXPECT_TRUE(gateMatrix(GateType::RX, {0.37}).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::RY, {1.2}).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::RZ, {-2.1}).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::RZZ, {0.9}).isUnitary());
    EXPECT_TRUE(gateMatrix(GateType::U3, {0.3, 1.1, -0.7}).isUnitary());
}

TEST(Gates, SxSquaredIsX)
{
    CMatrix sx = gateMatrix(GateType::SX);
    EXPECT_TRUE((sx * sx).equalsUpToPhase(gateMatrix(GateType::X)));
}

TEST(Gates, SIsSqrtZ)
{
    CMatrix s = gateMatrix(GateType::S);
    EXPECT_TRUE((s * s).equalsUpToPhase(gateMatrix(GateType::Z)));
    EXPECT_TRUE((s * gateMatrix(GateType::SDG))
                    .equalsUpToPhase(CMatrix::identity(2)));
}

TEST(Gates, RotationComposition)
{
    CMatrix a = gateMatrix(GateType::RY, {0.4});
    CMatrix b = gateMatrix(GateType::RY, {0.6});
    EXPECT_LT((a * b).distance(gateMatrix(GateType::RY, {1.0})), 1e-12);
}

TEST(Gates, RxPiIsX)
{
    EXPECT_TRUE(gateMatrix(GateType::RX, {kPi})
                    .equalsUpToPhase(gateMatrix(GateType::X)));
}

TEST(Gates, RzPiIsZ)
{
    EXPECT_TRUE(gateMatrix(GateType::RZ, {kPi})
                    .equalsUpToPhase(gateMatrix(GateType::Z)));
}

TEST(Gates, U3MatchesEulerForm)
{
    double theta = 0.8, phi = 0.3, lambda = -1.1;
    CMatrix u = gateMatrix(GateType::U3, {theta, phi, lambda});
    CMatrix rzphi = gateMatrix(GateType::RZ, {phi});
    CMatrix rytheta = gateMatrix(GateType::RY, {theta});
    CMatrix rzlambda = gateMatrix(GateType::RZ, {lambda});
    EXPECT_TRUE(u.equalsUpToPhase(rzphi * rytheta * rzlambda));
}

TEST(Gates, CxTruthTable)
{
    // Sub-index j = control + 2*target.
    CMatrix cx = gateMatrix(GateType::CX);
    // control=0: identity on target.
    EXPECT_EQ(cx(0, 0), Complex(1, 0)); // |c0 t0> stays
    EXPECT_EQ(cx(2, 2), Complex(1, 0)); // |c0 t1> stays
    // control=1: target flips.
    EXPECT_EQ(cx(3, 1), Complex(1, 0)); // |c1 t0> -> |c1 t1>
    EXPECT_EQ(cx(1, 3), Complex(1, 0));
}

TEST(Gates, RzzDiagonalSigns)
{
    CMatrix m = gateMatrix(GateType::RZZ, {kPi / 2});
    Complex em = std::exp(Complex(0, -kPi / 4));
    Complex ep = std::exp(Complex(0, kPi / 4));
    EXPECT_NEAR(std::abs(m(0, 0) - em), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(1, 1) - ep), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(2, 2) - ep), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m(3, 3) - em), 0.0, 1e-12);
}

TEST(Gates, BasisGatePredicate)
{
    EXPECT_TRUE(isBasisGate(GateType::CX));
    EXPECT_TRUE(isBasisGate(GateType::RZ));
    EXPECT_TRUE(isBasisGate(GateType::SX));
    EXPECT_TRUE(isBasisGate(GateType::X));
    EXPECT_TRUE(isBasisGate(GateType::ID));
    EXPECT_FALSE(isBasisGate(GateType::H));
    EXPECT_FALSE(isBasisGate(GateType::RY));
    EXPECT_FALSE(isBasisGate(GateType::SWAP));
}

TEST(Gates, VirtualGatePredicate)
{
    EXPECT_TRUE(isVirtualGate(GateType::RZ));
    EXPECT_FALSE(isVirtualGate(GateType::SX));
    EXPECT_FALSE(isVirtualGate(GateType::CX));
}

} // namespace
} // namespace eqc
