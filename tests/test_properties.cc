/**
 * @file
 * Parameterized property tests: invariants swept across parameter
 * grids, random circuits and the whole device catalog.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.h"
#include "common/rng.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "device/catalog.h"
#include "quantum/density_matrix.h"
#include "vqa/expectation.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

// ---------------------------------------------------------------------
// Channel CPTP sweeps.
// ---------------------------------------------------------------------

class ChannelCptpSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelCptpSweep, AllChannelsArePhysical)
{
    double p = GetParam();
    EXPECT_TRUE(depolarizing1q(p).isCPTP()) << p;
    EXPECT_TRUE(depolarizing2q(p).isCPTP()) << p;
    EXPECT_TRUE(amplitudeDamping(p).isCPTP()) << p;
    EXPECT_TRUE(phaseDamping(p).isCPTP()) << p;
}

TEST_P(ChannelCptpSweep, DepolarizingContractsTracelessPart)
{
    double p = GetParam();
    if (p > 1.0)
        return;
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::RY, {0.7}), {0});
    double zBefore = dm.expectation(PauliString("Z"));
    dm.applyDepolarizing1q(p, 0);
    EXPECT_NEAR(dm.expectation(PauliString("Z")), (1.0 - p) * zBefore,
                1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ChannelCptpSweep,
                         ::testing::Values(0.0, 1e-4, 1e-3, 0.01, 0.05,
                                           0.1, 0.3, 0.7, 1.0));

// ---------------------------------------------------------------------
// Thermal-relaxation physics across T1/T2/time grids.
// ---------------------------------------------------------------------

struct ThermalCase
{
    double t1, t2, time;
};

class ThermalSweep : public ::testing::TestWithParam<ThermalCase>
{
};

TEST_P(ThermalSweep, CoherenceAndPopulationDecayExactly)
{
    auto [t1, t2, time] = GetParam();
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    dm.applyChannel(thermalRelaxation(t1, t2, time), {0});
    double t2eff = std::min(t2, 2.0 * t1);
    EXPECT_NEAR(dm.expectation(PauliString("X")),
                std::exp(-time / t2eff), 1e-9);

    DensityMatrix excited(1);
    excited.applyUnitary(gateMatrix(GateType::X), {0});
    excited.applyChannel(thermalRelaxation(t1, t2, time), {0});
    // P(1) = exp(-t/T1).
    EXPECT_NEAR(excited.probabilities()[1], std::exp(-time / t1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThermalSweep,
    ::testing::Values(ThermalCase{100, 80, 0.1}, ThermalCase{100, 80, 5},
                      ThermalCase{50, 90, 1}, ThermalCase{30, 60, 10},
                      ThermalCase{200, 150, 0.035},
                      ThermalCase{40, 20, 2}));

// ---------------------------------------------------------------------
// Basis decomposition over random single-qubit unitaries.
// ---------------------------------------------------------------------

class ZsxDecomposition : public ::testing::TestWithParam<int>
{
};

TEST_P(ZsxDecomposition, RandomRotationSequencesSurviveTranslation)
{
    Rng rng(1000 + GetParam());
    QuantumCircuit c(2, 0);
    for (int g = 0; g < 12; ++g) {
        int q = rng.uniformInt(0, 1);
        switch (rng.uniformInt(0, 4)) {
          case 0:
            c.rx(q, ParamExpr::constant(rng.uniform(-3.1, 3.1)));
            break;
          case 1:
            c.ry(q, ParamExpr::constant(rng.uniform(-3.1, 3.1)));
            break;
          case 2:
            c.rz(q, ParamExpr::constant(rng.uniform(-3.1, 3.1)));
            break;
          case 3:
            c.h(q);
            break;
          default:
            c.cx(q, 1 - q);
        }
    }
    QuantumCircuit d = decomposeToBasis(c);
    EXPECT_TRUE(isInBasis(d));
    Statevector s1 = simulateIdeal(c);
    Statevector s2 = simulateIdeal(d);
    EXPECT_NEAR(std::abs(s1.inner(s2)), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZsxDecomposition, ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Readout error and its mitigation are exact inverses.
// ---------------------------------------------------------------------

class ReadoutRoundTrip
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(ReadoutRoundTrip, MitigationInvertsConfusion)
{
    auto [p01, p10] = GetParam();
    Rng rng(7);
    std::vector<double> probs(8);
    double total = 0;
    for (double &p : probs) {
        p = rng.uniform();
        total += p;
    }
    for (double &p : probs)
        p /= total;
    std::vector<double> original = probs;
    for (int q = 0; q < 3; ++q)
        applyReadoutError(probs, q, {p01, p10});
    for (int q = 0; q < 3; ++q)
        applyReadoutMitigation(probs, q, {p01, p10});
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(probs[i], original[i], 1e-10) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Confusions, ReadoutRoundTrip,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.01, 0.02},
                      std::pair{0.05, 0.08}, std::pair{0.1, 0.05},
                      std::pair{0.2, 0.25}));

// ---------------------------------------------------------------------
// Whole-catalog sweeps: every device hosts the paper workloads.
// ---------------------------------------------------------------------

class CatalogSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CatalogSweep, Fig8AnsatzTranspilesAndRuns)
{
    Device d = deviceByName(GetParam());
    VqaProblem p = makeHeisenbergVqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    ASSERT_EQ(compiled.size(), 3u);
    for (const TranspiledCircuit &tc : compiled) {
        EXPECT_TRUE(respectsCoupling(tc.physical, d.coupling));
        EXPECT_TRUE(isInBasis(tc.physical));
        double pc = pCorrect(circuitQuality(tc), d.baseCalibration);
        EXPECT_GT(pc, 0.0);
        EXPECT_LT(pc, 1.0);
    }
    SimulatedQpu qpu(d, 3);
    Rng rng(3);
    EnergyEstimate e = est.estimate(qpu, compiled, p.initialParams,
                                    8192, 1.0, rng, ShotMode::Exact);
    // Noisy estimate is bounded by the Hamiltonian's spectral range.
    EXPECT_LT(std::fabs(e.energy), p.hamiltonian.coefficientNorm());
    EXPECT_EQ(e.circuitsRun, 3);
}

TEST_P(CatalogSweep, ProbabilitiesStayNormalizedUnderNoise)
{
    Device d = deviceByName(GetParam());
    QuantumCircuit ghz = ghzCircuit(std::min(5, d.numQubits));
    TranspiledCircuit tc = transpile(ghz, d.coupling);
    SimulatedQpu qpu(d, 3);
    Rng rng(3);
    for (double t : {0.5, 20.0, 100.0}) {
        JobResult r = qpu.execute(tc, {}, 0, t, rng, false);
        double total = 0;
        for (double p : r.probabilities) {
            EXPECT_GE(p, -1e-12);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, CatalogSweep,
    ::testing::Values("ibmq_lima", "ibmqx2", "ibmq_belem", "ibmq_quito",
                      "ibmq_manila", "ibmq_santiago", "ibmq_bogota",
                      "ibm_lagos", "ibmq_casablanca", "ibmq_toronto",
                      "ibmq_manhattan"));

// ---------------------------------------------------------------------
// Weight normalizer properties across bounds.
// ---------------------------------------------------------------------

class BoundsSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(BoundsSweep, WeightsCoverAndRespectBounds)
{
    auto [lo, hi] = GetParam();
    WeightNormalizer n({lo, hi});
    Rng rng(4);
    for (int c = 0; c < 8; ++c)
        n.update(c, rng.uniform(0.1, 0.9));
    double seenLo = 1e9, seenHi = -1e9;
    for (int c = 0; c < 8; ++c) {
        double w = n.weightFor(c);
        EXPECT_GE(w, lo - 1e-12);
        EXPECT_LE(w, hi + 1e-12);
        seenLo = std::min(seenLo, w);
        seenHi = std::max(seenHi, w);
    }
    // Min/max rescaling pins both ends of the range.
    EXPECT_NEAR(seenLo, lo, 1e-12);
    EXPECT_NEAR(seenHi, hi, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundsSweep,
                         ::testing::Values(std::pair{0.75, 1.25},
                                           std::pair{0.5, 1.5},
                                           std::pair{0.25, 1.75},
                                           std::pair{0.9, 1.1}));

// ---------------------------------------------------------------------
// Readout mitigation leaves exactly the stale-calibration residual.
// ---------------------------------------------------------------------

TEST(Mitigation, ExactWhenCalibrationFresh)
{
    // A device with readout error but no drift: reported == actual, so
    // mitigation must fully remove the readout bias.
    Device d = deviceByName("ibmq_quito");
    d.drift.errorDriftPerHour = 0.0;
    d.drift.latentSigma = 0.0;
    d.drift.calQualitySigma = 0.0;
    // Kill every non-readout noise source so the only bias is SPAM.
    for (auto &q : d.baseCalibration.qubits) {
        q.gate1qError = 0.0;
        q.coherentRxRad = 0.0;
        q.t1Us = 1e9;
        q.t2Us = 1e9;
    }
    for (auto &[k, v] : d.baseCalibration.cxError)
        v = 0.0;
    for (auto &[k, v] : d.baseCalibration.cxPhaseRad)
        v = 0.0;

    VqaProblem p = makeHeisenbergVqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    SimulatedQpu qpu(d, 1);
    auto compiled = est.compileFor(d.coupling);
    Rng rng(1);
    double truth = idealEnergy(p.ansatz, p.hamiltonian, p.initialParams);
    EnergyEstimate raw =
        est.estimate(qpu, compiled, p.initialParams, 0, 1.0, rng,
                     ShotMode::Exact, /*mitigateReadout=*/false);
    EnergyEstimate fixed =
        est.estimate(qpu, compiled, p.initialParams, 0, 1.0, rng,
                     ShotMode::Exact, /*mitigateReadout=*/true);
    EXPECT_GT(std::fabs(raw.energy - truth), 0.02);
    EXPECT_NEAR(fixed.energy, truth, 1e-9);
}

TEST(Mitigation, ResidualRemainsWhenCalibrationStale)
{
    Device d = deviceByName("ibmq_casablanca");
    VqaProblem p = makeHeisenbergVqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    SimulatedQpu qpu(d, 1);
    auto compiled = est.compileFor(d.coupling);
    Rng rng(1);
    // Late in a calibration cycle the actual readout has drifted away
    // from the reported one: mitigation helps but cannot be exact.
    double calTime = qpu.tracker().lastCalibrationTime(30.0);
    double truth = idealEnergy(p.ansatz, p.hamiltonian, p.initialParams);
    EnergyEstimate raw =
        est.estimate(qpu, compiled, p.initialParams, 0, calTime + 20.0,
                     rng, ShotMode::Exact, false);
    EnergyEstimate fixed =
        est.estimate(qpu, compiled, p.initialParams, 0, calTime + 20.0,
                     rng, ShotMode::Exact, true);
    EXPECT_LT(std::fabs(fixed.energy - truth),
              std::fabs(raw.energy - truth));
    // But a residual persists (drifted readout + depolarization).
    EXPECT_GT(std::fabs(fixed.energy - truth), 1e-4);
}

} // namespace
} // namespace eqc
