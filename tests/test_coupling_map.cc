#include <gtest/gtest.h>

#include "transpile/coupling_map.h"

namespace eqc {
namespace {

TEST(CouplingMap, LineTopology)
{
    CouplingMap m = CouplingMap::line(5);
    EXPECT_EQ(m.numQubits(), 5);
    EXPECT_TRUE(m.connected(0, 1));
    EXPECT_TRUE(m.connected(3, 4));
    EXPECT_FALSE(m.connected(0, 2));
    EXPECT_EQ(m.distance(0, 4), 4);
    EXPECT_TRUE(m.isConnectedGraph());
}

TEST(CouplingMap, RingTopology)
{
    CouplingMap m = CouplingMap::ring(4);
    EXPECT_TRUE(m.connected(0, 3));
    EXPECT_EQ(m.distance(0, 2), 2);
    EXPECT_EQ(m.degree(0), 2);
}

TEST(CouplingMap, TShapeMatchesFig3)
{
    CouplingMap m = CouplingMap::tShape();
    EXPECT_EQ(m.numQubits(), 5);
    EXPECT_TRUE(m.connected(0, 1));
    EXPECT_TRUE(m.connected(1, 2));
    EXPECT_TRUE(m.connected(1, 3));
    EXPECT_TRUE(m.connected(3, 4));
    EXPECT_FALSE(m.connected(2, 3));
    EXPECT_EQ(m.distance(2, 4), 3);
}

TEST(CouplingMap, BowtieIsDenser)
{
    CouplingMap bow = CouplingMap::bowtie();
    CouplingMap line = CouplingMap::line(5);
    EXPECT_GT(bow.averageDegree(), line.averageDegree());
    // Center qubit connects both triangles.
    EXPECT_EQ(bow.degree(2), 4);
    // Max distance in the bowtie is 2.
    for (int a = 0; a < 5; ++a)
        for (int b = 0; b < 5; ++b)
            EXPECT_LE(bow.distance(a, b), 2);
}

TEST(CouplingMap, HShape)
{
    CouplingMap m = CouplingMap::hShape();
    EXPECT_EQ(m.numQubits(), 7);
    EXPECT_TRUE(m.isConnectedGraph());
    EXPECT_EQ(m.degree(1), 3);
    EXPECT_EQ(m.degree(5), 3);
}

TEST(CouplingMap, HeavyHex27IsConnectedAndSparse)
{
    CouplingMap m = CouplingMap::heavyHex27();
    EXPECT_EQ(m.numQubits(), 27);
    EXPECT_TRUE(m.isConnectedGraph());
    EXPECT_EQ(m.edges().size(), 28u);
    // Heavy-hex degree never exceeds 3.
    for (int q = 0; q < 27; ++q)
        EXPECT_LE(m.degree(q), 3) << q;
}

TEST(CouplingMap, HeavyHex65IsConnectedAndSparse)
{
    CouplingMap m = CouplingMap::heavyHex65();
    EXPECT_EQ(m.numQubits(), 65);
    EXPECT_TRUE(m.isConnectedGraph());
    for (int q = 0; q < 65; ++q)
        EXPECT_LE(m.degree(q), 3) << q;
}

TEST(CouplingMap, ShortestPathEndpointsAndAdjacency)
{
    CouplingMap m = CouplingMap::heavyHex27();
    auto path = m.shortestPath(0, 26);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 26);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, m.distance(0, 26));
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(m.connected(path[i], path[i + 1]));
}

TEST(CouplingMap, DistanceSymmetry)
{
    CouplingMap m = CouplingMap::heavyHex27();
    for (int a = 0; a < 27; a += 3)
        for (int b = 0; b < 27; b += 5)
            EXPECT_EQ(m.distance(a, b), m.distance(b, a));
}

} // namespace
} // namespace eqc
