/**
 * @file
 * Observability tests: the lock-free metrics registry (exact totals
 * under thread contention, `le` bucket boundaries, labelled series,
 * exposition formats), the record-stream tracer (span chains that
 * telescope admit->finalize bitwise, byte-identity of a journal with
 * a live collector attached), and the trace_report analysis golden
 * against a committed mini journal.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/task_pool.h"
#include "device/catalog.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replay/journal.h"
#include "serve/router.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

using namespace eqc::serve;

// ---------------------------------------------------------------------------
// MetricsRegistry: lock-free instruments
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersExactUnderContention)
{
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 100000;

    obs::MetricsRegistry reg;
    obs::Counter *shared = reg.counter("eqc_test_shared_total");
    obs::Gauge *level = reg.gauge("eqc_test_level");
    std::vector<obs::Counter *> mine(kThreads);
    for (int t = 0; t < kThreads; ++t)
        mine[static_cast<std::size_t>(t)] = reg.counter(
            "eqc_test_thread_total", "", "t=\"" + std::to_string(t) + "\"");

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            obs::Counter *own = mine[static_cast<std::size_t>(t)];
            for (uint64_t i = 0; i < kPerThread; ++i) {
                shared->inc();
                own->inc();
                level->add(1.0);
            }
        });
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(shared->value(), kThreads * kPerThread);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mine[static_cast<std::size_t>(t)]->value(), kPerThread);
    // Integer-valued gauge adds stay exact well below 2^53.
    EXPECT_DOUBLE_EQ(level->value(),
                     static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistry, ReregistrationReturnsTheSameInstrument)
{
    obs::MetricsRegistry reg;
    obs::Counter *a = reg.counter("eqc_test_total", "events");
    obs::Counter *b = reg.counter("eqc_test_total");
    EXPECT_EQ(a, b);
    ++*a;
    *b += 2;
    EXPECT_EQ(a->value(), 3u);

    // Labels split the identity: same name, distinct series.
    obs::Counter *n0 = reg.counter("eqc_test_total", "", "node=\"0\"");
    obs::Counter *n1 = reg.counter("eqc_test_total", "", "node=\"1\"");
    EXPECT_NE(n0, a);
    EXPECT_NE(n0, n1);
    n0->inc(5);
    EXPECT_EQ(n0->value(), 5u);
    EXPECT_EQ(n1->value(), 0u);

    // Snapshot orders by (name, labels) so scrapes diff cleanly.
    obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 3u);
    EXPECT_EQ(snap.samples[0].labels, "");
    EXPECT_EQ(snap.samples[1].labels, "node=\"0\"");
    EXPECT_EQ(snap.samples[2].labels, "node=\"1\"");
    EXPECT_DOUBLE_EQ(snap.samples[1].value, 5.0);
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreLe)
{
    obs::MetricsRegistry reg;
    obs::Histogram *h =
        reg.histogram("eqc_test_hist", {1.0, 2.0, 5.0});

    // Boundary values land in their own bucket (`x <= bound`).
    for (double x : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0})
        h->observe(x);

    std::vector<uint64_t> buckets = h->bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + the implicit +inf
    EXPECT_EQ(buckets[0], 2u);     // 0.5, 1.0
    EXPECT_EQ(buckets[1], 2u);     // 1.5, 2.0
    EXPECT_EQ(buckets[2], 1u);     // 5.0
    EXPECT_EQ(buckets[3], 1u);     // 7.0
    EXPECT_EQ(h->count(), 6u);
    EXPECT_DOUBLE_EQ(h->sum(), 17.0);

    obs::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 1u);
    EXPECT_EQ(snap.samples[0].kind, obs::MetricSample::KindHistogram);
    EXPECT_EQ(snap.samples[0].buckets, buckets);
    EXPECT_EQ(snap.samples[0].count, 6u);
}

TEST(Exposition, PrometheusGroupsFamiliesAcrossMergedSources)
{
    obs::MetricsRegistry a, b;
    a.counter("eqc_test_total", "events")->inc(3);
    a.histogram("eqc_test_wait", {0.1, 1.0})->observe(0.05);
    b.counter("eqc_test_total", "events")->inc(4);

    obs::Snapshot merged = obs::merge(
        {{"node=\"0\"", a.snapshot()}, {"node=\"1\"", b.snapshot()}});
    std::string text = obs::toPrometheus(merged);

    // One HELP/TYPE header per family even though two sources
    // contributed samples of eqc_test_total.
    auto occurrences = [&text](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t at = text.find(needle); at != std::string::npos;
             at = text.find(needle, at + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(occurrences("# TYPE eqc_test_total counter"), 1u);
    EXPECT_EQ(occurrences("# TYPE eqc_test_wait histogram"), 1u);
    EXPECT_NE(text.find("eqc_test_total{node=\"0\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("eqc_test_total{node=\"1\"} 4"),
              std::string::npos);
    // Cumulative le rendering ends with the +inf bucket == count.
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

    std::string json = obs::toJson(merged);
    EXPECT_NE(json.find("\"name\": \"eqc_test_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"labels\": \"node=\\\"0\\\"\""),
              std::string::npos);

    // Counter diff against an older scrape of the same fleet.
    b.counter("eqc_test_total")->inc(10);
    obs::Snapshot newer = obs::merge(
        {{"node=\"0\"", a.snapshot()}, {"node=\"1\"", b.snapshot()}});
    obs::Snapshot delta = obs::diff(newer, merged);
    bool found = false;
    for (const obs::MetricSample &s : delta.samples)
        if (s.name == "eqc_test_total" && s.labels == "node=\"1\"") {
            found = true;
            EXPECT_DOUBLE_EQ(s.value, 10.0);
        }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Trace fixtures (mirrors test_router's fleet helpers)
// ---------------------------------------------------------------------------

std::vector<Device>
smallEnsemble(int shift)
{
    std::vector<Device> catalog = evaluationEnsemble();
    return {catalog[static_cast<std::size_t>(shift) % catalog.size()],
            catalog[static_cast<std::size_t>(shift + 1) %
                    catalog.size()]};
}

ServiceOptions
nodeOptions(uint64_t seed = 11)
{
    ServiceOptions o;
    o.seed = seed;
    o.scheduler.minShardShots = 32;
    return o;
}

JobRequest
requestFor(WorkloadId wl, const VqaProblem &prob, int tenant,
           double bindShift, int shots = 128)
{
    JobRequest req;
    req.tenantId = tenant;
    req.workload = wl;
    req.params = prob.initialParams;
    req.params[0] += bindShift;
    req.shots = shots;
    return req;
}

/** One deterministic mixed routed schedule against @p router. */
void
runSchedule(Router &router, WorkloadId wl, const VqaProblem &prob)
{
    Rng rng = Rng(404).fork("schedule");
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 10; ++i) {
            JobRequest req =
                requestFor(wl, prob, i % 4, 0.05 * (i % 5),
                           64 * rng.uniformInt(1, 3));
            req.priority = rng.uniformInt(0, 2);
            req.submitH = router.node(0).loop().now() +
                          rng.uniform(0.0, 0.05);
            router.submit(req);
        }
        router.drain();
    }
}

// ---------------------------------------------------------------------------
// TraceBuilder: span chains under the virtual clock
// ---------------------------------------------------------------------------

TEST(Trace, JobSpansChainBitwiseAndPartitionTheCriticalPath)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    Router router;
    for (int i = 0; i < 3; ++i)
        router.addNode(smallEnsemble(i), nodeOptions());
    const WorkloadId wl =
        router.registerWorkload(prob.ansatz, prob.hamiltonian);

    obs::TraceSink sink; // pure live collector, no inner journal
    router.setJournalSink(&sink);
    runSchedule(router, wl, prob);
    router.setJournalSink(nullptr);

    const obs::TraceBuilder &b = sink.builder();
    EXPECT_TRUE(b.problems().empty())
        << (b.problems().empty() ? "" : b.problems().front());
    EXPECT_EQ(b.openJobs(), 0u);
    ASSERT_EQ(b.paths().size(), 20u);

    for (const obs::JobPath &p : b.paths()) {
        EXPECT_TRUE(p.chainExact)
            << "job " << p.jobId << " spans do not chain";
        // The stage partition covers [admit, max(admit, finalize)].
        EXPECT_GE(p.queueWaitH, 0.0);
        EXPECT_GE(p.executeH, 0.0);
        EXPECT_GE(p.aggregateH, 0.0);
        EXPECT_GE(p.totalH(), 0.0);
    }

    // The per-job span sequence is ordered: each job-level span ends
    // bitwise where the next one begins (telescoping sum).
    std::map<uint64_t, std::vector<const obs::TraceSpan *>> byJob;
    for (const obs::TraceSpan &s : b.spans())
        if (s.name != "shard")
            byJob[s.jobId].push_back(&s);
    ASSERT_EQ(byJob.size(), 20u);
    for (const auto &kv : byJob) {
        const std::vector<const obs::TraceSpan *> &spans = kv.second;
        for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
            EXPECT_TRUE(replay::bitEqual(spans[i]->endH,
                                         spans[i + 1]->beginH))
                << "job " << kv.first << " span " << spans[i]->name
                << " ends " << replay::hexBits(spans[i]->endH)
                << " but " << spans[i + 1]->name << " begins "
                << replay::hexBits(spans[i + 1]->beginH);
            EXPECT_LE(spans[i]->beginH, spans[i]->endH);
        }
    }

    // analyze() aggregates the same chain verdict.
    obs::TraceAnalysis a = obs::analyze(b);
    EXPECT_TRUE(a.criticalPathsExact);
    EXPECT_EQ(a.jobs, 20u);
    EXPECT_FALSE(a.breakdown.empty());
    EXPECT_FALSE(a.members.empty());

    // The report and Chrome export render without structural gaps.
    std::string report = obs::renderReport(a);
    EXPECT_NE(report.find("critical paths: exact"), std::string::npos);
    std::string chrome = obs::chromeTrace(b);
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Byte-identity: a live collector never perturbs the journal
// ---------------------------------------------------------------------------

TEST(Trace, CollectorAttachedJournalIsByteIdentical)
{
    VqaProblem prob = makeHeisenbergVqe(7);

    auto run = [&prob](bool collect, std::string *bytes,
                       std::size_t *paths) {
        Router router;
        for (int i = 0; i < 3; ++i)
            router.addNode(smallEnsemble(i), nodeOptions());
        const WorkloadId wl =
            router.registerWorkload(prob.ansatz, prob.hamiltonian);

        replay::EventJournal journal;
        obs::TraceSink sink(&journal);
        router.setJournalSink(collect
                                  ? static_cast<replay::JournalSink *>(
                                        &sink)
                                  : &journal);
        runSchedule(router, wl, prob);
        router.setJournalSink(nullptr);

        *bytes = journal.serialize();
        if (paths)
            *paths = sink.builder().paths().size();
    };

    std::string bare, collected;
    std::size_t paths = 0;
    run(false, &bare, nullptr);
    run(true, &collected, &paths);

    ASSERT_FALSE(bare.empty());
    EXPECT_EQ(bare, collected)
        << "attaching the trace collector changed the journal bytes";
    EXPECT_EQ(paths, 20u);
}

// ---------------------------------------------------------------------------
// Router latency aggregation is deterministic (merge, not re-sample)
// ---------------------------------------------------------------------------

TEST(Trace, RouterLatencyStatsAreDeterministic)
{
    VqaProblem prob = makeHeisenbergVqe(7);
    Router router;
    for (int i = 0; i < 3; ++i)
        router.addNode(smallEnsemble(i), nodeOptions());
    const WorkloadId wl =
        router.registerWorkload(prob.ansatz, prob.hamiltonian);
    runSchedule(router, wl, prob);

    stats::Percentiles a = router.latencyStats();
    stats::Percentiles b = router.latencyStats();
    EXPECT_EQ(a.count(), 20u);
    EXPECT_EQ(a.count(), b.count());
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_TRUE(replay::bitEqual(a.quantile(q), b.quantile(q)))
            << "latencyStats() is not a pure merge at q=" << q;
}

// ---------------------------------------------------------------------------
// Golden: committed mini journal through the analyzer
// ---------------------------------------------------------------------------

std::string
readDataFile(const std::string &name)
{
    std::ifstream in(std::string(EQC_TEST_DATA_DIR) + "/" + name,
                     std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(TraceReport, GoldenMiniJournal)
{
    const std::string journalText = readDataFile("mini_journal.jsonl");
    ASSERT_FALSE(journalText.empty())
        << "tests/data/mini_journal.jsonl missing";

    std::string err;
    replay::EventJournal journal =
        replay::EventJournal::parse(journalText, &err);
    ASSERT_TRUE(err.empty()) << err;

    obs::TraceBuilder builder;
    for (const replay::EventRecord &r : journal.records())
        builder.add(r);
    obs::TraceAnalysis a = obs::analyze(builder);

    EXPECT_TRUE(a.problems.empty())
        << (a.problems.empty() ? "" : a.problems.front());
    EXPECT_TRUE(a.criticalPathsExact);
    EXPECT_GT(a.jobs, 0u);
    EXPECT_EQ(a.openJobs, 0u);

    const std::string golden = readDataFile("mini_report.txt");
    ASSERT_FALSE(golden.empty())
        << "tests/data/mini_report.txt missing";
    EXPECT_EQ(obs::renderReport(a), golden)
        << "analyzer output drifted from the committed golden report; "
           "regenerate with: trace_report tests/data/mini_journal.jsonl "
           "> tests/data/mini_report.txt";
}

} // namespace
} // namespace eqc
