#include <gtest/gtest.h>

#include <cmath>

#include "quantum/density_matrix.h"
#include "quantum/gates.h"
#include "quantum/pauli.h"
#include "quantum/statevector.h"

namespace eqc {
namespace {

TEST(DensityMatrix, InitialStatePure)
{
    DensityMatrix dm(2);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
    EXPECT_EQ(dm.element(0, 0), Complex(1, 0));
}

TEST(DensityMatrix, UnitaryMatchesStatevector)
{
    DensityMatrix dm(3);
    Statevector sv(3);
    auto apply = [&](GateType t, std::vector<int> qs,
                     std::vector<double> ps = {}) {
        CMatrix m = gateMatrix(t, ps);
        dm.applyUnitary(m, qs);
        sv.applyGate(m, qs);
    };
    apply(GateType::H, {0});
    apply(GateType::CX, {0, 1});
    apply(GateType::RY, {2}, {0.83});
    apply(GateType::CX, {2, 0});
    apply(GateType::RZ, {1}, {1.31});

    auto pSv = sv.probabilities();
    auto pDm = dm.probabilities();
    for (std::size_t i = 0; i < pSv.size(); ++i)
        EXPECT_NEAR(pDm[i], pSv[i], 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);

    for (const char *label : {"ZZI", "XIX", "IYZ", "XXX"}) {
        PauliString p(label);
        EXPECT_NEAR(dm.expectation(p), sv.expectation(p), 1e-10) << label;
    }
}

TEST(DensityMatrix, FromStatevector)
{
    Statevector sv(2);
    sv.applyGate(gateMatrix(GateType::H), {0});
    sv.applyGate(gateMatrix(GateType::CX), {0, 1});
    DensityMatrix dm = DensityMatrix::fromStatevector(sv);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
    EXPECT_NEAR(dm.expectation(PauliString("ZZ")), 1.0, 1e-12);
    EXPECT_NEAR(dm.element(0, 3).real(), 0.5, 1e-12);
}

TEST(DensityMatrix, DepolarizingShrinksBloch)
{
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    EXPECT_NEAR(dm.expectation(PauliString("X")), 1.0, 1e-12);
    double lambda = 0.2;
    dm.applyChannel(depolarizing1q(lambda), {0});
    // rho -> (1-l) rho + l I/2: Bloch vector scales by (1-l).
    EXPECT_NEAR(dm.expectation(PauliString("X")), 1.0 - lambda, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FullDepolarizationIsMaximallyMixed)
{
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    dm.applyChannel(depolarizing1q(1.0), {0});
    EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
    EXPECT_NEAR(dm.expectation(PauliString("X")), 0.0, 1e-12);
    EXPECT_NEAR(dm.expectation(PauliString("Z")), 0.0, 1e-12);
}

TEST(DensityMatrix, TwoQubitDepolarizing)
{
    DensityMatrix dm(2);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    dm.applyUnitary(gateMatrix(GateType::CX), {0, 1});
    double lambda = 0.1;
    dm.applyChannel(depolarizing2q(lambda), {0, 1});
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    EXPECT_NEAR(dm.expectation(PauliString("ZZ")), 1.0 - lambda, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::X), {0});
    EXPECT_NEAR(dm.expectation(PauliString("Z")), -1.0, 1e-12);
    dm.applyChannel(amplitudeDamping(0.3), {0});
    // P(1) = 0.7 -> <Z> = 0.3 - 0.7 = -0.4.
    EXPECT_NEAR(dm.expectation(PauliString("Z")), -0.4, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, ChannelOnSubsetOfQubits)
{
    DensityMatrix dm(3);
    dm.applyUnitary(gateMatrix(GateType::X), {1});
    dm.applyChannel(amplitudeDamping(1.0), {1});
    // Full decay returns qubit 1 to |0>.
    EXPECT_NEAR(dm.expectation(PauliString("IZI")), 1.0, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, ThermalRelaxationConvergesToGround)
{
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::X), {0});
    // Gate time >> T1: state decays to |0>.
    dm.applyChannel(thermalRelaxation(50.0, 70.0, 5000.0), {0});
    EXPECT_NEAR(dm.expectation(PauliString("Z")), 1.0, 1e-3);
}

TEST(DensityMatrix, ThermalRelaxationDephasesCoherence)
{
    DensityMatrix dm(1);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    double t1 = 100.0, t2 = 60.0, t = 10.0;
    dm.applyChannel(thermalRelaxation(t1, t2, t), {0});
    // Coherence decays with exp(-t/T2); population with exp(-t/T1).
    EXPECT_NEAR(dm.expectation(PauliString("X")), std::exp(-t / t2), 1e-9);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

namespace {

/** Random-ish 3-qubit mixed state shared by the fast-path tests. */
DensityMatrix
testState()
{
    DensityMatrix dm(3);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    dm.applyUnitary(gateMatrix(GateType::RY, {0.7}), {1});
    dm.applyUnitary(gateMatrix(GateType::CX), {0, 2});
    dm.applyUnitary(gateMatrix(GateType::RX, {1.3}), {2});
    dm.applyChannel(depolarizing1q(0.05), {1}); // slightly mixed
    return dm;
}

void
expectSameState(const DensityMatrix &a, const DensityMatrix &b)
{
    for (const char *label :
         {"XII", "IYI", "IIZ", "XYI", "IZX", "ZIZ", "XYZ", "ZZZ"}) {
        PauliString p(label);
        EXPECT_NEAR(a.expectation(p), b.expectation(p), 1e-12) << label;
    }
    auto pa = a.probabilities();
    auto pb = b.probabilities();
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

} // namespace

TEST(DensityMatrix, FastDepolarizing1qMatchesKraus)
{
    for (double lambda : {0.01, 0.1, 0.5}) {
        DensityMatrix viaKraus = testState();
        DensityMatrix viaFast = testState();
        viaKraus.applyChannel(depolarizing1q(lambda), {1});
        viaFast.applyDepolarizing1q(lambda, 1);
        expectSameState(viaKraus, viaFast);
    }
}

TEST(DensityMatrix, FastDepolarizing2qMatchesKraus)
{
    for (double lambda : {0.02, 0.15}) {
        DensityMatrix viaKraus = testState();
        DensityMatrix viaFast = testState();
        viaKraus.applyChannel(depolarizing2q(lambda), {0, 2});
        viaFast.applyDepolarizing2q(lambda, 0, 2);
        expectSameState(viaKraus, viaFast);
    }
}

TEST(DensityMatrix, FastThermalMatchesKraus)
{
    double t1 = 80.0, t2 = 60.0, t = 7.0;
    DensityMatrix viaKraus = testState();
    DensityMatrix viaFast = testState();
    viaKraus.applyChannel(thermalRelaxation(t1, t2, t), {2});
    viaFast.applyThermalRelaxation(2, 1.0 - std::exp(-t / t1),
                                   std::exp(-t / t2));
    expectSameState(viaKraus, viaFast);
}

TEST(DensityMatrix, PurityDecreasesUnderNoise)
{
    DensityMatrix dm(2);
    dm.applyUnitary(gateMatrix(GateType::H), {0});
    dm.applyUnitary(gateMatrix(GateType::CX), {0, 1});
    double before = dm.purity();
    dm.applyChannel(depolarizing1q(0.05), {0});
    double after = dm.purity();
    EXPECT_LT(after, before);
    dm.applyChannel(depolarizing2q(0.05), {0, 1});
    EXPECT_LT(dm.purity(), after);
}

} // namespace
} // namespace eqc
