/**
 * @file
 * Minimal GoogleTest-compatible shim, used only when the build cannot
 * find a real GoogleTest (see tests/CMakeLists.txt). Implements the
 * subset of the gtest macro surface this repository's tests use: TEST,
 * EXPECT_/ASSERT_ comparisons, EXPECT_NEAR/EXPECT_DOUBLE_EQ,
 * EXPECT_THROW, and failure-message streaming. Parameterized tests
 * (TEST_P) are NOT supported; files using them are excluded from the
 * shim build.
 *
 * One test binary = one translation unit: this header defines main().
 */

#ifndef EQC_TESTS_MINIGTEST_GTEST_H
#define EQC_TESTS_MINIGTEST_GTEST_H

/** Lets test files #ifdef-guard sections needing real-gtest features. */
#define EQC_MINIGTEST 1

#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace minigtest {

struct TestCase
{
    std::string name;
    std::function<void()> fn;
};

inline std::vector<TestCase> &
registry()
{
    static std::vector<TestCase> tests;
    return tests;
}

/** Failures recorded by the currently running test. */
inline int &
currentFailures()
{
    static int failures = 0;
    return failures;
}

inline bool
registerTest(const char *suite, const char *name, std::function<void()> fn)
{
    registry().push_back({std::string(suite) + "." + name, std::move(fn)});
    return true;
}

/** Message stream appended to a failure report. */
class Msg
{
  public:
    template <typename T>
    Msg &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

/**
 * Records one failure on destruction-by-assignment. gtest's trick:
 * `EXPECT_x(...) << extra` expands to `Reporter(...) = Msg() << extra`,
 * and ASSERT_x can `return Reporter(...) = Msg()` from a void test.
 */
class Reporter
{
  public:
    Reporter(const char *file, int line, std::string summary)
        : file_(file), line_(line), summary_(std::move(summary))
    {
    }

    void
    operator=(const Msg &msg) const
    {
        ++currentFailures();
        std::printf("  FAILED %s:%d: %s", file_, line_,
                    summary_.c_str());
        std::string extra = msg.str();
        if (!extra.empty())
            std::printf(" (%s)", extra.c_str());
        std::printf("\n");
    }

  private:
    const char *file_;
    int line_;
    std::string summary_;
};

template <typename T, typename = void>
struct IsStreamable : std::false_type
{
};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream &>()
                                            << std::declval<const T &>())>>
    : std::true_type
{
};

/** Stream @p v when it has an operator<<; a placeholder otherwise
    (enum classes and other unprintable types still compare fine). */
template <typename T>
void
streamValue(std::ostream &s, const T &v)
{
    if constexpr (IsStreamable<T>::value)
        s << v;
    else
        s << "<unprintable>";
}

template <typename A, typename B>
std::string
describe(const char *op, const char *ea, const char *eb, const A &a,
         const B &b)
{
    std::ostringstream s;
    s << "expected " << ea << " " << op << " " << eb << "; got ";
    streamValue(s, a);
    s << " vs ";
    streamValue(s, b);
    return s.str();
}

inline int
runAll()
{
    int failedTests = 0;
    for (const TestCase &test : registry()) {
        currentFailures() = 0;
        std::printf("[ RUN  ] %s\n", test.name.c_str());
        test.fn();
        if (currentFailures() > 0) {
            ++failedTests;
            std::printf("[ FAIL ] %s\n", test.name.c_str());
        } else {
            std::printf("[  OK  ] %s\n", test.name.c_str());
        }
    }
    std::printf("%zu tests, %d failed\n", registry().size(), failedTests);
    return failedTests == 0 ? 0 : 1;
}

} // namespace minigtest

#define TEST(suite, name)                                                  \
    static void minigtest_##suite##_##name();                              \
    static const bool minigtest_reg_##suite##_##name =                     \
        ::minigtest::registerTest(#suite, #name,                           \
                                  &minigtest_##suite##_##name);            \
    static void minigtest_##suite##_##name()

#define MINIGTEST_CHECK_(cond, summary, onfail)                            \
    if (cond)                                                              \
        ;                                                                  \
    else                                                                   \
        onfail ::minigtest::Reporter(__FILE__, __LINE__, summary) =        \
            ::minigtest::Msg()

#define MINIGTEST_CMP_(op, opname, a, b, onfail)                           \
    MINIGTEST_CHECK_(((a)op(b)),                                           \
                     ::minigtest::describe(opname, #a, #b, (a), (b)),      \
                     onfail)

#define EXPECT_TRUE(c) MINIGTEST_CHECK_((c), "expected true: " #c, )
#define EXPECT_FALSE(c) MINIGTEST_CHECK_(!(c), "expected false: " #c, )
#define EXPECT_EQ(a, b) MINIGTEST_CMP_(==, "==", a, b, )
#define EXPECT_NE(a, b) MINIGTEST_CMP_(!=, "!=", a, b, )
#define EXPECT_GT(a, b) MINIGTEST_CMP_(>, ">", a, b, )
#define EXPECT_GE(a, b) MINIGTEST_CMP_(>=, ">=", a, b, )
#define EXPECT_LT(a, b) MINIGTEST_CMP_(<, "<", a, b, )
#define EXPECT_LE(a, b) MINIGTEST_CMP_(<=, "<=", a, b, )
#define EXPECT_NEAR(a, b, tol)                                             \
    MINIGTEST_CHECK_(std::fabs((a) - (b)) <= (tol),                        \
                     ::minigtest::describe("near", #a, #b, (a), (b)), )
#define EXPECT_DOUBLE_EQ(a, b) MINIGTEST_CMP_(==, "==", a, b, )

#define ASSERT_TRUE(c)                                                     \
    MINIGTEST_CHECK_((c), "expected true: " #c, return)
#define ASSERT_FALSE(c)                                                    \
    MINIGTEST_CHECK_(!(c), "expected false: " #c, return)
#define ASSERT_EQ(a, b) MINIGTEST_CMP_(==, "==", a, b, return)
#define ASSERT_NE(a, b) MINIGTEST_CMP_(!=, "!=", a, b, return)
#define ASSERT_GT(a, b) MINIGTEST_CMP_(>, ">", a, b, return)
#define ASSERT_GE(a, b) MINIGTEST_CMP_(>=, ">=", a, b, return)
#define ASSERT_LT(a, b) MINIGTEST_CMP_(<, "<", a, b, return)
#define ASSERT_LE(a, b) MINIGTEST_CMP_(<=, "<=", a, b, return)

#define EXPECT_THROW(statement, exceptionType)                             \
    do {                                                                   \
        bool minigtest_caught = false;                                     \
        try {                                                              \
            statement;                                                     \
        } catch (const exceptionType &) {                                  \
            minigtest_caught = true;                                       \
        } catch (...) {                                                    \
        }                                                                  \
        MINIGTEST_CHECK_(minigtest_caught,                                 \
                         "expected " #statement                            \
                         " to throw " #exceptionType, );                   \
    } while (0)

int
main()
{
    return ::minigtest::runAll();
}

#endif // EQC_TESTS_MINIGTEST_GTEST_H
