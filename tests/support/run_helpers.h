/**
 * @file
 * Shared test entry point for launching EQC jobs through the Runtime.
 */

#ifndef EQC_TESTS_SUPPORT_RUN_HELPERS_H
#define EQC_TESTS_SUPPORT_RUN_HELPERS_H

#include "core/runtime.h"

namespace eqc {

/** Run one job on the deterministic "virtual" engine. */
inline EqcTrace
runVirtual(const VqaProblem &problem, const std::vector<Device> &devices,
           const EqcOptions &options)
{
    Runtime runtime;
    EqcOptions opts = options;
    opts.engine = "virtual";
    return runtime.submit(problem, devices, opts).take();
}

} // namespace eqc

#endif // EQC_TESTS_SUPPORT_RUN_HELPERS_H
