#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "quantum/pauli.h"

namespace eqc {
namespace {

TEST(ParamExpr, ConstantAndSymbolEvaluation)
{
    ParamExpr c = ParamExpr::constant(1.5);
    EXPECT_FALSE(c.isSymbolic());
    EXPECT_DOUBLE_EQ(c.evaluate({}), 1.5);

    ParamExpr s = ParamExpr::symbol(1, 2.0, 0.5);
    EXPECT_TRUE(s.isSymbolic());
    EXPECT_DOUBLE_EQ(s.evaluate({9.0, 3.0}), 6.5);
}

TEST(Circuit, BuilderAndCounts)
{
    QuantumCircuit c(3, 2);
    c.h(0);
    c.sx(1);
    c.rz(2, ParamExpr::symbol(0));
    c.cx(0, 1);
    c.swap(1, 2);
    c.measureAll();
    GateCounts g = c.counts();
    EXPECT_EQ(g.g1, 2);        // h, sx
    EXPECT_EQ(g.rz, 1);        // rz is virtual
    EXPECT_EQ(g.g2, 2);        // cx + swap
    EXPECT_EQ(g.swaps, 1);
    EXPECT_EQ(g.measurements, 3);
}

TEST(Circuit, DepthComputation)
{
    QuantumCircuit c(3, 0);
    c.h(0);       // layer 1 on q0
    c.h(1);       // layer 1 on q1
    c.cx(0, 1);   // layer 2
    c.h(2);       // layer 1 on q2
    c.cx(1, 2);   // layer 3
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, CriticalDepthExcludesVirtualGates)
{
    QuantumCircuit c(2, 1);
    c.rz(0, ParamExpr::symbol(0));
    c.rz(0, ParamExpr::constant(0.5));
    c.sx(0);
    c.cx(0, 1);
    c.measureAll();
    // Physical layers: sx then cx.
    EXPECT_EQ(c.criticalDepth(), 2);
    EXPECT_GE(c.depth(), 4);
}

TEST(Circuit, BarrierSynchronizesLayers)
{
    QuantumCircuit c(2, 0);
    c.h(0);
    c.barrier();
    c.h(1); // starts after the barrier level
    EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, ParamOccurrences)
{
    QuantumCircuit c(2, 2);
    c.ry(0, ParamExpr::symbol(0));
    c.ry(1, ParamExpr::symbol(1));
    c.rz(0, ParamExpr::symbol(0));
    auto occ0 = c.paramOccurrences(0);
    ASSERT_EQ(occ0.size(), 2u);
    EXPECT_EQ(occ0[0], 0u);
    EXPECT_EQ(occ0[1], 2u);
    EXPECT_EQ(c.paramOccurrences(1).size(), 1u);
}

TEST(Circuit, UsedQubits)
{
    QuantumCircuit c(5, 0);
    c.h(1);
    c.cx(1, 3);
    auto used = c.usedQubits();
    ASSERT_EQ(used.size(), 2u);
    EXPECT_EQ(used[0], 1);
    EXPECT_EQ(used[1], 3);
}

TEST(Circuit, RemapQubits)
{
    QuantumCircuit c(2, 0);
    c.x(0);
    c.cx(0, 1);
    // Map onto a wider register: 0->2, 1->0.
    QuantumCircuit wide = c.remapQubits({2, 0}, 3);
    EXPECT_EQ(wide.numQubits(), 3);
    EXPECT_EQ(wide.ops()[0].qubits[0], 2);
    EXPECT_EQ(wide.ops()[1].qubits[0], 2);
    EXPECT_EQ(wide.ops()[1].qubits[1], 0);
}

TEST(Circuit, AppendSharesParameterTable)
{
    QuantumCircuit a(2, 1);
    a.ry(0, ParamExpr::symbol(0));
    QuantumCircuit b(2, 0);
    b.h(1);
    b.measureAll();
    a.append(b);
    EXPECT_EQ(a.ops().size(), 4u);
}

TEST(Circuit, SimulateIdealBindsParameters)
{
    QuantumCircuit c(1, 1);
    c.ry(0, ParamExpr::symbol(0));
    // theta = pi: |0> -> |1>.
    Statevector sv = simulateIdeal(c, {kPi});
    EXPECT_NEAR(std::abs(sv.amplitude(1)), 1.0, 1e-12);
    // Scaled symbol: angle = 0.5 * pi -> equal superposition.
    QuantumCircuit c2(1, 1);
    c2.ry(0, ParamExpr::symbol(0, 0.5));
    Statevector sv2 = simulateIdeal(c2, {kPi});
    EXPECT_NEAR(std::norm(sv2.amplitude(0)), 0.5, 1e-12);
}

TEST(Circuit, SimulateIdealSkipsMeasure)
{
    QuantumCircuit c(2, 0);
    c.h(0);
    c.cx(0, 1);
    c.measureAll();
    Statevector sv = simulateIdeal(c);
    EXPECT_NEAR(sv.expectation(PauliString("ZZ")), 1.0, 1e-12);
}

TEST(Circuit, ToStringContainsGateNames)
{
    QuantumCircuit c(2, 1);
    c.h(0);
    c.ry(1, ParamExpr::symbol(0));
    std::string s = c.toString();
    EXPECT_NE(s.find("h q0"), std::string::npos);
    EXPECT_NE(s.find("ry q1"), std::string::npos);
}

} // namespace
} // namespace eqc
