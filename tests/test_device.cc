#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "device/backend.h"
#include "device/catalog.h"

namespace eqc {
namespace {

TEST(Catalog, ContainsAllTableIDevices)
{
    auto devices = ibmqCatalog();
    ASSERT_EQ(devices.size(), 11u);
    std::set<std::string> names;
    for (const Device &d : devices)
        names.insert(d.name);
    for (const char *want :
         {"ibmq_lima", "ibmqx2", "ibmq_belem", "ibmq_quito",
          "ibmq_manila", "ibmq_santiago", "ibmq_bogota", "ibm_lagos",
          "ibmq_casablanca", "ibmq_toronto", "ibmq_manhattan"}) {
        EXPECT_TRUE(names.count(want)) << want;
    }
}

TEST(Catalog, QubitCountsMatchTableI)
{
    EXPECT_EQ(deviceByName("ibmq_lima").numQubits, 5);
    EXPECT_EQ(deviceByName("ibmqx2").numQubits, 5);
    EXPECT_EQ(deviceByName("ibm_lagos").numQubits, 7);
    EXPECT_EQ(deviceByName("ibmq_casablanca").numQubits, 7);
    EXPECT_EQ(deviceByName("ibmq_toronto").numQubits, 27);
    EXPECT_EQ(deviceByName("ibmq_manhattan").numQubits, 65);
}

TEST(Catalog, QuantumVolumesMatchTableI)
{
    EXPECT_EQ(deviceByName("ibmq_lima").quantumVolume, 8);
    EXPECT_EQ(deviceByName("ibmqx2").quantumVolume, 8);
    EXPECT_EQ(deviceByName("ibmq_belem").quantumVolume, 16);
    EXPECT_EQ(deviceByName("ibmq_bogota").quantumVolume, 32);
}

TEST(Catalog, DeterministicForSameSeed)
{
    Device a = deviceByName("ibmq_bogota", 99);
    Device b = deviceByName("ibmq_bogota", 99);
    EXPECT_DOUBLE_EQ(a.baseCalibration.qubits[0].t1Us,
                     b.baseCalibration.qubits[0].t1Us);
    EXPECT_DOUBLE_EQ(a.baseCalibration.avgCxError(),
                     b.baseCalibration.avgCxError());
}

TEST(Catalog, X2IsNoisiestSmallDevice)
{
    Device x2 = deviceByName("ibmqx2");
    Device bogota = deviceByName("ibmq_bogota");
    EXPECT_GT(x2.baseCalibration.avgCxError(),
              bogota.baseCalibration.avgCxError());
    EXPECT_GT(x2.baseCalibration.avgReadoutError(),
              bogota.baseCalibration.avgReadoutError());
}

TEST(Catalog, EvaluationEnsembleExcludesManhattan)
{
    auto ens = evaluationEnsemble();
    EXPECT_EQ(ens.size(), 10u);
    for (const Device &d : ens)
        EXPECT_NE(d.name, "ibmq_manhattan");
}

TEST(Catalog, CalibrationCoversTopology)
{
    for (const Device &d : ibmqCatalog()) {
        EXPECT_EQ(d.baseCalibration.qubits.size(),
                  static_cast<std::size_t>(d.numQubits))
            << d.name;
        EXPECT_EQ(d.baseCalibration.cxError.size(),
                  d.coupling.edges().size())
            << d.name;
        for (const auto &[a, b] : d.coupling.edges()) {
            EXPECT_GT(d.baseCalibration.cxErrorFor(a, b), 0.0);
            EXPECT_GT(d.baseCalibration.cxTimeFor(a, b), 0.0);
        }
    }
}

TEST(Calibration, CrosstalkPenalizesDenseTopologies)
{
    // Same base parameters, denser graph -> higher mean CX error.
    Rng rng(5);
    auto sparse = synthesizeCalibration(CouplingMap::line(5), rng, 100,
                                        1.0, 3e-4, 1e-2, 2e-2, 0.1);
    auto dense = synthesizeCalibration(CouplingMap::bowtie(), rng, 100,
                                       1.0, 3e-4, 1e-2, 2e-2, 0.1);
    EXPECT_GT(dense.avgCxError(), sparse.avgCxError());
}

TEST(Calibration, CircuitDurationAsapSchedule)
{
    CalibrationSnapshot cal;
    cal.qubits.resize(2);
    cal.gate1qTimeNs = 40.0;
    cal.readoutTimeNs = 4000.0;
    cal.cxError[{0, 1}] = 1e-2;
    cal.cxTimeNs[{0, 1}] = 400.0;

    QuantumCircuit c(2, 0);
    c.sx(0);       // 40ns on q0
    c.sx(1);       // 40ns on q1 (parallel)
    c.cx(0, 1);    // 400ns, starts at 40
    c.measure(0);  // 4000ns, starts at 440
    c.measure(1);
    EXPECT_NEAR(circuitDurationUs(c, cal), (40 + 400 + 4000) / 1000.0,
                1e-9);
}

TEST(Drift, ErrorsGrowSinceCalibration)
{
    Device d = deviceByName("ibmq_bogota");
    CalibrationTracker tracker(d.baseCalibration, d.drift, Rng(3));
    double e0 = tracker.actual(0.1).avgCxError();
    double e12 = tracker.actual(12.0).avgCxError();
    EXPECT_GT(e12, e0);
    EXPECT_GT(tracker.errorInflation(12.0),
              tracker.errorInflation(0.1));
}

TEST(Drift, ReportedStaysFrozenBetweenCalibrations)
{
    Device d = deviceByName("ibmq_bogota");
    CalibrationTracker tracker(d.baseCalibration, d.drift, Rng(3));
    auto r1 = tracker.reported(1.0);
    auto r2 = tracker.reported(10.0);
    // Same calibration interval: identical reported values.
    EXPECT_DOUBLE_EQ(r1.avgCxError(), r2.avgCxError());
    EXPECT_DOUBLE_EQ(r1.timeH, r2.timeH);
}

TEST(Drift, RecalibrationResetsInflation)
{
    Device d = deviceByName("ibmq_bogota");
    // Disable latent noise to isolate the pure staleness ramp.
    d.drift.latentSigma = 0.0;
    CalibrationTracker tracker(d.baseCalibration, d.drift, Rng(3));
    // Just before vs just after the second calibration.
    double calTime = -1.0;
    for (double t = 1.0; t < 100.0; t += 0.25) {
        if (tracker.lastCalibrationTime(t) > 0.0) {
            calTime = tracker.lastCalibrationTime(t);
            break;
        }
    }
    ASSERT_GT(calTime, 0.0);
    EXPECT_GT(tracker.errorInflation(calTime - 0.1), 1.05);
    EXPECT_LT(tracker.errorInflation(calTime + 0.1), 1.05);
}

TEST(Drift, IncidentsMultiplyErrors)
{
    Device d = deviceByName("ibmq_casablanca");
    DriftParams p = d.drift;
    p.incidentRatePerHour = 0.05; // force frequent incidents
    CalibrationTracker tracker(d.baseCalibration, p, Rng(11));
    bool sawIncident = false;
    for (double t = 0.0; t < 300.0; t += 0.5) {
        if (tracker.inIncident(t)) {
            sawIncident = true;
            EXPECT_GT(tracker.errorInflation(t), 2.0);
            break;
        }
    }
    EXPECT_TRUE(sawIncident);
}

TEST(Drift, DeterministicTimeline)
{
    Device d = deviceByName("ibmq_toronto");
    CalibrationTracker a(d.baseCalibration, d.drift, Rng(7));
    CalibrationTracker b(d.baseCalibration, d.drift, Rng(7));
    for (double t : {0.5, 13.0, 77.7, 200.0})
        EXPECT_DOUBLE_EQ(a.actual(t).avgCxError(),
                         b.actual(t).avgCxError());
}

TEST(QueueModel, CongestionIsPeriodic)
{
    QueueParams p;
    p.congestionAmplitude = 1.0;
    p.congestionPeriodH = 24.0;
    QueueModel q(p);
    EXPECT_NEAR(q.congestionFactor(0.0), q.congestionFactor(24.0), 1e-9);
    EXPECT_GT(q.congestionFactor(6.0), q.congestionFactor(18.0));
}

TEST(QueueModel, MaintenanceWindows)
{
    QueueParams p;
    p.maintenancePeriodH = 10.0;
    p.maintenanceDurationH = 2.0;
    p.maintenanceOffsetH = 0.0;
    QueueModel q(p);
    EXPECT_TRUE(q.inMaintenance(0.5));
    EXPECT_FALSE(q.inMaintenance(3.0));
    EXPECT_TRUE(q.inMaintenance(10.5));
    EXPECT_NEAR(q.maintenanceRemainingH(0.5), 1.5, 1e-9);
}

TEST(QueueModel, ExecutionTimeScalesWithShotsAndCircuits)
{
    QueueParams p;
    p.jobOverheadS = 1.0;
    p.resetTimeUs = 250.0;
    QueueModel q(p);
    double e1 = q.executionTimeS(10.0, 8192, 1);
    double e2 = q.executionTimeS(10.0, 8192, 2);
    EXPECT_NEAR(e2 - e1, e1 - 1.0, 1e-9); // linear in circuits
    EXPECT_GT(q.executionTimeS(10.0, 16384, 1), e1);
}

TEST(QueueModel, LatencyOrderingAcrossDevices)
{
    // Manhattan's sampled latency dwarfs x2's.
    Device x2 = deviceByName("ibmqx2");
    Device man = deviceByName("ibmq_manhattan");
    QueueModel qx(x2.queue), qm(man.queue);
    Rng r1(5), r2(5);
    double sx = 0, sm = 0;
    for (int i = 0; i < 50; ++i) {
        sx += qx.jobLatencyS(i * 0.3, 10.0, 8192, 6, r1);
        sm += qm.jobLatencyS(i * 0.3, 10.0, 8192, 6, r2);
    }
    EXPECT_GT(sm, 20.0 * sx);
}

TEST(Backend, IdealDeviceGivesExactDistribution)
{
    Device ideal = makeIdealDevice(2);
    SimulatedQpu qpu(ideal, 1);
    QuantumCircuit bell(2, 0);
    bell.h(0);
    bell.cx(0, 1);
    bell.measureAll();
    TranspiledCircuit tc = transpile(bell, ideal.coupling);
    Rng rng(2);
    JobResult r = qpu.execute(tc, {}, 8192, 0.0, rng, true);
    ASSERT_EQ(r.probabilities.size(), 4u);
    EXPECT_NEAR(r.probabilities[0], 0.5, 1e-12);
    EXPECT_NEAR(r.probabilities[3], 0.5, 1e-12);
    uint64_t total = 0;
    for (uint64_t c : r.counts)
        total += c;
    EXPECT_EQ(total, 8192u);
}

TEST(Backend, NoisyDeviceDegradesGhz)
{
    Device dev = deviceByName("ibmqx2");
    SimulatedQpu qpu(dev, 1);
    QuantumCircuit ghz(4, 0);
    ghz.h(0);
    for (int q = 0; q + 1 < 4; ++q)
        ghz.cx(q, q + 1);
    ghz.measureAll();
    TranspiledCircuit tc = transpile(ghz, dev.coupling);
    Rng rng(2);
    JobResult r = qpu.execute(tc, {}, 8192, 0.0, rng, false);
    // Success probability strictly below 1 but far above uniform.
    int n = tc.compact.numQubits();
    uint64_t all1 = 0;
    for (int l = 0; l < 4; ++l)
        all1 |= uint64_t{1} << tc.logicalToCompact[l];
    double pGood = r.probabilities[0] + r.probabilities[all1];
    EXPECT_LT(pGood, 0.995);
    EXPECT_GT(pGood, 2.0 / (1 << n));
    double totalP = 0;
    for (double p : r.probabilities)
        totalP += p;
    EXPECT_NEAR(totalP, 1.0, 1e-9);
}

TEST(Backend, NoiseWorsensWithStaleness)
{
    Device dev = deviceByName("ibmq_casablanca");
    // Remove incidents so only smooth drift is at play.
    dev.drift.incidentRatePerHour = 0.0;
    SimulatedQpu qpu(dev, 1);
    QuantumCircuit ghz(4, 0);
    ghz.h(0);
    for (int q = 0; q + 1 < 4; ++q)
        ghz.cx(q, q + 1);
    ghz.measureAll();
    TranspiledCircuit tc = transpile(ghz, dev.coupling);
    Rng rng(2);
    double calTime = qpu.tracker().lastCalibrationTime(10.0);
    JobResult fresh =
        qpu.execute(tc, {}, 0, calTime + 0.1, rng, false);
    JobResult stale =
        qpu.execute(tc, {}, 0, calTime + 15.0, rng, false);
    uint64_t all1 = 0;
    for (int l = 0; l < 4; ++l)
        all1 |= uint64_t{1} << tc.logicalToCompact[l];
    double pFresh = fresh.probabilities[0] + fresh.probabilities[all1];
    double pStale = stale.probabilities[0] + stale.probabilities[all1];
    EXPECT_GT(pFresh, pStale);
}

TEST(Backend, ExecuteBatchBitIdenticalToSequential)
{
    // k members of the same device model with independently drifted
    // calibrations (different seeds): one batched pass must reproduce
    // the k sequential executions bitwise — distribution, counts, and
    // the state each member's rng is left in.
    const int k = 4;
    Device dev = deviceByName("ibmq_bogota");
    QuantumCircuit ghz(4, 0);
    ghz.h(0);
    for (int q = 0; q + 1 < 4; ++q)
        ghz.cx(q, q + 1);
    ghz.measureAll();
    TranspiledCircuit tc = transpile(ghz, dev.coupling);

    std::vector<JobResult> seq(k);
    std::vector<uint64_t> nextDraw(k);
    {
        std::vector<std::unique_ptr<SimulatedQpu>> qpus;
        std::vector<Rng> rngs;
        for (int m = 0; m < k; ++m) {
            qpus.push_back(
                std::make_unique<SimulatedQpu>(dev, 10 + m));
            rngs.emplace_back(100 + m);
        }
        for (int m = 0; m < k; ++m)
            seq[m] = qpus[m]->execute(tc, {}, 256, 1.0 + 0.1 * m,
                                      rngs[m], true);
        for (int m = 0; m < k; ++m)
            nextDraw[m] = rngs[m].engine()();
    }

    std::vector<std::unique_ptr<SimulatedQpu>> qpus;
    std::vector<Rng> rngs;
    for (int m = 0; m < k; ++m) {
        qpus.push_back(std::make_unique<SimulatedQpu>(dev, 10 + m));
        rngs.emplace_back(100 + m);
    }
    std::vector<JobResult> out(k);
    std::vector<SimulatedQpu::BatchMember> members(k);
    for (int m = 0; m < k; ++m) {
        members[m].qpu = qpus[m].get();
        members[m].tc = &tc;
        members[m].shots = 256;
        members[m].atTimeH = 1.0 + 0.1 * m;
        members[m].rng = &rngs[m];
        members[m].sampleCounts = true;
        members[m].out = &out[m];
    }
    ASSERT_TRUE(
        SimulatedQpu::executeBatch(members.data(), members.size(), {}));
    for (int m = 0; m < k; ++m) {
        ASSERT_EQ(out[m].probabilities.size(),
                  seq[m].probabilities.size());
        bool identical = true;
        for (std::size_t o = 0; o < out[m].probabilities.size(); ++o)
            identical = identical &&
                        out[m].probabilities[o] == seq[m].probabilities[o];
        EXPECT_TRUE(identical) << "member " << m;
        EXPECT_EQ(out[m].counts, seq[m].counts) << "member " << m;
        EXPECT_EQ(out[m].shots, seq[m].shots);
        EXPECT_EQ(out[m].circuitDurationUs, seq[m].circuitDurationUs);
        // Same rng end state: the next draw matches the sequential one.
        EXPECT_EQ(rngs[m].engine()(), nextDraw[m]) << "member " << m;
    }
}

TEST(Backend, ExecuteBatchRejectsMismatchedCircuits)
{
    Device dev = deviceByName("ibmq_bogota");
    QuantumCircuit a(2, 0);
    a.h(0);
    a.cx(0, 1);
    a.measureAll();
    QuantumCircuit b(2, 0);
    b.h(0);
    b.h(1);
    b.cx(0, 1);
    b.measureAll();
    TranspiledCircuit ta = transpile(a, dev.coupling);
    TranspiledCircuit tb = transpile(b, dev.coupling);
    SimulatedQpu q0(dev, 1), q1(dev, 2);
    Rng r0(7), r1(8);
    JobResult o0, o1;
    SimulatedQpu::BatchMember members[2];
    members[0] = {&q0, &ta, 64, 1.0, &r0, true, &o0};
    members[1] = {&q1, &tb, 64, 1.0, &r1, true, &o1};
    EXPECT_FALSE(SimulatedQpu::executeBatch(members, 2, {}));
    // Rejected before touching any member's rng: streams still at the
    // seed position.
    Rng f0(7), f1(8);
    EXPECT_EQ(r0.engine()(), f0.engine()());
    EXPECT_EQ(r1.engine()(), f1.engine()());
}

} // namespace
} // namespace eqc
