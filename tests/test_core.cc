#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "support/run_helpers.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

TEST(Weighting, PCorrectInUnitInterval)
{
    Device dev = deviceByName("ibmq_bogota");
    VqaProblem p = makeHeisenbergVqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(dev.coupling);
    for (const TranspiledCircuit &tc : compiled) {
        double v = pCorrect(circuitQuality(tc), dev.baseCalibration);
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Weighting, MoreNoiseLowersPCorrect)
{
    Device good = deviceByName("ibmq_bogota");
    Device bad = deviceByName("ibmqx2");
    VqaProblem p = makeHeisenbergVqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto cg = est.compileFor(good.coupling);
    auto cb = est.compileFor(bad.coupling);
    double pg = pCorrect(circuitQuality(cg[0]), good.baseCalibration);
    double pb = pCorrect(circuitQuality(cb[0]), bad.baseCalibration);
    EXPECT_GT(pg, pb);
}

TEST(Weighting, SwapsLowerPCorrectViaG2)
{
    // The same quality inputs with more 2q gates score lower.
    Device dev = deviceByName("ibmq_bogota");
    CircuitQuality q;
    q.criticalDepth = 20;
    q.g1 = 10;
    q.g2 = 3;
    q.measurements = 4;
    double base = pCorrect(q, dev.baseCalibration);
    q.g2 = 9; // two extra swaps' worth of CNOTs
    double withSwaps = pCorrect(q, dev.baseCalibration);
    EXPECT_GT(base, withSwaps);
}

TEST(Weighting, PaperLiteralModeAgreesOnOrdering)
{
    Device good = deviceByName("ibmq_bogota");
    Device bad = deviceByName("ibmqx2");
    CircuitQuality q;
    q.criticalDepth = 25;
    q.g1 = 12;
    q.g2 = 5;
    q.measurements = 4;
    double pgPhys = pCorrect(q, good.baseCalibration,
                             PCorrectMode::Physical);
    double pbPhys = pCorrect(q, bad.baseCalibration,
                             PCorrectMode::Physical);
    double pgLit = pCorrect(q, good.baseCalibration,
                            PCorrectMode::PaperLiteral);
    double pbLit = pCorrect(q, bad.baseCalibration,
                            PCorrectMode::PaperLiteral);
    EXPECT_GT(pgPhys, pbPhys);
    EXPECT_GT(pgLit, pbLit);
}

TEST(Weighting, NormalizerMapsToBounds)
{
    WeightNormalizer n({0.5, 1.5});
    n.update(0, 0.9); // best
    n.update(1, 0.5);
    n.update(2, 0.1); // worst
    EXPECT_NEAR(n.weightFor(0), 1.5, 1e-12);
    EXPECT_NEAR(n.weightFor(1), 1.0, 1e-12);
    EXPECT_NEAR(n.weightFor(2), 0.5, 1e-12);
}

TEST(Weighting, NormalizerMidpointForSingletonOrEqual)
{
    WeightNormalizer n({0.25, 1.75});
    n.update(0, 0.7);
    EXPECT_NEAR(n.weightFor(0), 1.0, 1e-12);
    n.update(1, 0.7);
    EXPECT_NEAR(n.weightFor(1), 1.0, 1e-12);
}

TEST(Weighting, DisabledBoundsAlwaysOne)
{
    WeightNormalizer n({1.0, 1.0});
    n.update(0, 0.9);
    n.update(1, 0.1);
    EXPECT_FALSE(n.bounds().enabled());
    EXPECT_NEAR(n.weightFor(0), 1.0, 1e-12);
    EXPECT_NEAR(n.weightFor(1), 1.0, 1e-12);
}

TEST(Master, CyclicTaskDistribution)
{
    VqaProblem p = makeHeisenbergVqe();
    MasterOptions opts;
    opts.epochs = 2;
    MasterNode master(p, opts);
    for (int round = 0; round < 2; ++round)
        for (int i = 0; i < p.numParams(); ++i)
            EXPECT_EQ(master.nextTask().paramIndex, i);
}

TEST(Master, EpochAccountingAndDone)
{
    VqaProblem p = makeHeisenbergVqe();
    MasterOptions opts;
    opts.epochs = 1;
    MasterNode master(p, opts);
    for (int i = 0; i < p.numParams(); ++i) {
        EXPECT_FALSE(master.done());
        GradientTask t = master.nextTask();
        GradientResult r;
        r.paramIndex = t.paramIndex;
        r.gradient = 0.1;
        r.pCorrect = 0.8;
        r.clientId = 0;
        r.version = t.version;
        master.onResult(r);
    }
    EXPECT_TRUE(master.done());
    EXPECT_EQ(master.epochsCompleted(), 1);
}

TEST(Master, AppliesWeightedAsgdRule)
{
    VqaProblem p = makeHeisenbergVqe();
    MasterOptions opts;
    opts.learningRate = 0.1;
    opts.weightBounds = {0.5, 1.5};
    MasterNode master(p, opts);
    double before = master.params()[2];

    GradientResult good;
    good.paramIndex = 2;
    good.gradient = 1.0;
    good.pCorrect = 0.9;
    good.clientId = 0;
    GradientResult bad = good;
    bad.paramIndex = 3;
    bad.pCorrect = 0.2;
    bad.clientId = 1;

    master.onResult(good); // single client -> midpoint weight 1.0
    EXPECT_NEAR(master.params()[2], before - 0.1, 1e-12);

    double before3 = master.params()[3];
    double w = master.onResult(bad); // now worst of two -> weight 0.5
    EXPECT_NEAR(w, 0.5, 1e-12);
    EXPECT_NEAR(master.params()[3], before3 - 0.5 * 0.1, 1e-12);
}

TEST(Master, StalenessTracked)
{
    VqaProblem p = makeHeisenbergVqe();
    MasterOptions opts;
    MasterNode master(p, opts);
    GradientTask t0 = master.nextTask(); // version 0
    // Three updates land before t0's result returns.
    for (int i = 0; i < 3; ++i) {
        GradientTask t = master.nextTask();
        GradientResult r;
        r.paramIndex = t.paramIndex;
        r.gradient = 0.0;
        r.clientId = 0;
        r.version = t.version;
        master.onResult(r);
    }
    GradientResult stale;
    stale.paramIndex = t0.paramIndex;
    stale.gradient = 0.0;
    stale.clientId = 1;
    stale.version = t0.version;
    master.onResult(stale);
    EXPECT_DOUBLE_EQ(master.stalenessStats().max(), 3.0);
}

TEST(Client, ProcessReturnsPlausibleResult)
{
    VqaProblem p = makeHeisenbergVqe();
    Device dev = deviceByName("ibmq_bogota");
    ClientConfig cfg;
    cfg.shotMode = ShotMode::Exact;
    ClientNode client(0, dev, p, 11, cfg);
    GradientTask task;
    task.paramIndex = 4;
    task.params = p.initialParams;
    task.version = 0;
    auto out = client.process(task, 1.0);
    EXPECT_EQ(out.result.paramIndex, 4);
    EXPECT_GT(out.latencyH, 0.0);
    EXPECT_GT(out.result.pCorrect, 0.0);
    EXPECT_LT(out.result.pCorrect, 1.0);
    EXPECT_EQ(out.result.circuitsRun, 6); // 2 shifts x 3 groups
    EXPECT_NEAR(out.result.completionTimeH, 1.0 + out.latencyH, 1e-12);
}

TEST(Client, PCorrectDropsWithDrift)
{
    VqaProblem p = makeHeisenbergVqe();
    Device dev = deviceByName("ibmq_casablanca");
    dev.drift.calQualitySigma = 0.0; // isolate pure staleness effects
    ClientConfig cfg;
    ClientNode client(0, dev, p, 11, cfg);
    // Reported gate/readout errors are frozen within a cycle, but the
    // hourly T1/T2 refresh lets P_correct track coherence degradation:
    // it must decline monotonically (and only slightly) with staleness.
    double p1 = client.computePCorrect(0.5);
    double p2 = client.computePCorrect(8.0);
    double p3 = client.computePCorrect(16.0);
    EXPECT_GT(p1, p2);
    EXPECT_GT(p2, p3);
    EXPECT_NEAR(p1, p3, 0.02); // coherence refresh is a small effect
}

TEST(Ensemble, FiltersIneligibleDevices)
{
    VqaProblem p = makeHeisenbergVqe();
    auto eligible = Ensemble::eligible(ibmqCatalog(), 6);
    // Only 7q+ machines can host a 6-qubit circuit.
    EXPECT_EQ(eligible.size(), 4u);
    for (const Device &d : eligible)
        EXPECT_GE(d.numQubits, 6);
}

TEST(EqcVirtual, ConvergesOnSmallEnsemble)
{
    VqaProblem p = makeHeisenbergVqe();
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_manila"),
                                   deviceByName("ibmq_quito")};
    EqcOptions opts;
    opts.master.epochs = 60;
    opts.seed = 5;
    EqcTrace trace = runVirtual(p, devices, opts);
    ASSERT_EQ(trace.epochs.size(), 60u);
    EXPECT_FALSE(trace.terminated);
    double start = trace.epochs.front().energyIdeal;
    double end = trace.epochs.back().energyIdeal;
    EXPECT_LT(end, start - 1.0);
    // All three devices contributed.
    EXPECT_EQ(trace.jobsPerDevice.size(), 3u);
    for (const auto &[name, jobs] : trace.jobsPerDevice)
        EXPECT_GT(jobs, 0) << name;
}

TEST(EqcVirtual, DeterministicForSameSeed)
{
    VqaProblem p = makeHeisenbergVqe();
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmqx2")};
    EqcOptions opts;
    opts.master.epochs = 10;
    opts.seed = 42;
    EqcTrace a = runVirtual(p, devices, opts);
    EqcTrace b = runVirtual(p, devices, opts);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.epochs[i].energyDevice,
                         b.epochs[i].energyDevice);
        EXPECT_DOUBLE_EQ(a.epochs[i].timeH, b.epochs[i].timeH);
    }
    EXPECT_DOUBLE_EQ(a.totalHours, b.totalHours);
}

TEST(EqcVirtual, FasterThanSingleDevice)
{
    VqaProblem p = makeHeisenbergVqe();
    TrainerOptions single;
    single.epochs = 15;
    single.seed = 5;
    TrainingTrace bogota =
        trainSingleDevice(p, deviceByName("ibmq_bogota"), single);

    EqcOptions opts;
    opts.master.epochs = 15;
    opts.seed = 5;
    EqcTrace ens = runVirtual(p, evaluationEnsemble(), opts);
    EXPECT_GT(ens.epochsPerHour, 2.0 * bogota.epochsPerHour);
}

TEST(EqcVirtual, AsynchronyProducesStaleness)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 12;
    opts.seed = 8;
    EqcTrace trace = runVirtual(p, evaluationEnsemble(), opts);
    // With 10 concurrent clients gradients must arrive stale on average.
    EXPECT_GT(trace.staleness.mean(), 1.0);
    // Partially-asynchronous regime: staleness bounded (appendix's D).
    EXPECT_LT(trace.staleness.max(), 400.0);
}

TEST(EqcVirtual, WeightRecordsWithinBounds)
{
    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 8;
    opts.master.weightBounds = {0.5, 1.5};
    opts.seed = 8;
    EqcTrace trace = runVirtual(p, evaluationEnsemble(), opts);
    ASSERT_FALSE(trace.weights.empty());
    for (const WeightRecord &w : trace.weights) {
        EXPECT_GE(w.weight, 0.5 - 1e-12);
        EXPECT_LE(w.weight, 1.5 + 1e-12);
        EXPECT_GE(w.pCorrect, 0.0);
        EXPECT_LE(w.pCorrect, 1.0);
    }
}

TEST(EqcVirtual, AdaptivePolicyCoolsDownBadDevices)
{
    VqaProblem p = makeHeisenbergVqe();
    // Pair a good device with a catastophically drifting one.
    Device bad = deviceByName("ibmq_casablanca");
    bad.drift.errorDriftPerHour = 0.5;
    bad.drift.incidentRatePerHour = 0.1;
    bad.drift.incidentSeverity = 8.0;
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_manila"), bad};
    EqcOptions opts;
    opts.master.epochs = 40;
    opts.master.weightBounds = {0.5, 1.5};
    opts.adaptive.enabled = true;
    opts.adaptive.unstableStreak = 3;
    opts.adaptive.cooldownH = 2.0;
    opts.seed = 4;
    EqcTrace trace = runVirtual(p, devices, opts);
    EXPECT_GT(trace.cooldowns, 0);
    ASSERT_EQ(trace.epochs.size(), 40u);
}

TEST(EqcThreaded, RunsAndConverges)
{
    VqaProblem p = makeHeisenbergVqe();
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_manila"),
                                   deviceByName("ibmq_quito"),
                                   deviceByName("ibmqx2")};
    EqcOptions opts;
    opts.master.epochs = 20;
    opts.seed = 6;
    // Aggressive time scale so the test stays fast; wall compute time
    // counts against the virtual budget, so lift the termination rule.
    opts.maxHours = 1e7;
    opts.engine = "threaded";
    opts.hoursPerWallSecond = 3000.0;
    Runtime runtime;
    EqcTrace trace = runtime.submit(p, devices, opts).take();
    EXPECT_FALSE(trace.terminated);
    ASSERT_EQ(trace.epochs.size(), 20u);
    double start = trace.epochs.front().energyIdeal;
    double end = trace.epochs.back().energyIdeal;
    EXPECT_LT(end, start + 0.5); // must not diverge
    EXPECT_GE(trace.jobsPerDevice.size(), 2u);
}

} // namespace
} // namespace eqc
