/**
 * @file
 * Serving-layer tests: queue-model wait estimates under drift and
 * their consumption by the shot scheduler, admission control with
 * retry-after backpressure hints, request coalescing, clock-based
 * result-cache expiry, cache-aware shard placement, aggregation
 * modes, QPU fault tolerance with shard requeueing, event-loop
 * determinism across thread counts (including the failure and cache
 * paths), wall-clock (SteadyClock) serving, latency SLOs with
 * deadline-driven graceful shedding, continuous intake (riders
 * joining in-flight items), live membership (joins, leaves, cold
 * starts, supervised restore), and the "service" engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/task_pool.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "replay/journal.h"
#include "serve/service_node.h"
#include "support/run_helpers.h"
#include "vqa/problem.h"

namespace eqc {
namespace {

using namespace eqc::serve;

std::vector<Device>
serveEnsemble()
{
    return {deviceByName("ibmq_bogota"), deviceByName("ibmq_manila"),
            deviceByName("ibmq_quito"), deviceByName("ibmq_lima")};
}

ServiceOptions
fastOptions(uint64_t seed = 11)
{
    ServiceOptions o;
    o.seed = seed;
    o.scheduler.minShardShots = 32;
    return o;
}

// ---------------------------------------------------------------------------
// Queue-model query API (consumed by the scheduler)
// ---------------------------------------------------------------------------

TEST(QueueModelEstimates, WaitMonotoneInQueueDepth)
{
    // Across devices and across the diurnal cycle (the calibration-
    // drift timescale), deeper queues must never look cheaper.
    for (const Device &dev : evaluationEnsemble()) {
        QueueModel qm(dev.queue);
        for (double tH : {0.0, 3.7, 11.2, 23.9, 48.5}) {
            double prev = -1.0;
            for (int depth = 0; depth < 6; ++depth) {
                double w = qm.expectedWaitS(tH, depth);
                EXPECT_GT(w, prev)
                    << dev.name << " t=" << tH << " depth=" << depth;
                prev = w;
                EXPECT_GE(qm.expectedLatencyS(tH, 50.0, 1024, 3, depth),
                          w);
            }
        }
    }
}

TEST(QueueModelEstimates, ExpectedWaitMatchesSampleMean)
{
    QueueModel qm(deviceByName("ibmq_toronto").queue);
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += qm.sampleWaitS(2.0, rng);
    double mean = sum / n;
    double expected = qm.expectedWaitS(2.0, 0);
    EXPECT_NEAR(mean / expected, 1.0, 0.05);
}

TEST(QueueModelEstimates, SchedulerShedsShotsFromBackloggedMembers)
{
    // Two identical members, one with a deep queue: the scheduler
    // must give the idle one strictly more of the budget.
    QueueModel qm(deviceByName("ibmq_bogota").queue);
    std::vector<MemberView> views(2);
    for (int i = 0; i < 2; ++i) {
        views[i].member = i;
        views[i].pCorrect = 0.8;
        views[i].available = true;
    }
    views[0].expectedLatencyS = qm.expectedLatencyS(0.0, 50, 1024, 3, 0);
    views[1].expectedLatencyS = qm.expectedLatencyS(0.0, 50, 1024, 3, 4);

    ShotScheduler sched;
    std::vector<ShardPlan> plan = sched.plan(views, 8192);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_GT(plan[0].shots, plan[1].shots);
    EXPECT_EQ(plan[0].shots + plan[1].shots, 8192);
}

// ---------------------------------------------------------------------------
// Shot scheduler
// ---------------------------------------------------------------------------

TEST(ShotScheduler, ExactBudgetAndQualityBias)
{
    std::vector<MemberView> views(3);
    for (int i = 0; i < 3; ++i) {
        views[i].member = i;
        views[i].available = true;
        views[i].expectedLatencyS = 60.0;
    }
    views[0].pCorrect = 0.9;
    views[1].pCorrect = 0.6;
    views[2].pCorrect = 0.3;

    ShotScheduler sched;
    std::vector<ShardPlan> plan = sched.plan(views, 1000);
    ASSERT_EQ(plan.size(), 3u);
    int total = 0;
    for (const ShardPlan &p : plan)
        total += p.shots;
    EXPECT_EQ(total, 1000);
    EXPECT_GT(plan[0].shots, plan[1].shots);
    EXPECT_GT(plan[1].shots, plan[2].shots);
}

TEST(ShotScheduler, DropsWorthlessShardsAndUnavailableMembers)
{
    std::vector<MemberView> views(3);
    for (int i = 0; i < 3; ++i) {
        views[i].member = i;
        views[i].available = true;
        views[i].expectedLatencyS = 60.0;
        views[i].pCorrect = 0.5;
    }
    views[1].available = false;       // failed member
    views[2].pCorrect = 0.001;        // share below minShardShots

    ShotSchedulerOptions so;
    so.minShardShots = 64;
    ShotScheduler sched(so);
    std::vector<ShardPlan> plan = sched.plan(views, 1024);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].member, 0);
    EXPECT_EQ(plan[0].shots, 1024);

    // Nobody available: empty plan, not a crash.
    views[0].available = false;
    views[2].available = false;
    EXPECT_TRUE(sched.plan(views, 1024).empty());
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

ShardResult
shard(int member, int shots, double pc, double energy, double var = 0.01)
{
    ShardResult s;
    s.member = member;
    s.shots = shots;
    s.pCorrect = pc;
    s.energy = energy;
    s.variance = var;
    s.completeH = 1.0 + member;
    s.circuitsRun = 3;
    return s;
}

TEST(Aggregator, ModesCombineAsDocumented)
{
    std::vector<ShardResult> shards = {shard(0, 100, 0.9, -1.0),
                                       shard(1, 100, 0.3, -2.0),
                                       shard(2, 200, 0.6, -3.0)};

    Aggregator fid(AggregationMode::FidelityWeighted);
    Aggregator equi(AggregationMode::EquiWeighted);
    Aggregator vote(AggregationMode::MajorityVote);
    for (const ShardResult &s : shards) {
        fid.add(s);
        equi.add(s);
        vote.add(s);
    }
    // Fidelity: weights 90, 30, 120 -> (-90 - 60 - 360) / 240.
    EXPECT_NEAR(fid.energy(), -510.0 / 240.0, 1e-12);
    EXPECT_NEAR(equi.energy(), -2.0, 1e-12);
    EXPECT_NEAR(vote.energy(), -2.0, 1e-12);
    // Shot-weighted pCorrect: (90 + 30 + 120) / 400.
    EXPECT_NEAR(fid.pCorrect(), 0.6, 1e-12);
    EXPECT_EQ(fid.primaryMember(), 2);
    EXPECT_EQ(fid.shotsExecuted(), 400);
    EXPECT_DOUBLE_EQ(fid.completeH(), 3.0);
}

TEST(Aggregator, FailedShardsRenormalizeOverSurvivors)
{
    Aggregator agg(AggregationMode::FidelityWeighted);
    agg.add(shard(0, 100, 0.8, -1.0));
    ShardResult dead = shard(1, 300, 0.9, -5.0);
    dead.failed = true;
    agg.add(dead);
    agg.add(shard(2, 100, 0.8, -3.0));

    EXPECT_EQ(agg.failures(), 1);
    EXPECT_EQ(agg.shardsExecuted(), 2);
    // The dead shard contributes nothing: equal surviving weights.
    EXPECT_NEAR(agg.energy(), -2.0, 1e-12);
    EXPECT_EQ(agg.shotsExecuted(), 200);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServiceNode, AdmissionControlRejectsOverload)
{
    ServiceOptions o = fastOptions();
    o.admission.maxQueueDepth = 3;
    o.admission.maxQueuedPerTenant = 2;
    ServiceNode node(serveEnsemble(), o);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 512;

    r.tenantId = 1;
    EXPECT_TRUE(node.submit(r).admitted());
    EXPECT_TRUE(node.submit(r).admitted());
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedTenantQuota);

    r.tenantId = 2;
    EXPECT_TRUE(node.submit(r).admitted());
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedQueueFull);

    // Malformed requests never reach the queue.
    r.params.pop_back();
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedBadRequest);
    r.params = p.initialParams;
    r.workload = 99;
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedBadRequest);
    r.workload = wl;
    r.shots = 0;
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedBadRequest);

    EXPECT_EQ(node.counters().jobsAdmitted, 3u);
    EXPECT_EQ(node.counters().jobsRejected, 5u);
    EXPECT_EQ(node.pendingJobs(), 3u);
}

TEST(ServiceNode, RetryAfterHintsMonotoneInBacklog)
{
    // Every capacity rejection carries a backpressure hint derived
    // from the queue models at the backlog observed at rejection time
    // — strictly increasing in queue depth, so tenants naturally
    // spread their resubmissions.
    ServiceOptions o = fastOptions();
    o.admission.maxQueuedPerTenant = 1;
    o.admission.maxQueueDepth = 7;
    ServiceNode node(serveEnsemble(), o);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 512;

    double prev = 0.0;
    for (int t = 0; t < 6; ++t) {
        r.tenantId = t;
        ASSERT_TRUE(node.submit(r).admitted());
        Ticket rejected = node.submit(r); // tenant at quota
        EXPECT_EQ(rejected.status, AdmitStatus::RejectedTenantQuota);
        EXPECT_GT(rejected.retryAfterS, prev)
            << "hint must grow with backlog (depth " << t + 1 << ")";
        prev = rejected.retryAfterS;
    }

    // Queue full: also a capacity rejection, also hinted — and at a
    // deeper backlog than any quota rejection above.
    r.tenantId = 99;
    ASSERT_TRUE(node.submit(r).admitted()); // fills the queue (depth 7)
    r.tenantId = 100;
    Ticket full = node.submit(r);
    EXPECT_EQ(full.status, AdmitStatus::RejectedQueueFull);
    EXPECT_GT(full.retryAfterS, prev);

    // Malformed requests get no hint: retrying won't help.
    r.shots = 0;
    Ticket bad = node.submit(r);
    EXPECT_EQ(bad.status, AdmitStatus::RejectedBadRequest);
    EXPECT_DOUBLE_EQ(bad.retryAfterS, 0.0);

    EXPECT_EQ(node.counters().rejectedTenantQuota, 6u);
    EXPECT_EQ(node.counters().rejectedQueueFull, 1u);
    EXPECT_EQ(node.counters().rejectedBadRequest, 1u);
    EXPECT_EQ(node.counters().jobsRejected, 8u);
    EXPECT_EQ(node.retryAfterStats().count(), 7u);
}

// ---------------------------------------------------------------------------
// Coalescing
// ---------------------------------------------------------------------------

TEST(ServiceNode, CoalescesIdenticalRequestsAcrossTenants)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    const int tenants = 6;
    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 4096;
    for (int t = 0; t < tenants; ++t) {
        r.tenantId = t;
        ASSERT_TRUE(node.submit(r).admitted());
    }
    // One tenant asks for something else: a second work item.
    r.tenantId = 0;
    r.params[0] += 0.5;
    ASSERT_TRUE(node.submit(r).admitted());

    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), static_cast<std::size_t>(tenants + 1));

    // The identical requests executed once: 2 work items total, and
    // the shard count is per-item, not per-tenant.
    EXPECT_EQ(node.counters().workItems, 2u);
    EXPECT_EQ(node.counters().jobsCoalesced,
              static_cast<uint64_t>(tenants - 1));
    EXPECT_LE(node.counters().shardsExecuted,
              2u * node.numMembers());

    // Riders all see the same answer; exactly tenants-1 are flagged.
    int coalesced = 0;
    for (int t = 1; t < tenants; ++t) {
        EXPECT_DOUBLE_EQ(out[t].energy, out[0].energy);
        coalesced += out[t].coalesced ? 1 : 0;
    }
    EXPECT_EQ(coalesced, tenants - 1);
    EXPECT_NE(out[tenants].energy, out[0].energy);
}

TEST(ServiceNode, ResultCacheServesRepeatsWithinTtl)
{
    ServiceOptions o = fastOptions();
    o.resultCacheTtlH = 0.5;
    ServiceNode node(serveEnsemble(), o);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 2048;
    r.submitH = 0.0;
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> first = node.drain();
    ASSERT_EQ(first.size(), 1u);
    ASSERT_FALSE(first[0].fromCache);

    // Same binding shortly after: answered without touching a QPU.
    r.submitH = first[0].completeH + 0.01;
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> second = node.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].fromCache);
    EXPECT_DOUBLE_EQ(second[0].energy, first[0].energy);
    EXPECT_DOUBLE_EQ(second[0].latencyH, 0.0);
    EXPECT_EQ(node.counters().workItems, 1u);
    EXPECT_EQ(node.counters().cacheHits, 1u);

    // Past the TTL the answer is stale (drift): a fresh execution.
    r.submitH = first[0].completeH + 1.0;
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> third = node.drain();
    EXPECT_FALSE(third[0].fromCache);
    EXPECT_EQ(node.counters().workItems, 2u);
}

TEST(ResultCache, ExpiresOnServingClock)
{
    VirtualClock clock;
    ResultCache cache(&clock, 0.5, 4);
    WorkKey k;
    k.workload = 0;
    k.params = {1.0, 2.0};
    CachedResult r;
    r.shots = 100;
    r.completeH = 0.0;
    cache.store(k, r); // stored at clock hour 0

    EXPECT_NE(cache.lookup(k, 0.2, 100), nullptr);
    EXPECT_EQ(cache.lookup(k, 0.2, 200), nullptr); // bigger budget
    EXPECT_EQ(cache.lookup(k, 0.8, 100), nullptr); // rider-stale

    // The clock moving past the TTL expires the entry even for a
    // rider claiming an old submission hour — no time-traveling the
    // cache under a wall clock.
    clock.advanceTo(1.0);
    EXPECT_EQ(cache.lookup(k, 0.2, 100), nullptr);

    // Expired entries are purged when fresh results store.
    WorkKey k2;
    k2.workload = 1;
    k2.params = {3.0};
    CachedResult r2;
    r2.shots = 50;
    r2.completeH = 1.0;
    cache.store(k2, r2);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_NE(cache.lookup(k2, 1.1, 50), nullptr);
}

// ---------------------------------------------------------------------------
// Cache-aware shard placement
// ---------------------------------------------------------------------------

TEST(ShotScheduler, WarmBoostBiasesPlacement)
{
    std::vector<MemberView> views(2);
    for (int i = 0; i < 2; ++i) {
        views[i].member = i;
        views[i].available = true;
        views[i].pCorrect = 0.8;
        views[i].expectedLatencyS = 60.0;
    }
    views[1].planWarm = true;

    ShotSchedulerOptions so;
    so.warmBoost = 2.0;
    ShotScheduler sched(so);
    std::vector<ShardPlan> plan = sched.plan(views, 3000);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_GT(plan[1].shots, plan[0].shots);
    EXPECT_EQ(plan[0].shots + plan[1].shots, 3000);

    // warmBoost 1.0 disables the bias; below 1 clamps (a warm cache
    // never argues for less work).
    so.warmBoost = 1.0;
    plan = ShotScheduler(so).plan(views, 3000);
    EXPECT_EQ(plan[0].shots, plan[1].shots);
    so.warmBoost = 0.25;
    plan = ShotScheduler(so).plan(views, 3000);
    EXPECT_EQ(plan[0].shots, plan[1].shots);
}

TEST(ServiceNode, CacheAwarePlacementRoutesToWarmMembers)
{
    // Two nodes replay the same submission sequence; one places
    // cache-aware (strong warm boost), the control doesn't. Member 0
    // is down for the first drain, so only members 1..3 compile plans
    // — when it comes back for the re-request, the warm-boosted node
    // must route more of the budget to the warm members than the
    // control does.
    auto run = [&](double warmBoost) {
        ServiceOptions o = fastOptions(33);
        o.scheduler.warmBoost = warmBoost;
        auto node = std::make_unique<ServiceNode>(serveEnsemble(), o);
        VqaProblem p = makeHeisenbergVqe();
        WorkloadId wl = node->registerWorkload(p.ansatz, p.hamiltonian);

        JobRequest r;
        r.workload = wl;
        r.params = p.initialParams;
        r.shots = 8192;
        node->failMemberAt(0, 0.0);
        EXPECT_TRUE(node->submit(r).admitted());
        std::vector<JobOutcome> first = node->drain();
        EXPECT_EQ(first.size(), 1u);
        const uint64_t coldAfterFirst = node->memberShotCounts()[0];
        EXPECT_EQ(coldAfterFirst, 0u); // member 0 never ran

        node->restoreMember(0);
        r.submitH = first[0].completeH;
        EXPECT_TRUE(node->submit(r).admitted());
        node->drain();
        return node->memberShotCounts()[0]; // cold member's share
    };

    const uint64_t coldShareControl = run(1.0);
    const uint64_t coldShareWarm = run(8.0);
    EXPECT_GT(coldShareControl, 0u);
    EXPECT_LT(coldShareWarm, coldShareControl)
        << "warm boost must shift budget away from the cold member";
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

TEST(ServiceNode, KilledMemberMidRunRequeuesOntoSurvivors)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    // Find the member the scheduler trusts most, then kill it a few
    // virtual seconds in — after planning, before any completion.
    const int budget = 8192;
    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = budget;
    ASSERT_TRUE(node.submit(r).admitted());
    node.failMemberAt(0, 2.0 / 3600.0);

    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 1u);
    const JobOutcome &o = out[0];

    // The job still completes with its FULL shot budget, served
    // entirely by survivors.
    EXPECT_EQ(o.shotsExecuted, budget);
    EXPECT_FALSE(o.degraded);
    EXPECT_GT(o.requeues, 0);
    EXPECT_GT(node.counters().shardsRequeued, 0u);
    EXPECT_TRUE(std::isfinite(o.energy));
    EXPECT_NE(o.primaryMember, 0);
    EXPECT_GT(o.completeH, o.submitH);

    // A second job planned after the failure never touches member 0.
    r.submitH = o.completeH;
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> again = node.drain();
    EXPECT_EQ(again[0].shotsExecuted, budget);
    EXPECT_EQ(again[0].requeues, 0);
    EXPECT_NE(again[0].primaryMember, 0);
}

TEST(ServiceNode, AllMembersDeadStillReturnsOutcomes)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
    for (std::size_t m = 0; m < node.numMembers(); ++m)
        node.failMemberAt(m, 0.0);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 1024;
    r.submitH = 1.0;
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].shotsExecuted, 0);
    EXPECT_EQ(out[0].shardsExecuted, 0);
    EXPECT_TRUE(out[0].degraded);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------------

std::vector<JobOutcome>
runWorkload(int threads, int tenants)
{
    ServiceNode node(serveEnsemble(), fastOptions(77));
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
    JobRequest r;
    r.workload = wl;
    r.shots = 2048;
    for (int t = 0; t < tenants; ++t) {
        r.tenantId = t;
        r.params = p.initialParams;
        r.params[0] += 0.1 * t; // distinct bindings: no coalescing
        r.priority = t % 2;
        r.submitH = 0.01 * t;
        EXPECT_TRUE(node.submit(r).admitted());
    }
    TaskPool pool(threads);
    return node.drain(&pool);
}

TEST(ServiceNode, DrainBitIdenticalForAnyThreadCount)
{
    std::vector<JobOutcome> t1 = runWorkload(1, 5);
    std::vector<JobOutcome> t2 = runWorkload(2, 5);
    std::vector<JobOutcome> t4 = runWorkload(4, 5);
    ASSERT_EQ(t1.size(), 5u);
    ASSERT_EQ(t2.size(), t1.size());
    ASSERT_EQ(t4.size(), t1.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].jobId, t2[i].jobId);
        EXPECT_DOUBLE_EQ(t1[i].energy, t2[i].energy);
        EXPECT_DOUBLE_EQ(t1[i].energy, t4[i].energy);
        EXPECT_DOUBLE_EQ(t1[i].variance, t4[i].variance);
        EXPECT_DOUBLE_EQ(t1[i].completeH, t2[i].completeH);
        EXPECT_DOUBLE_EQ(t1[i].completeH, t4[i].completeH);
        EXPECT_EQ(t1[i].shardsExecuted, t4[i].shardsExecuted);
        EXPECT_EQ(t1[i].shotsExecuted, t4[i].shotsExecuted);
    }
}

TEST(ServiceNode, BatchedSweepBitIdenticalToSequential)
{
    // The batched member sweep is a pure execution-strategy switch:
    // with it on, each work item's alive shards advance together
    // through one estimateEnsemble pass, and every outcome must match
    // the sequential path bitwise — including across thread counts and
    // with a mid-run member failure in the mix.
    auto run = [](bool batched, int threads) {
        ServiceOptions o = fastOptions(77);
        o.batchedSweep = batched;
        ServiceNode node(serveEnsemble(), o);
        VqaProblem p = makeHeisenbergVqe();
        WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
        JobRequest r;
        r.workload = wl;
        r.shots = 2048;
        for (int t = 0; t < 5; ++t) {
            r.tenantId = t;
            r.params = p.initialParams;
            r.params[0] += 0.1 * t;
            r.priority = t % 2;
            r.submitH = 0.01 * t;
            EXPECT_TRUE(node.submit(r).admitted());
        }
        node.failMemberAt(1, 30.0 / 3600.0);
        TaskPool pool(threads);
        return node.drain(&pool);
    };
    std::vector<JobOutcome> seq = run(false, 2);
    ASSERT_EQ(seq.size(), 5u);
    for (int threads : {1, 2, 4}) {
        std::vector<JobOutcome> bat = run(true, threads);
        ASSERT_EQ(bat.size(), seq.size());
        for (std::size_t i = 0; i < seq.size(); ++i) {
            EXPECT_EQ(bat[i].jobId, seq[i].jobId);
            EXPECT_EQ(bat[i].energy, seq[i].energy)
                << "job " << i << " threads " << threads;
            EXPECT_EQ(bat[i].variance, seq[i].variance);
            EXPECT_EQ(bat[i].completeH, seq[i].completeH);
            EXPECT_EQ(bat[i].shardsExecuted, seq[i].shardsExecuted);
            EXPECT_EQ(bat[i].shotsExecuted, seq[i].shotsExecuted);
        }
    }
}

std::vector<JobOutcome>
runEventLoopWorkload(int threads)
{
    // The full event-loop surface in one workload: coalescing pairs,
    // distinct bindings, a mid-run member failure (requeue events), a
    // result cache with repeats (cache-hit events) and a second drain.
    ServiceOptions o = fastOptions(101);
    o.resultCacheTtlH = 0.5;
    ServiceNode node(serveEnsemble(), o);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.shots = 4096;
    for (int t = 0; t < 6; ++t) {
        r.tenantId = t;
        r.params = p.initialParams;
        r.params[0] += 0.1 * (t / 2); // pairs coalesce
        r.priority = t % 2;
        r.submitH = 0.01 * t;
        EXPECT_TRUE(node.submit(r).admitted());
    }
    node.failMemberAt(1, 30.0 / 3600.0);

    TaskPool pool(threads);
    std::vector<JobOutcome> out = node.drain(&pool);

    // Second drain: one binding repeats (cache hit), one is new.
    r.tenantId = 0;
    r.params = p.initialParams;
    r.submitH = out.back().completeH + 0.01;
    EXPECT_TRUE(node.submit(r).admitted());
    r.tenantId = 1;
    r.params[0] += 7.5;
    EXPECT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> again = node.drain(&pool);
    out.insert(out.end(), again.begin(), again.end());
    return out;
}

TEST(ServiceNode, EventLoopBitIdenticalAcrossThreadsWithFailures)
{
    std::vector<JobOutcome> t1 = runEventLoopWorkload(1);
    std::vector<JobOutcome> t2 = runEventLoopWorkload(2);
    std::vector<JobOutcome> t4 = runEventLoopWorkload(4);
    ASSERT_EQ(t1.size(), 8u);
    ASSERT_EQ(t2.size(), t1.size());
    ASSERT_EQ(t4.size(), t1.size());
    bool sawRequeue = false, sawCacheHit = false, sawCoalesced = false;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].jobId, t2[i].jobId);
        EXPECT_EQ(t1[i].jobId, t4[i].jobId);
        EXPECT_DOUBLE_EQ(t1[i].energy, t2[i].energy);
        EXPECT_DOUBLE_EQ(t1[i].energy, t4[i].energy);
        EXPECT_DOUBLE_EQ(t1[i].variance, t4[i].variance);
        EXPECT_DOUBLE_EQ(t1[i].completeH, t2[i].completeH);
        EXPECT_DOUBLE_EQ(t1[i].completeH, t4[i].completeH);
        EXPECT_EQ(t1[i].shotsExecuted, t4[i].shotsExecuted);
        EXPECT_EQ(t1[i].shardsExecuted, t4[i].shardsExecuted);
        EXPECT_EQ(t1[i].requeues, t4[i].requeues);
        EXPECT_EQ(t1[i].fromCache, t4[i].fromCache);
        sawRequeue = sawRequeue || t1[i].requeues > 0;
        sawCacheHit = sawCacheHit || t1[i].fromCache;
        sawCoalesced = sawCoalesced || t1[i].coalesced;
    }
    // The workload must actually exercise every event path.
    EXPECT_TRUE(sawRequeue);
    EXPECT_TRUE(sawCacheHit);
    EXPECT_TRUE(sawCoalesced);
}

// ---------------------------------------------------------------------------
// Wall-clock serving (SteadyClock)
// ---------------------------------------------------------------------------

TEST(ServiceNode, SteadyClockServesSameWorkloadEndToEnd)
{
    // A model hour takes 2 ms of wall time: the same serving code
    // runs in real time, every admitted job still completes with its
    // full budget, and coalescing still collapses identical work.
    SteadyClock clock(0.002);
    ServiceOptions o = fastOptions();
    ServiceNode node(serveEnsemble(), o, &clock);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 2048;
    for (int t = 0; t < 3; ++t) {
        r.tenantId = t;
        if (t == 2)
            r.params[0] += 0.5; // one distinct binding
        ASSERT_TRUE(node.submit(r).admitted());
    }
    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 3u);
    for (const JobOutcome &o2 : out) {
        EXPECT_EQ(o2.shotsExecuted, 2048);
        EXPECT_FALSE(o2.degraded);
        EXPECT_TRUE(std::isfinite(o2.energy));
        EXPECT_GE(o2.completeH, o2.submitH);
    }
    EXPECT_DOUBLE_EQ(out[0].energy, out[1].energy); // coalesced pair
    EXPECT_EQ(node.counters().workItems, 2u);
    EXPECT_FALSE(node.clock().isVirtual());
    // The loop really ran on the wall clock: model time advanced at
    // least to the latest completion.
    EXPECT_GE(node.loop().now(),
              std::max(out[0].completeH, out[2].completeH));
}

// ---------------------------------------------------------------------------
// Latency SLOs: deadlines and graceful shedding
// ---------------------------------------------------------------------------

TEST(ServiceNode, DeadlineRejectsInfeasibleAtAdmission)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 512;
    r.submitH = 1.0;
    r.deadlineH = 0.5; // already blown at submission
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedDeadline);
    r.deadlineH = 1.0; // zero-width window: equally infeasible
    EXPECT_EQ(node.submit(r).status, AdmitStatus::RejectedDeadline);
    EXPECT_EQ(node.counters().rejectedDeadline, 2u);

    r.deadlineH = 2.0;
    EXPECT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].shed);
    EXPECT_DOUBLE_EQ(out[0].deadlineH, 2.0);
    EXPECT_EQ(node.counters().deadlinesMet, 1u);
}

TEST(ServiceNode, GenerousDeadlineDoesNotPerturbResults)
{
    // An SLO the job easily makes must be invisible to the numbers:
    // same seed with and without a deadline yields bit-identical
    // outcomes, and the deadline resolves to "met", never shed.
    auto run = [](double deadlineH) {
        ServiceNode node(serveEnsemble(), fastOptions(44));
        VqaProblem p = makeHeisenbergVqe();
        WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
        JobRequest r;
        r.workload = wl;
        r.params = p.initialParams;
        r.shots = 2048;
        r.deadlineH = deadlineH;
        EXPECT_TRUE(node.submit(r).admitted());
        std::vector<JobOutcome> out = node.drain();
        EXPECT_EQ(out.size(), 1u);
        return out[0];
    };
    JobOutcome bare = run(0.0);
    JobOutcome slo = run(100.0);
    EXPECT_DOUBLE_EQ(slo.energy, bare.energy);
    EXPECT_DOUBLE_EQ(slo.variance, bare.variance);
    EXPECT_DOUBLE_EQ(slo.completeH, bare.completeH);
    EXPECT_EQ(slo.shotsExecuted, bare.shotsExecuted);
    EXPECT_FALSE(slo.shed);
    EXPECT_EQ(slo.shedShots, 0);
    EXPECT_LE(slo.completeH, slo.deadlineH);
}

JobOutcome
runShedWorkload(int threads, double deadlineH)
{
    ServiceNode node(serveEnsemble(), fastOptions(55));
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 8192;
    r.deadlineH = deadlineH;
    EXPECT_TRUE(node.submit(r).admitted());
    TaskPool pool(threads);
    std::vector<JobOutcome> out = node.drain(&pool);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(node.counters().deadlineSheds, 1u);
    EXPECT_EQ(node.counters().shotsShed,
              static_cast<uint64_t>(out[0].shedShots));
    EXPECT_EQ(node.counters().deadlinesMet, 0u);
    return out[0];
}

TEST(ServiceNode, DeadlineMidFlightShedsGracefullyAndDeterministically)
{
    // A deadline tight enough to beat the slowest shards: the job
    // finalizes AT the deadline from whatever completed, flagged
    // shed+degraded, with exact shot accounting — identically for any
    // worker thread count.
    const double deadlineH = 0.02;
    JobOutcome t1 = runShedWorkload(1, deadlineH);
    EXPECT_TRUE(t1.shed);
    EXPECT_TRUE(t1.degraded);
    EXPECT_GT(t1.shedShots, 0);
    EXPECT_GT(t1.shotsExecuted, 0) << "deadline should land between "
                                      "shard completions, not before "
                                      "the first";
    EXPECT_EQ(t1.shotsExecuted + t1.shedShots, 8192);
    EXPECT_TRUE(std::isfinite(t1.energy));
    EXPECT_DOUBLE_EQ(t1.completeH, deadlineH);

    JobOutcome t2 = runShedWorkload(2, deadlineH);
    JobOutcome t4 = runShedWorkload(4, deadlineH);
    for (const JobOutcome *o : {&t2, &t4}) {
        EXPECT_DOUBLE_EQ(o->energy, t1.energy);
        EXPECT_DOUBLE_EQ(o->variance, t1.variance);
        EXPECT_DOUBLE_EQ(o->completeH, t1.completeH);
        EXPECT_EQ(o->shotsExecuted, t1.shotsExecuted);
        EXPECT_EQ(o->shedShots, t1.shedShots);
        EXPECT_EQ(o->shed, t1.shed);
    }
}

TEST(ServiceNode, DeadlineBeforeDispatchShedsWholeBudget)
{
    // Every member down and park-retry enabled: the item waits parked
    // with nothing dispatched, so its deadline sheds the entire shot
    // budget and completes with the empty-aggregate fallback.
    ServiceOptions o = fastOptions();
    o.retryUnplannableH = 0.05;
    ServiceNode node(serveEnsemble(), o);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
    for (std::size_t m = 0; m < node.numMembers(); ++m)
        node.failMemberAt(m, 0.0);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 1024;
    r.deadlineH = 0.03; // beats the first park retry at 0.05
    ASSERT_TRUE(node.submit(r).admitted());
    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].shed);
    EXPECT_TRUE(out[0].degraded);
    EXPECT_EQ(out[0].shedShots, 1024);
    EXPECT_EQ(out[0].shotsExecuted, 0);
    EXPECT_EQ(out[0].shardsExecuted, 0);
    EXPECT_DOUBLE_EQ(out[0].completeH, 0.03);
    EXPECT_EQ(node.counters().deadlineSheds, 1u);
    EXPECT_EQ(node.counters().shotsShed, 1024u);
}

// ---------------------------------------------------------------------------
// Continuous intake: riders joining in-flight items
// ---------------------------------------------------------------------------

TEST(ServiceNode, RiderJoinsInFlightItemBeforeCutoff)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 4096;
    r.tenantId = 0;
    ASSERT_TRUE(node.submit(r).admitted());

    // Advance the loop just past intake: shards are dispatched, none
    // has completed. This is the streaming window a batch drain never
    // exposes.
    node.runUntil(1e-4);
    EXPECT_EQ(node.counters().workItems, 1u);

    // A second tenant asks for the same binding with a budget no
    // larger than what is executing: it rides the in-flight item.
    r.tenantId = 1;
    r.shots = 2048;
    r.submitH = 1e-4;
    ASSERT_TRUE(node.submit(r).admitted());

    // A third asks for MORE shots than the dispatched budget: past
    // the cutoff, so it must get its own work item.
    r.tenantId = 2;
    r.shots = 8192;
    ASSERT_TRUE(node.submit(r).admitted());

    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(node.counters().ridersJoined, 1u);
    EXPECT_EQ(node.counters().workItems, 2u);

    // The rider shares the lead's answer bit-for-bit and reports the
    // executed (lead) budget; the oversized request ran separately.
    EXPECT_DOUBLE_EQ(out[1].energy, out[0].energy);
    EXPECT_DOUBLE_EQ(out[1].variance, out[0].variance);
    EXPECT_DOUBLE_EQ(out[1].completeH, out[0].completeH);
    EXPECT_EQ(out[0].shotsExecuted, 4096);
    EXPECT_EQ(out[1].shotsExecuted, 4096);
    EXPECT_TRUE(out[1].coalesced);
    EXPECT_EQ(out[2].shotsExecuted, 8192);
    EXPECT_NE(out[2].energy, out[0].energy);
}

// ---------------------------------------------------------------------------
// Live membership: joins, leaves, supervised restore
// ---------------------------------------------------------------------------

TEST(ServiceNode, LiveJoinAndLeaveReshapeTheEnsemble)
{
    ServiceNode node(serveEnsemble(), fastOptions());
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    // Member 0 leaves before any dispatch; a new device joins live.
    node.removeMember(0, 0.0);
    const std::size_t joined =
        node.addMember(deviceByName("ibmq_santiago"), 0.0);
    EXPECT_EQ(joined, 4u);
    EXPECT_EQ(node.numMembers(), 5u);
    EXPECT_EQ(node.counters().memberJoins, 1u);
    EXPECT_EQ(node.counters().memberLeaves, 1u);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 8192;
    ASSERT_TRUE(node.submit(r).admitted());
    // A second round well past the cold-start ramp: the joiner pulls
    // full-weight work.
    JobRequest r2 = r;
    r2.params[0] += 0.7;
    r2.submitH = 1.0;
    ASSERT_TRUE(node.submit(r2).admitted());

    std::vector<JobOutcome> out = node.drain();
    ASSERT_EQ(out.size(), 2u);
    for (const JobOutcome &o : out) {
        EXPECT_EQ(o.shotsExecuted, 8192);
        EXPECT_FALSE(o.degraded);
    }
    // The departed member never served; the joiner did.
    EXPECT_EQ(node.memberShotCounts()[0], 0u);
    EXPECT_GT(node.memberShotCounts()[joined], 0u);
}

TEST(ServiceNode, ColdStartRampPenalizesFreshJoiners)
{
    // Same submission against two nodes: in one the extra member has
    // been around forever, in the other it joined at the submission
    // hour. The cold joiner must receive strictly fewer shots.
    auto joinerShare = [](double joinH, double submitH) {
        ServiceOptions o = fastOptions(66);
        o.scheduler.coldStartPenalty = 0.2;
        o.scheduler.coldStartH = 0.5;
        ServiceNode node(serveEnsemble(), o);
        VqaProblem p = makeHeisenbergVqe();
        WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);
        const std::size_t j =
            node.addMember(deviceByName("ibmq_santiago"), joinH);
        JobRequest r;
        r.workload = wl;
        r.params = p.initialParams;
        r.shots = 8192;
        r.submitH = submitH;
        EXPECT_TRUE(node.submit(r).admitted());
        node.drain();
        return node.memberShotCounts()[j];
    };
    // Joined 10 h before the work vs joining right at it.
    const uint64_t warm = joinerShare(0.0, 10.0);
    const uint64_t cold = joinerShare(10.0, 10.0);
    EXPECT_GT(warm, 0u);
    EXPECT_LT(cold, warm);
}

TEST(ServiceNode, SupervisedRestoreBacksOffExponentially)
{
    ServiceOptions o = fastOptions();
    o.superviseBaseBackoffH = 0.01;
    ServiceNode node(serveEnsemble(), o);
    replay::EventJournal journal;
    node.setJournalSink(&journal);
    VqaProblem p = makeHeisenbergVqe();
    WorkloadId wl = node.registerWorkload(p.ansatz, p.hamiltonian);

    JobRequest r;
    r.workload = wl;
    r.params = p.initialParams;
    r.shots = 512;

    // First failure: the supervisor restores after the base backoff.
    node.failMemberAt(0, 0.0);
    ASSERT_TRUE(node.submit(r).admitted());
    node.drain();
    EXPECT_EQ(node.counters().supervisedRestores, 1u);

    // Flapping: the second failure earns a doubled cool-down.
    const double fail2H = node.loop().now();
    node.failMemberAt(0, fail2H);
    r.submitH = fail2H;
    r.params[0] += 0.3;
    ASSERT_TRUE(node.submit(r).admitted());
    node.drain();
    EXPECT_EQ(node.counters().supervisedRestores, 2u);

    std::vector<double> restoreH;
    for (const replay::EventRecord &rec : journal.records())
        if (rec.kind == replay::EventKind::MemberRestore &&
            rec.autoRestore)
            restoreH.push_back(rec.tH);
    ASSERT_EQ(restoreH.size(), 2u);
    EXPECT_DOUBLE_EQ(restoreH[0], 0.01);
    EXPECT_DOUBLE_EQ(restoreH[1], fail2H + 0.02);
}

// ---------------------------------------------------------------------------
// The "service" engine
// ---------------------------------------------------------------------------

TEST(ServiceEngine, RegisteredAndTrainsDeterministically)
{
    std::vector<std::string> names = Runtime::engineNames();
    EXPECT_EQ(std::count(names.begin(), names.end(), "service"), 1);

    VqaProblem p = makeHeisenbergVqe();
    EqcOptions opts;
    opts.master.epochs = 3;
    opts.master.weightBounds = {0.1, 1.0};
    opts.seed = 21;
    opts.engine = "service";
    opts.recordIdealEnergy = false;

    Runtime rt;
    EqcTrace a = rt.submit(p, serveEnsemble(), opts).take();
    ASSERT_EQ(a.epochs.size(), 3u);
    EXPECT_EQ(a.label, "EQC-service");
    for (const EpochRecord &rec : a.epochs)
        EXPECT_TRUE(std::isfinite(rec.energyDevice));
    EXPECT_FALSE(a.jobsPerDevice.empty());

    // Synchronous serving: every gradient is fresh.
    EXPECT_EQ(a.staleness.max(), 0.0);

    // Bit-identical across engine thread counts.
    for (int threads : {1, 2, 4}) {
        EqcOptions o2 = opts;
        o2.engineThreads = threads;
        EqcTrace b = rt.submit(p, serveEnsemble(), o2).take();
        ASSERT_EQ(b.epochs.size(), a.epochs.size());
        for (std::size_t i = 0; i < a.epochs.size(); ++i) {
            EXPECT_DOUBLE_EQ(b.epochs[i].energyDevice,
                             a.epochs[i].energyDevice);
            EXPECT_DOUBLE_EQ(b.epochs[i].timeH, a.epochs[i].timeH);
        }
        EXPECT_EQ(b.finalParams, a.finalParams);
    }
}

} // namespace
} // namespace eqc
