#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ansatz.h"
#include "quantum/pauli.h"

namespace eqc {
namespace {

TEST(Ansatz, HardwareEfficientShape)
{
    QuantumCircuit c = hardwareEfficientAnsatz(4);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.numParams(), 16); // the paper's 16-parameter VQE circuit
    GateCounts g = c.counts();
    EXPECT_EQ(g.g2, 3);           // linear CNOT chain
    EXPECT_EQ(g.measurements, 4);
    // Two RY layers of 4.
    int ryCount = 0;
    for (const GateOp &op : c.ops())
        if (op.type == GateType::RY)
            ++ryCount;
    EXPECT_EQ(ryCount, 8);
}

TEST(Ansatz, HardwareEfficientEveryParamUsedOnce)
{
    QuantumCircuit c = hardwareEfficientAnsatz(4);
    for (int p = 0; p < c.numParams(); ++p)
        EXPECT_EQ(c.paramOccurrences(p).size(), 1u) << p;
}

TEST(Ansatz, HardwareEfficientZeroParamsGiveZeroState)
{
    QuantumCircuit c = hardwareEfficientAnsatz(3);
    std::vector<double> zeros(c.numParams(), 0.0);
    Statevector sv = simulateIdeal(c, zeros);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-10);
}

TEST(Ansatz, QaoaShape)
{
    std::vector<std::pair<int, int>> ring = {
        {0, 1}, {1, 2}, {2, 3}, {0, 3}};
    QuantumCircuit c = qaoaAnsatz(4, ring, 1);
    EXPECT_EQ(c.numParams(), 2); // the paper's 2-parameter QAOA
    int h = 0, rzz = 0, rx = 0;
    for (const GateOp &op : c.ops()) {
        if (op.type == GateType::H)
            ++h;
        if (op.type == GateType::RZZ)
            ++rzz;
        if (op.type == GateType::RX)
            ++rx;
    }
    EXPECT_EQ(h, 4);
    EXPECT_EQ(rzz, 4);
    EXPECT_EQ(rx, 4);
}

TEST(Ansatz, QaoaSharedParameters)
{
    std::vector<std::pair<int, int>> ring = {
        {0, 1}, {1, 2}, {2, 3}, {0, 3}};
    QuantumCircuit c = qaoaAnsatz(4, ring, 1);
    // beta (param 0) appears on every edge, alpha (param 1) on every qubit.
    EXPECT_EQ(c.paramOccurrences(0).size(), 4u);
    EXPECT_EQ(c.paramOccurrences(1).size(), 4u);
}

TEST(Ansatz, QaoaMultiLayer)
{
    std::vector<std::pair<int, int>> edges = {{0, 1}};
    QuantumCircuit c = qaoaAnsatz(2, edges, 3);
    EXPECT_EQ(c.numParams(), 6);
}

TEST(Ansatz, QaoaZeroAnglesGiveUniformSuperposition)
{
    std::vector<std::pair<int, int>> ring = {
        {0, 1}, {1, 2}, {2, 3}, {0, 3}};
    QuantumCircuit c = qaoaAnsatz(4, ring, 1);
    Statevector sv = simulateIdeal(c, {0.0, 0.0});
    auto p = sv.probabilities();
    for (double v : p)
        EXPECT_NEAR(v, 1.0 / 16.0, 1e-12);
}

TEST(Ansatz, GhzStateIsGhz)
{
    QuantumCircuit c = ghzCircuit(5);
    Statevector sv = simulateIdeal(c);
    EXPECT_NEAR(std::norm(sv.amplitude(0)), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(sv.amplitude(31)), 0.5, 1e-12);
    double other = 0.0;
    auto probs = sv.probabilities();
    for (uint64_t i = 1; i < 31; ++i)
        other += probs[i];
    EXPECT_NEAR(other, 0.0, 1e-12);
}

} // namespace
} // namespace eqc
