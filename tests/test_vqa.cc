#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "common/task_pool.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/parameter_shift.h"
#include "vqa/problem.h"
#include "vqa/trainer.h"

namespace eqc {
namespace {

VqaProblem
vqe()
{
    return makeHeisenbergVqe(7);
}

TEST(Expectation, GroupingOfHeisenberg)
{
    VqaProblem p = vqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    // XX / YY / (ZZ+Z) -> exactly 3 measurement circuits.
    EXPECT_EQ(est.groups().size(), 3u);
}

TEST(Expectation, ExactModeMatchesIdealEnergy)
{
    VqaProblem p = vqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(5);
    for (uint64_t trial = 0; trial < 4; ++trial) {
        std::vector<double> params(p.numParams());
        for (double &v : params)
            v = rng.uniform(-kPi, kPi);
        EnergyEstimate e = est.estimate(backend, compiled, params, 0,
                                        0.0, rng, ShotMode::Exact);
        double ref = idealEnergy(p.ansatz, p.hamiltonian, params);
        EXPECT_NEAR(e.energy, ref, 1e-9);
    }
}

TEST(Expectation, MultinomialIsUnbiasedEstimator)
{
    VqaProblem p = vqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(9);
    std::vector<double> params(p.numParams(), 0.35);
    double ref = idealEnergy(p.ansatz, p.hamiltonian, params);
    double acc = 0.0;
    const int reps = 24;
    for (int r = 0; r < reps; ++r) {
        EnergyEstimate e = est.estimate(backend, compiled, params, 4096,
                                        0.0, rng, ShotMode::Multinomial);
        acc += e.energy;
    }
    EXPECT_NEAR(acc / reps, ref, 0.1);
}

TEST(Expectation, GaussianModeMatchesVarianceScale)
{
    VqaProblem p = vqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(13);
    std::vector<double> params(p.numParams(), -0.2);
    double ref = idealEnergy(p.ansatz, p.hamiltonian, params);
    RunningStats stats;
    for (int r = 0; r < 200; ++r) {
        EnergyEstimate e = est.estimate(backend, compiled, params, 8192,
                                        0.0, rng, ShotMode::Gaussian);
        stats.add(e.energy);
    }
    EXPECT_NEAR(stats.mean(), ref, 0.05);
    // Shot noise at 8192 shots across 16 unit-coefficient terms stays
    // in the tens-of-milli-a.u. range.
    EXPECT_LT(stats.stddev(), 0.1);
    EXPECT_GT(stats.stddev(), 0.005);
}

TEST(ParameterShift, MatchesFiniteDifferenceIdeal)
{
    VqaProblem p = vqe();
    Rng rng(17);
    std::vector<double> params(p.numParams());
    for (double &v : params)
        v = rng.uniform(-1.0, 1.0);
    for (int i : {0, 5, 11, 15}) {
        double g = idealGradient(p.ansatz, p.hamiltonian, params, i);
        double eps = 1e-5;
        std::vector<double> up = params, dn = params;
        up[i] += eps;
        dn[i] -= eps;
        double fd = (idealEnergy(p.ansatz, p.hamiltonian, up) -
                     idealEnergy(p.ansatz, p.hamiltonian, dn)) /
                    (2 * eps);
        EXPECT_NEAR(g, fd, 1e-6) << "param " << i;
    }
}

TEST(ParameterShift, WholeParameterEqualsPerOccurrenceForVqe)
{
    // Each VQE parameter feeds exactly one gate, so both modes agree.
    VqaProblem p = vqe();
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(21);
    std::vector<double> params(p.numParams(), 0.4);
    GradientEstimate whole = gradientParamShift(
        est, backend, compiled, params, 3, 0, 0.0, rng, ShotMode::Exact,
        ShiftMode::WholeParameter);
    GradientEstimate perOcc = gradientParamShift(
        est, backend, compiled, params, 3, 0, 0.0, rng, ShotMode::Exact,
        ShiftMode::PerOccurrence);
    EXPECT_NEAR(whole.gradient, perOcc.gradient, 1e-9);
}

TEST(ParameterShift, PerOccurrenceExactForSharedQaoaParams)
{
    VqaProblem p = makeRingMaxCutQaoa(3);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(23);
    std::vector<double> params = {0.37, 0.81};
    for (int i = 0; i < 2; ++i) {
        GradientEstimate g = gradientParamShift(
            est, backend, compiled, params, i, 0, 0.0, rng,
            ShotMode::Exact, ShiftMode::PerOccurrence);
        double eps = 1e-5;
        std::vector<double> up = params, dn = params;
        up[i] += eps;
        dn[i] -= eps;
        double fd = (idealEnergy(p.ansatz, p.hamiltonian, up) -
                     idealEnergy(p.ansatz, p.hamiltonian, dn)) /
                    (2 * eps);
        EXPECT_NEAR(g.gradient, fd, 1e-6) << "param " << i;
    }
}

TEST(ParameterShift, BatchedGradientInvariantAcrossThreadCounts)
{
    // Fan-out through a TaskPool must not perturb the numbers: every
    // circuit execution draws from its own forked stream and the
    // reduction order is fixed, so 1, 2 and 4 threads agree bit-for-
    // bit — on the noisy density-matrix backend, in both shot modes.
    VqaProblem p = vqe();
    Device d = deviceByName("ibmq_bogota");
    SimulatedQpu qpu(d, 3);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);

    for (ShotMode mode : {ShotMode::Gaussian, ShotMode::Multinomial}) {
        double ref = 0.0;
        for (int threads : {1, 2, 4}) {
            TaskPool pool(threads);
            Rng rng(5);
            GradientEstimate g = gradientParamShift(
                est, qpu, compiled, p.initialParams, 0, 4096, 1.0,
                rng, mode, ShiftMode::WholeParameter, true, &pool);
            if (threads == 1)
                ref = g.gradient;
            else
                EXPECT_DOUBLE_EQ(g.gradient, ref)
                    << "threads " << threads;
        }
    }
}

TEST(Expectation, BatchedEstimateMatchesJobOrder)
{
    // estimateBatch returns one estimate per job in job order, and a
    // batch of identical jobs with the same parent stream state gives
    // per-job results that only differ through their forked streams.
    VqaProblem p = vqe();
    Device d = deviceByName("ibmq_bogota");
    SimulatedQpu qpu(d, 3);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);

    std::vector<double> a = p.initialParams, b = p.initialParams;
    b[0] += 0.5;
    Rng rng(9);
    TaskPool pool(2);
    std::vector<EnergyEstimate> es = est.estimateBatch(
        qpu, {{&compiled, &a}, {&compiled, &b}, {&compiled, &a}},
        0, 1.0, rng, ShotMode::Exact, true, &pool);
    ASSERT_EQ(es.size(), 3u);
    // Exact mode draws no shot noise: identical jobs agree exactly,
    // different parameters do not.
    EXPECT_DOUBLE_EQ(es[0].energy, es[2].energy);
    EXPECT_NE(es[0].energy, es[1].energy);
    for (const EnergyEstimate &e : es)
        EXPECT_EQ(e.circuitsRun, 3);
}

TEST(Expectation, EnsembleEstimateBitIdenticalToSequential)
{
    // estimateEnsemble advances all lanes through each group circuit
    // in one batched density-matrix pass; results and rng end states
    // must match per-lane sequential estimate() calls bitwise, for
    // every thread count and shot mode.
    VqaProblem p = vqe();
    Device d = deviceByName("ibmq_bogota");
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    const int k = 3;

    for (ShotMode mode : {ShotMode::Exact, ShotMode::Multinomial,
                          ShotMode::Gaussian}) {
        std::vector<EnergyEstimate> seq(k);
        std::vector<uint64_t> nextDraw(k);
        {
            TaskPool pool(2);
            for (int m = 0; m < k; ++m) {
                SimulatedQpu qpu(d, 20 + m);
                Rng rng(50 + m);
                seq[m] = est.estimate(qpu, compiled, p.initialParams,
                                      512, 1.0 + 0.05 * m, rng, mode,
                                      true, &pool);
                nextDraw[m] = rng.engine()();
            }
        }
        for (int poolSize : {1, 4}) {
            TaskPool pool(poolSize);
            std::vector<std::unique_ptr<SimulatedQpu>> qpus;
            std::vector<Rng> rngs;
            for (int m = 0; m < k; ++m) {
                qpus.push_back(
                    std::make_unique<SimulatedQpu>(d, 20 + m));
                rngs.emplace_back(50 + m);
            }
            std::vector<ExpectationEstimator::EnsembleLane> lanes(k);
            for (int m = 0; m < k; ++m) {
                lanes[m].backend = qpus[m].get();
                lanes[m].compiled = &compiled;
                lanes[m].shots = 512;
                lanes[m].atTimeH = 1.0 + 0.05 * m;
                lanes[m].rng = &rngs[m];
            }
            std::vector<EnergyEstimate> ens = est.estimateEnsemble(
                lanes, p.initialParams, mode, true, &pool);
            ASSERT_EQ(ens.size(), static_cast<std::size_t>(k));
            for (int m = 0; m < k; ++m) {
                EXPECT_EQ(ens[m].energy, seq[m].energy)
                    << "mode " << static_cast<int>(mode) << " member "
                    << m << " pool " << poolSize;
                EXPECT_EQ(ens[m].variance, seq[m].variance);
                EXPECT_EQ(ens[m].circuitsRun, seq[m].circuitsRun);
                EXPECT_EQ(ens[m].measurements, seq[m].measurements);
                EXPECT_EQ(ens[m].totalDurationUs,
                          seq[m].totalDurationUs);
                EXPECT_EQ(rngs[m].engine()(), nextDraw[m]);
            }
        }
    }
}

TEST(Optimizer, AppliesWeightedStep)
{
    AsgdOptimizer opt(0.1);
    std::vector<double> params = {1.0, 2.0};
    opt.apply(params, 0, 0.5);
    EXPECT_NEAR(params[0], 0.95, 1e-12);
    opt.apply(params, 1, 0.5, 1.5); // weighted step
    EXPECT_NEAR(params[1], 2.0 - 1.5 * 0.1 * 0.5, 1e-12);
    EXPECT_EQ(opt.updates(), 2u);
    EXPECT_NEAR(opt.maxStep(), 0.075, 1e-12);
}

TEST(Problem, FactoriesMatchPaperShapes)
{
    VqaProblem v = makeHeisenbergVqe();
    EXPECT_EQ(v.numParams(), 16);
    EXPECT_EQ(v.shots, 8192);
    VqaProblem q = makeRingMaxCutQaoa();
    EXPECT_EQ(q.numParams(), 2);
    EXPECT_EQ(q.hamiltonian.numQubits(), 4);
}

TEST(Trainer, IdealDeviceConvergesTowardAnsatzMinimum)
{
    VqaProblem p = vqe();
    Device ideal = makeIdealDevice(4);
    TrainerOptions opts;
    opts.epochs = 120;
    opts.seed = 5;
    TrainingTrace trace = trainSingleDevice(p, ideal, opts);
    ASSERT_EQ(trace.epochs.size(), 120u);
    double start = trace.epochs.front().energyIdeal;
    double end = trace.epochs.back().energyIdeal;
    EXPECT_LT(end, start - 1.0); // must descend substantially
    // Must approach the exact ground energy reasonably closely.
    double ground = minEigenvalue(p.hamiltonian);
    EXPECT_LT(end, ground * 0.8); // within 20% of the ground energy
    EXPECT_FALSE(trace.terminated);
    EXPECT_GT(trace.epochsPerHour, 0.0);
}

TEST(Trainer, TerminationRuleFires)
{
    VqaProblem p = vqe();
    Device man = deviceByName("ibmq_manhattan");
    TrainerOptions opts;
    opts.epochs = 250;
    opts.maxHours = 24.0; // tight budget: Manhattan cannot finish
    opts.seed = 3;
    TrainingTrace trace = trainSingleDevice(p, man, opts);
    EXPECT_TRUE(trace.terminated);
    EXPECT_LT(trace.epochs.size(), 250u);
}

} // namespace
} // namespace eqc
