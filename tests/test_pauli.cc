#include <gtest/gtest.h>

#include "quantum/pauli.h"

namespace eqc {
namespace {

TEST(PauliString, LabelRoundTrip)
{
    for (const char *label : {"IXYZ", "ZZZZ", "IIII", "XYIZ"}) {
        PauliString p(label);
        EXPECT_EQ(p.label(), label);
    }
}

TEST(PauliString, SetAndAt)
{
    PauliString p(4);
    p.set(2, Pauli::Y);
    EXPECT_EQ(p.at(2), Pauli::Y);
    EXPECT_EQ(p.at(0), Pauli::I);
    p.set(2, Pauli::I);
    EXPECT_EQ(p.at(2), Pauli::I);
}

TEST(PauliString, Masks)
{
    PauliString p("XYZI");
    EXPECT_EQ(p.xMask(), 0b0011u); // X on q0, Y on q1
    EXPECT_EQ(p.zMask(), 0b0110u); // Y on q1, Z on q2
}

TEST(PauliString, Weight)
{
    EXPECT_EQ(PauliString("IIII").weight(), 0);
    EXPECT_EQ(PauliString("XIZI").weight(), 2);
    EXPECT_EQ(PauliString("YYYY").weight(), 4);
}

TEST(PauliString, QubitwiseCommutation)
{
    EXPECT_TRUE(PauliString("XX").qubitwiseCommutes(PauliString("XI")));
    EXPECT_TRUE(PauliString("XX").qubitwiseCommutes(PauliString("II")));
    EXPECT_FALSE(PauliString("XX").qubitwiseCommutes(PauliString("ZI")));
    EXPECT_FALSE(PauliString("XY").qubitwiseCommutes(PauliString("XZ")));
}

TEST(PauliString, FullCommutation)
{
    // XX and ZZ commute globally though not qubit-wise.
    EXPECT_TRUE(PauliString("XX").commutes(PauliString("ZZ")));
    EXPECT_FALSE(PauliString("XX").qubitwiseCommutes(PauliString("ZZ")));
    EXPECT_FALSE(PauliString("XI").commutes(PauliString("ZI")));
    EXPECT_TRUE(PauliString("XI").commutes(PauliString("IZ")));
}

TEST(PauliString, MatrixSmallCases)
{
    CMatrix z = PauliString("Z").matrix();
    EXPECT_EQ(z(0, 0), Complex(1, 0));
    EXPECT_EQ(z(1, 1), Complex(-1, 0));
    // "XI" means X on qubit 0: |00> -> |01> (index 0 -> 1).
    CMatrix xi = PauliString("XI").matrix();
    EXPECT_EQ(xi(1, 0), Complex(1, 0));
    // "IX" means X on qubit 1: |00> -> |10> (index 0 -> 2).
    CMatrix ix = PauliString("IX").matrix();
    EXPECT_EQ(ix(2, 0), Complex(1, 0));
}

TEST(PauliString, MatrixIsHermitianAndUnitary)
{
    for (const char *label : {"XY", "YZ", "ZZ", "XYZ"}) {
        CMatrix m = PauliString(label).matrix();
        EXPECT_TRUE(m.isHermitian()) << label;
        EXPECT_TRUE(m.isUnitary()) << label;
    }
}

TEST(PauliSum, AddMergesDuplicates)
{
    PauliSum h(2);
    h.add(0.5, "ZZ");
    h.add(0.25, "ZZ");
    h.add(1.0, "XI");
    EXPECT_EQ(h.size(), 2u);
    EXPECT_NEAR(h.coefficientNorm(), 1.75, 1e-12);
}

TEST(PauliSum, IdentityOffset)
{
    PauliSum h(2);
    h.add(-2.0, "II");
    h.add(0.5, "ZZ");
    EXPECT_DOUBLE_EQ(h.identityOffset(), -2.0);
}

TEST(PauliSum, MatrixMatchesTermSum)
{
    PauliSum h(2);
    h.add(1.0, "XX");
    h.add(-0.5, "ZI");
    CMatrix m = h.matrix();
    CMatrix expect =
        PauliString("XX").matrix() * Complex(1.0, 0) +
        PauliString("ZI").matrix() * Complex(-0.5, 0);
    EXPECT_LT(m.distance(expect), 1e-12);
    EXPECT_TRUE(m.isHermitian());
}

TEST(PauliGrouping, HeisenbergStyleGroupsIntoThree)
{
    // XX+YY+ZZ terms on a ring plus a Z field: 3 qubit-wise groups
    // (all-X, all-Y, all-Z with the field terms).
    PauliSum h(4);
    const int edges[4][2] = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
    for (auto &e : edges) {
        for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
            PauliString s(4);
            s.set(e[0], p);
            s.set(e[1], p);
            h.add(1.0, s);
        }
    }
    for (int q = 0; q < 4; ++q)
        h.add(1.0, PauliString::single(4, q, Pauli::Z));
    auto groups = groupQubitwiseCommuting(h);
    EXPECT_EQ(groups.size(), 3u);
    std::size_t total = 0;
    for (const auto &g : groups)
        total += g.size();
    EXPECT_EQ(total, h.size());
}

TEST(PauliGrouping, MembersActuallyCommute)
{
    PauliSum h(3);
    h.add(1.0, "XXI");
    h.add(1.0, "IXX");
    h.add(1.0, "ZZI");
    h.add(1.0, "IZZ");
    h.add(1.0, "XZI");
    auto groups = groupQubitwiseCommuting(h);
    for (const auto &g : groups)
        for (std::size_t a = 0; a < g.size(); ++a)
            for (std::size_t b = a + 1; b < g.size(); ++b)
                EXPECT_TRUE(h.terms()[g[a]].pauli.qubitwiseCommutes(
                    h.terms()[g[b]].pauli));
}

} // namespace
} // namespace eqc
