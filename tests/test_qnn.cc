#include <gtest/gtest.h>

#include <cmath>

#include "core/qnn_executor.h"
#include "device/catalog.h"
#include "vqa/qnn.h"

namespace eqc {
namespace {

TEST(QnnProblem, SineClassifierShape)
{
    QnnProblem p = makeSineClassifier(12, 5);
    EXPECT_EQ(p.numQubits, 2);
    EXPECT_EQ(p.numParams(), 8);
    EXPECT_EQ(p.dataset.size(), 12u);
    for (const QnnSample &s : p.dataset) {
        EXPECT_EQ(s.features.size(), 2u);
        EXPECT_TRUE(s.label == 0.8 || s.label == -0.8);
    }
}

TEST(QnnProblem, CircuitForEncodesFeatures)
{
    QnnProblem p = makeSineClassifier(4, 5);
    QuantumCircuit c = p.circuitFor(p.dataset[0]);
    // Two encoding RYs (constant) before the ansatz.
    ASSERT_GE(c.ops().size(), 2u);
    EXPECT_EQ(c.ops()[0].type, GateType::RY);
    EXPECT_FALSE(c.ops()[0].params[0].isSymbolic());
    EXPECT_DOUBLE_EQ(c.ops()[0].params[0].offset,
                     p.dataset[0].features[0]);
    EXPECT_EQ(c.counts().measurements, 2);
}

TEST(QnnProblem, PredictionsBounded)
{
    QnnProblem p = makeSineClassifier(8, 5);
    for (const QnnSample &s : p.dataset) {
        double y = qnnPredictIdeal(p, s, p.initialParams);
        EXPECT_GE(y, -1.0 - 1e-9);
        EXPECT_LE(y, 1.0 + 1e-9);
    }
}

TEST(QnnProblem, MseOfPerfectPredictorIsZero)
{
    // A dataset whose labels equal the model's own predictions.
    QnnProblem p = makeSineClassifier(6, 5);
    for (QnnSample &s : p.dataset)
        s.label = qnnPredictIdeal(p, s, p.initialParams);
    EXPECT_NEAR(qnnMseIdeal(p, p.initialParams), 0.0, 1e-12);
}

TEST(QnnEqc, SingleDeviceTrainingReducesMse)
{
    QnnProblem p = makeSineClassifier(8, 5);
    QnnOptions o;
    o.epochs = 25;
    o.shotMode = ShotMode::Exact;
    o.seed = 2;
    double before = qnnMseIdeal(p, p.initialParams);
    QnnTrace t =
        trainQnnSingleDevice(p, deviceByName("ibmq_bogota"), o);
    ASSERT_EQ(t.epochs.size(), 25u);
    double after = t.epochs.back().mseIdeal;
    EXPECT_LT(after, 0.6 * before);
}

TEST(QnnEqc, EnsembleTrainingConvergesAndIsFaster)
{
    QnnProblem p = makeSineClassifier(8, 5);
    QnnOptions o;
    o.epochs = 15;
    o.seed = 2;
    QnnTrace single =
        trainQnnSingleDevice(p, deviceByName("ibmq_bogota"), o);
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmq_manila"),
                                   deviceByName("ibmq_quito"),
                                   deviceByName("ibmq_belem")};
    QnnTrace ens = runQnnEqcVirtual(p, devices, o);
    ASSERT_EQ(ens.epochs.size(), 15u);
    EXPECT_GT(ens.epochsPerHour, 1.5 * single.epochsPerHour);
    EXPECT_LT(ens.epochs.back().mseIdeal,
              ens.epochs.front().mseIdeal);
    EXPECT_EQ(ens.jobsPerDevice.size(), 4u);
}

TEST(QnnEqc, DeterministicForSameSeed)
{
    QnnProblem p = makeSineClassifier(6, 5);
    QnnOptions o;
    o.epochs = 5;
    o.seed = 9;
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmqx2")};
    QnnTrace a = runQnnEqcVirtual(p, devices, o);
    QnnTrace b = runQnnEqcVirtual(p, devices, o);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i)
        EXPECT_DOUBLE_EQ(a.epochs[i].mseIdeal, b.epochs[i].mseIdeal);
}

TEST(QnnEqc, WeightingRunsWithinBounds)
{
    QnnProblem p = makeSineClassifier(6, 5);
    QnnOptions o;
    o.epochs = 8;
    o.weightBounds = {0.5, 1.5};
    o.seed = 3;
    std::vector<Device> devices = {deviceByName("ibmq_bogota"),
                                   deviceByName("ibmqx2"),
                                   deviceByName("ibmq_quito")};
    QnnTrace t = runQnnEqcVirtual(p, devices, o);
    ASSERT_EQ(t.epochs.size(), 8u);
    EXPECT_LT(t.epochs.back().mseIdeal, t.epochs.front().mseIdeal * 2);
}

TEST(QnnEqc, SkipsTooSmallDevices)
{
    QnnProblem p = makeSineClassifier(4, 5);
    p.numQubits = 6; // pretend a 6-qubit model
    // (dataset features no longer match, but eligibility is checked
    // before compilation for the undersized device)
    std::vector<Device> devices = {deviceByName("ibmq_casablanca")};
    // 7-qubit Casablanca is eligible; 5-qubit Bogota would be skipped.
    EXPECT_GE(devices[0].numQubits, p.numQubits);
}

} // namespace
} // namespace eqc
