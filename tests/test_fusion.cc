/**
 * @file
 * Gate-fusion pass tests: randomized equivalence of fused vs unfused
 * programs on both the statevector and density-matrix paths, structural
 * guarantees of the NoisePreserving mode, and symbolic re-binding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/ansatz.h"
#include "quantum/density_matrix.h"
#include "quantum/statevector.h"
#include "sim/fusion.h"
#include "transpile/transpiler.h"

namespace {

using namespace eqc;

/** Random circuit over the full gate vocabulary. */
QuantumCircuit
randomCircuit(Rng &rng, int numQubits, int numGates, int numParams,
              bool symbolic)
{
    const GateType oneQ[] = {GateType::X,   GateType::Y,  GateType::Z,
                             GateType::H,   GateType::S,  GateType::SDG,
                             GateType::T,   GateType::TDG, GateType::SX,
                             GateType::RX,  GateType::RY, GateType::RZ,
                             GateType::ID};
    const GateType twoQ[] = {GateType::CX, GateType::CZ, GateType::SWAP,
                             GateType::RZZ};
    QuantumCircuit c(numQubits, numParams);
    for (int g = 0; g < numGates; ++g) {
        const bool two = numQubits > 1 && rng.uniform() < 0.35;
        GateType type =
            two ? twoQ[rng.uniformInt(0, 3)] : oneQ[rng.uniformInt(0, 12)];
        std::vector<int> qubits;
        int a = rng.uniformInt(0, numQubits - 1);
        qubits.push_back(a);
        if (two) {
            int b = a;
            while (b == a)
                b = rng.uniformInt(0, numQubits - 1);
            qubits.push_back(b);
        }
        std::vector<ParamExpr> params;
        for (int p = 0; p < gateParamCount(type); ++p) {
            if (symbolic && numParams > 0 && rng.uniform() < 0.5) {
                params.push_back(ParamExpr::symbol(
                    rng.uniformInt(0, numParams - 1),
                    rng.uniform(0.5, 1.5), rng.uniform(-0.3, 0.3)));
            } else {
                params.push_back(
                    ParamExpr::constant(rng.uniform(-3.1, 3.1)));
            }
        }
        c.addGate(type, qubits, params);
        if (rng.uniform() < 0.05)
            c.barrier();
    }
    return c;
}

/** Reference: apply every gate of @p c one at a time. */
void
applyRaw(const QuantumCircuit &c, const std::vector<double> &params,
         Statevector &sv)
{
    for (const GateOp &op : c.ops()) {
        if (op.type == GateType::MEASURE || op.type == GateType::BARRIER)
            continue;
        std::vector<double> angles;
        for (const ParamExpr &p : op.params)
            angles.push_back(p.evaluate(params));
        std::vector<int> qubits{op.qubits[0]};
        if (op.arity() == 2)
            qubits.push_back(op.qubits[1]);
        sv.applyGate(gateMatrix(op.type, angles), qubits);
    }
}

void
applyRaw(const QuantumCircuit &c, const std::vector<double> &params,
         DensityMatrix &dm)
{
    for (const GateOp &op : c.ops()) {
        if (op.type == GateType::MEASURE || op.type == GateType::BARRIER)
            continue;
        std::vector<double> angles;
        for (const ParamExpr &p : op.params)
            angles.push_back(p.evaluate(params));
        std::vector<int> qubits{op.qubits[0]};
        if (op.arity() == 2)
            qubits.push_back(op.qubits[1]);
        dm.applyUnitary(gateMatrix(op.type, angles), qubits);
    }
}

double
maxAmpDiff(const Statevector &a, const Statevector &b)
{
    double m = 0.0;
    for (uint64_t i = 0; i < a.dim(); ++i)
        m = std::max(m, std::abs(a.amplitude(i) - b.amplitude(i)));
    return m;
}

double
maxElemDiff(const DensityMatrix &a, const DensityMatrix &b)
{
    double m = 0.0;
    for (uint64_t r = 0; r < a.dim(); ++r)
        for (uint64_t c = 0; c < a.dim(); ++c)
            m = std::max(m, std::abs(a.element(r, c) - b.element(r, c)));
    return m;
}

TEST(Fusion, RandomizedStatevectorEquivalence)
{
    Rng rng(11);
    for (int rep = 0; rep < 30; ++rep) {
        const int n = rng.uniformInt(1, 5);
        QuantumCircuit c =
            randomCircuit(rng, n, rng.uniformInt(5, 60), 0, false);
        for (FusionMode mode :
             {FusionMode::Full, FusionMode::NoisePreserving}) {
            FusedProgram prog = fuseForSimulation(c, mode);
            Statevector ref(n), fused(n);
            applyRaw(c, {}, ref);
            applyFusedProgram(prog, {}, fused);
            EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-10)
                << "rep " << rep;
        }
    }
}

TEST(Fusion, RandomizedDensityMatrixEquivalence)
{
    Rng rng(22);
    for (int rep = 0; rep < 15; ++rep) {
        const int n = rng.uniformInt(1, 4);
        QuantumCircuit c =
            randomCircuit(rng, n, rng.uniformInt(5, 40), 0, false);
        for (FusionMode mode :
             {FusionMode::Full, FusionMode::NoisePreserving}) {
            FusedProgram prog = fuseForSimulation(c, mode);
            DensityMatrix ref(n), fused(n);
            applyRaw(c, {}, ref);
            applyFusedProgram(prog, {}, fused);
            EXPECT_NEAR(maxElemDiff(ref, fused), 0.0, 1e-10)
                << "rep " << rep;
        }
    }
}

TEST(Fusion, SymbolicRebindMatchesReference)
{
    Rng rng(33);
    for (int rep = 0; rep < 10; ++rep) {
        const int n = rng.uniformInt(2, 4);
        const int np = 4;
        QuantumCircuit c =
            randomCircuit(rng, n, rng.uniformInt(10, 40), np, true);
        FusedProgram prog = fuseForSimulation(c, FusionMode::Full);
        for (int bind = 0; bind < 3; ++bind) {
            std::vector<double> params;
            for (int p = 0; p < np; ++p)
                params.push_back(rng.uniform(-3.0, 3.0));
            Statevector ref(n), fused(n);
            applyRaw(c, params, ref);
            applyFusedProgram(prog, params, fused);
            EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-10)
                << "rep " << rep << " bind " << bind;
        }
    }
}

TEST(Fusion, NoisePreservingKeepsOnePhysicalGatePerOp)
{
    Rng rng(44);
    QuantumCircuit c = randomCircuit(rng, 4, 80, 0, false);
    FusedProgram prog =
        fuseForSimulation(c, FusionMode::NoisePreserving);

    // Count physical (non-virtual, non-ID) source gates.
    std::size_t physical = 0;
    for (const GateOp &op : c.ops()) {
        if (op.type == GateType::MEASURE ||
            op.type == GateType::BARRIER || op.type == GateType::ID)
            continue;
        if (!isVirtualGate(op.type))
            ++physical;
    }
    std::size_t physicalOps = 0;
    for (const FusedOp &op : prog.ops) {
        std::size_t physTerms = 0;
        for (int ti = op.termBegin; ti < op.termEnd; ++ti)
            if (!isVirtualGate(prog.terms[ti].type))
                ++physTerms;
        EXPECT_LE(physTerms, std::size_t{1});
        if (physTerms == 1) {
            ++physicalOps;
            // The noise carrier is the physical constituent, and by
            // input-side-only folding it is the last term.
            EXPECT_TRUE(op.primary ==
                        prog.terms[op.termEnd - 1].type);
        }
    }
    EXPECT_EQ(physicalOps, physical);
}

TEST(Fusion, FusesTranspiledAnsatz)
{
    // The transpiled hardware-efficient ansatz is the shape the
    // backend actually executes: RZ/SX runs feeding CX gates.
    QuantumCircuit ansatz = hardwareEfficientAnsatz(4);
    TranspiledCircuit tc = transpile(ansatz, CouplingMap::line(4));
    FusedProgram full =
        fuseForSimulation(tc.compact, FusionMode::Full);
    FusedProgram noisy =
        fuseForSimulation(tc.compact, FusionMode::NoisePreserving);

    ASSERT_GT(full.sourceGates, std::size_t{0});
    // Full fusion must cut the op count substantially (RZ/SX runs plus
    // 1q-into-CX absorption), NoisePreserving at least folds the RZs.
    EXPECT_LT(full.ops.size(), full.sourceGates / 2);
    EXPECT_LT(noisy.ops.size(), noisy.sourceGates);

    // And both stay equivalent to the raw circuit.
    std::vector<double> params;
    for (int i = 0; i < tc.compact.numParams(); ++i)
        params.push_back(0.3 + 0.1 * i);
    Statevector ref(tc.compact.numQubits());
    applyRaw(tc.compact, params, ref);
    for (const FusedProgram *prog : {&full, &noisy}) {
        Statevector fused(tc.compact.numQubits());
        applyFusedProgram(*prog, params, fused);
        EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-10);
    }
}

TEST(Fusion, DiagonalRunsStayDiagonal)
{
    QuantumCircuit c(3, 0);
    c.rz(0, ParamExpr::constant(0.3));
    c.s(0);
    c.addGate(GateType::T, {0});
    c.rzz(0, 1, ParamExpr::constant(0.7));
    c.cz(1, 0); // same pair, swapped orientation
    c.rz(2, ParamExpr::constant(-1.1));
    FusedProgram prog = fuseForSimulation(c, FusionMode::Full);
    for (const FusedOp &op : prog.ops)
        EXPECT_TRUE(op.diagonal);
    // RZ/S/T run absorbs into the RZZ/CZ pair op: expect 2 ops total
    // (the {0,1} diagonal product and the lone RZ on wire 2).
    EXPECT_EQ(prog.ops.size(), std::size_t{2});

    Statevector ref(3), fused(3);
    applyRaw(c, {}, ref);
    applyFusedProgram(prog, {}, fused);
    EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-12);
}

TEST(Fusion, OutputSideAbsorptionFoldsTrailing1q)
{
    // Full mode: 1q gates *after* a 2q gate fold into it (output
    // side), so a CX dressed with trailing rotations is one op.
    QuantumCircuit c(2, 0);
    c.cx(0, 1);
    c.h(0);
    c.rz(1, ParamExpr::constant(0.7));
    c.sx(1);
    FusedProgram full = fuseForSimulation(c, FusionMode::Full);
    EXPECT_EQ(full.ops.size(), std::size_t{1});

    // NoisePreserving must NOT absorb them: H and SX are physical
    // gates that carry their own calibration noise.
    FusedProgram noisy =
        fuseForSimulation(c, FusionMode::NoisePreserving);
    EXPECT_EQ(noisy.ops.size(), std::size_t{3});

    Statevector ref(2), fused(2);
    applyRaw(c, {}, ref);
    applyFusedProgram(full, {}, fused);
    EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-12);
}

TEST(Fusion, RandomizedOutputSideAbsorptionEquivalence)
{
    // Circuits shaped as 2q gates each followed by random 1q tails on
    // their wires: with output-side absorption every 1q gate lands in
    // some 2q op, so Full fusion yields at most one op per 2q gate.
    const GateType oneQ[] = {GateType::H,  GateType::SX, GateType::RX,
                             GateType::RY, GateType::RZ, GateType::T};
    const GateType twoQ[] = {GateType::CX, GateType::CZ, GateType::RZZ};
    Rng rng(55);
    for (int rep = 0; rep < 20; ++rep) {
        const int n = rng.uniformInt(2, 5);
        const int pairs = rng.uniformInt(2, 8);
        QuantumCircuit c(n, 0);
        int twoQCount = 0;
        for (int g = 0; g < pairs; ++g) {
            int a = rng.uniformInt(0, n - 1);
            int b = a;
            while (b == a)
                b = rng.uniformInt(0, n - 1);
            GateType tt = twoQ[rng.uniformInt(0, 2)];
            std::vector<ParamExpr> tp;
            for (int p = 0; p < gateParamCount(tt); ++p)
                tp.push_back(ParamExpr::constant(rng.uniform(-3, 3)));
            c.addGate(tt, {a, b}, tp);
            ++twoQCount;
            const int tail = rng.uniformInt(1, 4);
            for (int k = 0; k < tail; ++k) {
                GateType ot = oneQ[rng.uniformInt(0, 5)];
                std::vector<ParamExpr> op;
                for (int p = 0; p < gateParamCount(ot); ++p)
                    op.push_back(
                        ParamExpr::constant(rng.uniform(-3, 3)));
                c.addGate(ot, {rng.uniform() < 0.5 ? a : b}, op);
            }
        }
        FusedProgram prog = fuseForSimulation(c, FusionMode::Full);
        EXPECT_LE(prog.ops.size(), static_cast<std::size_t>(twoQCount))
            << "rep " << rep;

        Statevector ref(n), fused(n);
        applyRaw(c, {}, ref);
        applyFusedProgram(prog, {}, fused);
        EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-10) << "rep " << rep;
    }
}

TEST(Fusion, SamePairTwoQubitGatesMerge)
{
    QuantumCircuit c(2, 0);
    c.cx(0, 1);
    c.rz(0, ParamExpr::constant(0.4));
    c.cx(1, 0); // swapped orientation, still the same pair
    c.swap(0, 1);
    FusedProgram prog = fuseForSimulation(c, FusionMode::Full);
    EXPECT_EQ(prog.ops.size(), std::size_t{1});

    Statevector ref(2), fused(2);
    applyRaw(c, {}, ref);
    applyFusedProgram(prog, {}, fused);
    EXPECT_NEAR(maxAmpDiff(ref, fused), 0.0, 1e-12);
}

} // namespace
