/**
 * @file
 * Journal-driven trace analyzer: reconstruct per-job critical paths
 * from any replay journal and report where the time went.
 *
 * Usage:
 *   trace_report <journal.jsonl> [options]
 *     --trace <path>   also export Chrome trace_event JSON (opens in
 *                      about://tracing or Perfetto)
 *     --json <path>    also write a machine-readable summary
 *     --quiet          suppress the text report on stdout
 *
 * The analyzer replays the journal's record stream through the same
 * obs::TraceBuilder the live TraceSink collector uses, so a post-hoc
 * chaos-storm artifact and a live-collected drain yield identical
 * spans. Per job it reconstructs the critical path
 * (admit -> [route] -> queue_wait -> execute -> aggregate -> finalize)
 * whose spans chain bitwise over [admit, finalize] — the summed span
 * durations telescope to finalize - admit exactly — and reports the
 * queue-wait vs. execute vs. aggregate percentile breakdown,
 * per-member/per-node utilization timelines, and shed/forward
 * attribution.
 *
 * Exit status: 0 clean; 1 malformed spans (resolutions without a
 * dispatch, finalizes without an admit, non-chaining critical paths);
 * 2 unreadable or unparseable journal.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"
#include "replay/journal.h"

namespace {

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string journalPath;
    std::string tracePath;
    std::string jsonPath;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "trace_report: %s needs a value\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--trace"))
            tracePath = next();
        else if (!std::strcmp(argv[i], "--json"))
            jsonPath = next();
        else if (!std::strcmp(argv[i], "--quiet"))
            quiet = true;
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            std::printf("usage: trace_report <journal.jsonl> "
                        "[--trace out.json] [--json out.json] [--quiet]\n");
            return 0;
        } else if (journalPath.empty())
            journalPath = argv[i];
        else {
            std::fprintf(stderr, "trace_report: unknown argument %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (journalPath.empty()) {
        std::fprintf(stderr, "usage: trace_report <journal.jsonl> "
                             "[--trace out.json] [--json out.json]\n");
        return 2;
    }

    std::ifstream in(journalPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_report: cannot read %s\n",
                     journalPath.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string err;
    eqc::replay::EventJournal journal =
        eqc::replay::EventJournal::parse(buf.str(), &err);
    if (!err.empty()) {
        std::fprintf(stderr, "trace_report: parse error: %s\n",
                     err.c_str());
        return 2;
    }

    eqc::obs::TraceBuilder builder;
    for (const eqc::replay::EventRecord &r : journal.records())
        builder.add(r);
    eqc::obs::TraceAnalysis a = eqc::obs::analyze(builder);

    if (!quiet)
        std::fputs(eqc::obs::renderReport(a).c_str(), stdout);

    if (!tracePath.empty() &&
        !writeFile(tracePath, eqc::obs::chromeTrace(builder))) {
        std::fprintf(stderr, "trace_report: cannot write %s\n",
                     tracePath.c_str());
        return 2;
    }

    if (!jsonPath.empty()) {
        char buf2[512];
        std::snprintf(
            buf2, sizeof(buf2),
            "{\n"
            "  \"journal\": \"%s\",\n"
            "  \"records\": %zu,\n"
            "  \"jobs\": %zu,\n"
            "  \"open_jobs\": %zu,\n"
            "  \"shard_spans\": %zu,\n"
            "  \"failed_shards\": %zu,\n"
            "  \"late_shards\": %zu,\n"
            "  \"shed_jobs\": %zu,\n"
            "  \"problems\": %zu,\n"
            "  \"critical_paths_exact\": %s\n"
            "}\n",
            journalPath.c_str(), a.records, a.jobs, a.openJobs,
            a.shardSpans, a.failedShards, a.lateShards, a.shed,
            a.problems.size(), a.criticalPathsExact ? "true" : "false");
        if (!writeFile(jsonPath, buf2)) {
            std::fprintf(stderr, "trace_report: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
    }

    if (!a.criticalPathsExact || !a.problems.empty()) {
        std::fprintf(stderr,
                     "trace_report: malformed spans (%zu problems)\n",
                     a.problems.size());
        return 1;
    }
    return 0;
}
