/**
 * @file
 * Google-benchmark micro-kernels for the simulation substrate: gate
 * application, noise channels, transpilation, Eq. 2 evaluation and one
 * full gradient job — the unit costs behind every figure bench.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/ansatz.h"
#include "common/task_pool.h"
#include "core/client.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "device/catalog.h"
#include "quantum/density_matrix.h"
#include "vqa/parameter_shift.h"
#include "vqa/problem.h"

namespace {

using namespace eqc;

void
BM_StatevectorGate1q(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Statevector sv(n);
    CMatrix h = gateMatrix(GateType::H);
    int q = 0;
    for (auto _ : state) {
        sv.applyGate(h, {q});
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatevectorGate1q)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_StatevectorGate2q(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Statevector sv(n);
    CMatrix cx = gateMatrix(GateType::CX);
    int q = 0;
    for (auto _ : state) {
        sv.applyGate(cx, {q, (q + 1) % n});
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatevectorGate2q)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_DensityMatrixUnitary(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    CMatrix cx = gateMatrix(GateType::CX);
    int q = 0;
    for (auto _ : state) {
        dm.applyUnitary(cx, {q, (q + 1) % n});
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DensityMatrixUnitary)->Arg(4)->Arg(6)->Arg(8);

void
BM_Superop2q(benchmark::State &state)
{
    // General (non-diagonal, non-permutation) 2q unitary: the
    // applySuperop2 16-stream kernel, the heaviest per-op cost of the
    // noisy walk. A partial-iSWAP defeats every classification fast
    // path.
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    const double c = 0.8, s = 0.6;
    CMatrix u(4, 4,
              {1, 0, 0, 0, 0, c, Complex(0, s), 0, 0, Complex(0, s), c,
               0, 0, 0, 0, 1});
    int q = 0;
    for (auto _ : state) {
        dm.applyUnitary(u, {q, (q + 1) % n});
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Superop2q)->Arg(4)->Arg(6)->Arg(8);

void
BM_ComposedNoisePass(benchmark::State &state)
{
    // The fused post-CX noise block: 2q depolarizing + thermal
    // relaxation on both qubits in one memory pass.
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    int q = 0;
    for (auto _ : state) {
        dm.applyDepolThermal2q(0.01, q, 0.001, 0.999, (q + 1) % n,
                               0.002, 0.998);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComposedNoisePass)->Arg(4)->Arg(6)->Arg(8);

void
BM_DepolarizingKrausPath(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    KrausChannel ch = depolarizing2q(0.01);
    for (auto _ : state)
        dm.applyChannel(ch, {0, 1});
}
BENCHMARK(BM_DepolarizingKrausPath)->Arg(4)->Arg(6);

void
BM_DepolarizingFastPath(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    for (auto _ : state)
        dm.applyDepolarizing2q(0.01, 0, 1);
}
BENCHMARK(BM_DepolarizingFastPath)->Arg(4)->Arg(6);

void
BM_ThermalRelaxationFastPath(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    DensityMatrix dm(n);
    for (auto _ : state)
        dm.applyThermalRelaxation(0, 0.001, 0.999);
}
BENCHMARK(BM_ThermalRelaxationFastPath)->Arg(4)->Arg(6);

void
BM_TranspileAnsatz(benchmark::State &state)
{
    QuantumCircuit c = hardwareEfficientAnsatz(4);
    Device d = (state.range(0) == 0) ? deviceByName("ibmq_manila")
                                     : deviceByName("ibmq_toronto");
    for (auto _ : state)
        benchmark::DoNotOptimize(transpile(c, d.coupling));
}
BENCHMARK(BM_TranspileAnsatz)->Arg(0)->Arg(1);

void
BM_PCorrectEvaluation(benchmark::State &state)
{
    Device d = deviceByName("ibmq_bogota");
    TranspiledCircuit tc =
        transpile(hardwareEfficientAnsatz(4), d.coupling);
    CircuitQuality q = circuitQuality(tc);
    for (auto _ : state)
        benchmark::DoNotOptimize(pCorrect(q, d.baseCalibration));
}
BENCHMARK(BM_PCorrectEvaluation);

void
BM_NoisyCircuitExecution(benchmark::State &state)
{
    VqaProblem p = makeHeisenbergVqe();
    Device d = deviceByName("ibmq_bogota");
    SimulatedQpu qpu(d, 1);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(qpu.execute(
            compiled[0], p.initialParams, 0, 1.0, rng, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoisyCircuitExecution);

void
BM_SequentialMemberSweep(benchmark::State &state)
{
    // Baseline for BM_BatchedMemberSweep: the same k noisy circuit
    // executions run one member at a time.
    const int k = static_cast<int>(state.range(0));
    VqaProblem p = makeHeisenbergVqe();
    Device d = deviceByName("ibmq_bogota");
    std::vector<std::unique_ptr<SimulatedQpu>> qpus;
    for (int m = 0; m < k; ++m)
        qpus.push_back(std::make_unique<SimulatedQpu>(d, 1 + m));
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    std::vector<Rng> rngs;
    for (int m = 0; m < k; ++m)
        rngs.emplace_back(1 + m);
    for (auto _ : state) {
        for (int m = 0; m < k; ++m)
            benchmark::DoNotOptimize(
                qpus[m]->execute(compiled[0], p.initialParams, 0, 1.0,
                                 rngs[m], false));
    }
    state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_SequentialMemberSweep)->Arg(2)->Arg(4)->Arg(8);

void
BM_BatchedMemberSweep(benchmark::State &state)
{
    // The PR's batched ensemble sweep: k members (same device model,
    // independently drifted calibrations) advance together through one
    // fused program via SimulatedQpu::executeBatch.
    const int k = static_cast<int>(state.range(0));
    VqaProblem p = makeHeisenbergVqe();
    Device d = deviceByName("ibmq_bogota");
    std::vector<std::unique_ptr<SimulatedQpu>> qpus;
    for (int m = 0; m < k; ++m)
        qpus.push_back(std::make_unique<SimulatedQpu>(d, 1 + m));
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    std::vector<Rng> rngs;
    for (int m = 0; m < k; ++m)
        rngs.emplace_back(1 + m);
    std::vector<JobResult> outs(k);
    std::vector<SimulatedQpu::BatchMember> members(k);
    for (int m = 0; m < k; ++m) {
        members[m].qpu = qpus[m].get();
        members[m].tc = &compiled[0];
        members[m].shots = 0;
        members[m].atTimeH = 1.0;
        members[m].rng = &rngs[m];
        members[m].sampleCounts = false;
        members[m].out = &outs[m];
    }
    for (auto _ : state) {
        bool ok = SimulatedQpu::executeBatch(
            members.data(), members.size(), p.initialParams);
        if (!ok)
            state.SkipWithError("executeBatch fell back");
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_BatchedMemberSweep)->Arg(2)->Arg(4)->Arg(8);

void
BM_FullGradientJob(benchmark::State &state)
{
    VqaProblem p = makeHeisenbergVqe();
    Device d = deviceByName("ibmq_bogota");
    SimulatedQpu qpu(d, 1);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    Rng rng(1);
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gradientParamShift(
            est, qpu, compiled, p.initialParams, i, 8192, 1.0, rng,
            ShotMode::Gaussian, ShiftMode::WholeParameter));
        i = (i + 1) % p.numParams();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullGradientJob);

void
BM_IdealCircuitExecution(benchmark::State &state)
{
    // Noiseless statevector path: exercises the Full-fusion execution
    // plan (RZ/SX runs and 1q-into-CX absorption collapse into a
    // handful of fused kernels).
    VqaProblem p = makeHeisenbergVqe();
    Device d = makeIdealDevice(p.ansatz.numQubits());
    SimulatedQpu qpu(d, 1);
    ExpectationEstimator est(p.hamiltonian, p.ansatz);
    auto compiled = est.compileFor(d.coupling);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(qpu.execute(
            compiled[0], p.initialParams, 0, 1.0, rng, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdealCircuitExecution);

void
BM_MultiJobGradientFanout(benchmark::State &state)
{
    // The engine-level fan-out shape: N clients pull tasks serially
    // (beginProcess) and their gradient computations flush through the
    // shared TaskPool in one batch — exactly what the "virtual" engine
    // does at every delivery, and what runAll() does across jobs.
    const int numClients = static_cast<int>(state.range(0));
    VqaProblem p = makeHeisenbergVqe();
    const char *names[] = {"ibmq_bogota", "ibmq_manila", "ibmq_quito",
                           "ibmq_lima"};
    ClientConfig cfg;
    std::vector<std::unique_ptr<ClientNode>> clients;
    for (int i = 0; i < numClients; ++i)
        clients.push_back(std::make_unique<ClientNode>(
            i, deviceByName(names[i % 4]), p, 1 + i, cfg));
    MasterNode master(p, MasterOptions{});
    std::vector<ClientNode::PendingJob> jobs(numClients);
    std::vector<ClientNode::Processed> outs(numClients);
    double t = 1.0;
    for (auto _ : state) {
        for (int i = 0; i < numClients; ++i)
            jobs[i] = clients[i]->beginProcess(master.nextTask(), t);
        TaskPool::shared().parallelJobs(
            static_cast<uint64_t>(numClients),
            [&](uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i)
                    outs[i] = clients[i]->finishProcess(jobs[i]);
            });
        benchmark::DoNotOptimize(outs.data());
        t += 0.001;
    }
    state.SetItemsProcessed(state.iterations() * numClients);
}
BENCHMARK(BM_MultiJobGradientFanout)->Arg(1)->Arg(4)->Arg(8);

} // namespace
