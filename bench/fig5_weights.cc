/**
 * @file
 * Reproduces Fig. 5: the adaptive QPU weighting of 7 devices over 40
 * hours with weights bound to [0.5, 1.5]. Each hour, every device's
 * P_correct is recomputed from its transpiled Fig. 8 circuit and its
 * reported calibration; the ensemble normalizer rescales them into the
 * bound. Recalibrations and incidents reshuffle the ranking live.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "device/catalog.h"
#include "vqa/expectation.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner(
        "Fig. 5: QPU weighting over 40 hours, bounds [0.5, 1.5]");

    const std::vector<const char *> names = {
        "ibmq_belem", "ibmq_quito", "ibmq_casablanca", "ibmq_toronto",
        "ibmq_manila", "ibmq_bogota", "ibmq_lima"};

    VqaProblem problem = makeHeisenbergVqe();
    ExpectationEstimator est(problem.hamiltonian, problem.ansatz);

    struct Entry
    {
        Device device;
        SimulatedQpu qpu;
        std::vector<TranspiledCircuit> compiled;
    };
    std::vector<Entry> entries;
    for (const char *n : names) {
        Device d = deviceByName(n);
        auto compiled = est.compileFor(d.coupling);
        entries.push_back({d, SimulatedQpu(d, 23), std::move(compiled)});
    }

    std::printf("%-6s", "hour");
    for (const char *n : names)
        std::printf(" %13s", std::string(n).substr(5, 13).c_str());
    std::printf("\n");

    for (int hour = 0; hour <= 40; ++hour) {
        WeightNormalizer norm({0.5, 1.5});
        for (std::size_t i = 0; i < entries.size(); ++i) {
            Entry &e = entries[i];
            CalibrationSnapshot rep =
                e.qpu.reportedCalibration(static_cast<double>(hour));
            double sum = 0.0;
            for (const TranspiledCircuit &tc : e.compiled)
                sum += pCorrect(circuitQuality(tc), rep);
            norm.update(static_cast<int>(i),
                        sum / static_cast<double>(e.compiled.size()));
        }
        std::printf("%-6d", hour);
        for (std::size_t i = 0; i < entries.size(); ++i)
            std::printf(" %13.3f", norm.weightFor(static_cast<int>(i)));
        std::printf("\n");
    }

    bench::heading("interpretation");
    std::printf(
        "Weights react to recalibration events (quality factor redraw)\n"
        "and to incidents: a device pinned at 0.5 contributes half-size\n"
        "gradient steps until its next calibration rescues it.\n");
    return 0;
}
