/**
 * @file
 * Chaos storm: run thousands of randomized fault-injection schedules
 * against the serving layer and audit every one with the replay
 * invariant suite (see src/replay/chaos.h for the invariants).
 *
 * Each schedule seeds a ChaosEngine with a consecutive seed starting
 * at --seed: random ensemble lineups with drift spikes, member kills
 * aimed into the drain window, probabilistic restores, tenant floods
 * against a tight admission policy, clock-skewed submit bursts, and
 * coalescing/cache traffic. Every --verify-every'th schedule
 * additionally serialize->parse->replays its journal and cross-checks
 * the outcomes bit for bit.
 *
 * Streaming robustness: --deadline-frac attaches latency SLOs to that
 * fraction of submissions (deadline sheds audited by I7/I8/I12) and
 * --churn injects live joins/leaves per round (audited by I9). With
 * --steady the schedules run on a SteadyClock at --timescale wall
 * seconds per serving hour — real-time firing order, same invariant
 * audit, replay cross-check skipped (wall journals are not
 * bit-replayable).
 *
 * The process exits non-zero if ANY schedule violates an invariant,
 * and the first offending journal is written to --journal-out so the
 * failure reproduces locally through replay::Replayer. A JSON report
 * (seed echoed, per-invariant violation counts, aggregate serving
 * counters) lands at --out for CI artifact diffing.
 *
 * Multi-node storms: --nodes N (N > 1) routes every schedule through
 * a serve::Router fronting N nodes — floods overflow along the hash
 * ring, kills and deadlines span nodes, and the routed invariants
 * I13/I14 are audited on top of I1..I12. Routed schedules always run
 * on the virtual clock (incompatible with --steady/--churn) and every
 * one replays its journal bit for bit.
 *
 * Usage:
 *   bench_chaos_storm [--schedules N] [--seed S] [--tenants N]
 *                     [--rounds N] [--members N] [--shots N]
 *                     [--nodes N]
 *                     [--deadline-frac P] [--churn P] [--steady]
 *                     [--timescale S] [--verify-every K] [--out FILE]
 *                     [--journal-out FILE] [--journal-sample FILE]
 *                     [--metrics-out FILE]
 *
 * --journal-sample writes the FIRST schedule's journal whether or not
 * anything failed — a deterministic artifact CI feeds to trace_report
 * for the observability smoke check (--journal-out, by contrast, only
 * appears on an invariant violation).
 *
 * --metrics-out writes one metrics scrape as JSON — the obs::toJson
 * schema documented in src/obs/exposition.h: an object with a
 * "metrics" array of {name, type, labels?, value | count+sum+bounds+
 * buckets} samples. Storm aggregates land as eqc_chaos_* counters;
 * the shared TaskPool's samples carry `tier="pool"`.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/task_pool.h"
#include "obs/exposition.h"
#include "replay/chaos.h"

using namespace eqc;

int
main(int argc, char **argv)
{
    int schedules = 1000;
    uint64_t seed = 1;
    int tenants = 6;
    int rounds = 3;
    int members = 4;
    int maxShots = 256;
    double deadlineFrac = 0.0; // per-submission SLO probability
    double churn = 0.0;        // per-round join/leave probability
    bool steadyMode = false;
    double timescaleS = 0.002; // wall seconds per hour (steady)
    int verifyEvery = 64; // 0 disables the replay cross-check
    int nodes = 1;        // > 1 routes schedules through a Router
    std::string outPath;
    std::string journalOutPath = "chaos_offender.jsonl";
    std::string journalSamplePath;
    std::string metricsOutPath;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--schedules"))
            schedules = std::atoi(next("--schedules"));
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(next("--seed"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--tenants"))
            tenants = std::atoi(next("--tenants"));
        else if (!std::strcmp(argv[i], "--rounds"))
            rounds = std::atoi(next("--rounds"));
        else if (!std::strcmp(argv[i], "--members"))
            members = std::atoi(next("--members"));
        else if (!std::strcmp(argv[i], "--shots"))
            maxShots = std::atoi(next("--shots"));
        else if (!std::strcmp(argv[i], "--deadline-frac"))
            deadlineFrac = std::atof(next("--deadline-frac"));
        else if (!std::strcmp(argv[i], "--churn"))
            churn = std::atof(next("--churn"));
        else if (!std::strcmp(argv[i], "--steady"))
            steadyMode = true;
        else if (!std::strcmp(argv[i], "--timescale"))
            timescaleS = std::atof(next("--timescale"));
        else if (!std::strcmp(argv[i], "--verify-every"))
            verifyEvery = std::atoi(next("--verify-every"));
        else if (!std::strcmp(argv[i], "--nodes"))
            nodes = std::atoi(next("--nodes"));
        else if (!std::strcmp(argv[i], "--out"))
            outPath = next("--out");
        else if (!std::strcmp(argv[i], "--journal-out"))
            journalOutPath = next("--journal-out");
        else if (!std::strcmp(argv[i], "--journal-sample"))
            journalSamplePath = next("--journal-sample");
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metricsOutPath = next("--metrics-out");
        else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    if (nodes > 1 && (steadyMode || churn > 0.0)) {
        std::fprintf(stderr, "--nodes > 1 runs on the virtual clock "
                             "and does not support --steady/--churn\n");
        return 2;
    }

    bench::banner("eqc::replay chaos storm");
    std::printf("schedules=%d seed=%llu tenants=%d rounds=%d "
                "members=%d shots<=%d nodes=%d deadline-frac=%.2f "
                "churn=%.2f clock=%s verify-every=%d threads=%d\n",
                schedules, static_cast<unsigned long long>(seed),
                tenants, rounds, members, maxShots, nodes,
                deadlineFrac, churn,
                steadyMode ? "steady" : "virtual", verifyEvery,
                TaskPool::shared().threadCount());

    // Pool telemetry rides the --metrics-out scrape as tier="pool".
    obs::MetricsRegistry poolMetrics;
    TaskPool::shared().instrument(poolMetrics);

    const auto wall0 = std::chrono::steady_clock::now();
    uint64_t totalViolations = 0;
    int schedulesFailed = 0;
    long long firstOffendingSeed = -1;
    uint64_t jobsCompleted = 0;
    uint64_t kills = 0, restores = 0, driftSpikes = 0, floods = 0,
             skewed = 0, replaysVerified = 0;
    uint64_t joins = 0, leaves = 0, sheds = 0;
    uint64_t forwards = 0, forwardAdmits = 0;
    serve::ServiceCounters total;
    std::map<std::string, uint64_t> byInvariant;

    const int progressStep = schedules > 10 ? schedules / 10 : 1;
    for (int i = 0; i < schedules; ++i) {
        replay::ChaosOptions co;
        co.seed = seed + static_cast<uint64_t>(i);
        co.tenants = tenants;
        co.rounds = rounds;
        co.members = members;
        co.maxShots = maxShots;
        co.deadlineProb = deadlineFrac;
        co.churnProb = churn;
        co.steadyClock = steadyMode;
        co.timescaleS = timescaleS;
        co.nodes = nodes;
        co.verifyReplay = verifyEvery > 0 && i % verifyEvery == 0;
        replay::ChaosEngine engine(co);
        replay::ChaosReport rep = engine.run(&TaskPool::shared());
        if (i == 0 && !journalSamplePath.empty()) {
            std::FILE *jf =
                std::fopen(journalSamplePath.c_str(), "w");
            if (jf) {
                const std::string text = engine.journal().serialize();
                std::fwrite(text.data(), 1, text.size(), jf);
                std::fclose(jf);
                std::printf("wrote journal sample to %s\n",
                            journalSamplePath.c_str());
            }
        }

        jobsCompleted += static_cast<uint64_t>(rep.jobsCompleted);
        kills += static_cast<uint64_t>(rep.kills);
        restores += static_cast<uint64_t>(rep.restores);
        driftSpikes += static_cast<uint64_t>(rep.driftSpikes);
        floods += static_cast<uint64_t>(rep.floods);
        skewed += static_cast<uint64_t>(rep.skewed);
        joins += static_cast<uint64_t>(rep.joins);
        leaves += static_cast<uint64_t>(rep.leaves);
        sheds += static_cast<uint64_t>(rep.sheds);
        forwards += static_cast<uint64_t>(rep.forwards);
        forwardAdmits += static_cast<uint64_t>(rep.forwardAdmits);
        if (rep.replayVerified)
            ++replaysVerified;
        total.jobsAdmitted += rep.counters.jobsAdmitted;
        total.jobsRejected += rep.counters.jobsRejected;
        total.jobsCoalesced += rep.counters.jobsCoalesced;
        total.cacheHits += rep.counters.cacheHits;
        total.workItems += rep.counters.workItems;
        total.shardsExecuted += rep.counters.shardsExecuted;
        total.shardsRequeued += rep.counters.shardsRequeued;
        total.shotsExecuted += rep.counters.shotsExecuted;
        total.shotsShed += rep.counters.shotsShed;
        total.deadlineSheds += rep.counters.deadlineSheds;
        total.deadlinesMet += rep.counters.deadlinesMet;
        total.ridersJoined += rep.counters.ridersJoined;

        if (!rep.violations.empty()) {
            ++schedulesFailed;
            totalViolations += rep.violations.size();
            for (const replay::Violation &v : rep.violations)
                ++byInvariant[v.invariant];
            std::fprintf(stderr, "seed %llu: %zu violation(s)\n",
                         static_cast<unsigned long long>(co.seed),
                         rep.violations.size());
            for (const replay::Violation &v : rep.violations)
                std::fprintf(stderr, "  [%s] %s\n",
                             v.invariant.c_str(), v.detail.c_str());
            if (firstOffendingSeed < 0) {
                firstOffendingSeed =
                    static_cast<long long>(co.seed);
                if (!journalOutPath.empty()) {
                    std::FILE *jf =
                        std::fopen(journalOutPath.c_str(), "w");
                    if (jf) {
                        const std::string text =
                            engine.journal().serialize();
                        std::fwrite(text.data(), 1, text.size(), jf);
                        std::fclose(jf);
                        std::printf(
                            "wrote offending journal to %s\n",
                            journalOutPath.c_str());
                    }
                }
            }
        }
        if ((i + 1) % progressStep == 0 || i + 1 == schedules)
            std::printf("  %6d/%d schedules, %llu violations\n",
                        i + 1, schedules,
                        static_cast<unsigned long long>(
                            totalViolations));
    }
    const double wallS =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    bench::heading("verdict");
    std::printf("schedules %d  failed %d  violations %llu  "
                "replays verified %llu  wall %.1fs\n",
                schedules, schedulesFailed,
                static_cast<unsigned long long>(totalViolations),
                static_cast<unsigned long long>(replaysVerified),
                wallS);
    std::printf("jobs completed %llu  admitted %llu  rejected %llu  "
                "coalesced %llu  cache hits %llu\n",
                static_cast<unsigned long long>(jobsCompleted),
                static_cast<unsigned long long>(total.jobsAdmitted),
                static_cast<unsigned long long>(total.jobsRejected),
                static_cast<unsigned long long>(total.jobsCoalesced),
                static_cast<unsigned long long>(total.cacheHits));
    std::printf("kills %llu  restores %llu  drift spikes %llu  "
                "floods %llu  skewed submits %llu  requeued shards "
                "%llu\n",
                static_cast<unsigned long long>(kills),
                static_cast<unsigned long long>(restores),
                static_cast<unsigned long long>(driftSpikes),
                static_cast<unsigned long long>(floods),
                static_cast<unsigned long long>(skewed),
                static_cast<unsigned long long>(total.shardsRequeued));
    std::printf("joins %llu  leaves %llu  deadline sheds %llu  "
                "deadlines met %llu  shots shed %llu  riders %llu\n",
                static_cast<unsigned long long>(joins),
                static_cast<unsigned long long>(leaves),
                static_cast<unsigned long long>(sheds),
                static_cast<unsigned long long>(total.deadlinesMet),
                static_cast<unsigned long long>(total.shotsShed),
                static_cast<unsigned long long>(total.ridersJoined));
    if (nodes > 1)
        std::printf("router forwards %llu  forward admits %llu\n",
                    static_cast<unsigned long long>(forwards),
                    static_cast<unsigned long long>(forwardAdmits));

    if (!outPath.empty()) {
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"chaos_storm\",\n"
            "  \"seed\": %llu,\n"
            "  \"schedules\": %d,\n"
            "  \"threads\": %d,\n"
            "  \"nodes\": %d,\n"
            "  \"clock\": \"%s\",\n"
            "  \"deadline_frac\": %.4f,\n"
            "  \"churn\": %.4f,\n"
            "  \"violations\": %llu,\n"
            "  \"schedules_failed\": %d,\n"
            "  \"first_offending_seed\": %lld,\n"
            "  \"violations_by_invariant\": {",
            static_cast<unsigned long long>(seed), schedules,
            TaskPool::shared().threadCount(), nodes,
            steadyMode ? "steady" : "virtual", deadlineFrac, churn,
            static_cast<unsigned long long>(totalViolations),
            schedulesFailed, firstOffendingSeed);
        bool first = true;
        for (const auto &kv : byInvariant) {
            std::fprintf(f, "%s\n    \"%s\": %llu",
                         first ? "" : ",", kv.first.c_str(),
                         static_cast<unsigned long long>(kv.second));
            first = false;
        }
        std::fprintf(
            f,
            "%s},\n"
            "  \"replays_verified\": %llu,\n"
            "  \"jobs_completed\": %llu,\n"
            "  \"jobs_admitted\": %llu,\n"
            "  \"jobs_rejected\": %llu,\n"
            "  \"jobs_coalesced\": %llu,\n"
            "  \"cache_hits\": %llu,\n"
            "  \"work_items\": %llu,\n"
            "  \"shards_executed\": %llu,\n"
            "  \"shards_requeued\": %llu,\n"
            "  \"shots_executed\": %llu,\n"
            "  \"kills\": %llu,\n"
            "  \"restores\": %llu,\n"
            "  \"drift_spikes\": %llu,\n"
            "  \"floods\": %llu,\n"
            "  \"skewed_submits\": %llu,\n"
            "  \"member_joins\": %llu,\n"
            "  \"member_leaves\": %llu,\n"
            "  \"deadline_sheds\": %llu,\n"
            "  \"deadlines_met\": %llu,\n"
            "  \"shots_shed\": %llu,\n"
            "  \"riders_joined\": %llu,\n"
            "  \"router_forwards\": %llu,\n"
            "  \"router_forward_admits\": %llu,\n"
            "  \"wall_seconds\": %.6f\n"
            "}\n",
            byInvariant.empty() ? "" : "\n  ",
            static_cast<unsigned long long>(replaysVerified),
            static_cast<unsigned long long>(jobsCompleted),
            static_cast<unsigned long long>(total.jobsAdmitted),
            static_cast<unsigned long long>(total.jobsRejected),
            static_cast<unsigned long long>(total.jobsCoalesced),
            static_cast<unsigned long long>(total.cacheHits),
            static_cast<unsigned long long>(total.workItems),
            static_cast<unsigned long long>(total.shardsExecuted),
            static_cast<unsigned long long>(total.shardsRequeued),
            static_cast<unsigned long long>(total.shotsExecuted),
            static_cast<unsigned long long>(kills),
            static_cast<unsigned long long>(restores),
            static_cast<unsigned long long>(driftSpikes),
            static_cast<unsigned long long>(floods),
            static_cast<unsigned long long>(skewed),
            static_cast<unsigned long long>(joins),
            static_cast<unsigned long long>(leaves),
            static_cast<unsigned long long>(sheds),
            static_cast<unsigned long long>(total.deadlinesMet),
            static_cast<unsigned long long>(total.shotsShed),
            static_cast<unsigned long long>(total.ridersJoined),
            static_cast<unsigned long long>(forwards),
            static_cast<unsigned long long>(forwardAdmits), wallS);
        std::fclose(f);
        std::printf("\nwrote %s\n", outPath.c_str());
    }

    if (!metricsOutPath.empty()) {
        // Storm aggregates as one registry scrape (counters are set
        // once here; the storm itself aggregates plain struct sums).
        obs::MetricsRegistry storm;
        storm.counter("eqc_chaos_schedules_total",
                      "Chaos schedules run")
            ->inc(static_cast<uint64_t>(schedules));
        storm.counter("eqc_chaos_schedules_failed_total",
                      "Schedules with invariant violations")
            ->inc(static_cast<uint64_t>(schedulesFailed));
        storm.counter("eqc_chaos_violations_total",
                      "Invariant violations across the storm")
            ->inc(totalViolations);
        storm.counter("eqc_chaos_replays_verified_total",
                      "Schedules replay-verified bit for bit")
            ->inc(replaysVerified);
        storm.counter("eqc_chaos_jobs_completed_total",
                      "Jobs completed across the storm")
            ->inc(jobsCompleted);
        storm.counter("eqc_chaos_kills_total", "Members killed")
            ->inc(kills);
        storm.counter("eqc_chaos_restores_total", "Members restored")
            ->inc(restores);
        storm.counter("eqc_chaos_deadline_sheds_total",
                      "Jobs shed at their deadline")
            ->inc(sheds);
        storm.counter("eqc_chaos_forwards_total",
                      "Router overflow forwards")
            ->inc(forwards);
        const obs::Snapshot scrape =
            obs::merge({{"", storm.snapshot()},
                        {"tier=\"pool\"", poolMetrics.snapshot()}});
        std::FILE *f = std::fopen(metricsOutPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         metricsOutPath.c_str());
            return 1;
        }
        const std::string json = obs::toJson(scrape);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", metricsOutPath.c_str());
    }
    return totalViolations > 0 ? 1 : 0;
}
