/**
 * @file
 * Closed-loop multi-tenant load generator for the eqc::serve layer.
 *
 * N tenants each keep one job in flight against a shared ServiceNode
 * fronting the paper's 10-device evaluation ensemble. Tenants come in
 * pairs that poll the same (workload, binding) — the access pattern
 * request coalescing exists for — and each binding drifts slowly
 * between rounds the way an optimizer's parameters would (holding for
 * two rounds, so the result cache sees genuine repeats). Per round
 * every tenant submits at its previous completion time (closed loop
 * on the serving clock) and the node drains. A tenant whose
 * submission is rejected backs off by the ticket's retry-after hint —
 * the backpressure protocol a well-behaved client follows.
 *
 * The node runs in either clock mode:
 *   --clock virtual  (default) deterministic replay, full speed
 *   --clock steady   wall-clock serving: events fire in real time at
 *                    --timescale wall seconds per model hour
 *
 * Reported: wall-clock jobs/sec, virtual-time latency percentiles
 * p50/p95/p99, coalescing/cache-hit/requeue counters, admission
 * rejections by reason with the retry-after hint distribution, and
 * per-member executed shots (cache-aware placement telemetry).
 * Optional --fail kills one member mid-campaign to exercise the
 * requeue path under load. With --out the same numbers land in a
 * JSON file for CI artifact diffing.
 *
 * Streaming robustness knobs: --deadline-frac attaches a latency SLO
 * (submit + --slo-h hours) to that fraction of submissions, so the
 * report gains SLO attainment, shed-shot fraction and degraded-outcome
 * rate; --churn injects live membership churn (random joins/leaves)
 * at that per-round probability.
 *
 * Router tier: --nodes N (N >= 1) replaces the single ServiceNode
 * with a serve::Router fronting N nodes — each fronting its own copy
 * of the evaluation ensemble, each drained by its own serve thread
 * (threadedDrain) with inline shard execution, so jobs/sec scales
 * with node-level concurrency. Requests consistent-hash by
 * (workload, binding); capacity rejections overflow along the ring.
 * --nodes 1 is the Router baseline the scaling numbers compare
 * against (same per-node resources); omitting --nodes keeps the
 * legacy single-node path byte-for-byte. Routed runs require the
 * virtual clock and do not support --churn.
 *
 * Usage:
 *   bench_service_throughput [--tenants N] [--rounds N] [--shots N]
 *                            [--depth N] [--ttl H] [--fail]
 *                            [--nodes N]
 *                            [--clock virtual|steady] [--timescale S]
 *                            [--deadline-frac F] [--slo-h H]
 *                            [--churn P] [--seed S] [--out FILE]
 *                            [--metrics-out FILE]
 *
 * --metrics-out writes one fleet-wide metrics scrape as JSON — the
 * obs::toJson schema documented in src/obs/exposition.h: an object
 * with a "metrics" array of {name, type, labels?, value | count+sum+
 * bounds+buckets} samples. Node registries carry `node="i"` labels,
 * the shared TaskPool's samples carry `tier="pool"`. The file is a
 * raw scrape (not a diff), so CI can archive it per run and diff two
 * runs with obs::diff semantics offline.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "bench_util.h"
#include "common/event_loop.h"
#include "common/rng.h"
#include "common/task_pool.h"
#include "obs/exposition.h"
#include "device/catalog.h"
#include "serve/router.h"
#include "serve/service_node.h"
#include "vqa/problem.h"

using namespace eqc;
using namespace eqc::serve;

int
main(int argc, char **argv)
{
    int tenants = 8;
    int rounds = 25;
    int shots = 4096;
    int depth = -1; // admission queue depth; -1 keeps the default
    double ttlH = 0.5;
    bool fail = false;
    std::string clockMode = "virtual";
    double timescaleS = 0.05; // wall seconds per model hour (steady)
    double deadlineFrac = 0.0; // fraction of submissions with an SLO
    double sloH = 0.25;        // SLO horizon (hours past submit)
    double churn = 0.0;        // per-round join/leave probability
    bool batched = false; // batched member sweep per work item
    uint64_t seed = 2026;      // node root seed; echoed in every report
    int nodes = 0; // 0 = legacy single ServiceNode; >= 1 = Router tier
    std::string outPath;
    std::string metricsOutPath;
    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--tenants"))
            tenants = std::atoi(next("--tenants"));
        else if (!std::strcmp(argv[i], "--rounds"))
            rounds = std::atoi(next("--rounds"));
        else if (!std::strcmp(argv[i], "--shots"))
            shots = std::atoi(next("--shots"));
        else if (!std::strcmp(argv[i], "--depth"))
            depth = std::atoi(next("--depth"));
        else if (!std::strcmp(argv[i], "--ttl"))
            ttlH = std::atof(next("--ttl"));
        else if (!std::strcmp(argv[i], "--fail"))
            fail = true;
        else if (!std::strcmp(argv[i], "--batched"))
            batched = true;
        else if (!std::strcmp(argv[i], "--clock"))
            clockMode = next("--clock");
        else if (!std::strcmp(argv[i], "--timescale"))
            timescaleS = std::atof(next("--timescale"));
        else if (!std::strcmp(argv[i], "--deadline-frac"))
            deadlineFrac = std::atof(next("--deadline-frac"));
        else if (!std::strcmp(argv[i], "--slo-h"))
            sloH = std::atof(next("--slo-h"));
        else if (!std::strcmp(argv[i], "--churn"))
            churn = std::atof(next("--churn"));
        else if (!std::strcmp(argv[i], "--nodes"))
            nodes = std::atoi(next("--nodes"));
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(next("--seed"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--out"))
            outPath = next("--out");
        else if (!std::strcmp(argv[i], "--metrics-out"))
            metricsOutPath = next("--metrics-out");
        else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    if (clockMode != "virtual" && clockMode != "steady") {
        std::fprintf(stderr, "--clock must be virtual or steady\n");
        return 2;
    }
    if (nodes > 0 && clockMode != "virtual") {
        std::fprintf(stderr, "--nodes requires --clock virtual\n");
        return 2;
    }
    if (nodes > 0 && churn > 0.0) {
        std::fprintf(stderr,
                     "--churn is not supported with --nodes\n");
        return 2;
    }

    bench::banner("eqc::serve closed-loop throughput");
    std::printf(
        "tenants=%d rounds=%d shots=%d threads=%d fail=%d clock=%s "
        "seed=%llu\n",
        tenants, rounds, shots, TaskPool::shared().threadCount(),
        fail ? 1 : 0, clockMode.c_str(),
        static_cast<unsigned long long>(seed));

    // Pool telemetry rides the --metrics-out scrape as tier="pool".
    obs::MetricsRegistry poolMetrics;
    TaskPool::shared().instrument(poolMetrics);

    SteadyClock steady(timescaleS);
    Clock *clock = clockMode == "steady"
                       ? static_cast<Clock *>(&steady)
                       : nullptr; // node default: VirtualClock

    ServiceOptions opts;
    opts.seed = seed;
    opts.resultCacheTtlH = ttlH;
    opts.batchedSweep = batched;
    if (depth > 0)
        opts.admission.maxQueueDepth =
            static_cast<std::size_t>(depth);

    // Legacy path: one ServiceNode, shards fanned out on the shared
    // pool. Router path (--nodes): N nodes, each with its own serve
    // thread and inline shards — scaling comes from node concurrency.
    std::unique_ptr<ServiceNode> single;
    std::unique_ptr<Router> router;
    VqaProblem vqe = makeHeisenbergVqe();
    VqaProblem qaoa = makeRingMaxCutQaoa();
    WorkloadId wVqe;
    WorkloadId wQaoa;
    if (nodes > 0) {
        RouterOptions ro;
        ro.threadedDrain = true;
        ro.seed = seed;
        router.reset(new Router(ro));
        for (int n = 0; n < nodes; ++n)
            router->addNode(evaluationEnsemble(), opts);
        wVqe = router->registerWorkload(vqe.ansatz, vqe.hamiltonian);
        wQaoa =
            router->registerWorkload(qaoa.ansatz, qaoa.hamiltonian);
        std::printf("router: nodes=%d (one serve thread each) "
                    "vnodes=%d forward hops=%d\n",
                    nodes, router->options().virtualNodes,
                    router->options().forwardHops);
    } else {
        single.reset(new ServiceNode(evaluationEnsemble(), opts,
                                     clock));
        wVqe = single->registerWorkload(vqe.ansatz, vqe.hamiltonian);
        wQaoa =
            single->registerWorkload(qaoa.ansatz, qaoa.hamiltonian);
    }
    auto submitJob = [&](const JobRequest &r) {
        return router ? router->submit(r) : single->submit(r);
    };
    auto drainAll = [&]() {
        return router ? router->drain() : single->drain();
    };

    // Tenant pairs share a binding stream; odd pairs run the QAOA
    // workload so the node serves a heterogeneous mix.
    struct Tenant
    {
        JobRequest req;
        double nextSubmitH = 0.0;
    };
    std::vector<Tenant> fleet(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
        Tenant &tn = fleet[static_cast<std::size_t>(t)];
        const int pair = t / 2;
        const bool isQaoa = pair % 2 == 1;
        tn.req.tenantId = t;
        tn.req.workload = isQaoa ? wQaoa : wVqe;
        tn.req.params = isQaoa ? qaoa.initialParams : vqe.initialParams;
        tn.req.params[0] += 0.05 * pair;
        tn.req.shots = shots;
        tn.req.priority = t % 3;
    }

    if (fail) // member 0 (of node 0 when routed) dies one second in
        (router ? router->node(0) : *single)
            .failMemberAt(0, 1.0 / 3600.0);

    const auto wall0 = std::chrono::steady_clock::now();
    uint64_t completed = 0;
    uint64_t backedOff = 0;
    uint64_t sloJobs = 0;
    uint64_t sloMet = 0;
    uint64_t degradedJobs = 0;
    // Deterministic bench-side injection stream: deadline coin flips
    // and churn events come from one forked Rng, independent of the
    // node's own seed-derived execution randomness.
    Rng brng = Rng(seed).fork("bench");
    const std::vector<Device> spares = evaluationEnsemble();
    std::size_t joinCursor = 0;
    for (int r = 0; r < rounds; ++r) {
        if (churn > 0.0 && brng.bernoulli(churn)) {
            // Live membership churn: alternate between grafting a
            // spare catalog device onto the ensemble and retiring a
            // random member mid-campaign.
            const double nowH = single->loop().now();
            if (brng.bernoulli(0.5)) {
                single->addMember(
                    spares[joinCursor++ % spares.size()], nowH);
            } else {
                const std::size_t victim = static_cast<std::size_t>(
                    brng.uniformInt(
                        0, static_cast<int>(single->numMembers() -
                                            1)));
                single->removeMember(victim, nowH);
            }
        }
        for (Tenant &tn : fleet) {
            tn.req.submitH = tn.nextSubmitH;
            // Parameter drift between rounds: what a live optimizer's
            // binding stream looks like. The binding holds for two
            // rounds (pairs stay identical within a round, so
            // coalescing triggers; repeats across rounds give the
            // result cache real hits).
            tn.req.params[1 % tn.req.params.size()] = 0.02 * (r / 2);
            tn.req.deadlineH =
                deadlineFrac > 0.0 && brng.bernoulli(deadlineFrac)
                    ? tn.req.submitH + sloH
                    : 0.0;
            Ticket ticket = submitJob(tn.req);
            if (!ticket.admitted()) {
                // Backpressure: come back when the hint says so.
                tn.nextSubmitH += ticket.retryAfterS / 3600.0;
                ++backedOff;
            }
        }
        for (const JobOutcome &o : drainAll()) {
            fleet[static_cast<std::size_t>(o.tenantId)].nextSubmitH =
                o.completeH;
            ++completed;
            if (o.deadlineH > 0.0) {
                ++sloJobs;
                if (!o.shed)
                    ++sloMet;
            }
            if (o.degraded)
                ++degradedJobs;
        }
    }
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();

    if (router)
        router->stopServe();

    const stats::Percentiles &lat =
        router ? router->latencyStats() : single->latencyStats();
    // Routed runs sample node 0's hint stream (per-node estimators).
    const stats::Percentiles &retry =
        (router ? router->node(0) : *single).retryAfterStats();
    const ServiceCounters c =
        router ? router->totals() : single->counters();
    const double jobsPerSec =
        wallS > 0.0 ? static_cast<double>(completed) / wallS : 0.0;
    const double cacheHitRate =
        c.jobsAdmitted > 0
            ? static_cast<double>(c.cacheHits) /
                  static_cast<double>(c.jobsAdmitted)
            : 0.0;

    bench::heading("throughput");
    std::printf("jobs completed      %10llu\n",
                static_cast<unsigned long long>(completed));
    std::printf("wall seconds        %10.3f\n", wallS);
    std::printf("jobs per second     %10.2f\n", jobsPerSec);

    bench::heading("virtual service latency (seconds)");
    std::printf("p50  %10.2f\np95  %10.2f\np99  %10.2f\n",
                lat.p50() * 3600.0, lat.p95() * 3600.0,
                lat.p99() * 3600.0);

    bench::heading("service counters");
    std::printf("admitted %llu  coalesced %llu  cache hits %llu "
                "(rate %.3f)\n",
                static_cast<unsigned long long>(c.jobsAdmitted),
                static_cast<unsigned long long>(c.jobsCoalesced),
                static_cast<unsigned long long>(c.cacheHits),
                cacheHitRate);
    std::printf("work items %llu  shards %llu  requeued %llu\n",
                static_cast<unsigned long long>(c.workItems),
                static_cast<unsigned long long>(c.shardsExecuted),
                static_cast<unsigned long long>(c.shardsRequeued));
    std::printf("shots executed %llu  circuits %llu\n",
                static_cast<unsigned long long>(c.shotsExecuted),
                static_cast<unsigned long long>(c.circuitsExecuted));

    const double sloAttainment =
        sloJobs > 0 ? static_cast<double>(sloMet) /
                          static_cast<double>(sloJobs)
                    : 1.0;
    const double shedShotFraction =
        c.shotsExecuted + c.shotsShed > 0
            ? static_cast<double>(c.shotsShed) /
                  static_cast<double>(c.shotsExecuted + c.shotsShed)
            : 0.0;
    const double degradedRate =
        completed > 0 ? static_cast<double>(degradedJobs) /
                            static_cast<double>(completed)
                      : 0.0;

    bench::heading("latency SLOs");
    std::printf("slo jobs %llu  met %llu  attainment %.4f\n",
                static_cast<unsigned long long>(sloJobs),
                static_cast<unsigned long long>(sloMet),
                sloAttainment);
    std::printf("deadline sheds %llu  shots shed %llu "
                "(fraction %.4f)  degraded rate %.4f\n",
                static_cast<unsigned long long>(c.deadlineSheds),
                static_cast<unsigned long long>(c.shotsShed),
                shedShotFraction, degradedRate);
    std::printf("member joins %llu  leaves %llu\n",
                static_cast<unsigned long long>(c.memberJoins),
                static_cast<unsigned long long>(c.memberLeaves));

    bench::heading("admission backpressure");
    std::printf("rejected %llu (queue full %llu, tenant quota %llu, "
                "bad request %llu)\n",
                static_cast<unsigned long long>(c.jobsRejected),
                static_cast<unsigned long long>(c.rejectedQueueFull),
                static_cast<unsigned long long>(c.rejectedTenantQuota),
                static_cast<unsigned long long>(c.rejectedBadRequest));
    std::printf("tenant back-offs %llu  retry-after p50 %.1f s  "
                "p95 %.1f s\n",
                static_cast<unsigned long long>(backedOff),
                retry.p50(), retry.p95());

    if (router) {
        const RouterCounters &rc = router->counters();
        bench::heading("router");
        std::printf("routed %llu  forwards %llu  forward admits %llu "
                    "rejected everywhere %llu\n",
                    static_cast<unsigned long long>(rc.routed),
                    static_cast<unsigned long long>(rc.forwards),
                    static_cast<unsigned long long>(rc.forwardAdmits),
                    static_cast<unsigned long long>(
                        rc.rejectedEverywhere));
        bench::heading("per-node executed shots");
        const std::vector<uint64_t> nodeShots =
            router->nodeShotTotals();
        for (std::size_t n = 0; n < nodeShots.size(); ++n)
            std::printf("  node %-2zu %14llu\n", n,
                        static_cast<unsigned long long>(
                            nodeShots[n]));
    } else {
        bench::heading("per-member executed shots");
        for (std::size_t m = 0; m < single->numMembers(); ++m)
            std::printf("  %-16s %12llu\n",
                        single->memberDevice(m).name.c_str(),
                        static_cast<unsigned long long>(
                            single->memberShotCounts()[m]));
    }

    if (!outPath.empty()) {
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"service_throughput\",\n"
            "  \"clock\": \"%s\",\n"
            "  \"timescale_s_per_h\": %.3f,\n"
            "  \"tenants\": %d,\n"
            "  \"rounds\": %d,\n"
            "  \"shots\": %d,\n"
            "  \"seed\": %llu,\n"
            "  \"threads\": %d,\n"
            "  \"nodes\": %d,\n"
            "  \"routed\": %s,\n"
            "  \"queue_depth_limit\": %d,\n"
            "  \"cache_ttl_h\": %.3f,\n"
            "  \"fail_injected\": %s,\n"
            "  \"jobs_completed\": %llu,\n"
            "  \"wall_seconds\": %.6f,\n"
            "  \"jobs_per_sec\": %.3f,\n"
            "  \"latency_p50_s\": %.3f,\n"
            "  \"latency_p95_s\": %.3f,\n"
            "  \"latency_p99_s\": %.3f,\n"
            "  \"jobs_admitted\": %llu,\n"
            "  \"jobs_coalesced\": %llu,\n"
            "  \"cache_hits\": %llu,\n"
            "  \"cache_hit_rate\": %.4f,\n"
            "  \"jobs_rejected\": %llu,\n"
            "  \"rejected_queue_full\": %llu,\n"
            "  \"rejected_tenant_quota\": %llu,\n"
            "  \"rejected_bad_request\": %llu,\n"
            "  \"tenant_backoffs\": %llu,\n"
            "  \"retry_after_p50_s\": %.3f,\n"
            "  \"retry_after_p95_s\": %.3f,\n"
            "  \"retry_after_p99_s\": %.3f,\n"
            "  \"work_items\": %llu,\n"
            "  \"shards_executed\": %llu,\n"
            "  \"shards_requeued\": %llu,\n"
            "  \"shots_executed\": %llu,\n"
            "  \"deadline_frac\": %.4f,\n"
            "  \"slo_h\": %.4f,\n"
            "  \"churn\": %.4f,\n"
            "  \"slo_jobs\": %llu,\n"
            "  \"slo_met\": %llu,\n"
            "  \"slo_attainment\": %.4f,\n"
            "  \"deadline_sheds\": %llu,\n"
            "  \"shots_shed\": %llu,\n"
            "  \"shed_shot_fraction\": %.6f,\n"
            "  \"degraded_jobs\": %llu,\n"
            "  \"degraded_rate\": %.4f,\n"
            "  \"member_joins\": %llu,\n"
            "  \"member_leaves\": %llu,\n",
            clockMode.c_str(), timescaleS, tenants, rounds, shots,
            static_cast<unsigned long long>(seed),
            TaskPool::shared().threadCount(),
            nodes > 0 ? nodes : 1, nodes > 0 ? "true" : "false",
            depth > 0 ? depth
                      : static_cast<int>(opts.admission.maxQueueDepth),
            ttlH, fail ? "true" : "false",
            static_cast<unsigned long long>(completed), wallS,
            jobsPerSec, lat.p50() * 3600.0, lat.p95() * 3600.0,
            lat.p99() * 3600.0,
            static_cast<unsigned long long>(c.jobsAdmitted),
            static_cast<unsigned long long>(c.jobsCoalesced),
            static_cast<unsigned long long>(c.cacheHits), cacheHitRate,
            static_cast<unsigned long long>(c.jobsRejected),
            static_cast<unsigned long long>(c.rejectedQueueFull),
            static_cast<unsigned long long>(c.rejectedTenantQuota),
            static_cast<unsigned long long>(c.rejectedBadRequest),
            static_cast<unsigned long long>(backedOff), retry.p50(),
            retry.p95(), retry.p99(),
            static_cast<unsigned long long>(c.workItems),
            static_cast<unsigned long long>(c.shardsExecuted),
            static_cast<unsigned long long>(c.shardsRequeued),
            static_cast<unsigned long long>(c.shotsExecuted),
            deadlineFrac, sloH, churn,
            static_cast<unsigned long long>(sloJobs),
            static_cast<unsigned long long>(sloMet), sloAttainment,
            static_cast<unsigned long long>(c.deadlineSheds),
            static_cast<unsigned long long>(c.shotsShed),
            shedShotFraction,
            static_cast<unsigned long long>(degradedJobs),
            degradedRate,
            static_cast<unsigned long long>(c.memberJoins),
            static_cast<unsigned long long>(c.memberLeaves));
        if (router) {
            const RouterCounters &rc = router->counters();
            std::fprintf(
                f,
                "  \"router_routed\": %llu,\n"
                "  \"router_forwards\": %llu,\n"
                "  \"router_forward_admits\": %llu,\n"
                "  \"router_rejected_everywhere\": %llu,\n"
                "  \"node_shots\": [",
                static_cast<unsigned long long>(rc.routed),
                static_cast<unsigned long long>(rc.forwards),
                static_cast<unsigned long long>(rc.forwardAdmits),
                static_cast<unsigned long long>(
                    rc.rejectedEverywhere));
            const std::vector<uint64_t> nodeShots =
                router->nodeShotTotals();
            for (std::size_t n = 0; n < nodeShots.size(); ++n)
                std::fprintf(f, "%s%llu", n ? ", " : "",
                             static_cast<unsigned long long>(
                                 nodeShots[n]));
        } else {
            std::fprintf(f, "  \"member_shots\": [");
            for (std::size_t m = 0; m < single->numMembers(); ++m)
                std::fprintf(f, "%s%llu", m ? ", " : "",
                             static_cast<unsigned long long>(
                                 single->memberShotCounts()[m]));
        }
        std::fprintf(f, "]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", outPath.c_str());
    }

    if (!metricsOutPath.empty()) {
        const obs::Snapshot fleet =
            router ? router->metricsSnapshot()
                   : single->metrics().snapshot();
        const obs::Snapshot scrape = obs::merge(
            {{"", fleet}, {"tier=\"pool\"", poolMetrics.snapshot()}});
        std::FILE *f = std::fopen(metricsOutPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         metricsOutPath.c_str());
            return 1;
        }
        const std::string json = obs::toJson(scrape);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", metricsOutPath.c_str());
    }
    return 0;
}
