/**
 * @file
 * Reproduces Table I: the IBMQ platforms used for evaluation — qubits,
 * processor family, quantum volume and topology — plus the synthetic
 * calibration summary each device model carries.
 */

#include <cstdio>

#include "bench_util.h"
#include "device/catalog.h"

int
main()
{
    using namespace eqc;
    bench::banner("Table I: IBMQ platforms used for evaluation");

    std::printf("%-18s %7s %-14s %4s %-16s %8s %8s %9s %9s %9s\n",
                "Device", "Qubits", "Processor", "QV", "Topology",
                "T1(us)", "T2(us)", "e1q(%)", "eCX(%)", "eRO(%)");
    for (const Device &d : ibmqCatalog()) {
        const CalibrationSnapshot &c = d.baseCalibration;
        std::printf(
            "%-18s %7d %-14s %4d %-16s %8.1f %8.1f %9.3f %9.3f %9.3f\n",
            d.name.c_str(), d.numQubits, d.processor.c_str(),
            d.quantumVolume, d.topologyName.c_str(), c.avgT1Us(),
            c.avgT2Us(), 100.0 * c.avgGate1qError(),
            100.0 * c.avgCxError(), 100.0 * c.avgReadoutError());
    }

    bench::heading("queue/drift personalities (synthetic substitution)");
    std::printf("%-18s %14s %12s %14s %12s\n", "Device",
                "median-wait(s)", "congestion", "drift(%/h)",
                "incidents/h");
    for (const Device &d : ibmqCatalog()) {
        std::printf("%-18s %14.0f %12.2f %14.1f %12.3f\n",
                    d.name.c_str(), d.queue.baseWaitS,
                    d.queue.congestionAmplitude,
                    100.0 * d.drift.errorDriftPerHour,
                    d.drift.incidentRatePerHour);
    }
    return 0;
}
