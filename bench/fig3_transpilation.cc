/**
 * @file
 * Reproduces Fig. 3: the same 4-qubit entangler transpiled onto the
 * Belem (T-shape), x2 (bowtie) and Manila (line) topologies — showing
 * how connectivity drives SWAP count, native gate counts and critical
 * depth (the inputs that make Eq. 2 topology-aware).
 */

#include <cstdio>

#include "bench_util.h"
#include "circuit/ansatz.h"
#include "core/weighting.h"
#include "device/catalog.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 3: one circuit, three topologies");

    QuantumCircuit logical = hardwareEfficientAnsatz(4);
    std::printf("logical circuit: %d qubits, G1=%d RZ=%d G2=%d M=%d "
                "depth=%d\n",
                logical.numQubits(), logical.counts().g1,
                logical.counts().rz, logical.counts().g2,
                logical.counts().measurements, logical.depth());

    bench::heading("transpiled per device");
    std::printf("%-14s %-16s %6s %6s %6s %6s %6s %7s %10s\n", "device",
                "topology", "swaps", "G1", "RZ", "G2", "M", "CD",
                "P_correct");
    for (const char *name : {"ibmq_belem", "ibmqx2", "ibmq_manila",
                             "ibmq_toronto", "ibmq_manhattan"}) {
        Device d = deviceByName(name);
        TranspiledCircuit tc = transpile(logical, d.coupling);
        double p = pCorrect(circuitQuality(tc), d.baseCalibration);
        std::printf("%-14s %-16s %6d %6d %6d %6d %6d %7d %10.4f\n",
                    d.name.c_str(), d.topologyName.c_str(), tc.swapCount,
                    tc.counts.g1, tc.counts.rz, tc.counts.g2,
                    tc.counts.measurements, tc.criticalDepth, p);
    }

    bench::heading("an all-to-all interaction circuit (stress case)");
    QuantumCircuit dense(4, 0);
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            dense.cx(a, b);
    dense.measureAll();
    std::printf("%-14s %6s %6s %7s\n", "device", "swaps", "G2", "CD");
    for (const char *name : {"ibmq_belem", "ibmqx2", "ibmq_manila"}) {
        Device d = deviceByName(name);
        TranspiledCircuit tc = transpile(dense, d.coupling);
        std::printf("%-14s %6d %6d %7d\n", d.name.c_str(), tc.swapCount,
                    tc.counts.g2, tc.criticalDepth);
    }
    return 0;
}
