#!/bin/sh
# Build the micro-kernel benchmark suite in Release mode and record a
# trajectory entry in BENCH_kernels.json (see README "Performance").
#
# Usage: bench/run_kernels.sh [label] [extra google-benchmark args...]
#   label    name for this trajectory entry (default: "run")
#
# Requires Google Benchmark (libbenchmark-dev) and python3. The build
# goes to build-bench/ so it never disturbs a development build tree.
set -e
cd "$(dirname "$0")/.."

LABEL="${1:-run}"
[ $# -gt 0 ] && shift

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
  -DEQC_BUILD_TESTS=OFF -DEQC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-bench -j --target bench_kernels >/dev/null

if [ ! -x build-bench/bench/bench_kernels ]; then
  echo "bench/run_kernels.sh: Google Benchmark not found" \
       "(install libbenchmark-dev)" >&2
  exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
./build-bench/bench/bench_kernels --benchmark_format=json \
  --benchmark_out="$RAW" "$@" >/dev/null

python3 - "$RAW" "$LABEL" <<'EOF'
import json, sys

raw_path, label = sys.argv[1], sys.argv[2]
raw = json.load(open(raw_path))
entry = {
    "label": label,
    "date": raw["context"]["date"],
    "num_cpus": raw["context"]["num_cpus"],
    "cpu_time_ns": {
        b["name"]: round(b["cpu_time"], 1)
        for b in raw["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    },
}
try:
    doc = json.load(open("BENCH_kernels.json"))
except FileNotFoundError:
    doc = {"benchmark": "bench/kernels.cc",
           "generated_by": "bench/run_kernels.sh",
           "trajectory": []}
doc["trajectory"].append(entry)
json.dump(doc, open("BENCH_kernels.json", "w"), indent=2)
print(f"BENCH_kernels.json: appended entry '{label}' with "
      f"{len(entry['cpu_time_ns'])} benchmarks")
EOF
