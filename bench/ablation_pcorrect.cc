/**
 * @file
 * Ablation: the Eq. 2 decay term as printed in the paper (PaperLiteral,
 * exp(-CD*mu/(T1*T2))) versus the dimensionally consistent form
 * (Physical, exp(-CD*mu*(1/T1+1/T2)/2)). DESIGN.md flags the printed
 * formula as a likely typo; this bench shows both produce the same
 * device ordering (which is all the weight normalizer consumes) and
 * nearly identical VQE outcomes.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Ablation: Eq. 2 decay-term convention");

    VqaProblem problem = makeHeisenbergVqe();
    ExpectationEstimator est(problem.hamiltonian, problem.ansatz);

    bench::heading("raw P_correct per device (fresh calibration)");
    std::printf("%-18s %12s %14s\n", "device", "physical",
                "paper-literal");
    std::vector<std::pair<double, double>> scores;
    for (const Device &d : evaluationEnsemble()) {
        auto compiled = est.compileFor(d.coupling);
        double phys = 0.0, lit = 0.0;
        for (const TranspiledCircuit &tc : compiled) {
            phys += pCorrect(circuitQuality(tc), d.baseCalibration,
                             PCorrectMode::Physical);
            lit += pCorrect(circuitQuality(tc), d.baseCalibration,
                            PCorrectMode::PaperLiteral);
        }
        phys /= compiled.size();
        lit /= compiled.size();
        scores.push_back({phys, lit});
        std::printf("%-18s %12.4f %14.4f\n", d.name.c_str(), phys, lit);
    }

    // Rank agreement between the two conventions.
    int agree = 0, total = 0;
    for (std::size_t a = 0; a < scores.size(); ++a) {
        for (std::size_t b = a + 1; b < scores.size(); ++b) {
            ++total;
            bool physOrder = scores[a].first < scores[b].first;
            bool litOrder = scores[a].second < scores[b].second;
            if (physOrder == litOrder)
                ++agree;
        }
    }
    std::printf("\npairwise rank agreement: %d/%d\n", agree, total);

    bench::heading("VQE outcome under each convention (weights 0.5-1.5,"
                   " 120 epochs)");
    Runtime runtime;
    for (PCorrectMode mode :
         {PCorrectMode::Physical, PCorrectMode::PaperLiteral}) {
        EqcOptions o;
        o.master.epochs = 120;
        o.master.weightBounds = {0.5, 1.5};
        o.client.pCorrectMode = mode;
        o.seed = 1;
        EqcTrace t =
            runtime.submit(problem, evaluationEnsemble(), o).take();
        std::printf("%-14s final(dev) %8.3f  final(ideal-eval) %8.3f\n",
                    mode == PCorrectMode::Physical ? "physical"
                                                   : "paper-literal",
                    finalEnergy(t, 15), finalIdealEnergy(t, 15));
    }
    return 0;
}
