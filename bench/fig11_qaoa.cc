/**
 * @file
 * Reproduces Fig. 11: QAOA MaxCut on the 4-node ring — unweighted EQC
 * over 8 devices against each device training independently. MaxCut
 * cost is reported normalized per edge (the paper's curves converge
 * around -0.74 which is the p=1 limit of 3/4 cut ratio on C4).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/maxcut.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 11: 4-node ring MaxCut QAOA, unweighted EQC vs "
                  "single machines");

    VqaProblem problem = makeRingMaxCutQaoa();
    const int iterations = 50;
    const double edgeCount = 4.0;

    const std::vector<const char *> names = {
        "ibmq_belem",  "ibmq_bogota", "ibmq_casablanca", "ibmq_lima",
        "ibmq_manila", "ibmq_quito",  "ibmq_santiago",   "ibmq_toronto"};

    std::vector<TrainingTrace> traces;
    for (const char *n : names) {
        TrainerOptions o;
        o.epochs = iterations;
        // Shared QAOA parameters need the exact per-occurrence shift
        // rule: the literal whole-parameter +-pi/2 shift has zero
        // gradient on this instance (see bench_ablation_shift_mode).
        o.shiftMode = ShiftMode::PerOccurrence;
        o.seed = 1;
        traces.push_back(trainSingleDevice(problem, deviceByName(n), o));
    }

    // Unweighted EQC over the same 8 devices.
    std::vector<Device> ensemble;
    for (const char *n : names)
        ensemble.push_back(deviceByName(n));
    EqcOptions eo;
    eo.master.epochs = iterations;
    eo.client.shiftMode = ShiftMode::PerOccurrence;
    eo.seed = 1;
    Runtime runtime;
    EqcTrace eqc = runtime.submit(problem, ensemble, eo).take();

    bench::heading("normalized MaxCut cost vs iteration (every 2)");
    std::printf("%-6s %12s", "iter", "EQC");
    for (const char *n : names)
        std::printf(" %12s", std::string(n).substr(5, 12).c_str());
    std::printf("\n");
    for (int e = 0; e < iterations; e += 2) {
        std::printf("%-6d %12.4f",
                    e, eqc.epochs[e].energyDevice / edgeCount);
        for (const TrainingTrace &t : traces) {
            if (e < static_cast<int>(t.epochs.size()))
                std::printf(" %12.4f",
                            t.epochs[e].energyDevice / edgeCount);
            else
                std::printf(" %12s", "--");
        }
        std::printf("\n");
    }

    bench::heading("speed (paper: EQC 322.4% of fastest, 135,510% of "
                   "slowest machine)");
    std::printf("%-18s %14s %12s\n", "system", "iters/hour",
                "runtime(h)");
    std::printf("%-18s %14.2f %12.2f\n", "EQC", eqc.epochsPerHour,
                eqc.totalHours);
    double fastest = 0.0, slowest = 1e18;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        std::printf("%-18s %14.2f %12.2f\n", names[i],
                    traces[i].epochsPerHour, traces[i].totalHours);
        fastest = std::max(fastest, traces[i].epochsPerHour);
        slowest = std::min(slowest, traces[i].epochsPerHour);
    }
    std::printf("\nEQC vs fastest: %.1f%%   EQC vs slowest: %.1f%%\n",
                100.0 * eqc.epochsPerHour / fastest,
                100.0 * eqc.epochsPerHour / slowest);

    bench::heading("final normalized cost (lower is better; optimum "
                   "-1.0, p=1 limit about -0.75)");
    std::printf("%-18s %12.4f\n", "EQC-unweighted",
                finalEnergy(eqc, 10) / edgeCount);
    for (std::size_t i = 0; i < traces.size(); ++i)
        std::printf("%-18s %12.4f\n", names[i],
                    finalEnergy(traces[i], 10) / edgeCount);
    return 0;
}
