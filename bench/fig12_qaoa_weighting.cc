/**
 * @file
 * Reproduces Fig. 12: weighted vs unweighted EQC on the ring MaxCut
 * QAOA, plus the minimum-cost ranking across the individual machines.
 * The paper reports weighting improving EQC's best solution by ~2.9%
 * (bounds 0.5-1.5) and ~2.3% (bounds 0.25-1.75).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "vqa/problem.h"

namespace {

/** Lowest epoch-mean normalized cost reached by a trace. */
double
minCost(const eqc::TrainingTrace &t, double edges)
{
    double best = 1e18;
    for (const eqc::EpochRecord &r : t.epochs)
        best = std::min(best, r.energyDevice / edges);
    return best;
}

} // namespace

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 12: weighted vs unweighted EQC on ring MaxCut");

    VqaProblem problem = makeRingMaxCutQaoa();
    const int iterations = 50;
    const double edges = 4.0;

    const std::vector<const char *> names = {
        "ibmq_belem",  "ibmq_bogota", "ibmq_casablanca", "ibmq_lima",
        "ibmq_manila", "ibmq_quito",  "ibmq_santiago",   "ibmq_toronto"};
    std::vector<Device> ensemble;
    for (const char *n : names)
        ensemble.push_back(deviceByName(n));

    struct Config
    {
        const char *label;
        WeightBounds bounds;
    };
    const std::vector<Config> configs = {
        {"EQC-no-weighting", {1.0, 1.0}},
        {"EQC-weights-0.50-1.50", {0.5, 1.5}},
        {"EQC-weights-0.25-1.75", {0.25, 1.75}},
    };

    // Queue one job per weighting config and fan them out together.
    Runtime runtime;
    std::vector<JobHandle> jobs;
    for (const Config &c : configs) {
        EqcOptions o;
        o.master.epochs = iterations;
        o.master.weightBounds = c.bounds;
        o.client.shiftMode = ShiftMode::PerOccurrence;
        o.seed = 1;
        jobs.push_back(runtime.submit(problem, ensemble, o));
    }
    runtime.runAll();
    std::vector<EqcTrace> eqcTraces;
    for (JobHandle &job : jobs)
        eqcTraces.push_back(job.take());

    bench::heading("normalized cost vs iteration (every 2)");
    std::printf("%-6s", "iter");
    for (const Config &c : configs)
        std::printf(" %22s", c.label);
    std::printf("\n");
    for (int e = 0; e < iterations; e += 2) {
        std::printf("%-6d", e);
        for (const EqcTrace &t : eqcTraces)
            std::printf(" %22.4f", t.epochs[e].energyDevice / edges);
        std::printf("\n");
    }

    bench::heading("minimum cost ranking (incl. single machines)");
    struct Entry
    {
        std::string label;
        double cost;
    };
    std::vector<Entry> entries;
    for (std::size_t i = 0; i < configs.size(); ++i)
        entries.push_back(
            {configs[i].label, minCost(eqcTraces[i], edges)});
    for (const char *n : names) {
        TrainerOptions o;
        o.epochs = iterations;
        // Shared QAOA parameters need the exact per-occurrence shift
        // rule: the literal whole-parameter +-pi/2 shift has zero
        // gradient on this instance (see bench_ablation_shift_mode).
        o.shiftMode = ShiftMode::PerOccurrence;
        o.seed = 1;
        TrainingTrace t =
            trainSingleDevice(problem, deviceByName(n), o);
        entries.push_back({n, minCost(t, edges)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.cost < b.cost;
              });
    for (const Entry &e : entries)
        std::printf("%-24s %10.4f\n", e.label.c_str(), e.cost);

    double unweighted = minCost(eqcTraces[0], edges);
    bench::heading("weighting improvement over unweighted EQC");
    for (std::size_t i = 1; i < configs.size(); ++i) {
        double imp = (eqcTraces[i].epochs.empty())
                         ? 0.0
                         : (minCost(eqcTraces[i], edges) - unweighted) /
                               unweighted * 100.0;
        std::printf("%-24s %+8.3f%% (more negative = better)\n",
                    configs[i].label, imp);
    }
    return 0;
}
