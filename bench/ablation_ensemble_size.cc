/**
 * @file
 * Ablation: how EQC throughput and accuracy scale with ensemble size.
 * Devices are added fastest-first, so the marginal member is always
 * slower than the pool average — throughput grows sub-linearly while
 * asynchronous staleness grows with concurrency.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Ablation: ensemble size scaling (VQE, 80 epochs)");

    VqaProblem problem = makeHeisenbergVqe();
    Runtime runtime;
    // Fastest-first ordering by median queue wait.
    const std::vector<const char *> order = {
        "ibmqx2",       "ibmq_bogota",     "ibmq_casablanca",
        "ibmq_belem",   "ibmq_quito",      "ibmq_manila",
        "ibmq_lima",    "ibm_lagos",       "ibmq_santiago",
        "ibmq_toronto"};

    std::printf("%-6s %14s %12s %14s %12s\n", "size", "epochs/hour",
                "staleness", "final(ideal)", "runtime(h)");
    for (std::size_t size : {1u, 2u, 4u, 6u, 8u, 10u}) {
        std::vector<Device> devices;
        for (std::size_t i = 0; i < size; ++i)
            devices.push_back(deviceByName(order[i]));
        EqcOptions o;
        o.master.epochs = 80;
        o.seed = 3;
        EqcTrace t = runtime.submit(problem, devices, o).take();
        std::printf("%-6zu %14.2f %12.2f %14.3f %12.2f\n", size,
                    t.epochsPerHour, t.staleness.mean(),
                    finalIdealEnergy(t, 15), t.totalHours);
    }
    std::printf("\n(Throughput should rise with size; staleness rises "
                "with concurrency;\nfinal energy stays near the ansatz "
                "minimum — the appendix's bounded-delay\nconvergence in "
                "action.)\n");
    return 0;
}
