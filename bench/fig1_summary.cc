/**
 * @file
 * Reproduces Fig. 1: the motivating comparison — VQE error rate and
 * training run time for three individual IBMQ devices (Casablanca, x2,
 * Bogota) against EQC. A condensed version of the Fig. 6 campaign.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 1: VQE error rate and run time (motivation)");

    VqaProblem problem = makeHeisenbergVqe();
    const int epochs = 250;
    // Our Pauli-unit Hamiltonian has a larger energy scale than the
    // paper's plotted -4.0 curve; alpha = 0.05 keeps the effective step
    // size (alpha * |gradient|) on the paper's convergence horizon.
    const double kBenchLr = 0.05;

    // Ansatz-reachable reference energy from the ideal baseline.
    TrainerOptions idealOpts;
    idealOpts.epochs = epochs;
    idealOpts.learningRate = kBenchLr;
    idealOpts.seed = 1;
    TrainingTrace ideal =
        trainSingleDevice(problem, makeIdealDevice(4), idealOpts);
    (void)ideal;
    const double reference = estimateAnsatzMinimum(problem);

    struct Row
    {
        std::string label;
        double errorPct;
        double runtimeH;
    };
    std::vector<Row> rows;

    for (const char *name :
         {"ibmq_casablanca", "ibmqx2", "ibmq_bogota"}) {
        TrainerOptions o;
        o.epochs = epochs;
        o.learningRate = kBenchLr;
        o.seed = 1;
        TrainingTrace t =
            trainSingleDevice(problem, deviceByName(name), o);
        rows.push_back({name,
                        errorVsReference(finalIdealEnergy(t, 20),
                                         reference),
                        t.totalHours});
    }
    {
        EqcOptions o;
        o.master.epochs = epochs;
        o.master.learningRate = kBenchLr;
        // The paper's headline EQC numbers use the weighting system.
        o.master.weightBounds = {0.5, 1.5};
        o.seed = 1;
        Runtime runtime;
        EqcTrace t =
            runtime.submit(problem, evaluationEnsemble(), o).take();
        rows.push_back({"EQC",
                        errorVsReference(finalIdealEnergy(t, 20),
                                         reference),
                        t.totalHours});
    }

    bench::heading("error rate (%) and run time (hours)");
    std::printf("%-18s %12s %14s\n", "system", "error(%)",
                "run time(h)");
    for (const Row &r : rows)
        std::printf("%-18s %12.3f %14.1f\n", r.label.c_str(),
                    r.errorPct, r.runtimeH);
    std::printf("\n(Paper: Casablanca 4.6%%, x2 1.798%%, Bogota "
                "0.865%%, EQC 0.379%%; run times tens of hours on "
                "single devices.)\n");
    return 0;
}
