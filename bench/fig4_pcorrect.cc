/**
 * @file
 * Reproduces Fig. 4: validation of the Eq. 2 analytic quality model
 * against observed 5-qubit GHZ error rates across devices and
 * calibration ages. The paper reports a linear fit of y=0.86x+0.05,
 * R^2 = 0.605 and Pearson r = 0.784 (p = 1.28e-7), with stale
 * calibrations under-predicting the observed error — exactly the
 * behaviour our drift model produces, since the model sees only the
 * *reported* calibration while the backend runs the *actual* one.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "circuit/ansatz.h"
#include "common/stats.h"
#include "core/weighting.h"
#include "device/backend.h"
#include "device/catalog.h"

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 4: calculated vs observed 5-qubit GHZ error");

    QuantumCircuit ghz = ghzCircuit(5);
    std::vector<double> calculated, observed;

    std::printf("%-18s %10s %12s %12s %9s\n", "device", "age(h)",
                "calculated", "observed", "incident");
    for (const char *name :
         {"ibmq_lima", "ibmqx2", "ibmq_belem", "ibmq_quito",
          "ibmq_manila", "ibmq_bogota", "ibmq_casablanca",
          "ibmq_santiago"}) {
        Device d = deviceByName(name);
        SimulatedQpu qpu(d, 17);
        TranspiledCircuit tc = transpile(ghz, d.coupling);
        Rng rng = Rng(17).fork(std::string("fig4:") + name);
        // Sample several times across the calibration cycle: fresh (one
        // minute) through stale (up to ~22 hours).
        for (double age : {0.02, 4.0, 9.0, 14.0, 19.0, 22.0}) {
            double calTime = qpu.tracker().lastCalibrationTime(30.0);
            double t = calTime + age;
            // Calculated: 1 - P_correct from the *reported* calibration.
            double calc = 1.0 - pCorrect(circuitQuality(tc),
                                         qpu.reportedCalibration(t));
            // Observed: fraction of non-GHZ outcomes from execution
            // under the *actual* (drifted) noise.
            JobResult r = qpu.execute(tc, {}, 8192, t, rng, false);
            uint64_t all1 = 0;
            for (int l = 0; l < 5; ++l)
                all1 |= uint64_t{1} << tc.logicalToCompact[l];
            double good = r.probabilities[0] + r.probabilities[all1];
            double obs = 1.0 - good;
            calculated.push_back(calc);
            observed.push_back(obs);
            std::printf("%-18s %10.2f %12.4f %12.4f %9s\n", name, age,
                        calc, obs,
                        qpu.tracker().inIncident(t) ? "yes" : "no");
        }
    }

    bench::heading("model validation (paper: y=0.86x+0.05, R^2=0.605, "
                   "r=0.784, p=1.28e-7)");
    LinearFit fit = linearFit(calculated, observed);
    double r = pearson(calculated, observed);
    std::printf("samples:            %zu\n", calculated.size());
    std::printf("linear fit:         y = %.3fx + %.3f\n", fit.slope,
                fit.intercept);
    std::printf("R^2:                %.3f\n", fit.r2);
    std::printf("Pearson r:          %.3f\n", r);
    std::printf("two-tailed p-value: %.3g\n",
                pearsonPValue(r, calculated.size()));
    return 0;
}
