/**
 * @file
 * Reproduces Fig. 9: EQC VQE under different weight bounds — none,
 * [0.75,1.25], [0.5,1.5], [0.25,1.75]. The paper finds that moderate
 * bounds converge faster than unweighted and closer to the ground
 * energy, while the aggressive [0.25,1.75] bound converges fastest but
 * overshoots slightly (larger effective steps).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Fig. 9: 4-qubit Heisenberg, weighted QPU ensembles");

    VqaProblem problem = makeHeisenbergVqe();
    const int epochs = 250;
    // Our Pauli-unit Hamiltonian has a larger energy scale than the
    // paper's plotted -4.0 curve; alpha = 0.05 keeps the effective step
    // size (alpha * |gradient|) on the paper's convergence horizon.
    const double kBenchLr = 0.05;

    TrainerOptions idealOpts;
    idealOpts.epochs = epochs;
    idealOpts.learningRate = kBenchLr;
    idealOpts.seed = 1;
    TrainingTrace ideal =
        trainSingleDevice(problem, makeIdealDevice(4), idealOpts);
    const double reference = estimateAnsatzMinimum(problem);
    std::printf("Ideal Solution reference (ansatz minimum): %.4f a.u.\n",
                reference);

    struct Config
    {
        const char *label;
        WeightBounds bounds;
    };
    const std::vector<Config> configs = {
        {"no-weighting", {1.0, 1.0}},
        {"weights-0.75-1.25", {0.75, 1.25}},
        {"weights-0.50-1.50", {0.5, 1.5}},
        {"weights-0.25-1.75", {0.25, 1.75}},
    };

    // Queue one job per weighting config and fan them out together.
    Runtime runtime;
    std::vector<JobHandle> jobs;
    for (const Config &c : configs) {
        EqcOptions o;
        o.master.epochs = epochs;
        o.master.weightBounds = c.bounds;
        o.master.learningRate = kBenchLr;
        o.seed = 1;
        jobs.push_back(runtime.submit(problem, evaluationEnsemble(), o));
    }
    runtime.runAll();
    std::vector<EqcTrace> traces;
    for (JobHandle &job : jobs)
        traces.push_back(job.take());

    bench::heading("energy vs epoch (every 10 epochs)");
    std::printf("%-8s", "epoch");
    for (const Config &c : configs)
        std::printf(" %18s", c.label);
    std::printf("\n");
    for (int e = 0; e < epochs; e += 10) {
        std::printf("%-8d", e);
        for (const EqcTrace &t : traces)
            std::printf(" %18.3f", t.epochs[e].energyDevice);
        std::printf("\n");
    }

    bench::heading("summary (paper: 0.25-1.75 converges fastest; "
                   "0.5-1.5 most accurate)");
    const double tol = 0.04 * std::fabs(reference);
    std::printf("%-20s %8s %10s %12s\n", "config", "conv@", "final",
                "err(%)");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        double fin = finalIdealEnergy(traces[i], 20);
        std::printf("%-20s %8d %10.3f %11.3f%%\n", configs[i].label,
                    convergenceEpoch(traces[i].idealEnergySeries(),
                                     reference, tol),
                    fin, errorVsReference(fin, reference));
    }
    return 0;
}
