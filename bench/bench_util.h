/**
 * @file
 * Shared output helpers for the figure/table reproduction benches.
 */

#ifndef EQC_BENCH_BENCH_UTIL_H
#define EQC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace eqc::bench {

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

/** Print a sub-section heading. */
inline void
heading(const std::string &title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Print one CSV-ish row of doubles with a leading label column. */
inline void
row(const std::string &label, const std::vector<double> &values,
    const char *fmt = "%10.4f")
{
    std::printf("%-22s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

} // namespace eqc::bench

#endif // EQC_BENCH_BENCH_UTIL_H
