/**
 * @file
 * Reproduces Fig. 6: the 4-qubit Heisenberg-model VQE trained on (a) an
 * ideal simulator, (b) six individual IBMQ device models, and (c) the
 * EQC ensemble of 10 devices — energy-vs-epoch series, epochs/hour
 * speed bars, the two-week termination rule, and the final error rates
 * quoted in the paper's Sec. V-C (and Fig. 1).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "hamiltonian/exact.h"
#include "vqa/problem.h"

namespace {

using namespace eqc;

struct SystemRun
{
    std::string label;
    TrainingTrace trace;
};

void
printSeries(const std::vector<SystemRun> &runs, int everyN, int epochs)
{
    std::printf("%-8s", "epoch");
    for (const SystemRun &r : runs)
        std::printf(" %14s", r.label.substr(0, 14).c_str());
    std::printf("\n");
    for (int e = 0; e < epochs; e += everyN) {
        std::printf("%-8d", e);
        for (const SystemRun &r : runs) {
            if (e < static_cast<int>(r.trace.epochs.size()))
                std::printf(" %14.3f", r.trace.epochs[e].energyDevice);
            else
                std::printf(" %14s", "--");
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    using namespace eqc;
    bench::banner(
        "Fig. 6: 4-qubit Heisenberg VQE on a square lattice "
        "(EQC vs single machines vs ideal)");

    VqaProblem problem = makeHeisenbergVqe();
    // See EXPERIMENTS.md: alpha scaled to our Hamiltonian's energy scale.
    const double kBenchLr = 0.05;
    const double ground = minEigenvalue(problem.hamiltonian);
    std::printf("exact ground energy (diagonalization): %.4f a.u.\n",
                ground);

    const int epochs = 250;

    // --- Ideal Solution baseline (paper: ideal simulator, 8192 shots).
    TrainerOptions idealOpts;
    idealOpts.epochs = epochs;
    idealOpts.learningRate = kBenchLr;
    RunningStats idealFinal;
    std::vector<SystemRun> runs;
    {
        TrainerOptions o = idealOpts;
        o.seed = 1;
        TrainingTrace t =
            trainSingleDevice(problem, makeIdealDevice(4), o);
        idealFinal.add(finalEnergy(t, 20));
        runs.push_back({"Ideal", std::move(t)});
    }
    const double idealSolution = estimateAnsatzMinimum(problem);
    std::printf("ansatz-reachable minimum (Ideal Solution): %.4f a.u. "
                "(%.2f%% above exact ground; the Fig. 8 ansatz cannot "
                "represent the singlet)\n",
                idealSolution,
                errorVsReference(idealSolution, ground));
    std::printf("ideal training baseline final energy: %.4f a.u.\n",
                idealFinal.mean());

    // --- Single-machine runs (the paper's six devices).
    for (const char *name :
         {"ibmqx2", "ibmq_bogota", "ibmq_casablanca", "ibmq_santiago",
          "ibmq_toronto", "ibmq_manhattan"}) {
        TrainerOptions o;
        o.epochs = epochs;
        o.learningRate = kBenchLr;
        o.seed = 1;
        runs.push_back(
            {name, trainSingleDevice(problem, deviceByName(name), o)});
    }

    // --- EQC over the 10-device evaluation ensemble, 3 repetitions
    // queued on one Runtime and fanned out across worker threads.
    RunningStats eqcFinalIdeal, eqcSpeed;
    EqcTrace eqcFirst;
    Runtime runtime;
    std::vector<JobHandle> eqcJobs;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        EqcOptions o;
        o.master.epochs = epochs;
        o.master.learningRate = kBenchLr;
        o.seed = seed;
        eqcJobs.push_back(
            runtime.submit(problem, evaluationEnsemble(), o));
    }
    runtime.runAll();
    for (std::size_t i = 0; i < eqcJobs.size(); ++i) {
        EqcTrace t = eqcJobs[i].take();
        eqcFinalIdeal.add(finalIdealEnergy(t, 20));
        eqcSpeed.add(t.epochsPerHour);
        if (i == 0)
            eqcFirst = std::move(t);
    }
    runs.insert(runs.begin() + 1,
                {"EQC", static_cast<TrainingTrace>(eqcFirst)});

    bench::heading("energy vs epoch (device estimates, every 10 epochs)");
    printSeries(runs, 10, epochs);

    bench::heading("summary (cf. paper Fig. 6 right + Sec. V-C; error "
                   "metric: ideal-eval of learned params, see "
                   "EXPERIMENTS.md)");
    std::printf("%-18s %7s %12s %11s %6s %10s %10s %9s %8s\n", "system",
                "epochs", "epochs/hour", "runtime(h)", "term?",
                "final(dev)", "final(idl)", "err(%)", "conv@");
    const double tol = 0.04 * std::fabs(idealSolution);
    for (const SystemRun &r : runs) {
        double fIdeal = finalIdealEnergy(r.trace, 20);
        std::printf(
            "%-18s %7zu %12.3f %11.1f %6s %10.3f %10.3f %8.3f%% %8d\n",
            r.label.c_str(), r.trace.epochs.size(),
            r.trace.epochsPerHour, r.trace.totalHours,
            r.trace.terminated ? "yes" : "no",
            finalEnergy(r.trace, 20), fIdeal,
            errorVsReference(fIdeal, idealSolution),
            convergenceEpoch(r.trace.idealEnergySeries(), idealSolution,
                             tol));
    }
    std::printf("\nEQC across 3 seeds: final ideal-eval energy %.3f +- "
                "%.3f a.u., speed %.2f +- %.2f epochs/hour\n",
                eqcFinalIdeal.mean(), eqcFinalIdeal.stddev(),
                eqcSpeed.mean(), eqcSpeed.stddev());

    // --- Speedups (paper: 10.5x average, up to 86x, at least 5.2x).
    bench::heading("EQC speedup over single machines");
    double eqcRate = eqcSpeed.mean();
    for (const SystemRun &r : runs) {
        if (r.label == "Ideal" || r.label == "EQC")
            continue;
        if (r.trace.epochsPerHour > 0.0) {
            std::printf("  vs %-18s %8.1fx\n", r.label.c_str(),
                        eqcRate / r.trace.epochsPerHour);
        }
    }

    bench::heading("EQC ensemble telemetry (seed 1)");
    std::printf("gradient staleness: mean %.2f updates, max %.0f "
                "(bounded delay D of the convergence proof)\n",
                eqcFirst.staleness.mean(), eqcFirst.staleness.max());
    std::printf("gradient jobs per device:\n");
    for (const auto &[name, jobs] : eqcFirst.jobsPerDevice)
        std::printf("  %-18s %6d\n", name.c_str(), jobs);
    return 0;
}
