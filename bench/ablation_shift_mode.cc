/**
 * @file
 * Ablation: whole-parameter shift (what the paper's client does) versus
 * exact per-occurrence shift for QAOA, where both parameters are shared
 * across several gates and the whole-parameter rule is only an
 * approximation of the true gradient.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "device/catalog.h"
#include "vqa/parameter_shift.h"
#include "vqa/problem.h"

int
main()
{
    using namespace eqc;
    bench::banner("Ablation: parameter-shift mode on shared QAOA "
                  "parameters");

    VqaProblem problem = makeRingMaxCutQaoa();

    bench::heading("gradient accuracy at random points (ideal backend)");
    Device ideal = makeIdealDevice(4);
    SimulatedQpu backend(ideal, 1);
    ExpectationEstimator est(problem.hamiltonian, problem.ansatz);
    auto compiled = est.compileFor(ideal.coupling);
    Rng rng(31);
    std::printf("%-10s %12s %12s %12s %12s\n", "point", "true-grad",
                "whole", "per-occ", "whole-err");
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<double> params = {rng.uniform(-1.5, 1.5),
                                      rng.uniform(-1.5, 1.5)};
        int i = trial % 2;
        double truth =
            idealGradient(problem.ansatz, problem.hamiltonian, params, i);
        GradientEstimate whole = gradientParamShift(
            est, backend, compiled, params, i, 0, 0.0, rng,
            ShotMode::Exact, ShiftMode::WholeParameter);
        GradientEstimate perOcc = gradientParamShift(
            est, backend, compiled, params, i, 0, 0.0, rng,
            ShotMode::Exact, ShiftMode::PerOccurrence);
        std::printf("theta%-5d %12.5f %12.5f %12.5f %12.5f\n", i, truth,
                    whole.gradient, perOcc.gradient,
                    std::abs(whole.gradient - truth));
    }

    bench::heading("end-to-end QAOA training under each mode "
                   "(8-device ensemble, 50 iterations)");
    const std::vector<const char *> names = {
        "ibmq_belem",  "ibmq_bogota", "ibmq_casablanca", "ibmq_lima",
        "ibmq_manila", "ibmq_quito",  "ibmq_santiago",   "ibmq_toronto"};
    std::vector<Device> ensemble;
    for (const char *n : names)
        ensemble.push_back(deviceByName(n));
    Runtime runtime;
    for (ShiftMode mode :
         {ShiftMode::WholeParameter, ShiftMode::PerOccurrence}) {
        EqcOptions o;
        o.master.epochs = 50;
        o.client.shiftMode = mode;
        o.seed = 1;
        EqcTrace t = runtime.submit(problem, ensemble, o).take();
        std::printf("%-16s final-cost/edge %8.4f  iters/hour %8.2f\n",
                    mode == ShiftMode::WholeParameter ? "whole-param"
                                                      : "per-occurrence",
                    finalEnergy(t, 10) / 4.0, t.epochsPerHour);
    }
    std::printf("\n(Per-occurrence costs 4x the circuits per gradient "
                "on this ansatz but\nfollows the exact gradient; "
                "whole-parameter is the paper's client rule.)\n");
    return 0;
}
