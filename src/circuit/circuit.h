/**
 * @file
 * Circuit intermediate representation.
 *
 * A QuantumCircuit is a list of GateOps over a fixed qubit count and a
 * parameter table theta[0..numParams). Rotation angles are affine
 * expressions `scale * theta[index] + offset`, which lets the transpiler
 * rewrite parameterized gates (e.g. RY(theta) into RZ/SX sequences) while
 * keeping the circuit symbolically parameterized — client nodes transpile
 * once per device and re-bind angles on every iteration for free.
 */

#ifndef EQC_CIRCUIT_CIRCUIT_H
#define EQC_CIRCUIT_CIRCUIT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "quantum/gates.h"
#include "quantum/statevector.h"

namespace eqc {

/** Affine angle expression: scale * theta[index] + offset. */
struct ParamExpr
{
    /** Parameter-table index; -1 means a constant angle. */
    int index = -1;
    double scale = 1.0;
    double offset = 0.0;

    /** A constant angle. */
    static ParamExpr constant(double value);

    /** A symbolic angle scale*theta[idx]+offset. */
    static ParamExpr symbol(int idx, double scale = 1.0,
                            double offset = 0.0);

    /** true when the expression references the parameter table. */
    bool isSymbolic() const { return index >= 0; }

    /** Evaluate against a bound parameter vector. */
    double evaluate(const std::vector<double> &params) const;
};

/** One gate instance in a circuit. */
struct GateOp
{
    GateType type = GateType::ID;
    /** Target qubits; entry 1 unused for 1q gates. */
    std::array<int, 2> qubits = {-1, -1};
    /** Rotation angles, length gateParamCount(type). */
    std::vector<ParamExpr> params;

    /** Number of qubits this op touches. */
    int arity() const { return gateArity(type); }
};

/** Gate census of a circuit; the inputs G1/G2/M of the Eq. 2 model. */
struct GateCounts
{
    int g1 = 0;       ///< physical single-qubit gates (excludes RZ/barrier)
    int g2 = 0;       ///< two-qubit gates
    int rz = 0;       ///< virtual RZ count (zero cost on IBMQ)
    int measurements = 0;
    int swaps = 0;    ///< SWAPs present before decomposition
};

/** A parameterized quantum circuit. */
class QuantumCircuit
{
  public:
    QuantumCircuit() = default;

    /**
     * @param numQubits width of the circuit
     * @param numParams size of the symbolic parameter table
     */
    explicit QuantumCircuit(int numQubits, int numParams = 0);

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    const std::vector<GateOp> &ops() const { return ops_; }

    /** Append an arbitrary gate. */
    void addGate(GateType type, std::vector<int> qubits,
                 std::vector<ParamExpr> params = {});

    /// @name Builder shorthands
    /// @{
    void id(int q) { addGate(GateType::ID, {q}); }
    void x(int q) { addGate(GateType::X, {q}); }
    void y(int q) { addGate(GateType::Y, {q}); }
    void z(int q) { addGate(GateType::Z, {q}); }
    void h(int q) { addGate(GateType::H, {q}); }
    void s(int q) { addGate(GateType::S, {q}); }
    void sdg(int q) { addGate(GateType::SDG, {q}); }
    void sx(int q) { addGate(GateType::SX, {q}); }
    void rx(int q, ParamExpr a) { addGate(GateType::RX, {q}, {a}); }
    void ry(int q, ParamExpr a) { addGate(GateType::RY, {q}, {a}); }
    void rz(int q, ParamExpr a) { addGate(GateType::RZ, {q}, {a}); }
    void cx(int c, int t) { addGate(GateType::CX, {c, t}); }
    void cz(int a, int b) { addGate(GateType::CZ, {a, b}); }
    void swap(int a, int b) { addGate(GateType::SWAP, {a, b}); }
    void rzz(int a, int b, ParamExpr p)
    {
        addGate(GateType::RZZ, {a, b}, {p});
    }
    void measure(int q) { addGate(GateType::MEASURE, {q}); }
    void barrier();
    /// @}

    /** Measure every qubit. */
    void measureAll();

    /** Append all ops of @p other (same width; params share the table). */
    void append(const QuantumCircuit &other);

    /** Gate census. */
    GateCounts counts() const;

    /** Circuit depth in layers (excluding barriers). */
    int depth() const;

    /**
     * Critical depth: depth over physical (non-virtual, non-measure)
     * gates only — the CD input of the Eq. 2 quality model.
     */
    int criticalDepth() const;

    /** Indices of ops whose angle references parameter @p paramIndex. */
    std::vector<std::size_t> paramOccurrences(int paramIndex) const;

    /** Qubits touched by at least one op, ascending. */
    std::vector<int> usedQubits() const;

    /**
     * Rewrite qubit indices through @p mapping (old index -> new index)
     * onto a circuit of width @p newNumQubits. Entries must be valid for
     * every used qubit.
     */
    QuantumCircuit remapQubits(const std::vector<int> &mapping,
                               int newNumQubits) const;

    /** Human-readable multi-line dump (for debugging and examples). */
    std::string toString() const;

  private:
    int numQubits_ = 0;
    int numParams_ = 0;
    std::vector<GateOp> ops_;
};

/**
 * Run a circuit on the ideal state-vector simulator.
 * MEASURE and BARRIER ops are skipped (measurement is handled by the
 * caller via Statevector::probabilities / sample).
 *
 * @param circuit circuit to execute
 * @param params bound values for the parameter table
 */
Statevector simulateIdeal(const QuantumCircuit &circuit,
                          const std::vector<double> &params = {});

} // namespace eqc

#endif // EQC_CIRCUIT_CIRCUIT_H
