#include "circuit/ansatz.h"

#include "common/logging.h"

namespace eqc {

QuantumCircuit
hardwareEfficientAnsatz(int numQubits)
{
    if (numQubits < 2)
        fatal("hardwareEfficientAnsatz: need at least 2 qubits");
    QuantumCircuit c(numQubits, 4 * numQubits);
    for (int q = 0; q < numQubits; ++q)
        c.ry(q, ParamExpr::symbol(q));
    for (int q = 0; q < numQubits; ++q)
        c.rz(q, ParamExpr::symbol(numQubits + q));
    for (int q = 0; q + 1 < numQubits; ++q)
        c.cx(q, q + 1);
    for (int q = 0; q < numQubits; ++q)
        c.ry(q, ParamExpr::symbol(2 * numQubits + q));
    for (int q = 0; q < numQubits; ++q)
        c.rz(q, ParamExpr::symbol(3 * numQubits + q));
    c.measureAll();
    return c;
}

QuantumCircuit
qaoaAnsatz(int numQubits, const std::vector<std::pair<int, int>> &edges,
           int layers)
{
    if (layers < 1)
        fatal("qaoaAnsatz: need at least one layer");
    QuantumCircuit c(numQubits, 2 * layers);
    for (int q = 0; q < numQubits; ++q)
        c.h(q);
    for (int l = 0; l < layers; ++l) {
        int beta = 2 * l;
        int alpha = 2 * l + 1;
        for (const auto &[i, j] : edges)
            c.rzz(i, j, ParamExpr::symbol(beta));
        for (int q = 0; q < numQubits; ++q)
            c.rx(q, ParamExpr::symbol(alpha));
    }
    c.measureAll();
    return c;
}

QuantumCircuit
ghzCircuit(int numQubits)
{
    QuantumCircuit c(numQubits, 0);
    c.h(0);
    for (int q = 0; q + 1 < numQubits; ++q)
        c.cx(q, q + 1);
    c.measureAll();
    return c;
}

} // namespace eqc
