/**
 * @file
 * Ansatz library: the three circuit families used in the paper's
 * evaluation — the hardware-efficient VQE ansatz (Fig. 8), the QAOA
 * MaxCut ansatz (Fig. 10), and the GHZ validation circuit (Fig. 4).
 */

#ifndef EQC_CIRCUIT_ANSATZ_H
#define EQC_CIRCUIT_ANSATZ_H

#include <utility>
#include <vector>

#include "circuit/circuit.h"

namespace eqc {

/**
 * Hardware-efficient ansatz of Fig. 8: a full-Bloch-sphere rotation layer
 * (RY then RZ on every qubit), a linear CNOT entangling chain, a second
 * RY+RZ layer, then measurement of every qubit. Parameter count is
 * 4 * numQubits (16 for the paper's 4-qubit experiments).
 *
 * Parameter table layout: [RY layer 0 | RZ layer 0 | RY layer 1 |
 * RZ layer 1], each block indexed by qubit.
 */
QuantumCircuit hardwareEfficientAnsatz(int numQubits);

/**
 * QAOA ansatz of Fig. 10 for a MaxCut instance: Hadamards on all qubits,
 * then for each of the @p layers rounds one ZZ interaction per edge
 * (parameter beta_l) followed by RX mixers on every qubit (parameter
 * alpha_l), then measurement. Parameter count is 2 * layers; the paper
 * uses layers = 1 (2 parameters).
 *
 * @param numQubits one qubit per graph node
 * @param edges undirected edge list of the MaxCut graph
 * @param layers number of QAOA rounds (p)
 */
QuantumCircuit qaoaAnsatz(int numQubits,
                          const std::vector<std::pair<int, int>> &edges,
                          int layers = 1);

/** N-qubit GHZ preparation (H + CX chain) with full measurement. */
QuantumCircuit ghzCircuit(int numQubits);

} // namespace eqc

#endif // EQC_CIRCUIT_ANSATZ_H
