#include "circuit/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace eqc {

ParamExpr
ParamExpr::constant(double value)
{
    ParamExpr e;
    e.index = -1;
    e.scale = 0.0;
    e.offset = value;
    return e;
}

ParamExpr
ParamExpr::symbol(int idx, double scale, double offset)
{
    if (idx < 0)
        panic("ParamExpr::symbol: negative parameter index");
    ParamExpr e;
    e.index = idx;
    e.scale = scale;
    e.offset = offset;
    return e;
}

double
ParamExpr::evaluate(const std::vector<double> &params) const
{
    if (index < 0)
        return offset;
    if (index >= static_cast<int>(params.size()))
        panic("ParamExpr::evaluate: parameter index out of range");
    return scale * params[index] + offset;
}

QuantumCircuit::QuantumCircuit(int numQubits, int numParams)
    : numQubits_(numQubits), numParams_(numParams)
{
    if (numQubits < 1)
        fatal("QuantumCircuit: need at least one qubit");
    if (numParams < 0)
        fatal("QuantumCircuit: negative parameter count");
}

void
QuantumCircuit::addGate(GateType type, std::vector<int> qubits,
                        std::vector<ParamExpr> params)
{
    int arity = gateArity(type);
    if (static_cast<int>(qubits.size()) != arity)
        panic("QuantumCircuit::addGate: wrong qubit count for " +
              gateName(type));
    if (static_cast<int>(params.size()) != gateParamCount(type))
        panic("QuantumCircuit::addGate: wrong param count for " +
              gateName(type));
    GateOp op;
    op.type = type;
    for (int i = 0; i < arity; ++i) {
        if (qubits[i] < 0 || qubits[i] >= numQubits_)
            panic("QuantumCircuit::addGate: qubit index out of range");
        op.qubits[i] = qubits[i];
    }
    if (arity == 2 && qubits[0] == qubits[1])
        panic("QuantumCircuit::addGate: duplicate qubit operand");
    for (const ParamExpr &p : params)
        if (p.index >= numParams_)
            panic("QuantumCircuit::addGate: parameter index exceeds table");
    op.params = std::move(params);
    ops_.push_back(std::move(op));
}

void
QuantumCircuit::barrier()
{
    GateOp op;
    op.type = GateType::BARRIER;
    op.qubits = {0, -1};
    ops_.push_back(op);
}

void
QuantumCircuit::measureAll()
{
    for (int q = 0; q < numQubits_; ++q)
        measure(q);
}

void
QuantumCircuit::append(const QuantumCircuit &other)
{
    if (other.numQubits_ != numQubits_)
        panic("QuantumCircuit::append: width mismatch");
    if (other.numParams_ > numParams_)
        panic("QuantumCircuit::append: parameter table too small");
    for (const GateOp &op : other.ops_)
        ops_.push_back(op);
}

GateCounts
QuantumCircuit::counts() const
{
    GateCounts c;
    for (const GateOp &op : ops_) {
        switch (op.type) {
          case GateType::MEASURE:
            ++c.measurements;
            break;
          case GateType::BARRIER:
            break;
          case GateType::RZ:
            ++c.rz;
            break;
          case GateType::SWAP:
            ++c.swaps;
            ++c.g2;
            break;
          default:
            if (op.arity() == 2)
                ++c.g2;
            else
                ++c.g1;
        }
    }
    return c;
}

namespace {

int
layeredDepth(const std::vector<GateOp> &ops, int numQubits,
             bool physicalOnly)
{
    std::vector<int> level(numQubits, 0);
    int maxLevel = 0;
    for (const GateOp &op : ops) {
        if (op.type == GateType::BARRIER) {
            // Barriers synchronize all qubits.
            int m = *std::max_element(level.begin(), level.end());
            std::fill(level.begin(), level.end(), m);
            continue;
        }
        bool counts = true;
        if (physicalOnly &&
            (isVirtualGate(op.type) || op.type == GateType::MEASURE)) {
            counts = false;
        }
        int start = level[op.qubits[0]];
        if (op.arity() == 2)
            start = std::max(start, level[op.qubits[1]]);
        int end = start + (counts ? 1 : 0);
        level[op.qubits[0]] = end;
        if (op.arity() == 2)
            level[op.qubits[1]] = end;
        maxLevel = std::max(maxLevel, end);
    }
    return maxLevel;
}

} // namespace

int
QuantumCircuit::depth() const
{
    return layeredDepth(ops_, numQubits_, false);
}

int
QuantumCircuit::criticalDepth() const
{
    return layeredDepth(ops_, numQubits_, true);
}

std::vector<std::size_t>
QuantumCircuit::paramOccurrences(int paramIndex) const
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ops_.size(); ++i)
        for (const ParamExpr &p : ops_[i].params)
            if (p.index == paramIndex) {
                idx.push_back(i);
                break;
            }
    return idx;
}

std::vector<int>
QuantumCircuit::usedQubits() const
{
    std::set<int> used;
    for (const GateOp &op : ops_) {
        if (op.type == GateType::BARRIER)
            continue;
        used.insert(op.qubits[0]);
        if (op.arity() == 2)
            used.insert(op.qubits[1]);
    }
    return {used.begin(), used.end()};
}

QuantumCircuit
QuantumCircuit::remapQubits(const std::vector<int> &mapping,
                            int newNumQubits) const
{
    QuantumCircuit out(newNumQubits, numParams_);
    for (const GateOp &op : ops_) {
        if (op.type == GateType::BARRIER) {
            out.barrier();
            continue;
        }
        GateOp mapped = op;
        for (int i = 0; i < op.arity(); ++i) {
            int q = op.qubits[i];
            if (q < 0 || q >= static_cast<int>(mapping.size()) ||
                mapping[q] < 0 || mapping[q] >= newNumQubits) {
                panic("QuantumCircuit::remapQubits: invalid mapping");
            }
            mapped.qubits[i] = mapping[q];
        }
        out.ops_.push_back(std::move(mapped));
    }
    return out;
}

std::string
QuantumCircuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << numParams_
       << " params, " << ops_.size() << " ops)\n";
    for (const GateOp &op : ops_) {
        os << "  " << gateName(op.type) << " q" << op.qubits[0];
        if (op.arity() == 2)
            os << ", q" << op.qubits[1];
        for (const ParamExpr &p : op.params) {
            if (p.isSymbolic()) {
                os << " [" << p.scale << "*t" << p.index;
                if (p.offset != 0.0)
                    os << (p.offset > 0 ? "+" : "") << p.offset;
                os << "]";
            } else {
                os << " [" << p.offset << "]";
            }
        }
        os << "\n";
    }
    return os.str();
}

Statevector
simulateIdeal(const QuantumCircuit &circuit,
              const std::vector<double> &params)
{
    Statevector sv(circuit.numQubits());
    for (const GateOp &op : circuit.ops()) {
        if (op.type == GateType::MEASURE || op.type == GateType::BARRIER ||
            op.type == GateType::ID) {
            continue;
        }
        std::vector<double> angles;
        angles.reserve(op.params.size());
        for (const ParamExpr &p : op.params)
            angles.push_back(p.evaluate(params));
        std::vector<int> qubits(op.qubits.begin(),
                                op.qubits.begin() + op.arity());
        sv.applyGate(gateMatrix(op.type, angles), qubits);
    }
    return sv;
}

} // namespace eqc
