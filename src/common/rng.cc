#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eqc {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

uint64_t
hashLabel(const std::string &label)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

Rng::Rng(uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng
Rng::fork(const std::string &label) const
{
    return fork(hashLabel(label));
}

Rng
Rng::fork(uint64_t label) const
{
    return Rng(splitmix64(seed_ ^ splitmix64(label)));
}

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double
Rng::exponentialMean(double mean)
{
    if (mean <= 0.0)
        return 0.0;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

int
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    return std::poisson_distribution<int>(mean)(engine_);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return std::bernoulli_distribution(p)(engine_);
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += std::max(0.0, w);
    if (total <= 0.0)
        panic("Rng::discrete: weight vector has no positive entry");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += std::max(0.0, weights[i]);
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<uint64_t>
Rng::multinomial(const std::vector<double> &probs, uint64_t shots)
{
    // Cumulative-distribution inversion with binary search per shot.
    std::vector<double> cdf(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += std::max(0.0, probs[i]);
        cdf[i] = acc;
    }
    std::vector<uint64_t> counts(probs.size(), 0);
    if (acc <= 0.0)
        panic("Rng::multinomial: probabilities sum to zero");
    for (uint64_t s = 0; s < shots; ++s) {
        double r = uniform() * acc;
        auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        std::size_t idx = std::min<std::size_t>(
            static_cast<std::size_t>(it - cdf.begin()), probs.size() - 1);
        ++counts[idx];
    }
    return counts;
}

} // namespace eqc
