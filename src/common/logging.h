/**
 * @file
 * Lightweight status/error reporting, modelled on gem5's logging.hh.
 *
 * inform() / warn() print status messages; fatal() reports unrecoverable
 * user-level errors (bad configuration) and exits; panic() reports internal
 * invariant violations (library bugs) and aborts.
 */

#ifndef EQC_COMMON_LOGGING_H
#define EQC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace eqc {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity; messages above the level are suppressed. */
void setLogLevel(LogLevel level);

/** @return the current global verbosity. */
LogLevel logLevel();

namespace detail {
/** Emit one formatted log line to stderr if @p level is enabled. */
void emit(LogLevel level, const std::string &tag, const std::string &msg);
} // namespace detail

/** Informative message for normal operation; never indicates a problem. */
inline void
inform(const std::string &msg)
{
    detail::emit(LogLevel::Inform, "info", msg);
}

/** Something looks suspicious but execution can continue. */
inline void
warn(const std::string &msg)
{
    detail::emit(LogLevel::Warn, "warn", msg);
}

/** Debug chatter, disabled by default. */
inline void
debug(const std::string &msg)
{
    detail::emit(LogLevel::Debug, "debug", msg);
}

/**
 * Unrecoverable error caused by the caller (invalid arguments or
 * configuration). Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Internal invariant violation: an EQC bug, not a user error.
 * Prints the message and aborts (so a core/backtrace is produced).
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace eqc

#endif // EQC_COMMON_LOGGING_H
