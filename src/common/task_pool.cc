#include "common/task_pool.h"

#include <algorithm>
#include <cstdlib>

namespace eqc {

namespace {

/**
 * Set while a thread is inside a parallelFor submission (any pool).
 * A nested call from such a thread must not touch submitMu_ at all:
 * try_lock on a mutex the thread itself holds is undefined behavior.
 */
thread_local bool tlsInParallelRegion = false;

int
sharedThreadCount()
{
    if (const char *env = std::getenv("EQC_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return std::min(n, 256);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

} // namespace

TaskPool::TaskPool(int threads) : threads_(std::max(threads, 1))
{
    workers_.reserve(threads_ - 1);
    for (int i = 0; i < threads_ - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
TaskPool::runChunks()
{
    for (;;) {
        uint64_t begin, count;
        const std::function<void(uint64_t, uint64_t)> *body;
        int part;
        {
            // Claim a chunk and snapshot the job geometry under the same
            // lock: begin_/end_/body_ are stable while chunks remain.
            std::lock_guard<std::mutex> lk(mu_);
            if (chunksLeft_ == 0)
                return;
            part = --chunksLeft_;
            begin = begin_;
            count = end_ - begin_;
            body = body_;
        }
        // Balanced contiguous chunks: the first `rem` parts get one
        // extra element.
        const uint64_t chunk = count / static_cast<uint64_t>(threads_);
        const uint64_t rem = count % static_cast<uint64_t>(threads_);
        const uint64_t p = static_cast<uint64_t>(part);
        const uint64_t lo = begin + p * chunk + std::min<uint64_t>(p, rem);
        const uint64_t hi = lo + chunk + (p < rem ? 1 : 0);
        if (lo < hi) {
            if (activeWorkers_)
                activeWorkers_->add(1.0);
            (*body)(lo, hi);
            if (activeWorkers_)
                activeWorkers_->add(-1.0);
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
TaskPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [&] {
                return stop_ || (jobSeq_ != seen && chunksLeft_ > 0) ||
                       !asyncJobs_.empty();
            });
            if (stop_)
                return;
            if (jobSeq_ != seen && chunksLeft_ > 0) {
                // Chunk work first: parallel-for callers are blocked
                // on it, async submitters are not.
                seen = jobSeq_;
            } else {
                AsyncJob aj = std::move(asyncJobs_.front());
                asyncJobs_.pop_front();
                ++asyncActive_;
                if (asyncWaitS_)
                    asyncWaitS_->observe(
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            aj.enqueued)
                            .count());
                job = std::move(aj.fn);
            }
        }
        if (job) {
            if (activeWorkers_)
                activeWorkers_->add(1.0);
            job();
            if (activeWorkers_)
                activeWorkers_->add(-1.0);
            std::lock_guard<std::mutex> lk(mu_);
            if (--asyncActive_ == 0 && asyncJobs_.empty())
                asyncCv_.notify_all();
            continue;
        }
        runChunks();
    }
}

void
TaskPool::async(std::function<void()> job)
{
    if (ctrAsync_)
        ++*ctrAsync_;
    if (workers_.empty()) {
        if (asyncWaitS_)
            asyncWaitS_->observe(0.0);
        job();
        return;
    }
    AsyncJob aj;
    aj.fn = std::move(job);
    if (asyncWaitS_)
        aj.enqueued = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lk(mu_);
        asyncJobs_.push_back(std::move(aj));
    }
    workCv_.notify_one();
}

void
TaskPool::drainAsync()
{
    std::unique_lock<std::mutex> lk(mu_);
    asyncCv_.wait(lk,
                  [&] { return asyncJobs_.empty() && asyncActive_ == 0; });
}

void
TaskPool::submitRange(uint64_t begin, uint64_t end,
                      const std::function<void(uint64_t, uint64_t)> &body)
{
    // One job in flight at a time; a busy pool degrades gracefully to
    // inline execution.
    std::unique_lock<std::mutex> submit(submitMu_, std::try_to_lock);
    if (!submit.owns_lock()) {
        if (ctrInline_)
            ++*ctrInline_;
        body(begin, end);
        return;
    }
    if (ctrParallel_)
        ++*ctrParallel_;
    struct RegionGuard
    {
        RegionGuard() { tlsInParallelRegion = true; }
        ~RegionGuard() { tlsInParallelRegion = false; }
    } region;
    {
        std::lock_guard<std::mutex> lk(mu_);
        body_ = &body;
        begin_ = begin;
        end_ = end;
        chunksLeft_ = threads_;
        pending_ = threads_;
        ++jobSeq_;
    }
    workCv_.notify_all();
    runChunks();
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [&] { return pending_ == 0; });
    body_ = nullptr;
}

void
TaskPool::parallelFor(uint64_t begin, uint64_t end,
                      const std::function<void(uint64_t, uint64_t)> &body)
{
    if (begin >= end)
        return;
    const uint64_t count = end - begin;
    if (workers_.empty() || count < static_cast<uint64_t>(threads_) ||
        tlsInParallelRegion) {
        // Too small, no workers, or a recursive call from inside a
        // submission on this thread: run inline (never re-probe a
        // submit mutex this thread may already hold).
        if (ctrInline_)
            ++*ctrInline_;
        body(begin, end);
        return;
    }
    submitRange(begin, end, body);
}

void
TaskPool::parallelJobs(uint64_t count,
                       const std::function<void(uint64_t, uint64_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count < 2 || tlsInParallelRegion) {
        if (ctrInline_)
            ++*ctrInline_;
        body(0, count);
        return;
    }
    // Coarse jobs: worth fanning out even below the participant count
    // (runChunks hands empty chunks to surplus participants).
    submitRange(0, count, body);
}

TaskPool &
TaskPool::shared()
{
    static TaskPool pool(sharedThreadCount());
    return pool;
}

void
TaskPool::instrument(obs::MetricsRegistry &m)
{
    ctrParallel_ = m.counter("eqc_pool_parallel_total",
                             "Parallel-for fan-outs submitted");
    ctrInline_ = m.counter("eqc_pool_inline_total",
                           "Parallel calls degraded to inline runs");
    ctrAsync_ = m.counter("eqc_pool_async_total",
                          "Async jobs submitted");
    asyncWaitS_ = m.histogram(
        "eqc_pool_async_wait_seconds",
        {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0},
        "Async queue wait, enqueue to first execution");
    activeWorkers_ = m.gauge("eqc_pool_active_workers",
                             "Participants executing work right now");
}

} // namespace eqc
