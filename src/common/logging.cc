#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace eqc {

namespace {
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const std::string &tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    std::fprintf(stderr, "[eqc:%s] %s\n", tag.c_str(), msg.c_str());
}

} // namespace detail

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[eqc:fatal] %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[eqc:panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace eqc
