#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace eqc {

namespace stats {

Percentiles::Percentiles(std::size_t capacity, uint64_t seed)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      rngState_(splitmix64(seed))
{
    sample_.reserve(capacity_);
}

void
Percentiles::add(double x)
{
    ++n_;
    if (sample_.size() < capacity_) {
        sample_.push_back(x);
        return;
    }
    // Algorithm R: replace a uniformly random slot with probability
    // capacity / n, keeping the reservoir a uniform sample.
    rngState_ = splitmix64(rngState_);
    std::size_t j = static_cast<std::size_t>(rngState_ % n_);
    if (j < capacity_)
        sample_[j] = x;
}

void
Percentiles::merge(const Percentiles &other)
{
    if (other.n_ == 0)
        return;
    if (sample_.size() + other.sample_.size() <= capacity_) {
        sample_.insert(sample_.end(), other.sample_.begin(),
                       other.sample_.end());
        n_ += other.n_;
        return;
    }
    // Weighted draw without replacement: each reservoir slot stands
    // for count()/sampleSize() observations of its own stream, so a
    // side is picked with probability proportional to the stream mass
    // its unconsumed slots still represent.
    std::vector<double> a = std::move(sample_);
    std::vector<double> b = other.sample_;
    const double wa =
        a.empty() ? 0.0
                  : static_cast<double>(n_) / static_cast<double>(a.size());
    const double wb =
        static_cast<double>(other.n_) / static_cast<double>(b.size());
    double remA = wa * static_cast<double>(a.size());
    double remB = wb * static_cast<double>(b.size());
    std::size_t ia = 0, ib = 0; // consumed prefixes (after swaps)
    sample_.clear();
    while (sample_.size() < capacity_ &&
           (ia < a.size() || ib < b.size())) {
        rngState_ = splitmix64(rngState_);
        const double u =
            static_cast<double>(rngState_ >> 11) * 0x1.0p-53;
        std::vector<double> *side;
        std::size_t *idx;
        if (ib >= b.size() ||
            (ia < a.size() && u * (remA + remB) < remA)) {
            side = &a;
            idx = &ia;
            remA -= wa;
        } else {
            side = &b;
            idx = &ib;
            remB -= wb;
        }
        // Uniform unconsumed slot of the chosen side, so the kept
        // subset is order-free within each reservoir.
        rngState_ = splitmix64(rngState_);
        const std::size_t j =
            *idx + static_cast<std::size_t>(
                       rngState_ % (side->size() - *idx));
        std::swap((*side)[*idx], (*side)[j]);
        sample_.push_back((*side)[(*idx)++]);
    }
    n_ += other.n_;
}

double
Percentiles::quantile(double q) const
{
    if (sample_.empty())
        return 0.0;
    std::vector<double> sorted(sample_);
    std::sort(sorted.begin(), sorted.end());
    q = std::min(std::max(q, 0.0), 1.0);
    double pos = q * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace stats

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("pearson: series lengths differ");
    std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
pearsonPValue(double r, std::size_t n)
{
    if (n < 3)
        return 1.0;
    double df = static_cast<double>(n - 2);
    double denom = 1.0 - r * r;
    if (denom <= 0.0)
        return 0.0;
    double t = std::fabs(r) * std::sqrt(df / denom);
    // Normal-tail approximation of the t distribution.
    double z = t;
    double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
    return 2.0 * tail;
}

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("linearFit: series lengths differ");
    LinearFit fit;
    std::size_t n = xs.size();
    if (n < 2)
        return fit;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0)
        return fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy > 0.0) {
        double ssRes = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double pred = fit.slope * xs[i] + fit.intercept;
            ssRes += (ys[i] - pred) * (ys[i] - pred);
        }
        fit.r2 = 1.0 - ssRes / syy;
    }
    return fit;
}

} // namespace eqc
