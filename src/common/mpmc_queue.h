/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer queue.
 *
 * The classic Vyukov design: a power-of-two ring of cells, each
 * carrying a sequence counter that encodes whose turn the cell is.
 * Producers claim a cell by CAS on the enqueue cursor and stamp it
 * full; consumers claim by CAS on the dequeue cursor and stamp it
 * empty for the ring's next lap. Both operations are wait-free in the
 * absence of contention and lock-free under it — no mutex, no
 * allocation after construction.
 *
 * The serving layer uses this as the ServiceNode intake ring: any
 * number of submitting threads tryPush submission slots, and the
 * node's own event-loop thread drains them (see
 * ServiceNode::postSubmit). A full ring makes tryPush return false —
 * callers treat that as backpressure, exactly like an admission
 * rejection, rather than blocking inside the queue.
 */

#ifndef EQC_COMMON_MPMC_QUEUE_H
#define EQC_COMMON_MPMC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <vector>

namespace eqc {

template <typename T> class MpmcQueue
{
  public:
    /** @param capacity ring size; rounded up to a power of two. */
    explicit MpmcQueue(std::size_t capacity = 1024)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        cells_ = std::vector<Cell>(cap);
        mask_ = cap - 1;
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /** Enqueue @p v; false when the ring is full (backpressure). */
    bool
    tryPush(T v)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = std::move(v);
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // the ring is a full lap behind
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeue into @p out; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = std::move(cell.value);
                    cell.seq.store(pos + mask_ + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // nothing enqueued at this cursor yet
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Approximate emptiness from the consumer side. Exact once all
     * producers are quiescent (the barrier-drain use case).
     */
    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;
    /** Pad the cursors apart so producers and consumers do not false-
     *  share one cache line. */
    alignas(64) std::atomic<std::size_t> tail_{0}; // producers
    alignas(64) std::atomic<std::size_t> head_{0}; // consumers
};

} // namespace eqc

#endif // EQC_COMMON_MPMC_QUEUE_H
