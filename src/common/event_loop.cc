#include "common/event_loop.h"

#include <thread>

namespace eqc {

SteadyClock::SteadyClock(double secondsPerHour)
    : secondsPerHour_(secondsPerHour > 0.0 ? secondsPerHour : 1.0),
      anchor_(std::chrono::steady_clock::now())
{
}

double
SteadyClock::nowH() const
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - anchor_;
    return elapsed.count() / secondsPerHour_;
}

void
SteadyClock::advanceTo(double tH)
{
    const auto deadline =
        anchor_ + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(tH * secondsPerHour_));
    if (deadline > std::chrono::steady_clock::now())
        std::this_thread::sleep_until(deadline);
}

void
EventLoop::schedule(double delayH, Handler fn)
{
    scheduleAt(now() + (delayH > 0.0 ? delayH : 0.0), std::move(fn));
}

void
EventLoop::scheduleAt(double timeH, Handler fn)
{
    const double nowH = now();
    if (timeH < nowH)
        timeH = nowH;
    queue_.push(Event{timeH, nextSeq_++, std::move(fn)});
}

void
EventLoop::fireTop()
{
    // Move the handler out before popping mutates the heap, and pop
    // before firing: the handler may schedule (or run) further events.
    Event e = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    clock_.advanceTo(e.time);
    ++processed_;
    e.fn();
}

void
EventLoop::run()
{
    while (!queue_.empty())
        fireTop();
}

void
EventLoop::runUntil(double limitH)
{
    while (!queue_.empty() && queue_.top().time <= limitH)
        fireTop();
    if (queue_.empty())
        clock_.advanceTo(limitH);
}

} // namespace eqc
