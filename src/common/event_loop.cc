#include "common/event_loop.h"

#include <thread>

namespace eqc {

SteadyClock::SteadyClock(double secondsPerHour)
    : secondsPerHour_(secondsPerHour > 0.0 ? secondsPerHour : 1.0),
      anchor_(std::chrono::steady_clock::now())
{
}

double
SteadyClock::nowH() const
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - anchor_;
    return elapsed.count() / secondsPerHour_;
}

void
SteadyClock::advanceTo(double tH)
{
    const auto deadline =
        anchor_ + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(tH * secondsPerHour_));
    if (deadline > std::chrono::steady_clock::now())
        std::this_thread::sleep_until(deadline);
}

uint64_t
EventLoop::schedule(double delayH, Handler fn)
{
    return scheduleAt(now() + (delayH > 0.0 ? delayH : 0.0),
                      std::move(fn));
}

uint64_t
EventLoop::scheduleAt(double timeH, Handler fn)
{
    const double nowH = now();
    if (timeH < nowH)
        timeH = nowH;
    const uint64_t id = nextSeq_++;
    queue_.push(Event{timeH, id, std::move(fn)});
    liveIds_.insert(id);
    return id;
}

bool
EventLoop::cancel(uint64_t id)
{
    if (liveIds_.erase(id) == 0)
        return false; // unknown, already fired, or already cancelled
    cancelled_.insert(id);
    return true;
}

void
EventLoop::fireTop()
{
    // Move the handler out before popping mutates the heap, and pop
    // before firing: the handler may schedule (or run) further events.
    Event e = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    liveIds_.erase(e.seq);
    clock_.advanceTo(e.time);
    ++processed_;
    e.fn();
}

void
EventLoop::purgeCancelledTop()
{
    // Discard cancelled events sitting at the head WITHOUT advancing
    // the clock: a cancelled far-future deadline must never drag model
    // time forward (or sleep, under a wall clock).
    while (!queue_.empty() && cancelled_.erase(queue_.top().seq) > 0)
        queue_.pop();
}

void
EventLoop::drainCancelled()
{
    // Live events are gone; whatever remains queued is cancelled husks.
    while (!queue_.empty())
        queue_.pop();
    cancelled_.clear();
}

void
EventLoop::run()
{
    while (!liveIds_.empty()) {
        if (stopRequested_.exchange(false))
            return;
        purgeCancelledTop();
        fireTop();
    }
    drainCancelled();
}

void
EventLoop::runUntil(double limitH)
{
    purgeCancelledTop();
    while (!liveIds_.empty() && queue_.top().time <= limitH) {
        if (stopRequested_.exchange(false))
            return;
        fireTop();
        purgeCancelledTop();
    }
    if (liveIds_.empty()) {
        drainCancelled();
        clock_.advanceTo(limitH);
    }
}

} // namespace eqc
