/**
 * @file
 * Small statistics toolkit: running moments, Pearson correlation and
 * ordinary-least-squares linear regression (used to reproduce the Fig. 4
 * model-validation numbers: R^2, Pearson r, fitted line).
 */

#ifndef EQC_COMMON_STATS_H
#define EQC_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace eqc {

/** Welford running mean/variance accumulator. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with <2 observations). */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation seen (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Result of an ordinary-least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation (0 with <2 elements). */
double stddev(const std::vector<double> &xs);

/**
 * Pearson correlation coefficient between two equal-length series.
 * @return value in [-1, 1]; 0 when either series is constant.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Two-tailed p-value for a Pearson correlation of @p r over @p n samples,
 * from the t-statistic with a normal tail approximation (adequate for the
 * n ~ 30+ sample sizes used in the Fig. 4 reproduction).
 */
double pearsonPValue(double r, std::size_t n);

/** Least-squares fit of ys against xs. */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace eqc

#endif // EQC_COMMON_STATS_H
