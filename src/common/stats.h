/**
 * @file
 * Small statistics toolkit: running moments, Pearson correlation and
 * ordinary-least-squares linear regression (used to reproduce the Fig. 4
 * model-validation numbers: R^2, Pearson r, fitted line).
 */

#ifndef EQC_COMMON_STATS_H
#define EQC_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eqc {

/** Welford running mean/variance accumulator. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with <2 observations). */
    double variance() const;

    /** Square root of variance(). */
    double stddev() const;

    /** Smallest observation seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation seen (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

namespace stats {

/**
 * Streaming quantile estimator over a bounded reservoir.
 *
 * Holds every observation exactly while count() <= capacity; beyond
 * that, switches to Vitter's Algorithm R so the reservoir stays a
 * uniform sample of the full stream with O(capacity) memory — the
 * shape a long-lived service needs for latency percentiles. The
 * replacement stream is seeded at construction, so identical
 * observation sequences produce identical quantiles.
 */
class Percentiles
{
  public:
    /**
     * @param capacity reservoir size (clamped to >= 1); quantiles are
     *        exact up to this many observations
     * @param seed stream for the replacement draws past capacity
     */
    explicit Percentiles(std::size_t capacity = 4096,
                         uint64_t seed = 0x5157ECULL);

    /** Record one observation. */
    void add(double x);

    /**
     * Fold @p other's reservoir into this one, as if this estimator
     * had also watched (a uniform sample of) the other's stream.
     * While the combined reservoirs fit in capacity the merge is an
     * exact concatenation; past capacity it draws without replacement
     * from the union, each side weighted by its true stream count, so
     * the kept sample stays representative of the combined stream.
     * Draws come from this reservoir's own deterministic replacement
     * stream: merging the same reservoirs in the same order always
     * yields the same quantiles. count() becomes the sum of both
     * stream counts. Aggregation tiers (Router::latencyStats) use
     * this instead of re-sampling per-node observations, which would
     * bias quantiles toward double-counted values.
     */
    void merge(const Percentiles &other);

    /** Total observations seen (reservoir may hold fewer). */
    std::size_t count() const { return n_; }

    /** Observations currently in the reservoir. */
    std::size_t sampleSize() const { return sample_.size(); }

    /**
     * Quantile @p q in [0, 1] with linear interpolation between order
     * statistics of the reservoir (0 when empty). q = 0 / 1 give the
     * reservoir min / max.
     */
    double quantile(double q) const;

    /** Median. */
    double p50() const { return quantile(0.50); }

    /** 95th percentile. */
    double p95() const { return quantile(0.95); }

    /** 99th percentile. */
    double p99() const { return quantile(0.99); }

  private:
    std::size_t capacity_;
    std::size_t n_ = 0;
    uint64_t rngState_;
    std::vector<double> sample_;
};

} // namespace stats

/** Result of an ordinary-least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation (0 with <2 elements). */
double stddev(const std::vector<double> &xs);

/**
 * Pearson correlation coefficient between two equal-length series.
 * @return value in [-1, 1]; 0 when either series is constant.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Two-tailed p-value for a Pearson correlation of @p r over @p n samples,
 * from the t-statistic with a normal tail approximation (adequate for the
 * n ~ 30+ sample sizes used in the Fig. 4 reproduction).
 */
double pearsonPValue(double r, std::size_t n);

/** Least-squares fit of ys against xs. */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace eqc

#endif // EQC_COMMON_STATS_H
