/**
 * @file
 * Shared event-scheduling core with pluggable clocks.
 *
 * The discrete-event machinery that used to live inside the simulation
 * layer (sim/event_queue.h) is generic: a time-ordered queue of
 * handlers, fired in (time, scheduling-order) sequence. What differs
 * between deployments is only *how time passes* between events. This
 * header pins that down:
 *
 *  - Clock is the time source: nowH() in model hours, advanceTo()
 *    moves the clock forward to an event's timestamp.
 *  - VirtualClock jumps instantly — deterministic discrete-event
 *    replay, bit-identical for a fixed seed (the simulation default).
 *  - SteadyClock maps model hours onto real wall time at a
 *    configurable scale and *sleeps* until each event's deadline —
 *    real-time serving on the same event-structured code.
 *  - EventLoop owns the queue and drives whichever clock it was given.
 *
 * Events at equal timestamps fire in scheduling order (a monotonically
 * increasing sequence number breaks ties), which keeps event-driven
 * traces deterministic under the virtual clock.
 */

#ifndef EQC_COMMON_EVENT_LOOP_H
#define EQC_COMMON_EVENT_LOOP_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace eqc {

/** Model-time source of an EventLoop. Time unit: hours (the paper's). */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current model time in hours. */
    virtual double nowH() const = 0;

    /**
     * Move the clock forward to @p tH: a virtual clock jumps, a wall
     * clock blocks until the mapped deadline. No-op when @p tH is not
     * in the future — clocks never run backwards.
     */
    virtual void advanceTo(double tH) = 0;

    /** true when advanceTo is instantaneous (deterministic replay). */
    virtual bool isVirtual() const = 0;
};

/** Deterministic jump clock: model time is whatever it was set to. */
class VirtualClock final : public Clock
{
  public:
    explicit VirtualClock(double startH = 0.0) : nowH_(startH) {}

    double nowH() const override { return nowH_; }

    void
    advanceTo(double tH) override
    {
        if (tH > nowH_)
            nowH_ = tH;
    }

    bool isVirtual() const override { return true; }

  private:
    double nowH_;
};

/**
 * Wall clock: model hour h corresponds to the real instant
 * anchor + h * secondsPerHour, where the anchor is the construction
 * time (model hour 0). advanceTo sleeps until the mapped deadline, so
 * an EventLoop on this clock serves events in real time — sped up or
 * slowed down by the scale.
 */
class SteadyClock final : public Clock
{
  public:
    /**
     * @param secondsPerHour wall seconds one model hour takes
     *        (clamped to > 0; 1.0 replays a 40-hour campaign in 40 s)
     */
    explicit SteadyClock(double secondsPerHour = 1.0);

    double nowH() const override;

    void advanceTo(double tH) override;

    bool isVirtual() const override { return false; }

    double secondsPerHour() const { return secondsPerHour_; }

  private:
    double secondsPerHour_;
    std::chrono::steady_clock::time_point anchor_;
};

/**
 * Time-ordered event queue driven by a pluggable Clock.
 *
 * Handlers scheduled for the past (or the present) fire as soon as the
 * loop reaches them, at the clock's current time — the loop clamps
 * rather than rejects, because under a wall clock "now" moves while
 * the caller computes. Deterministic-simulation users who want a hard
 * error on past timestamps keep it in their wrapper (see
 * sim/event_queue.h).
 */
class EventLoop
{
  public:
    using Handler = std::function<void()>;

    /** @param clock time source; not owned, must outlive the loop */
    explicit EventLoop(Clock &clock) : clock_(clock) {}

    Clock &clock() { return clock_; }
    const Clock &clock() const { return clock_; }

    /** Current model time in hours (the clock's). */
    double now() const { return clock_.nowH(); }

    /** Schedule @p fn to run @p delayH hours from now (< 0 clamps). */
    void schedule(double delayH, Handler fn);

    /** Schedule @p fn at model time @p timeH (the past clamps to now). */
    void scheduleAt(double timeH, Handler fn);

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the event queue drains or model time would pass
     * @p limitH; events beyond the limit stay queued, and the clock is
     * advanced to @p limitH when the queue drains early.
     */
    void runUntil(double limitH);

    /** Number of events executed so far. */
    uint64_t processed() const { return processed_; }

    /** true when no events are pending. */
    bool empty() const { return queue_.empty(); }

    /** Pending (not yet fired) events. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Model hour of the earliest pending event; +infinity when the
     * queue is empty. Chaos/test harnesses use this to aim fault
     * injections at the window a drain is about to execute.
     */
    double nextTimeH() const
    {
        return queue_.empty()
                   ? std::numeric_limits<double>::infinity()
                   : queue_.top().time;
    }

  private:
    struct Event
    {
        double time;
        uint64_t seq;
        Handler fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void fireTop();

    Clock &clock_;
    uint64_t nextSeq_ = 0;
    uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace eqc

#endif // EQC_COMMON_EVENT_LOOP_H
