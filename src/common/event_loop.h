/**
 * @file
 * Shared event-scheduling core with pluggable clocks.
 *
 * The discrete-event machinery that used to live inside the simulation
 * layer (sim/event_queue.h) is generic: a time-ordered queue of
 * handlers, fired in (time, scheduling-order) sequence. What differs
 * between deployments is only *how time passes* between events. This
 * header pins that down:
 *
 *  - Clock is the time source: nowH() in model hours, advanceTo()
 *    moves the clock forward to an event's timestamp.
 *  - VirtualClock jumps instantly — deterministic discrete-event
 *    replay, bit-identical for a fixed seed (the simulation default).
 *  - SteadyClock maps model hours onto real wall time at a
 *    configurable scale and *sleeps* until each event's deadline —
 *    real-time serving on the same event-structured code.
 *  - EventLoop owns the queue and drives whichever clock it was given.
 *
 * Events at equal timestamps fire in scheduling order (a monotonically
 * increasing sequence number breaks ties), which keeps event-driven
 * traces deterministic under the virtual clock.
 */

#ifndef EQC_COMMON_EVENT_LOOP_H
#define EQC_COMMON_EVENT_LOOP_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace eqc {

/** Model-time source of an EventLoop. Time unit: hours (the paper's). */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current model time in hours. */
    virtual double nowH() const = 0;

    /**
     * Move the clock forward to @p tH: a virtual clock jumps, a wall
     * clock blocks until the mapped deadline. No-op when @p tH is not
     * in the future — clocks never run backwards.
     */
    virtual void advanceTo(double tH) = 0;

    /** true when advanceTo is instantaneous (deterministic replay). */
    virtual bool isVirtual() const = 0;
};

/** Deterministic jump clock: model time is whatever it was set to. */
class VirtualClock final : public Clock
{
  public:
    explicit VirtualClock(double startH = 0.0) : nowH_(startH) {}

    double nowH() const override { return nowH_; }

    void
    advanceTo(double tH) override
    {
        if (tH > nowH_)
            nowH_ = tH;
    }

    bool isVirtual() const override { return true; }

  private:
    double nowH_;
};

/**
 * Wall clock: model hour h corresponds to the real instant
 * anchor + h * secondsPerHour, where the anchor is the construction
 * time (model hour 0). advanceTo sleeps until the mapped deadline, so
 * an EventLoop on this clock serves events in real time — sped up or
 * slowed down by the scale.
 */
class SteadyClock final : public Clock
{
  public:
    /**
     * @param secondsPerHour wall seconds one model hour takes
     *        (clamped to > 0; 1.0 replays a 40-hour campaign in 40 s)
     */
    explicit SteadyClock(double secondsPerHour = 1.0);

    double nowH() const override;

    void advanceTo(double tH) override;

    bool isVirtual() const override { return false; }

    double secondsPerHour() const { return secondsPerHour_; }

  private:
    double secondsPerHour_;
    std::chrono::steady_clock::time_point anchor_;
};

/**
 * Time-ordered event queue driven by a pluggable Clock.
 *
 * Handlers scheduled for the past (or the present) fire as soon as the
 * loop reaches them, at the clock's current time — the loop clamps
 * rather than rejects, because under a wall clock "now" moves while
 * the caller computes. Deterministic-simulation users who want a hard
 * error on past timestamps keep it in their wrapper (see
 * sim/event_queue.h).
 */
class EventLoop
{
  public:
    using Handler = std::function<void()>;

    /** @param clock time source; not owned, must outlive the loop */
    explicit EventLoop(Clock &clock) : clock_(clock) {}

    Clock &clock() { return clock_; }
    const Clock &clock() const { return clock_; }

    /** Current model time in hours (the clock's). */
    double now() const { return clock_.nowH(); }

    /**
     * Schedule @p fn to run @p delayH hours from now (< 0 clamps).
     * @return an event id usable with cancel().
     */
    uint64_t schedule(double delayH, Handler fn);

    /**
     * Schedule @p fn at model time @p timeH (the past clamps to now).
     * @return an event id usable with cancel().
     */
    uint64_t scheduleAt(double timeH, Handler fn);

    /**
     * Revoke a pending event by id. A cancelled event never fires and
     * never advances the clock (under a wall clock the loop never
     * sleeps for it). Cancelling an id that already fired or was
     * already cancelled is a no-op.
     * @return true when the event was pending and is now cancelled
     */
    bool cancel(uint64_t id);

    /** Run until the event queue drains (or requestStop() is seen). */
    void run();

    /**
     * Run until the event queue drains or model time would pass
     * @p limitH; events beyond the limit stay queued, and the clock is
     * advanced to @p limitH when the queue drains early.
     */
    void runUntil(double limitH);

    /**
     * Ask the running loop to return before firing its next event.
     * Safe to call from an event handler or another thread; the flag
     * is consumed by the next run()/runUntil() iteration, so a stop
     * requested while idle applies to the next run call.
     */
    void requestStop() { stopRequested_.store(true); }

    /** Number of events executed so far. */
    uint64_t processed() const { return processed_; }

    /** true when no live (uncancelled) events are pending. */
    bool empty() const { return liveIds_.empty(); }

    /** Live (scheduled, not fired, not cancelled) events. */
    std::size_t pending() const { return liveIds_.size(); }

    /**
     * Model hour of the earliest pending event; +infinity when the
     * queue is empty. Chaos/test harnesses use this to aim fault
     * injections at the window a drain is about to execute. May report
     * a cancelled event's hour until the loop next purges its top —
     * fine for aiming heuristics, don't treat it as exact.
     */
    double nextTimeH() const
    {
        return queue_.empty()
                   ? std::numeric_limits<double>::infinity()
                   : queue_.top().time;
    }

  private:
    struct Event
    {
        double time;
        uint64_t seq;
        Handler fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void fireTop();
    void purgeCancelledTop();
    void drainCancelled();

    Clock &clock_;
    uint64_t nextSeq_ = 0;
    uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<uint64_t> liveIds_;
    std::unordered_set<uint64_t> cancelled_;
    std::atomic<bool> stopRequested_{false};
};

} // namespace eqc

#endif // EQC_COMMON_EVENT_LOOP_H
