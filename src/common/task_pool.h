/**
 * @file
 * Small persistent thread pool used to shard disjoint index ranges
 * across threads (block-parallel kernel apply, future engine fan-out).
 *
 * The pool hands each participant a contiguous chunk of the range, so a
 * caller whose chunks write disjoint memory gets bit-identical results
 * regardless of the thread count — the property the simulation kernels
 * rely on for deterministic replay.
 */

#ifndef EQC_COMMON_TASK_POOL_H
#define EQC_COMMON_TASK_POOL_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace eqc {

/**
 * Persistent worker pool executing one parallel-for at a time.
 *
 * A pool of capacity T runs T-1 resident worker threads; the submitting
 * thread works alongside them, so `TaskPool(1)` spawns nothing and runs
 * everything inline. If a parallel-for is already in flight (another
 * thread got there first, or a kernel body recurses), the new call runs
 * its whole range inline instead of queueing — callers never block on
 * unrelated work.
 */
class TaskPool
{
  public:
    /** @param threads total participants (clamped to >= 1) */
    explicit TaskPool(int threads);

    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Total participants (resident workers + the submitting thread). */
    int threadCount() const { return threads_; }

    /**
     * Run @p body over [begin, end), partitioned into one contiguous
     * chunk per participant. Blocks until every chunk has finished.
     * Ranges smaller than the participant count run inline (the
     * fork/join overhead would dominate fine-grained work).
     * @param body invoked as body(chunkBegin, chunkEnd); chunks are
     *        disjoint and cover the range exactly once
     */
    void parallelFor(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t, uint64_t)> &body);

    /**
     * As parallelFor, but for *coarse* jobs (circuit executions,
     * gradient evaluations): parallelizes even when @p count is below
     * the participant count — each index is assumed expensive enough
     * to be worth a thread on its own. Chunks are still contiguous and
     * disjoint, so callers writing per-index slots stay bit-identical
     * for every thread count.
     */
    void parallelJobs(uint64_t count,
                      const std::function<void(uint64_t, uint64_t)> &body);

    /**
     * Enqueue one independent job for asynchronous execution by the
     * resident workers and return immediately. With no resident
     * workers (a 1-thread pool) the job runs inline before returning.
     * Async jobs and parallel-for chunks share the worker fleet; a
     * worker prefers chunk work so parallel-for latency stays low.
     */
    void async(std::function<void()> job);

    /** Block until every async job submitted so far has finished. */
    void drainAsync();

    /**
     * Process-wide pool sized from the EQC_THREADS environment variable
     * when set, otherwise std::thread::hardware_concurrency().
     */
    static TaskPool &shared();

    /**
     * Publish pool telemetry into @p m: fan-out / inline-degrade /
     * async-job counters, an async queue-wait histogram (wall-clock
     * seconds from enqueue to first execution) and an active-worker
     * gauge. Call once, before the pool sees work; uninstrumented
     * pools pay only a null check per event.
     */
    void instrument(obs::MetricsRegistry &m);

  private:
    void workerLoop();
    void runChunks();
    void submitRange(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t, uint64_t)> &body);

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    /** Submission gate: one parallelFor in flight at a time. */
    std::mutex submitMu_;

    const std::function<void(uint64_t, uint64_t)> *body_ = nullptr;
    uint64_t begin_ = 0;
    uint64_t end_ = 0;
    uint64_t jobSeq_ = 0;
    int chunksLeft_ = 0;   ///< chunks not yet claimed
    int pending_ = 0;      ///< chunks claimed but not yet finished
    bool stop_ = false;

    std::condition_variable asyncCv_;
    /** One queued async job (enqueue time set when instrumented). */
    struct AsyncJob
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };
    std::deque<AsyncJob> asyncJobs_;
    int asyncActive_ = 0;  ///< async jobs currently executing

    // Optional telemetry (see instrument()); null when unattached.
    obs::Counter *ctrParallel_ = nullptr;
    obs::Counter *ctrInline_ = nullptr;
    obs::Counter *ctrAsync_ = nullptr;
    obs::Histogram *asyncWaitS_ = nullptr;
    obs::Gauge *activeWorkers_ = nullptr;
};

} // namespace eqc

#endif // EQC_COMMON_TASK_POOL_H
