/**
 * @file
 * Deterministic random number generation for the whole framework.
 *
 * Every stochastic component (noise sampling, queue waits, drift jitter)
 * draws from an Rng seeded from a user-provided root seed, so complete
 * experiment campaigns replay bit-identically. Child generators can be
 * forked by label so that adding a consumer does not perturb the streams
 * of unrelated consumers.
 */

#ifndef EQC_COMMON_RNG_H
#define EQC_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace eqc {

/**
 * A seeded pseudo-random generator with convenience distributions.
 *
 * Wraps std::mt19937_64. Copyable; copies continue the same stream
 * independently from the point of the copy.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (scrambled through splitmix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Fork a child generator whose stream depends on @p label. */
    Rng fork(const std::string &label) const;

    /** Fork a child generator from an integer label. */
    Rng fork(uint64_t label) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal draw scaled to N(mean, stddev^2). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Lognormal draw with the given parameters of the underlying normal. */
    double lognormal(double mu, double sigma);

    /** Exponential draw with the given mean (not rate). */
    double exponentialMean(double mean);

    /** Poisson draw with the given mean. */
    int poisson(double mean);

    /** true with probability @p p. */
    bool bernoulli(double p);

    /**
     * Sample one index from an unnormalized non-negative weight vector.
     * @param weights unnormalized weights; must contain a positive entry.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Draw a multinomial sample: @p shots draws over @p probs.
     * @return per-outcome counts, same length as @p probs.
     */
    std::vector<uint64_t> multinomial(const std::vector<double> &probs,
                                      uint64_t shots);

    /** Access the underlying engine (for std:: distributions). */
    std::mt19937_64 &engine() { return engine_; }

    /** The seed this generator was constructed with. */
    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
    std::mt19937_64 engine_;
};

/** splitmix64 hash step, used for seed scrambling and label mixing. */
uint64_t splitmix64(uint64_t x);

/** Stable 64-bit hash of a string (FNV-1a), for label-based forking. */
uint64_t hashLabel(const std::string &label);

} // namespace eqc

#endif // EQC_COMMON_RNG_H
