#include "transpile/coupling_map.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace eqc {

CouplingMap::CouplingMap(int numQubits,
                         std::vector<std::pair<int, int>> edges)
    : numQubits_(numQubits), edges_(std::move(edges)),
      adj_(numQubits)
{
    if (numQubits < 1)
        fatal("CouplingMap: need at least one qubit");
    for (auto &[a, b] : edges_) {
        if (a < 0 || b < 0 || a >= numQubits || b >= numQubits || a == b)
            fatal("CouplingMap: invalid edge");
        adj_[a].push_back(b);
        adj_[b].push_back(a);
    }
    for (auto &n : adj_) {
        std::sort(n.begin(), n.end());
        n.erase(std::unique(n.begin(), n.end()), n.end());
    }
    buildDistances();
}

void
CouplingMap::buildDistances()
{
    dist_.assign(numQubits_, std::vector<int>(numQubits_, -1));
    for (int s = 0; s < numQubits_; ++s) {
        std::queue<int> q;
        dist_[s][s] = 0;
        q.push(s);
        while (!q.empty()) {
            int u = q.front();
            q.pop();
            for (int v : adj_[u]) {
                if (dist_[s][v] < 0) {
                    dist_[s][v] = dist_[s][u] + 1;
                    q.push(v);
                }
            }
        }
    }
}

CouplingMap
CouplingMap::line(int numQubits)
{
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < numQubits; ++i)
        e.push_back({i, i + 1});
    return {numQubits, std::move(e)};
}

CouplingMap
CouplingMap::ring(int numQubits)
{
    std::vector<std::pair<int, int>> e;
    for (int i = 0; i + 1 < numQubits; ++i)
        e.push_back({i, i + 1});
    if (numQubits > 2)
        e.push_back({0, numQubits - 1});
    return {numQubits, std::move(e)};
}

CouplingMap
CouplingMap::tShape()
{
    return {5, {{0, 1}, {1, 2}, {1, 3}, {3, 4}}};
}

CouplingMap
CouplingMap::bowtie()
{
    return {5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}};
}

CouplingMap
CouplingMap::hShape()
{
    return {7, {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}}};
}

CouplingMap
CouplingMap::heavyHex27()
{
    // IBM Falcon r4 27-qubit heavy-hex lattice (ibmq_toronto).
    return {27,
            {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
             {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
             {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
             {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
             {22, 25}, {23, 24}, {24, 25}, {25, 26}}};
}

CouplingMap
CouplingMap::heavyHex65()
{
    // IBM Hummingbird r2 65-qubit heavy-hex lattice (ibmq_manhattan):
    // five rows of ten connected by bridge qubits.
    std::vector<std::pair<int, int>> e = {
        {0, 1},   {1, 2},   {2, 3},   {3, 4},   {4, 5},   {5, 6},
        {6, 7},   {7, 8},   {8, 9},
        {0, 10},  {4, 11},  {8, 12},
        {10, 13}, {11, 17}, {12, 21},
        {13, 14}, {14, 15}, {15, 16}, {16, 17}, {17, 18}, {18, 19},
        {19, 20}, {20, 21}, {21, 22}, {22, 23},
        {15, 24}, {19, 25}, {23, 26},
        {24, 29}, {25, 33}, {26, 37},
        {27, 28}, {28, 29}, {29, 30}, {30, 31}, {31, 32}, {32, 33},
        {33, 34}, {34, 35}, {35, 36}, {36, 37},
        {27, 38}, {31, 39}, {35, 40},
        {38, 41}, {39, 45}, {40, 49},
        {41, 42}, {42, 43}, {43, 44}, {44, 45}, {45, 46}, {46, 47},
        {47, 48}, {48, 49}, {49, 50}, {50, 51},
        {43, 52}, {47, 53}, {51, 54},
        {52, 56}, {53, 60}, {54, 64},
        {55, 56}, {56, 57}, {57, 58}, {58, 59}, {59, 60}, {60, 61},
        {61, 62}, {62, 63}, {63, 64}};
    return {65, std::move(e)};
}

bool
CouplingMap::connected(int a, int b) const
{
    return distance(a, b) == 1;
}

const std::vector<int> &
CouplingMap::neighbors(int q) const
{
    if (q < 0 || q >= numQubits_)
        panic("CouplingMap::neighbors: qubit out of range");
    return adj_[q];
}

int
CouplingMap::distance(int a, int b) const
{
    if (a < 0 || b < 0 || a >= numQubits_ || b >= numQubits_)
        panic("CouplingMap::distance: qubit out of range");
    return dist_[a][b];
}

std::vector<int>
CouplingMap::shortestPath(int a, int b) const
{
    if (distance(a, b) < 0)
        return {};
    std::vector<int> path = {a};
    int cur = a;
    while (cur != b) {
        // Greedy descent on the distance field; ties broken by index so
        // routing is deterministic.
        int next = -1;
        for (int v : adj_[cur]) {
            if (dist_[v][b] == dist_[cur][b] - 1) {
                next = v;
                break;
            }
        }
        if (next < 0)
            panic("CouplingMap::shortestPath: inconsistent distances");
        path.push_back(next);
        cur = next;
    }
    return path;
}

bool
CouplingMap::isConnectedGraph() const
{
    for (int q = 1; q < numQubits_; ++q)
        if (dist_[0][q] < 0)
            return false;
    return true;
}

double
CouplingMap::averageDegree() const
{
    double s = 0.0;
    for (int q = 0; q < numQubits_; ++q)
        s += degree(q);
    return s / numQubits_;
}

} // namespace eqc
