#include "transpile/transpiler.h"

#include <algorithm>

#include "common/logging.h"

namespace eqc {

TranspiledCircuit
transpile(const QuantumCircuit &logical, const CouplingMap &map,
          const TranspileOptions &opts)
{
    if (logical.numQubits() > map.numQubits())
        fatal("transpile: circuit needs more qubits than the device has");

    TranspiledCircuit out;
    out.initialLayout = opts.useGreedyLayout
                            ? greedyLayout(logical, map)
                            : trivialLayout(logical.numQubits());

    RoutingResult routed = routeCircuit(logical, map, out.initialLayout);
    out.finalMapping = routed.finalMapping;
    out.swapCount = routed.swapCount;

    out.physical = opts.toBasis ? decomposeToBasis(routed.routed)
                                : routed.routed;

    // Compact to the used region for simulation.
    std::vector<int> used = out.physical.usedQubits();
    out.compactToPhysical = used;
    std::vector<int> physToCompact(map.numQubits(), -1);
    for (std::size_t i = 0; i < used.size(); ++i)
        physToCompact[used[i]] = static_cast<int>(i);
    out.compact = out.physical.remapQubits(
        physToCompact, static_cast<int>(used.size()));

    out.logicalToCompact.assign(logical.numQubits(), -1);
    for (int l = 0; l < logical.numQubits(); ++l) {
        int phys = out.finalMapping[l];
        if (phys < 0 || physToCompact[phys] < 0)
            panic("transpile: logical qubit lost during compaction");
        out.logicalToCompact[l] = physToCompact[phys];
    }

    out.counts = out.physical.counts();
    out.depth = out.physical.depth();
    out.criticalDepth = out.physical.criticalDepth();
    return out;
}

} // namespace eqc
