#include "transpile/layout.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace eqc {

Layout
trivialLayout(int numLogical)
{
    Layout l(numLogical);
    for (int i = 0; i < numLogical; ++i)
        l[i] = i;
    return l;
}

namespace {

/** Pairwise 2q-gate interaction counts of a circuit. */
std::vector<std::vector<double>>
interactionMatrix(const QuantumCircuit &circuit)
{
    int n = circuit.numQubits();
    std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
    for (const GateOp &op : circuit.ops()) {
        if (op.arity() == 2) {
            w[op.qubits[0]][op.qubits[1]] += 1.0;
            w[op.qubits[1]][op.qubits[0]] += 1.0;
        }
    }
    return w;
}

} // namespace

Layout
greedyLayout(const QuantumCircuit &circuit, const CouplingMap &map)
{
    const int nl = circuit.numQubits();
    const int np = map.numQubits();
    if (nl > np)
        fatal("greedyLayout: circuit wider than device");

    auto w = interactionMatrix(circuit);
    std::vector<double> totalW(nl, 0.0);
    for (int i = 0; i < nl; ++i)
        for (int j = 0; j < nl; ++j)
            totalW[i] += w[i][j];

    // Logical order: heaviest interactions first (stable by index).
    std::vector<int> order(nl);
    for (int i = 0; i < nl; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return totalW[a] > totalW[b];
    });

    Layout layout(nl, -1);
    std::vector<bool> taken(np, false);

    for (int k = 0; k < nl; ++k) {
        int logical = order[k];
        int best = -1;
        double bestCost = std::numeric_limits<double>::infinity();
        for (int phys = 0; phys < np; ++phys) {
            if (taken[phys])
                continue;
            // Cost: distance-weighted interaction to already placed
            // partners; prefer high degree as a tie break so the first
            // placements grab well-connected centers.
            double cost = 0.0;
            bool reachable = true;
            for (int other = 0; other < nl; ++other) {
                if (layout[other] < 0 || w[logical][other] == 0.0)
                    continue;
                int d = map.distance(phys, layout[other]);
                if (d < 0) {
                    reachable = false;
                    break;
                }
                cost += w[logical][other] * d;
            }
            if (!reachable)
                continue;
            cost -= 1e-3 * map.degree(phys);
            if (cost < bestCost) {
                bestCost = cost;
                best = phys;
            }
        }
        if (best < 0)
            fatal("greedyLayout: no feasible placement (disconnected map?)");
        layout[logical] = best;
        taken[best] = true;
    }

    // Local-search refinement: greedy placement can strand the last
    // qubits (e.g. a 4-chain on the x2 bowtie); try exchanging pairs of
    // assignments and relocating onto free physical qubits until no
    // single move lowers the interaction cost.
    double cost = layoutCost(circuit, map, layout);
    bool improved = true;
    for (int round = 0; round < 32 && improved && cost > 0.0; ++round) {
        improved = false;
        // Swap two placed logicals.
        for (int a = 0; a < nl; ++a) {
            for (int b = a + 1; b < nl; ++b) {
                std::swap(layout[a], layout[b]);
                double c = layoutCost(circuit, map, layout);
                if (c < cost) {
                    cost = c;
                    improved = true;
                } else {
                    std::swap(layout[a], layout[b]);
                }
            }
        }
        // Relocate a logical onto a free physical qubit.
        std::vector<bool> used(np, false);
        for (int l = 0; l < nl; ++l)
            used[layout[l]] = true;
        for (int l = 0; l < nl; ++l) {
            for (int phys = 0; phys < np; ++phys) {
                if (used[phys])
                    continue;
                int old = layout[l];
                layout[l] = phys;
                double c = layoutCost(circuit, map, layout);
                if (c < cost) {
                    cost = c;
                    improved = true;
                    used[old] = false;
                    used[phys] = true;
                } else {
                    layout[l] = old;
                }
            }
        }
    }
    return layout;
}

double
layoutCost(const QuantumCircuit &circuit, const CouplingMap &map,
           const Layout &layout)
{
    auto w = interactionMatrix(circuit);
    double cost = 0.0;
    int n = circuit.numQubits();
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (w[i][j] == 0.0)
                continue;
            int d = map.distance(layout[i], layout[j]);
            if (d < 0)
                return std::numeric_limits<double>::infinity();
            cost += w[i][j] * (d - 1);
        }
    }
    return cost;
}

} // namespace eqc
