#include "transpile/basis.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

namespace {

/** Fold a constant angle into [0, 2pi) and test for (near) zero. */
bool
isZeroAngle(const ParamExpr &p)
{
    if (p.isSymbolic())
        return false;
    double a = std::fmod(p.offset, 2.0 * kPi);
    if (a < 0)
        a += 2.0 * kPi;
    return a < 1e-12 || (2.0 * kPi - a) < 1e-12;
}

/** Emit the ZSX synthesis of U3(theta, phi, lambda) onto @p out. */
void
emitZsx(QuantumCircuit &out, int q, const ParamExpr &theta, double phi,
        double lambda)
{
    // Constant theta == 0 collapses to a single RZ(phi + lambda).
    if (!theta.isSymbolic()) {
        double t = theta.offset;
        if (std::fabs(std::remainder(t, 2.0 * kPi)) < 1e-12) {
            ParamExpr merged = ParamExpr::constant(phi + lambda);
            if (!isZeroAngle(merged))
                out.rz(q, merged);
            return;
        }
    }
    // Applied first to last: RZ(lambda), SX, RZ(theta+pi), SX, RZ(phi+pi).
    ParamExpr lam = ParamExpr::constant(lambda);
    if (!isZeroAngle(lam))
        out.rz(q, lam);
    out.sx(q);
    ParamExpr mid = theta;
    mid.offset += kPi;
    out.rz(q, mid);
    out.sx(q);
    ParamExpr ph = ParamExpr::constant(phi + kPi);
    if (!isZeroAngle(ph))
        out.rz(q, ph);
}

void
decomposeOp(QuantumCircuit &out, const GateOp &op)
{
    const int q0 = op.qubits[0];
    const int q1 = op.qubits[1];
    switch (op.type) {
      case GateType::ID:
      case GateType::X:
      case GateType::SX:
      case GateType::CX:
      case GateType::MEASURE:
        out.addGate(op.type, op.arity() == 2
                                 ? std::vector<int>{q0, q1}
                                 : std::vector<int>{q0},
                    op.params);
        return;
      case GateType::BARRIER:
        out.barrier();
        return;
      case GateType::RZ:
        if (!isZeroAngle(op.params[0]))
            out.rz(q0, op.params[0]);
        return;
      case GateType::Z:
        out.rz(q0, ParamExpr::constant(kPi));
        return;
      case GateType::S:
        out.rz(q0, ParamExpr::constant(kPi / 2));
        return;
      case GateType::SDG:
        out.rz(q0, ParamExpr::constant(-kPi / 2));
        return;
      case GateType::T:
        out.rz(q0, ParamExpr::constant(kPi / 4));
        return;
      case GateType::TDG:
        out.rz(q0, ParamExpr::constant(-kPi / 4));
        return;
      case GateType::Y:
        // Y ~ X . Z up to global phase: apply Z then X.
        out.rz(q0, ParamExpr::constant(kPi));
        out.x(q0);
        return;
      case GateType::H:
        emitZsx(out, q0, ParamExpr::constant(kPi / 2), 0.0, kPi);
        return;
      case GateType::RY:
        emitZsx(out, q0, op.params[0], 0.0, 0.0);
        return;
      case GateType::RX:
        emitZsx(out, q0, op.params[0], -kPi / 2, kPi / 2);
        return;
      case GateType::U3: {
        // Phi and lambda must be constant; theta may be symbolic.
        if (op.params[1].isSymbolic() || op.params[2].isSymbolic())
            panic("decomposeToBasis: symbolic U3 phi/lambda unsupported");
        emitZsx(out, q0, op.params[0], op.params[1].offset,
                op.params[2].offset);
        return;
      }
      case GateType::CZ:
        // CZ = (I (x) H) CX (I (x) H) on the target.
        emitZsx(out, q1, ParamExpr::constant(kPi / 2), 0.0, kPi);
        out.cx(q0, q1);
        emitZsx(out, q1, ParamExpr::constant(kPi / 2), 0.0, kPi);
        return;
      case GateType::SWAP:
        out.cx(q0, q1);
        out.cx(q1, q0);
        out.cx(q0, q1);
        return;
      case GateType::RZZ:
        // exp(-i t/2 ZZ) = CX . (I (x) RZ(t)) . CX.
        out.cx(q0, q1);
        out.rz(q1, op.params[0]);
        out.cx(q0, q1);
        return;
    }
    panic("decomposeToBasis: unhandled gate " + gateName(op.type));
}

/**
 * Peephole cleanup: merge adjacent RZ gates on the same qubit and drop
 * RZ gates with constant zero angle.
 */
QuantumCircuit
mergeRz(const QuantumCircuit &in)
{
    QuantumCircuit out(in.numQubits(), in.numParams());
    // Index into out.ops() of the trailing RZ per qubit, or -1.
    std::vector<long> lastRz(in.numQubits(), -1);
    std::vector<GateOp> ops;

    auto flushQubit = [&](int q) { lastRz[q] = -1; };

    for (const GateOp &op : in.ops()) {
        if (op.type == GateType::BARRIER) {
            for (auto &v : lastRz)
                v = -1;
            ops.push_back(op);
            continue;
        }
        if (op.type == GateType::RZ) {
            int q = op.qubits[0];
            long prev = lastRz[q];
            if (prev >= 0) {
                ParamExpr &a = ops[prev].params[0];
                const ParamExpr &b = op.params[0];
                if (!a.isSymbolic() && !b.isSymbolic()) {
                    a.offset += b.offset;
                    continue;
                }
                if (a.isSymbolic() && !b.isSymbolic()) {
                    a.offset += b.offset;
                    continue;
                }
                if (!a.isSymbolic() && b.isSymbolic()) {
                    ParamExpr merged = b;
                    merged.offset += a.offset;
                    ops[prev].params[0] = merged;
                    continue;
                }
                if (a.index == b.index) {
                    a.scale += b.scale;
                    a.offset += b.offset;
                    continue;
                }
            }
            ops.push_back(op);
            lastRz[q] = static_cast<long>(ops.size()) - 1;
            continue;
        }
        // Any other op invalidates pending RZ merges on its qubits.
        flushQubit(op.qubits[0]);
        if (op.arity() == 2)
            flushQubit(op.qubits[1]);
        ops.push_back(op);
    }

    for (const GateOp &op : ops) {
        if (op.type == GateType::RZ && isZeroAngle(op.params[0]))
            continue;
        if (op.type == GateType::BARRIER) {
            out.barrier();
            continue;
        }
        out.addGate(op.type,
                    op.arity() == 2
                        ? std::vector<int>{op.qubits[0], op.qubits[1]}
                        : std::vector<int>{op.qubits[0]},
                    op.params);
    }
    return out;
}

} // namespace

QuantumCircuit
decomposeToBasis(const QuantumCircuit &circuit)
{
    QuantumCircuit out(circuit.numQubits(), circuit.numParams());
    for (const GateOp &op : circuit.ops())
        decomposeOp(out, op);
    return mergeRz(out);
}

bool
isInBasis(const QuantumCircuit &circuit)
{
    for (const GateOp &op : circuit.ops())
        if (!isBasisGate(op.type))
            return false;
    return true;
}

} // namespace eqc
