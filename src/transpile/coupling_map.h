/**
 * @file
 * Device connectivity graphs. Provides the topology families of the
 * paper's Table I / Fig. 3: line, T-shape, fully-connected bowtie
 * (IBMQ x2), H-shape (7-qubit Falcon) and the 27/65-qubit heavy-hex
 * lattices (Toronto / Manhattan).
 */

#ifndef EQC_TRANSPILE_COUPLING_MAP_H
#define EQC_TRANSPILE_COUPLING_MAP_H

#include <string>
#include <utility>
#include <vector>

namespace eqc {

/** Undirected qubit-connectivity graph with precomputed BFS distances. */
class CouplingMap
{
  public:
    CouplingMap() = default;

    /**
     * @param numQubits number of physical qubits
     * @param edges undirected edge list (each pair counted once)
     */
    CouplingMap(int numQubits, std::vector<std::pair<int, int>> edges);

    /// @name Topology factories (paper Table I / Fig. 3)
    /// @{
    /** Linear chain 0-1-...-(n-1) (Manila, Santiago, Bogota). */
    static CouplingMap line(int numQubits);
    /** Ring of n qubits. */
    static CouplingMap ring(int numQubits);
    /** 5-qubit T-shape (Lima, Belem, Quito): 0-1-2, 1-3, 3-4. */
    static CouplingMap tShape();
    /**
     * 5-qubit bowtie of IBMQ x2 ("fully-connected" in Table I): two
     * triangles sharing the center qubit 2.
     */
    static CouplingMap bowtie();
    /** 7-qubit H-shape (Lagos, Casablanca). */
    static CouplingMap hShape();
    /** 27-qubit Falcon heavy-hex (Toronto). */
    static CouplingMap heavyHex27();
    /** 65-qubit Hummingbird heavy-hex (Manhattan). */
    static CouplingMap heavyHex65();
    /// @}

    int numQubits() const { return numQubits_; }

    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

    /** true when a and b share an edge. */
    bool connected(int a, int b) const;

    /** Adjacent qubits of q, ascending. */
    const std::vector<int> &neighbors(int q) const;

    /** Degree of q. */
    int degree(int q) const { return static_cast<int>(neighbors(q).size()); }

    /** Hop distance between two qubits (-1 if disconnected). */
    int distance(int a, int b) const;

    /** One shortest path a..b inclusive (empty if disconnected). */
    std::vector<int> shortestPath(int a, int b) const;

    /** true when every qubit can reach every other. */
    bool isConnectedGraph() const;

    /** Mean vertex degree. */
    double averageDegree() const;

  private:
    int numQubits_ = 0;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> dist_;

    void buildDistances();
};

} // namespace eqc

#endif // EQC_TRANSPILE_COUPLING_MAP_H
