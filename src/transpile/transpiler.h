/**
 * @file
 * Full transpilation pipeline: layout -> SWAP routing -> basis
 * translation -> compaction. The resulting structural metrics (G1, G2,
 * measurement count, critical depth) are the circuit-side inputs of the
 * paper's Eq. 2 quality model.
 */

#ifndef EQC_TRANSPILE_TRANSPILER_H
#define EQC_TRANSPILE_TRANSPILER_H

#include <vector>

#include "circuit/circuit.h"
#include "transpile/basis.h"
#include "transpile/coupling_map.h"
#include "transpile/layout.h"
#include "transpile/router.h"

namespace eqc {

/** Knobs of the transpilation pipeline. */
struct TranspileOptions
{
    /** Use interaction-aware placement (false: trivial layout). */
    bool useGreedyLayout = true;
    /** Translate to the native basis (false: keep logical gate set). */
    bool toBasis = true;
};

/** Result of transpiling one logical circuit for one device topology. */
struct TranspiledCircuit
{
    /** Device-wide circuit (width = device qubit count). */
    QuantumCircuit physical;
    /**
     * Same circuit compacted to the qubits it actually touches, for
     * simulation (simulating all 65 Manhattan qubits for a 4-qubit job
     * would be absurd — exactly like running on hardware only engages
     * the mapped region).
     */
    QuantumCircuit compact;
    /** Initial placement logical -> physical. */
    Layout initialLayout;
    /** Placement after routing (SWAPs permute it). */
    Layout finalMapping;
    /** compact qubit index -> physical qubit id (for calibration). */
    std::vector<int> compactToPhysical;
    /** logical qubit -> compact qubit index (for readout decoding). */
    std::vector<int> logicalToCompact;
    /** SWAPs inserted by routing. */
    int swapCount = 0;
    /** Gate census of the final physical circuit. */
    GateCounts counts;
    /** Layered depth of the final physical circuit. */
    int depth = 0;
    /** Physical-gate critical depth (the CD of Eq. 2). */
    int criticalDepth = 0;
};

/**
 * Transpile @p logical for a device with connectivity @p map.
 *
 * @param logical logical circuit (any gate vocabulary)
 * @param map device coupling graph; must have >= logical qubits
 * @param opts pipeline options
 */
TranspiledCircuit transpile(const QuantumCircuit &logical,
                            const CouplingMap &map,
                            const TranspileOptions &opts = {});

} // namespace eqc

#endif // EQC_TRANSPILE_TRANSPILER_H
