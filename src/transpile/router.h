/**
 * @file
 * SWAP-insertion routing: rewrites a logical circuit onto physical
 * qubits, inserting SWAP chains whenever a two-qubit gate targets
 * non-adjacent qubits. This is what makes topology computationally
 * consequential in EQC: the extra SWAPs inflate G2 and critical depth
 * and thereby lower a device's P_correct weight (paper Sec. IV).
 */

#ifndef EQC_TRANSPILE_ROUTER_H
#define EQC_TRANSPILE_ROUTER_H

#include "circuit/circuit.h"
#include "transpile/coupling_map.h"
#include "transpile/layout.h"

namespace eqc {

/** Output of the routing pass. */
struct RoutingResult
{
    /** Circuit over physical qubits; 2q gates only on coupled pairs. */
    QuantumCircuit routed;
    /** Final logical-to-physical mapping after all inserted SWAPs. */
    Layout finalMapping;
    /** Number of SWAP gates inserted. */
    int swapCount = 0;
};

/**
 * Route @p logical onto the device graph starting from @p initial.
 *
 * Uses greedy shortest-path routing: for a distant 2q gate the first
 * operand is swapped along a shortest path until adjacent to the second.
 * Deterministic (ties broken by qubit index).
 */
RoutingResult routeCircuit(const QuantumCircuit &logical,
                           const CouplingMap &map, const Layout &initial);

/**
 * Verify that every 2q gate of @p physical acts on coupled qubits.
 * @return true when the circuit respects the coupling constraints
 */
bool respectsCoupling(const QuantumCircuit &physical,
                      const CouplingMap &map);

} // namespace eqc

#endif // EQC_TRANSPILE_ROUTER_H
