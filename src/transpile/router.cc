#include "transpile/router.h"

#include <algorithm>

#include "common/logging.h"

namespace eqc {

RoutingResult
routeCircuit(const QuantumCircuit &logical, const CouplingMap &map,
             const Layout &initial)
{
    const int nl = logical.numQubits();
    const int np = map.numQubits();
    if (static_cast<int>(initial.size()) != nl)
        fatal("routeCircuit: layout size does not match circuit width");
    for (int p : initial)
        if (p < 0 || p >= np)
            fatal("routeCircuit: layout entry out of device range");

    RoutingResult result;
    result.routed = QuantumCircuit(np, logical.numParams());
    Layout l2p = initial;            // logical -> physical
    std::vector<int> p2l(np, -1);    // physical -> logical (or -1)
    for (int l = 0; l < nl; ++l)
        p2l[l2p[l]] = l;

    auto swapPhysical = [&](int pa, int pb) {
        result.routed.swap(pa, pb);
        ++result.swapCount;
        int la = p2l[pa], lb = p2l[pb];
        if (la >= 0)
            l2p[la] = pb;
        if (lb >= 0)
            l2p[lb] = pa;
        std::swap(p2l[pa], p2l[pb]);
    };

    for (const GateOp &op : logical.ops()) {
        if (op.type == GateType::BARRIER) {
            result.routed.barrier();
            continue;
        }
        if (op.arity() == 1) {
            GateOp mapped = op;
            mapped.qubits[0] = l2p[op.qubits[0]];
            result.routed.addGate(mapped.type, {mapped.qubits[0]},
                                  mapped.params);
            continue;
        }
        // Two-qubit gate: bring operands together along a shortest path.
        int pa = l2p[op.qubits[0]];
        int pb = l2p[op.qubits[1]];
        if (map.distance(pa, pb) < 0)
            fatal("routeCircuit: operands in disconnected components");
        while (map.distance(pa, pb) > 1) {
            auto path = map.shortestPath(pa, pb);
            swapPhysical(path[0], path[1]);
            pa = l2p[op.qubits[0]];
            pb = l2p[op.qubits[1]];
        }
        result.routed.addGate(op.type, {pa, pb}, op.params);
    }
    result.finalMapping = l2p;
    return result;
}

bool
respectsCoupling(const QuantumCircuit &physical, const CouplingMap &map)
{
    for (const GateOp &op : physical.ops()) {
        if (op.arity() != 2)
            continue;
        if (!map.connected(op.qubits[0], op.qubits[1]))
            return false;
    }
    return true;
}

} // namespace eqc
