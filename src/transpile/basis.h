/**
 * @file
 * Basis translation into the IBMQ native gate set {CX, ID, RZ, SX, X}.
 *
 * Single-qubit rotations are synthesized with the ZSX rule
 *   U3(theta, phi, lambda) ~ RZ(phi+pi) . SX . RZ(theta+pi) . SX . RZ(lambda)
 * (equality up to global phase). Because the middle RZ angle is affine in
 * theta, parameterized RX/RY gates stay symbolically parameterized after
 * translation — the transpiled circuit can be re-bound without
 * re-transpiling, which is what lets EQC client nodes cache their
 * transpilation per device.
 */

#ifndef EQC_TRANSPILE_BASIS_H
#define EQC_TRANSPILE_BASIS_H

#include "circuit/circuit.h"

namespace eqc {

/**
 * Rewrite @p circuit using only {CX, ID, RZ, SX, X} plus MEASURE/BARRIER.
 * SWAPs become 3 CX, CZ becomes H-conjugated CX, RZZ becomes CX-RZ-CX,
 * and all 1q gates are ZSX-synthesized. A peephole pass then merges and
 * prunes adjacent RZ gates.
 */
QuantumCircuit decomposeToBasis(const QuantumCircuit &circuit);

/** true when every op of @p circuit is a native basis gate. */
bool isInBasis(const QuantumCircuit &circuit);

} // namespace eqc

#endif // EQC_TRANSPILE_BASIS_H
