/**
 * @file
 * Initial placement of logical qubits onto physical qubits.
 */

#ifndef EQC_TRANSPILE_LAYOUT_H
#define EQC_TRANSPILE_LAYOUT_H

#include <vector>

#include "circuit/circuit.h"
#include "transpile/coupling_map.h"

namespace eqc {

/** Logical-to-physical qubit assignment: layout[logical] = physical. */
using Layout = std::vector<int>;

/** Identity placement: logical i on physical i. */
Layout trivialLayout(int numLogical);

/**
 * Interaction-weighted greedy placement.
 *
 * Orders logical qubits by how often they participate in two-qubit gates
 * and places them one at a time, choosing for each the free physical
 * qubit that minimizes the distance-weighted interaction cost to the
 * qubits already placed (the first qubit goes to the highest-degree
 * physical node). This finds zero-SWAP embeddings for chain-shaped
 * circuits on line/T/H topologies, mirroring what a dense layout pass
 * does in production transpilers.
 *
 * @param circuit logical circuit (only 2q-gate structure is used)
 * @param map target device connectivity
 */
Layout greedyLayout(const QuantumCircuit &circuit, const CouplingMap &map);

/**
 * Distance-weighted interaction cost of a layout (lower is better);
 * exposed for tests and for layout-quality diagnostics.
 */
double layoutCost(const QuantumCircuit &circuit, const CouplingMap &map,
                  const Layout &layout);

} // namespace eqc

#endif // EQC_TRANSPILE_LAYOUT_H
