#include "replay/journal.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

namespace eqc {
namespace replay {

// ---------------------------------------------------------------------------
// Kind names
// ---------------------------------------------------------------------------

const char *
kindName(EventKind kind)
{
    switch (kind) {
    case EventKind::Admit: return "admit";
    case EventKind::Reject: return "reject";
    case EventKind::Coalesce: return "coalesce";
    case EventKind::CacheHit: return "cache_hit";
    case EventKind::Dispatch: return "dispatch";
    case EventKind::ShardDone: return "shard_done";
    case EventKind::ShardFail: return "shard_fail";
    case EventKind::Replan: return "replan";
    case EventKind::MemberFail: return "member_fail";
    case EventKind::MemberRestore: return "member_restore";
    case EventKind::Drain: return "drain";
    case EventKind::Finalize: return "finalize";
    case EventKind::DeadlineShed: return "deadline_shed";
    case EventKind::MemberJoin: return "member_join";
    case EventKind::MemberLeave: return "member_leave";
    case EventKind::RiderJoin: return "rider_join";
    case EventKind::Route: return "route";
    case EventKind::Forward: return "forward";
    }
    return "?";
}

std::string
hexBits(double v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(doubleBits(v)));
    return buf;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void
key(std::string &out, const char *k)
{
    out += out.back() == '{' ? "\"" : ",\"";
    out += k;
    out += "\":";
}

void
putD(std::string &out, const char *k, double v)
{
    // %.17g round-trips every finite double exactly through strtod.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    key(out, k);
    out += buf;
}

void
putU(std::string &out, const char *k, uint64_t v)
{
    key(out, k);
    out += std::to_string(v);
}

void
putI(std::string &out, const char *k, long long v)
{
    key(out, k);
    out += std::to_string(v);
}

void
putB(std::string &out, const char *k, bool v)
{
    key(out, k);
    out += v ? "true" : "false";
}

void
putS(std::string &out, const char *k, const std::string &v)
{
    key(out, k);
    out += '"';
    for (char c : v) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
putArr(std::string &out, const char *k, const std::vector<double> &v)
{
    key(out, k);
    out += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
        out += buf;
    }
    out += ']';
}

void
serializeRecord(std::string &out, const EventRecord &r)
{
    out += '{';
    putS(out, "k", kindName(r.kind));
    putD(out, "t", r.tH);
    switch (r.kind) {
    case EventKind::Admit:
        putU(out, "job", r.jobId);
        putI(out, "tenant", r.tenant);
        putI(out, "wl", r.workload);
        putI(out, "shots", r.shots);
        putI(out, "prio", r.priority);
        putD(out, "subH", r.submitH);
        putD(out, "deadH", r.deadlineH);
        putArr(out, "params", r.params);
        break;
    case EventKind::Reject:
        putI(out, "tenant", r.tenant);
        putI(out, "wl", r.workload);
        putI(out, "shots", r.shots);
        putI(out, "prio", r.priority);
        putD(out, "subH", r.submitH);
        putD(out, "deadH", r.deadlineH);
        putI(out, "status", r.status);
        putI(out, "depth", r.depth);
        putD(out, "retryS", r.retryAfterS);
        putArr(out, "params", r.params);
        break;
    case EventKind::Coalesce:
        putU(out, "job", r.jobId);
        putU(out, "uid", r.workUid);
        break;
    case EventKind::CacheHit:
        putU(out, "uid", r.workUid);
        putD(out, "storedH", r.storedAtH);
        putI(out, "served", r.servedShots);
        putI(out, "shots", r.shots);
        putD(out, "energy", r.energy);
        putI(out, "riders", r.riders);
        break;
    case EventKind::Dispatch:
        putU(out, "uid", r.workUid);
        putI(out, "member", r.member);
        putI(out, "shots", r.shots);
        putI(out, "seq", r.seq);
        putD(out, "pc", r.pCorrect);
        putI(out, "depth", r.depth);
        break;
    case EventKind::ShardDone:
        putU(out, "uid", r.workUid);
        putI(out, "member", r.member);
        putI(out, "shots", r.shots);
        putI(out, "seq", r.seq);
        putD(out, "energy", r.energy);
        putD(out, "var", r.variance);
        putD(out, "pc", r.pCorrect);
        putI(out, "circuits", r.circuits);
        putD(out, "doneH", r.doneH);
        putB(out, "late", r.late);
        break;
    case EventKind::ShardFail:
        putU(out, "uid", r.workUid);
        putI(out, "member", r.member);
        putI(out, "shots", r.shots);
        putI(out, "seq", r.seq);
        putB(out, "late", r.late);
        break;
    case EventKind::Replan:
        putU(out, "uid", r.workUid);
        putI(out, "round", r.round);
        putI(out, "shots", r.shots);
        putI(out, "planned", r.planned);
        putB(out, "exhausted", r.exhausted);
        break;
    case EventKind::MemberFail:
        putI(out, "member", r.member);
        putD(out, "atH", r.atH);
        break;
    case EventKind::MemberRestore:
        putI(out, "member", r.member);
        putB(out, "auto", r.autoRestore);
        break;
    case EventKind::Drain:
        // Full drains stay byte-compatible with version-1 journals;
        // only a bounded runUntil carries its limit.
        if (std::isfinite(r.atH))
            putD(out, "untilH", r.atH);
        break;
    case EventKind::Finalize:
        putU(out, "job", r.jobId);
        putU(out, "uid", r.workUid);
        putI(out, "tenant", r.tenant);
        putI(out, "wl", r.workload);
        putD(out, "energy", r.energy);
        putD(out, "var", r.variance);
        putD(out, "pc", r.pCorrect);
        putD(out, "doneH", r.doneH);
        putI(out, "shots", r.shots);
        putI(out, "shardsRun", r.shardsRun);
        putI(out, "circuits", r.circuits);
        putI(out, "round", r.round);
        putB(out, "degraded", r.degraded);
        putB(out, "cache", r.fromCache);
        putB(out, "coal", r.coalesced);
        putD(out, "deadH", r.deadlineH);
        putI(out, "shedShots", r.shedShots);
        putB(out, "shed", r.shed);
        break;
    case EventKind::DeadlineShed:
        putU(out, "job", r.jobId);
        putU(out, "uid", r.workUid);
        putI(out, "shots", r.shots);
        putI(out, "shedShots", r.shedShots);
        putD(out, "deadH", r.deadlineH);
        break;
    case EventKind::MemberJoin:
        putI(out, "member", r.member);
        putS(out, "name", r.name);
        putD(out, "atH", r.atH);
        break;
    case EventKind::MemberLeave:
        putI(out, "member", r.member);
        putD(out, "atH", r.atH);
        break;
    case EventKind::RiderJoin:
        putU(out, "job", r.jobId);
        putU(out, "uid", r.workUid);
        putI(out, "shots", r.shots);
        break;
    case EventKind::Route:
        // Carries the full request (like Admit) so a routed replay can
        // re-drive Router::submit from the journal alone; "node" in
        // the generic tail is the ring-owner target.
        putI(out, "tenant", r.tenant);
        putI(out, "wl", r.workload);
        putI(out, "shots", r.shots);
        putI(out, "prio", r.priority);
        putD(out, "subH", r.submitH);
        putD(out, "deadH", r.deadlineH);
        putArr(out, "params", r.params);
        break;
    case EventKind::Forward:
        putI(out, "from", r.fromNode);
        putD(out, "retryS", r.retryAfterS);
        break;
    }
    // Generic multi-node tail: emitted only when non-default, so
    // single-node journals stay byte-identical to the version-1 wire
    // format (node 0, unrouted work emits nothing here).
    if (r.node != 0)
        putI(out, "node", r.node);
    if (r.ruid != 0)
        putU(out, "ruid", r.ruid);
    out += "}\n";
}

} // namespace

std::string
EventJournal::serialize() const
{
    std::string out;
    out.reserve(128 + records_.size() * 96);

    const JournalConfig &c = config;
    out += '{';
    putS(out, "k", "config");
    putI(out, "version", c.version);
    putS(out, "clock", c.clock);
    putU(out, "seed", c.seed);
    putD(out, "ttlH", c.cacheTtlH);
    putU(out, "cacheCap", c.cacheCapacity);
    putU(out, "queueDepth", c.maxQueueDepth);
    putI(out, "tenantQuota", c.maxQueuedPerTenant);
    putI(out, "maxShots", c.maxShotsPerJob);
    putI(out, "minShard", c.minShardShots);
    putD(out, "minLatS", c.minLatencyS);
    putD(out, "warmBoost", c.warmBoost);
    putI(out, "agg", c.aggregation);
    putI(out, "shotMode", c.shotMode);
    putI(out, "pcMode", c.pCorrectMode);
    putB(out, "mitig", c.readoutMitigation);
    putI(out, "requeueRounds", c.maxRequeueRounds);
    putU(out, "reservoir", c.latencyReservoir);
    putD(out, "parkRetryH", c.parkRetryH);
    putD(out, "supBase", c.superviseBaseBackoffH);
    putD(out, "supMax", c.superviseMaxBackoffH);
    putD(out, "coldPenalty", c.coldStartPenalty);
    putD(out, "coldH", c.coldStartH);
    putU(out, "catalogSeed", c.catalogSeed);
    if (c.nodes != 1) {
        putI(out, "nodes", c.nodes);
        putI(out, "vnodes", c.virtualNodes);
        putI(out, "forwardHops", c.forwardHops);
    }
    out += "}\n";

    for (const DeviceSpec &d : c.devices) {
        out += '{';
        putS(out, "k", "device");
        putS(out, "name", d.name);
        putD(out, "spikeRate", d.spikeRatePerHour);
        putD(out, "spikeSev", d.spikeSeverity);
        if (d.node != 0)
            putI(out, "node", d.node);
        out += "}\n";
    }
    for (const WorkloadSpec &w : c.workloads) {
        out += '{';
        putS(out, "k", "workload");
        putS(out, "problem", w.problem);
        putU(out, "initSeed", w.initSeed);
        out += "}\n";
    }
    for (const EventRecord &r : records_)
        serializeRecord(out, r);
    return out;
}

// ---------------------------------------------------------------------------
// Parsing (minimal flat-object JSONL, exactly the dialect serialized)
// ---------------------------------------------------------------------------

namespace {

/** One parsed JSON value: string, raw number text, bool, or array. */
struct Tok
{
    enum Type { Str, Num, Bool, Arr } type = Num;
    std::string s; // Str payload or Num raw text
    bool b = false;
    std::vector<double> arr;

    double d() const { return std::strtod(s.c_str(), nullptr); }
    long long i() const
    {
        return std::strtoll(s.c_str(), nullptr, 10);
    }
    uint64_t u() const
    {
        return std::strtoull(s.c_str(), nullptr, 10);
    }
};

struct Cursor
{
    const char *p;
    const char *end;

    bool done() const { return p >= end; }
    char peek() const { return done() ? '\0' : *p; }
    void skipWs()
    {
        while (!done() && (*p == ' ' || *p == '\t'))
            ++p;
    }
    bool eat(char c)
    {
        skipWs();
        if (peek() != c)
            return false;
        ++p;
        return true;
    }
};

bool
parseString(Cursor &c, std::string &out)
{
    if (!c.eat('"'))
        return false;
    out.clear();
    while (!c.done() && *c.p != '"') {
        char ch = *c.p++;
        if (ch == '\\' && !c.done())
            ch = *c.p++;
        out += ch;
    }
    return c.eat('"');
}

bool
parseNumberText(Cursor &c, std::string &out)
{
    c.skipWs();
    out.clear();
    // Accept the %.17g alphabet, including inf/nan spellings.
    while (!c.done()) {
        char ch = *c.p;
        if ((ch >= '0' && ch <= '9') || ch == '+' || ch == '-' ||
            ch == '.' || ch == 'e' || ch == 'E' || ch == 'i' ||
            ch == 'n' || ch == 'f' || ch == 'a') {
            out += ch;
            ++c.p;
        } else {
            break;
        }
    }
    return !out.empty();
}

bool
parseValue(Cursor &c, Tok &tok)
{
    c.skipWs();
    const char ch = c.peek();
    if (ch == '"') {
        tok.type = Tok::Str;
        return parseString(c, tok.s);
    }
    if (ch == '[') {
        tok.type = Tok::Arr;
        ++c.p;
        c.skipWs();
        if (c.peek() == ']') {
            ++c.p;
            return true;
        }
        for (;;) {
            std::string num;
            if (!parseNumberText(c, num))
                return false;
            tok.arr.push_back(std::strtod(num.c_str(), nullptr));
            c.skipWs();
            if (c.eat(']'))
                return true;
            if (!c.eat(','))
                return false;
        }
    }
    if (ch == 't' || ch == 'f') {
        tok.type = Tok::Bool;
        const char *word = ch == 't' ? "true" : "false";
        for (const char *w = word; *w; ++w)
            if (c.done() || *c.p++ != *w)
                return false;
        tok.b = ch == 't';
        return true;
    }
    tok.type = Tok::Num;
    return parseNumberText(c, tok.s);
}

bool
parseLine(const std::string &line, std::map<std::string, Tok> &out)
{
    Cursor c{line.data(), line.data() + line.size()};
    if (!c.eat('{'))
        return false;
    c.skipWs();
    if (c.eat('}'))
        return true;
    for (;;) {
        std::string k;
        Tok v;
        if (!parseString(c, k) || !c.eat(':') || !parseValue(c, v))
            return false;
        out.emplace(std::move(k), std::move(v));
        if (c.eat('}'))
            return true;
        if (!c.eat(','))
            return false;
    }
}

EventKind
kindFromName(const std::string &name, bool &ok)
{
    static const std::pair<const char *, EventKind> table[] = {
        {"admit", EventKind::Admit},
        {"reject", EventKind::Reject},
        {"coalesce", EventKind::Coalesce},
        {"cache_hit", EventKind::CacheHit},
        {"dispatch", EventKind::Dispatch},
        {"shard_done", EventKind::ShardDone},
        {"shard_fail", EventKind::ShardFail},
        {"replan", EventKind::Replan},
        {"member_fail", EventKind::MemberFail},
        {"member_restore", EventKind::MemberRestore},
        {"drain", EventKind::Drain},
        {"finalize", EventKind::Finalize},
        {"deadline_shed", EventKind::DeadlineShed},
        {"member_join", EventKind::MemberJoin},
        {"member_leave", EventKind::MemberLeave},
        {"rider_join", EventKind::RiderJoin},
        {"route", EventKind::Route},
        {"forward", EventKind::Forward},
    };
    ok = true;
    for (const auto &e : table)
        if (name == e.first)
            return e.second;
    ok = false;
    return EventKind::Drain;
}

/** Field lookup helpers tolerating absent keys (sparse records). */
double
getD(const std::map<std::string, Tok> &m, const char *k, double dflt = 0.0)
{
    auto it = m.find(k);
    return it == m.end() ? dflt : it->second.d();
}

long long
getI(const std::map<std::string, Tok> &m, const char *k, long long dflt = 0)
{
    auto it = m.find(k);
    return it == m.end() ? dflt : it->second.i();
}

uint64_t
getU(const std::map<std::string, Tok> &m, const char *k, uint64_t dflt = 0)
{
    auto it = m.find(k);
    return it == m.end() ? dflt : it->second.u();
}

bool
getB(const std::map<std::string, Tok> &m, const char *k, bool dflt = false)
{
    auto it = m.find(k);
    return it == m.end() ? dflt : it->second.b;
}

std::string
getS(const std::map<std::string, Tok> &m, const char *k)
{
    auto it = m.find(k);
    return it == m.end() ? std::string() : it->second.s;
}

} // namespace

EventJournal
EventJournal::parse(const std::string &text, std::string *err)
{
    EventJournal j;
    if (err)
        err->clear();
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineNo;
        if (line.empty())
            continue;
        std::map<std::string, Tok> m;
        if (!parseLine(line, m)) {
            if (err)
                *err = "journal parse error at line " +
                       std::to_string(lineNo);
            return j;
        }
        const std::string k = getS(m, "k");
        if (k == "config") {
            JournalConfig &c = j.config;
            c.version = static_cast<int>(getI(m, "version", 1));
            c.clock = getS(m, "clock");
            c.seed = getU(m, "seed", 1);
            c.cacheTtlH = getD(m, "ttlH");
            c.cacheCapacity = getU(m, "cacheCap", 256);
            c.maxQueueDepth = getU(m, "queueDepth", 1024);
            c.maxQueuedPerTenant =
                static_cast<int>(getI(m, "tenantQuota", 64));
            c.maxShotsPerJob =
                static_cast<int>(getI(m, "maxShots", 1 << 20));
            c.minShardShots = static_cast<int>(getI(m, "minShard", 64));
            c.minLatencyS = getD(m, "minLatS", 1.0);
            c.warmBoost = getD(m, "warmBoost", 1.25);
            c.aggregation = static_cast<int>(getI(m, "agg"));
            c.shotMode = static_cast<int>(getI(m, "shotMode", 2));
            c.pCorrectMode = static_cast<int>(getI(m, "pcMode"));
            c.readoutMitigation = getB(m, "mitig", true);
            c.maxRequeueRounds =
                static_cast<int>(getI(m, "requeueRounds", 4));
            c.latencyReservoir = getU(m, "reservoir", 4096);
            c.parkRetryH = getD(m, "parkRetryH");
            c.superviseBaseBackoffH = getD(m, "supBase");
            c.superviseMaxBackoffH = getD(m, "supMax", 2.0);
            c.coldStartPenalty = getD(m, "coldPenalty", 0.35);
            c.coldStartH = getD(m, "coldH", 0.25);
            c.catalogSeed = getU(m, "catalogSeed", 2022);
            c.nodes = static_cast<int>(getI(m, "nodes", 1));
            c.virtualNodes = static_cast<int>(getI(m, "vnodes", 64));
            c.forwardHops =
                static_cast<int>(getI(m, "forwardHops", 2));
            continue;
        }
        if (k == "device") {
            DeviceSpec d;
            d.name = getS(m, "name");
            d.spikeRatePerHour = getD(m, "spikeRate", -1.0);
            d.spikeSeverity = getD(m, "spikeSev", -1.0);
            d.node = static_cast<int>(getI(m, "node"));
            j.config.devices.push_back(std::move(d));
            continue;
        }
        if (k == "workload") {
            WorkloadSpec w;
            w.problem = getS(m, "problem");
            w.initSeed = getU(m, "initSeed", 7);
            j.config.workloads.push_back(std::move(w));
            continue;
        }
        bool known = false;
        EventRecord r;
        r.kind = kindFromName(k, known);
        if (!known) {
            if (err)
                *err = "journal: unknown record kind '" + k +
                       "' at line " + std::to_string(lineNo);
            return j;
        }
        r.tH = getD(m, "t");
        r.jobId = getU(m, "job");
        r.workUid = getU(m, "uid");
        r.tenant = static_cast<int>(getI(m, "tenant"));
        r.workload = static_cast<int>(getI(m, "wl", -1));
        r.member = static_cast<int>(getI(m, "member", -1));
        r.shots = static_cast<int>(getI(m, "shots"));
        r.servedShots = static_cast<int>(getI(m, "served"));
        r.seq = static_cast<int>(getI(m, "seq"));
        r.round = static_cast<int>(getI(m, "round"));
        r.planned = static_cast<int>(getI(m, "planned"));
        r.circuits = static_cast<int>(getI(m, "circuits"));
        r.shardsRun = static_cast<int>(getI(m, "shardsRun"));
        r.priority = static_cast<int>(getI(m, "prio"));
        r.status = static_cast<int>(getI(m, "status"));
        r.depth = static_cast<int>(getI(m, "depth"));
        r.riders = static_cast<int>(getI(m, "riders"));
        r.submitH = getD(m, "subH");
        r.atH = getD(m, "atH");
        r.storedAtH = getD(m, "storedH");
        r.doneH = getD(m, "doneH");
        r.retryAfterS = getD(m, "retryS");
        r.energy = getD(m, "energy");
        r.variance = getD(m, "var");
        r.pCorrect = getD(m, "pc");
        r.degraded = getB(m, "degraded");
        r.fromCache = getB(m, "cache");
        r.coalesced = getB(m, "coal");
        r.exhausted = getB(m, "exhausted");
        r.deadlineH = getD(m, "deadH");
        r.shedShots = static_cast<int>(getI(m, "shedShots"));
        r.shed = getB(m, "shed");
        r.late = getB(m, "late");
        r.autoRestore = getB(m, "auto");
        r.name = getS(m, "name");
        r.node = static_cast<int>(getI(m, "node"));
        r.ruid = getU(m, "ruid");
        r.fromNode = static_cast<int>(getI(m, "from", -1));
        if (r.kind == EventKind::Drain)
            r.atH = getD(m, "untilH",
                         std::numeric_limits<double>::infinity());
        auto it = m.find("params");
        if (it != m.end() && it->second.type == Tok::Arr)
            r.params = it->second.arr;
        j.records_.push_back(std::move(r));
    }
    return j;
}

} // namespace replay
} // namespace eqc
