/**
 * @file
 * Deterministic replay journal for the serving layer.
 *
 * The paper's EQC runs a monitoring daemon that watches ensemble
 * members and reacts to drift and failures at runtime; our ServiceNode
 * has all of those reactions (mid-run kills, requeue onto survivors,
 * retry-after backpressure, clock-stamped caches) and — under a
 * VirtualClock — executes them bit-deterministically. This header
 * turns that determinism into an operational artifact:
 *
 *  - EventRecord / EventKind: one compact timestamped record per
 *    ServiceNode lifecycle event (admit, rejection with reason and
 *    retry-after, coalesce, cache hit, shard dispatch, shard
 *    completion, failure timeout, replan, member kill/restore, drain,
 *    finalize).
 *  - JournalSink: the observer interface ServiceNode publishes
 *    records through. Attaching a sink is opt-in and zero-cost when
 *    unset (a null-pointer check per event).
 *  - EventJournal: a sink that buffers records next to a
 *    JournalConfig describing how to rebuild the node (devices, drift
 *    overrides, options, workloads), with a stable JSONL
 *    serialization. Doubles round-trip *exactly* (%.17g), so a
 *    journal parsed back from text replays to hex-bit-identical
 *    results (replay::Replayer) and any failing chaos seed
 *    reproduces from its journal artifact alone.
 *
 * This header depends only on the standard library: the serve layer
 * includes it to publish records, and the replay layer's heavier
 * pieces (Replayer, ChaosEngine, InvariantChecker) sit on top.
 */

#ifndef EQC_REPLAY_JOURNAL_H
#define EQC_REPLAY_JOURNAL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace eqc {
namespace replay {

/** ServiceNode lifecycle event taxonomy (see docs/ARCHITECTURE.md). */
enum class EventKind {
    /** Job admitted; carries the full request so replay can resubmit. */
    Admit,
    /** Job rejected; carries the reason, backlog depth and retry hint. */
    Reject,
    /** A popped job rode an already-open work item (same key). */
    Coalesce,
    /** A work item was answered from the ResultCache. */
    CacheHit,
    /** One shard planned onto a member (intake or requeue round). */
    Dispatch,
    /** A shard's completion event fired with a surviving result. */
    ShardDone,
    /** A shard's failure timeout fired (member died mid-shard). */
    ShardFail,
    /** A requeue round replanned lost shots (or gave up: exhausted). */
    Replan,
    /** failMemberAt(member, atH) was called. */
    MemberFail,
    /** restoreMember(member) was called. */
    MemberRestore,
    /** drain() or runUntil() started running the loop. */
    Drain,
    /** One rider's JobOutcome was produced. */
    Finalize,
    /** A deadline event shed a work item (or a still-queued job). */
    DeadlineShed,
    /** addMember(device, atH) was called. */
    MemberJoin,
    /** removeMember(member, atH) was called. */
    MemberLeave,
    /** A job joined an already-dispatched work item mid-flight. */
    RiderJoin,
    /** Router chose a home node for a request (carries the request). */
    Route,
    /** Router forwarded a capacity-rejected request to a successor. */
    Forward,
};

/** Stable wire name of @p kind (the JSONL "k" field). */
const char *kindName(EventKind kind);

/**
 * One journal record. Sparse: each kind fills only the fields its
 * serialization emits (see journal.cc); the rest keep their zero
 * defaults. Times are serving-clock hours.
 */
struct EventRecord
{
    EventKind kind = EventKind::Drain;
    /** Loop hour the event was recorded at. */
    double tH = 0.0;

    uint64_t jobId = 0;
    uint64_t workUid = 0;
    int tenant = 0;
    int workload = -1;
    int member = -1;
    int shots = 0;
    /** Shots the cached execution covered (CacheHit). */
    int servedShots = 0;
    int seq = 0;
    /** Requeue round (Replan) / requeues (Finalize). */
    int round = 0;
    /** Shards planned this round (Replan). */
    int planned = 0;
    int circuits = 0;
    /** Surviving shards aggregated (Finalize). */
    int shardsRun = 0;
    int priority = 0;
    /** AdmitStatus as int (Reject). */
    int status = 0;
    /** Backlog depth observed (Reject) / member depth (Dispatch). */
    int depth = 0;
    /** Riders on the item (CacheHit). */
    int riders = 0;

    double submitH = 0.0;
    /**
     * Hour the member dies (MemberFail), joins (MemberJoin), leaves
     * (MemberLeave), or the runUntil limit (Drain; +inf = full drain).
     */
    double atH = 0.0;
    /** Store stamp of the served cache entry (CacheHit). */
    double storedAtH = 0.0;
    /** Completion hour (ShardDone/Finalize). */
    double doneH = 0.0;
    double retryAfterS = 0.0;
    double energy = 0.0;
    double variance = 0.0;
    double pCorrect = 0.0;

    bool degraded = false;
    bool fromCache = false;
    bool coalesced = false;
    /** Requeue gave up (Replan). */
    bool exhausted = false;

    /** Deadline carried by the request (Admit/Reject/DeadlineShed/
     *  Finalize; 0 = none). */
    double deadlineH = 0.0;
    /** Shots abandoned by a shed (DeadlineShed/Finalize). */
    int shedShots = 0;
    /** Outcome was deadline-shed (Finalize). */
    bool shed = false;
    /** Shard resolved after its item was already finalized
     *  (ShardDone/ShardFail). */
    bool late = false;
    /** Restore performed by the supervision path (MemberRestore). */
    bool autoRestore = false;
    /** Catalog device name (MemberJoin). */
    std::string name;

    /** Parameter binding (Admit/Reject/Route; bitwise identity). */
    std::vector<double> params;

    /**
     * Node the event happened on (any kind, multi-node journals;
     * Route: the ring-owner target, Forward: the forward target).
     * 0 = the single/first node, so single-node journals stay
     * byte-identical to the pre-router wire format.
     */
    int node = 0;
    /**
     * Router-assigned routed-request uid (Route/Forward, and stamped
     * onto the Admit/Reject chain of a routed request). 0 = not
     * routed; routed uids start at 1.
     */
    uint64_t ruid = 0;
    /** Node the request was forwarded away from (Forward). */
    int fromNode = -1;
    /**
     * Trace id of the job this record belongs to (Admit; from
     * serve::JobRequest::traceId, defaulting to the jobId). In-memory
     * only: never serialized, so journals are byte-identical whether
     * or not a live trace collector (obs::TraceSink) is attached, and
     * parsed journals fall back to the jobId.
     */
    uint64_t traceId = 0;
};

/**
 * Observer hook ServiceNode publishes lifecycle records through.
 * record() is called on the submitting/loop thread only (never from
 * parallel shard workers), so implementations need no locking when
 * the node is driven single-threaded as usual.
 */
class JournalSink
{
  public:
    virtual ~JournalSink() = default;
    virtual void record(const EventRecord &r) = 0;
};

/** One ensemble member of a journaled node, by catalog name. */
struct DeviceSpec
{
    std::string name;
    /** Chaos drift-spike override; < 0 means no override. */
    double spikeRatePerHour = -1.0;
    double spikeSeverity = -1.0;
    /** Node the member belongs to (multi-node journals; 0 = first). */
    int node = 0;
};

/** One registered workload, by problem-factory name. */
struct WorkloadSpec
{
    std::string problem;
    uint64_t initSeed = 7;
};

/**
 * Everything needed to rebuild the recorded node: replayer-side
 * mirror of serve::ServiceOptions (enums as ints; see
 * replay::optionsFor) plus the device and workload lineup.
 */
struct JournalConfig
{
    int version = 1;
    /** "virtual" or "steady" — bit-replay is meaningful for virtual. */
    std::string clock = "virtual";
    uint64_t seed = 1;
    double cacheTtlH = 0.0;
    uint64_t cacheCapacity = 256;
    uint64_t maxQueueDepth = 1024;
    int maxQueuedPerTenant = 64;
    int maxShotsPerJob = 1 << 20;
    int minShardShots = 64;
    double minLatencyS = 1.0;
    double warmBoost = 1.25;
    /** serve::AggregationMode as int. */
    int aggregation = 0;
    /** ShotMode as int (Gaussian = 2). */
    int shotMode = 2;
    /** PCorrectMode as int. */
    int pCorrectMode = 0;
    bool readoutMitigation = true;
    int maxRequeueRounds = 4;
    uint64_t latencyReservoir = 4096;
    /** Park-and-retry interval for unplannable items (0 = legacy). */
    double parkRetryH = 0.0;
    /** Supervised-restore base backoff hours (0 = supervision off). */
    double superviseBaseBackoffH = 0.0;
    /** Supervised-restore backoff cap in hours. */
    double superviseMaxBackoffH = 2.0;
    /** Cold-start weight floor for freshly joined members. */
    double coldStartPenalty = 0.35;
    /** Hours over which a joined member warms to full weight. */
    double coldStartH = 0.25;
    /** Seed the device catalog was built with. */
    uint64_t catalogSeed = 2022;
    /**
     * Router-tier shape (1 node = no router; the fields below are
     * only serialized when nodes > 1, keeping single-node journals
     * byte-identical to the pre-router wire format).
     */
    int nodes = 1;
    /** Virtual nodes per member on the router's hash ring. */
    int virtualNodes = 64;
    /** Max overflow-forward hops per routed request. */
    int forwardHops = 2;
    std::vector<DeviceSpec> devices;
    std::vector<WorkloadSpec> workloads;
};

/**
 * Buffering JournalSink with a stable JSONL serialization: one flat
 * JSON object per line, config/device/workload pseudo-records first,
 * then the event records in publication order. serialize() and
 * parse() round-trip exactly (doubles printed with %.17g), so
 * parse(serialize()) compares bit-equal field by field.
 */
class EventJournal final : public JournalSink
{
  public:
    JournalConfig config;

    void record(const EventRecord &r) override
    {
        records_.push_back(r);
    }

    const std::vector<EventRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** JSONL text of the config and every record. */
    std::string serialize() const;

    /**
     * Parse JSONL produced by serialize(). On malformed input @p err
     * (if non-null) receives a message and the journal returned holds
     * whatever parsed cleanly before the error.
     */
    static EventJournal parse(const std::string &text,
                              std::string *err = nullptr);

  private:
    std::vector<EventRecord> records_;
};

/** Bit pattern of a double (journal identity is bitwise). */
inline uint64_t
doubleBits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/** Bitwise double equality (distinguishes -0.0, compares NaN equal). */
inline bool
bitEqual(double a, double b)
{
    return doubleBits(a) == doubleBits(b);
}

/** "0x..." hex of a double's bit pattern (mismatch diagnostics). */
std::string hexBits(double v);

} // namespace replay
} // namespace eqc

#endif // EQC_REPLAY_JOURNAL_H
