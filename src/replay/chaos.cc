#include "replay/chaos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "device/catalog.h"
#include "replay/replayer.h"
#include "serve/aggregator.h"
#include "serve/router.h"
#include "serve/service_node.h"
#include "vqa/problem.h"

namespace eqc {
namespace replay {

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

namespace {

/** Key of one dispatched shard: (work uid, shard seq). */
using ShardKey = std::pair<uint64_t, int>;

struct ShardTrace
{
    const EventRecord *dispatch = nullptr;
    const EventRecord *resolve = nullptr;
};

void
flag(std::vector<Violation> &v, const char *invariant,
     std::string detail)
{
    v.push_back(Violation{invariant, std::move(detail)});
}

} // namespace

std::vector<Violation>
InvariantChecker::check(const EventJournal &journal)
{
    std::vector<Violation> v;
    const JournalConfig &cfg = journal.config;
    const double inf = std::numeric_limits<double>::infinity();

    std::unordered_map<uint64_t, const EventRecord *> admits;
    std::unordered_map<uint64_t, const EventRecord *> finals;
    // (uid, seq) -> dispatch/resolution trace, ordered for replay of
    // the aggregation (std::map iterates uid asc, seq asc).
    std::map<ShardKey, ShardTrace> shards;
    // First executed (non-cache) Finalize per work uid: the aggregate
    // every rider of the item shares.
    std::unordered_map<uint64_t, const EventRecord *> itemFinal;
    // Everything a node keeps to itself gets audited to itself:
    // member indices, health epochs, loop clocks and cache contents
    // are all node-local, so multi-node journals key this state by
    // the record's node stamp (single-node journals only ever touch
    // node 0, auditing exactly as before).
    struct NodeState
    {
        // Per-member health and membership windows: configured
        // devices span (-inf, inf); live joins open at their join
        // hour, leavers close at theirs. Vectors grow with
        // MemberJoin records.
        std::vector<double> failAtH;
        std::vector<double> joinAtH;
        std::vector<double> leaveAtH;
        int healthEpoch = 0;
        // Energies of executed aggregates this node stored so far
        // (the only legal cache-hit sources — caches are per node).
        std::set<uint64_t> executedEnergyBits;
        // I11: loop-fired records are journaled at the node loop's
        // current hour, which never runs backwards.
        double lastLoopT = -std::numeric_limits<double>::infinity();
    };
    std::map<int, NodeState> nodeStates;
    for (const DeviceSpec &d : cfg.devices) {
        NodeState &ns = nodeStates[d.node];
        ns.failAtH.push_back(inf);
        ns.joinAtH.push_back(-inf);
        ns.leaveAtH.push_back(inf);
    }
    nodeStates[0]; // node 0 exists even in a device-less journal
    // Capacity rejections grouped by (node, hint-hour bits, health
    // epoch): within one group the hint is a pure function of depth,
    // so it must be strictly monotone. Member kills/restores change
    // the alive set the hint minimizes over, hence the epoch split.
    std::map<std::tuple<int, uint64_t, int>,
             std::vector<std::pair<int, double>>>
        rejectGroups;
    // First DeadlineShed record per work uid (I7/I8/I12).
    std::unordered_map<uint64_t, const EventRecord *> shedRecs;
    // Uids already finalized (I12: no shed after the first finalize).
    std::set<uint64_t> finalizedUids;
    bool sawMemberFail = false;
    bool sawMemberLeave = false;
    // Route/Forward/Admit/Reject chains per routed-request uid, in
    // journal order (I13/I14).
    std::map<uint64_t, std::vector<const EventRecord *>> routedSeq;
    auto checkLoopOrder = [&](const EventRecord &r) {
        NodeState &ns = nodeStates[r.node];
        if (r.tH < ns.lastLoopT)
            flag(v, "event-order",
                 std::string(kindName(r.kind)) + " at t=" +
                     std::to_string(r.tH) +
                     " fired after the loop already reached t=" +
                     std::to_string(ns.lastLoopT));
        else
            ns.lastLoopT = r.tH;
    };

    for (const EventRecord &r : journal.records()) {
        switch (r.kind) {
        case EventKind::Admit:
            if (!admits.emplace(r.jobId, &r).second)
                flag(v, "admitted-completes",
                     "job " + std::to_string(r.jobId) +
                         " admitted twice");
            if (r.ruid != 0)
                routedSeq[r.ruid].push_back(&r);
            else if (cfg.nodes > 1)
                flag(v, "routed-exactly-once",
                     "job " + std::to_string(r.jobId) +
                         " admitted without a routed-request uid in "
                         "a multi-node journal");
            break;
        case EventKind::Route:
        case EventKind::Forward:
            if (r.ruid == 0)
                flag(v, "routed-exactly-once",
                     std::string(kindName(r.kind)) + " record at t=" +
                         std::to_string(r.tH) +
                         " carries no routed-request uid");
            else
                routedSeq[r.ruid].push_back(&r);
            break;
        case EventKind::Reject: {
            if (r.ruid != 0)
                routedSeq[r.ruid].push_back(&r);
            const bool capacity =
                r.status ==
                    static_cast<int>(
                        serve::AdmitStatus::RejectedQueueFull) ||
                r.status ==
                    static_cast<int>(
                        serve::AdmitStatus::RejectedTenantQuota);
            if (!capacity)
                break;
            if (!(r.retryAfterS > 0.0))
                flag(v, "backpressure-monotone",
                     "capacity rejection at t=" +
                         std::to_string(r.tH) +
                         " carries a non-positive retry-after of " +
                         std::to_string(r.retryAfterS) + "s");
            rejectGroups[{r.node, doubleBits(r.tH),
                          nodeStates[r.node].healthEpoch}]
                .push_back({r.depth, r.retryAfterS});
            break;
        }
        case EventKind::MemberFail: {
            NodeState &ns = nodeStates[r.node];
            sawMemberFail = true;
            ++ns.healthEpoch;
            if (r.member < 0 || static_cast<std::size_t>(r.member) >=
                                    ns.failAtH.size()) {
                flag(v, "no-zombie-shards",
                     "member_fail names member " +
                         std::to_string(r.member) +
                         " outside the known ensemble");
                break;
            }
            ns.failAtH[static_cast<std::size_t>(r.member)] = r.atH;
            break;
        }
        case EventKind::MemberRestore: {
            NodeState &ns = nodeStates[r.node];
            ++ns.healthEpoch;
            if (r.member >= 0 &&
                static_cast<std::size_t>(r.member) < ns.failAtH.size())
                ns.failAtH[static_cast<std::size_t>(r.member)] = inf;
            break;
        }
        case EventKind::MemberJoin: {
            NodeState &ns = nodeStates[r.node];
            // Joins change the alive set backpressure hints minimize
            // over, so they split I2's epoch groups like fails do.
            ++ns.healthEpoch;
            if (r.member != static_cast<int>(ns.failAtH.size()))
                flag(v, "membership-window",
                     "member_join names index " +
                         std::to_string(r.member) + " but " +
                         std::to_string(ns.failAtH.size()) +
                         " members exist");
            ns.failAtH.push_back(inf);
            ns.joinAtH.push_back(r.atH);
            ns.leaveAtH.push_back(inf);
            break;
        }
        case EventKind::MemberLeave: {
            NodeState &ns = nodeStates[r.node];
            sawMemberLeave = true;
            ++ns.healthEpoch;
            if (r.member < 0 || static_cast<std::size_t>(r.member) >=
                                    ns.leaveAtH.size())
                flag(v, "membership-window",
                     "member_leave names member " +
                         std::to_string(r.member) +
                         " outside the known ensemble");
            else
                ns.leaveAtH[static_cast<std::size_t>(r.member)] =
                    r.atH;
            break;
        }
        case EventKind::Dispatch: {
            NodeState &ns = nodeStates[r.node];
            ShardTrace &t = shards[{r.workUid, r.seq}];
            if (t.dispatch)
                flag(v, "dispatch-resolution",
                     "shard (" + std::to_string(r.workUid) + "," +
                         std::to_string(r.seq) +
                         ") dispatched twice");
            t.dispatch = &r;
            if (r.member < 0 || static_cast<std::size_t>(r.member) >=
                                    ns.joinAtH.size())
                flag(v, "membership-window",
                     "shard (" + std::to_string(r.workUid) + "," +
                         std::to_string(r.seq) +
                         ") dispatched onto unknown member " +
                         std::to_string(r.member));
            else if (r.tH < ns.joinAtH[static_cast<std::size_t>(
                                r.member)] ||
                     r.tH >= ns.leaveAtH[static_cast<std::size_t>(
                                 r.member)])
                flag(v, "membership-window",
                     "shard (" + std::to_string(r.workUid) + "," +
                         std::to_string(r.seq) +
                         ") dispatched at h=" + std::to_string(r.tH) +
                         " outside member " + std::to_string(r.member) +
                         "'s membership window");
            break;
        }
        case EventKind::ShardDone:
        case EventKind::ShardFail: {
            NodeState &ns = nodeStates[r.node];
            checkLoopOrder(r);
            ShardTrace &t = shards[{r.workUid, r.seq}];
            if (t.resolve)
                flag(v, "dispatch-resolution",
                     "shard (" + std::to_string(r.workUid) + "," +
                         std::to_string(r.seq) +
                         ") resolved twice");
            t.resolve = &r;
            if (r.kind == EventKind::ShardDone && r.member >= 0 &&
                static_cast<std::size_t>(r.member) <
                    ns.failAtH.size() &&
                r.doneH >=
                    ns.failAtH[static_cast<std::size_t>(r.member)])
                flag(v, "no-zombie-shards",
                     "shard (" + std::to_string(r.workUid) + "," +
                         std::to_string(r.seq) +
                         ") completed at h=" + std::to_string(r.doneH) +
                         " on member " + std::to_string(r.member) +
                         " killed at h=" +
                         std::to_string(ns.failAtH[static_cast<
                             std::size_t>(r.member)]));
            break;
        }
        case EventKind::CacheHit:
            if (cfg.cacheTtlH <= 0.0)
                flag(v, "cache-freshness",
                     "cache hit recorded with reuse disabled "
                     "(ttl <= 0)");
            else if (r.tH - r.storedAtH > cfg.cacheTtlH)
                flag(v, "cache-freshness",
                     "work " + std::to_string(r.workUid) +
                         " served an entry aged " +
                         std::to_string(r.tH - r.storedAtH) +
                         "h against a TTL of " +
                         std::to_string(cfg.cacheTtlH) + "h");
            if (r.servedShots < r.shots)
                flag(v, "cache-freshness",
                     "work " + std::to_string(r.workUid) +
                         " served " + std::to_string(r.servedShots) +
                         " cached shots for a " +
                         std::to_string(r.shots) + "-shot request");
            if (!nodeStates[r.node].executedEnergyBits.count(
                    doubleBits(r.energy)))
                flag(v, "cache-freshness",
                     "work " + std::to_string(r.workUid) +
                         " served energy " + hexBits(r.energy) +
                         " that no earlier execution on its node "
                         "stored");
            break;
        case EventKind::DeadlineShed: {
            checkLoopOrder(r);
            if (finalizedUids.count(r.workUid))
                flag(v, "shed-before-finalize",
                     "work " + std::to_string(r.workUid) +
                         " shed at t=" + std::to_string(r.tH) +
                         " after it already finalized");
            if (!shedRecs.emplace(r.workUid, &r).second)
                flag(v, "deadline-resolution",
                     "work " + std::to_string(r.workUid) +
                         " shed twice");
            break;
        }
        case EventKind::Finalize:
            checkLoopOrder(r);
            finalizedUids.insert(r.workUid);
            if (!finals.emplace(r.jobId, &r).second)
                flag(v, "admitted-completes",
                     "job " + std::to_string(r.jobId) +
                         " finalized twice");
            if (!r.fromCache) {
                itemFinal.emplace(r.workUid, &r);
                nodeStates[r.node].executedEnergyBits.insert(
                    doubleBits(r.energy));
            }
            break;
        default:
            break;
        }
    }

    // I1: every admitted job finalizes, with its full shot budget
    // unless degraded — and degradation implies a member failure.
    for (const auto &kv : admits) {
        auto it = finals.find(kv.first);
        if (it == finals.end()) {
            flag(v, "admitted-completes",
                 "job " + std::to_string(kv.first) +
                     " was admitted but never finalized");
            continue;
        }
        const EventRecord &fin = *it->second;
        if (!fin.degraded && fin.shots < kv.second->shots)
            flag(v, "admitted-completes",
                 "job " + std::to_string(kv.first) + " requested " +
                     std::to_string(kv.second->shots) +
                     " shots but finalized undegraded with " +
                     std::to_string(fin.shots));
        if (fin.degraded && !sawMemberFail && !sawMemberLeave &&
            !fin.shed)
            flag(v, "admitted-completes",
                 "job " + std::to_string(kv.first) +
                     " degraded without any member failure, "
                     "member leave, or deadline shed on record");
    }
    for (const auto &kv : finals)
        if (!admits.count(kv.first))
            flag(v, "admitted-completes",
                 "job " + std::to_string(kv.first) +
                     " finalized without an admission record");

    // I2: within one (instant, health-epoch) group, retry-after hints
    // strictly increase with the observed backlog depth.
    for (auto &kv : rejectGroups) {
        auto &g = kv.second;
        std::sort(g.begin(), g.end(),
                  [](const std::pair<int, double> &a,
                     const std::pair<int, double> &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second;
                  });
        for (std::size_t i = 1; i < g.size(); ++i) {
            const bool deeper = g[i].first > g[i - 1].first;
            const bool ok = deeper
                                ? g[i].second > g[i - 1].second
                                : bitEqual(g[i].second, g[i - 1].second);
            if (!ok)
                flag(v, "backpressure-monotone",
                     "retry-after " + std::to_string(g[i].second) +
                         "s at depth " + std::to_string(g[i].first) +
                         " does not dominate " +
                         std::to_string(g[i - 1].second) +
                         "s at depth " +
                         std::to_string(g[i - 1].first));
        }
    }

    // I6 + I4: every dispatch resolves exactly once and matches its
    // plan; re-aggregating the survivors (failed shards never enter,
    // so survivor weights renormalize to 1 by construction) must
    // reproduce the finalized aggregate bit for bit.
    uint64_t openUid = 0;
    // Shed items finalize through the equi-weighted fallback
    // aggregator regardless of the configured mode.
    auto modeFor = [&](uint64_t uid) {
        return shedRecs.count(uid)
                   ? serve::AggregationMode::EquiWeighted
                   : static_cast<serve::AggregationMode>(
                         cfg.aggregation);
    };
    serve::Aggregator agg(modeFor(0));
    auto finishUid = [&](uint64_t uid, serve::Aggregator &a) {
        auto it = itemFinal.find(uid);
        if (it == itemFinal.end())
            return;
        const EventRecord &fin = *it->second;
        if (!bitEqual(a.energy(), fin.energy))
            flag(v, "survivor-renormalization",
                 "work " + std::to_string(uid) + ": re-aggregated " +
                     hexBits(a.energy()) + " vs finalized " +
                     hexBits(fin.energy));
        if (!bitEqual(a.variance(), fin.variance))
            flag(v, "survivor-renormalization",
                 "work " + std::to_string(uid) +
                     ": variance diverges (" + hexBits(a.variance()) +
                     " vs " + hexBits(fin.variance) + ")");
        if (!bitEqual(a.pCorrect(), fin.pCorrect))
            flag(v, "survivor-renormalization",
                 "work " + std::to_string(uid) +
                     ": pCorrect diverges (" + hexBits(a.pCorrect()) +
                     " vs " + hexBits(fin.pCorrect) + ")");
        auto sit = shedRecs.find(uid);
        if (sit != shedRecs.end()) {
            // A shed item completes at the hour the deadline fired,
            // not at its (truncated) aggregate's last shard hour.
            if (!bitEqual(fin.doneH, sit->second->tH))
                flag(v, "survivor-renormalization",
                     "work " + std::to_string(uid) +
                         ": shed completion hour " +
                         hexBits(fin.doneH) +
                         " differs from the shed event hour " +
                         hexBits(sit->second->tH));
        } else if (!bitEqual(a.completeH(), fin.doneH)) {
            flag(v, "survivor-renormalization",
                 "work " + std::to_string(uid) +
                     ": completion hour diverges");
        }
        if (a.shotsExecuted() != fin.shots ||
            a.shardsExecuted() != fin.shardsRun ||
            a.circuitsRun() != fin.circuits)
            flag(v, "survivor-renormalization",
                 "work " + std::to_string(uid) +
                     ": shot/shard/circuit totals diverge from the "
                     "finalized outcome");
    };
    for (const auto &kv : shards) {
        const uint64_t uid = kv.first.first;
        const ShardTrace &t = kv.second;
        if (uid != openUid) {
            if (openUid)
                finishUid(openUid, agg);
            openUid = uid;
            agg = serve::Aggregator(modeFor(uid));
        }
        if (!t.dispatch) {
            flag(v, "dispatch-resolution",
                 "shard (" + std::to_string(uid) + "," +
                     std::to_string(kv.first.second) +
                     ") resolved without a dispatch");
            continue;
        }
        if (!t.resolve) {
            flag(v, "dispatch-resolution",
                 "shard (" + std::to_string(uid) + "," +
                     std::to_string(kv.first.second) +
                     ") dispatched but never resolved");
            continue;
        }
        if (t.resolve->member != t.dispatch->member ||
            t.resolve->shots != t.dispatch->shots)
            flag(v, "dispatch-resolution",
                 "shard (" + std::to_string(uid) + "," +
                     std::to_string(kv.first.second) +
                     ") resolved with a member/shots pair different "
                     "from its dispatch");
        if (t.resolve->late)
            continue; // resolved after a deadline shed: not aggregated
        serve::ShardResult s;
        s.member = t.resolve->member;
        s.shots = t.resolve->shots;
        s.failed = t.resolve->kind == EventKind::ShardFail;
        s.pCorrect = t.resolve->pCorrect;
        s.energy = t.resolve->energy;
        s.variance = t.resolve->variance;
        s.completeH = t.resolve->doneH;
        s.circuitsRun = t.resolve->circuits;
        agg.add(s);
    }
    if (openUid)
        finishUid(openUid, agg);
    // Executed items that planned no shard at all (every member dead
    // at intake) still finalize; their aggregate must be the empty
    // one.
    for (const auto &kv : itemFinal) {
        if (shards.lower_bound({kv.first, 0}) != shards.end() &&
            shards.lower_bound({kv.first, 0})->first.first ==
                kv.first)
            continue;
        serve::Aggregator empty(modeFor(kv.first));
        finishUid(kv.first, empty);
    }

    // I7: every admitted job with an SLO resolves to exactly one of
    // met (finalized at or before the deadline, no shed record) or
    // shed (shed record present, outcome marked shed and degraded).
    for (const auto &kv : admits) {
        const EventRecord &ad = *kv.second;
        if (ad.deadlineH <= 0.0)
            continue;
        auto it = finals.find(kv.first);
        if (it == finals.end())
            continue; // I1 already flagged the missing finalize
        const EventRecord &fin = *it->second;
        const bool hasShedRec = shedRecs.count(fin.workUid) > 0;
        if (fin.shed != hasShedRec)
            flag(v, "deadline-resolution",
                 "job " + std::to_string(kv.first) +
                     (fin.shed
                          ? " finalized shed without a deadline_shed "
                            "record"
                          : " finalized met although its work item "
                            "has a deadline_shed record"));
        if (!fin.shed && fin.doneH > ad.deadlineH)
            flag(v, "deadline-resolution",
                 "job " + std::to_string(kv.first) +
                     " claims a met deadline but finalized at h=" +
                     std::to_string(fin.doneH) +
                     " past its SLO of h=" +
                     std::to_string(ad.deadlineH));
        if (fin.shed && !fin.degraded)
            flag(v, "deadline-resolution",
                 "job " + std::to_string(kv.first) +
                     " shed but not marked degraded");
    }
    for (const auto &kv : shedRecs) {
        auto it = itemFinal.find(kv.first);
        if (it == itemFinal.end() || !it->second->shed)
            flag(v, "deadline-resolution",
                 "work " + std::to_string(kv.first) +
                     " has a deadline_shed record but never "
                     "finalized shed");
    }

    // I8: a shed item's completed + shed shots account for exactly
    // its budget (the largest rider request), and the finalized
    // totals match the shed record.
    std::unordered_map<uint64_t, int> uidBudget;
    for (const auto &kv : finals) {
        auto a = admits.find(kv.first);
        if (a == admits.end())
            continue;
        int &b = uidBudget[kv.second->workUid];
        b = std::max(b, a->second->shots);
    }
    for (const auto &kv : shedRecs) {
        auto it = itemFinal.find(kv.first);
        if (it == itemFinal.end())
            continue;
        const EventRecord &fin = *it->second;
        const EventRecord &shedRec = *kv.second;
        if (fin.shots != shedRec.shots ||
            fin.shedShots != shedRec.shedShots)
            flag(v, "shed-shot-accounting",
                 "work " + std::to_string(kv.first) +
                     " finalized with " + std::to_string(fin.shots) +
                     "+" + std::to_string(fin.shedShots) +
                     " (completed+shed) shots but its shed record "
                     "says " +
                     std::to_string(shedRec.shots) + "+" +
                     std::to_string(shedRec.shedShots));
        auto b = uidBudget.find(kv.first);
        if (b != uidBudget.end() &&
            fin.shots + fin.shedShots != b->second)
            flag(v, "shed-shot-accounting",
                 "work " + std::to_string(kv.first) + " completed " +
                     std::to_string(fin.shots) + " and shed " +
                     std::to_string(fin.shedShots) +
                     " shots against a budget of " +
                     std::to_string(b->second));
    }

    // I10: every rider of one work item finalizes with the same
    // aggregate bits and the same outcome flags — coalesced and
    // rider-joined jobs are indistinguishable from the lead.
    std::unordered_map<uint64_t, const EventRecord *> uidLead;
    for (const auto &kv : finals) {
        const EventRecord &fin = *kv.second;
        auto lead = uidLead.emplace(fin.workUid, &fin);
        if (lead.second)
            continue;
        const EventRecord &l = *lead.first->second;
        if (!bitEqual(fin.energy, l.energy) ||
            !bitEqual(fin.variance, l.variance) ||
            !bitEqual(fin.pCorrect, l.pCorrect))
            flag(v, "coalesced-rider-consistency",
                 "work " + std::to_string(fin.workUid) + ": jobs " +
                     std::to_string(l.jobId) + " and " +
                     std::to_string(fin.jobId) +
                     " finalized different aggregate bits");
        if (fin.shots != l.shots || fin.shardsRun != l.shardsRun ||
            fin.circuits != l.circuits || fin.round != l.round)
            flag(v, "coalesced-rider-consistency",
                 "work " + std::to_string(fin.workUid) + ": jobs " +
                     std::to_string(l.jobId) + " and " +
                     std::to_string(fin.jobId) +
                     " finalized different shot/shard/round totals");
        if (fin.degraded != l.degraded || fin.shed != l.shed ||
            fin.shedShots != l.shedShots ||
            fin.fromCache != l.fromCache)
            flag(v, "coalesced-rider-consistency",
                 "work " + std::to_string(fin.workUid) + ": jobs " +
                     std::to_string(l.jobId) + " and " +
                     std::to_string(fin.jobId) +
                     " journaled different outcome bits");
        if (!fin.fromCache && !bitEqual(fin.doneH, l.doneH))
            flag(v, "coalesced-rider-consistency",
                 "work " + std::to_string(fin.workUid) + ": jobs " +
                     std::to_string(l.jobId) + " and " +
                     std::to_string(fin.jobId) +
                     " finalized at different hours");
    }

    // I13 + I14: walk each routed request's Route/Forward/verdict
    // chain in journal order. The chain must open with exactly one
    // Route, every verdict must land on the node the router last sent
    // the request to, at most one Admit may occur and it ends the
    // chain — and every Forward must be justified by the rejection
    // that precedes it (same node, positive retry-after hint).
    for (const auto &kv : routedSeq) {
        const std::string tag = "request ruid " +
                                std::to_string(kv.first);
        const EventRecord *route = nullptr;
        const EventRecord *lastVerdict = nullptr;
        const EventRecord *pendingFwd = nullptr;
        bool admitted = false;
        for (const EventRecord *e : kv.second) {
            switch (e->kind) {
            case EventKind::Route:
                if (route)
                    flag(v, "routed-exactly-once",
                         tag + " routed twice");
                route = e;
                break;
            case EventKind::Forward:
                if (!lastVerdict ||
                    lastVerdict->kind != EventKind::Reject)
                    flag(v, "forward-only-on-rejection",
                         tag + " forwarded to node " +
                             std::to_string(e->node) +
                             " without a preceding rejection");
                else if (!(lastVerdict->retryAfterS > 0.0))
                    flag(v, "forward-only-on-rejection",
                         tag + " forwarded after a rejection "
                               "carrying no retry-after hint "
                               "(status " +
                             std::to_string(lastVerdict->status) +
                             ")");
                else if (lastVerdict->node != e->fromNode)
                    flag(v, "forward-only-on-rejection",
                         tag + " forward claims from-node " +
                             std::to_string(e->fromNode) +
                             " but the rejection was on node " +
                             std::to_string(lastVerdict->node));
                pendingFwd = e;
                break;
            case EventKind::Admit:
            case EventKind::Reject: {
                if (admitted)
                    flag(v, "routed-exactly-once",
                         tag + " got a verdict after it was already "
                               "admitted");
                if (!route) {
                    flag(v, "routed-exactly-once",
                         tag + " got a verdict without a route "
                               "record");
                } else {
                    const int expect =
                        pendingFwd ? pendingFwd->node : route->node;
                    if (e->node != expect)
                        flag(v, "routed-exactly-once",
                             tag + " got a verdict on node " +
                                 std::to_string(e->node) +
                                 " but the router sent it to node " +
                                 std::to_string(expect));
                }
                pendingFwd = nullptr;
                lastVerdict = e;
                if (e->kind == EventKind::Admit)
                    admitted = true;
                break;
            }
            default:
                break;
            }
        }
        if (route && !lastVerdict)
            flag(v, "routed-exactly-once",
                 tag + " was routed but never reached a verdict");
        else if (pendingFwd)
            flag(v, "routed-exactly-once",
                 tag + " ends on a forward with no verdict from the "
                       "target node");
    }

    return v;
}

// ---------------------------------------------------------------------------
// Chaos engine
// ---------------------------------------------------------------------------

ChaosReport
ChaosEngine::run(TaskPool *pool)
{
    if (opts_.nodes > 1)
        return runRouted(pool);
    const ChaosOptions &o = opts_;
    journal_ = EventJournal();
    ChaosReport rep;
    rep.seed = o.seed;

    Rng rng = Rng(o.seed).fork("chaos");

    // Draw a distinct random lineup from the evaluation catalog and
    // dial some members' drift incidents up (the spike travels into
    // the journal config so replays rebuild the same timelines).
    std::vector<Device> catalog = evaluationEnsemble();
    const int members =
        std::max(1, std::min<int>(o.members,
                                  static_cast<int>(catalog.size())));
    std::vector<int> idx(catalog.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::vector<Device> devices;
    std::vector<DeviceSpec> specs;
    for (int i = 0; i < members; ++i) {
        const int j =
            rng.uniformInt(i, static_cast<int>(idx.size()) - 1);
        std::swap(idx[static_cast<std::size_t>(i)],
                  idx[static_cast<std::size_t>(j)]);
        Device dev = catalog[static_cast<std::size_t>(
            idx[static_cast<std::size_t>(i)])];
        DeviceSpec spec;
        spec.name = dev.name;
        if (rng.bernoulli(o.driftSpikeProb)) {
            spec.spikeRatePerHour = rng.uniform(0.3, 2.0);
            spec.spikeSeverity = rng.uniform(3.0, 10.0);
            dev.drift = dev.drift.spiked(spec.spikeRatePerHour,
                                         spec.spikeSeverity);
            ++rep.driftSpikes;
        }
        devices.push_back(std::move(dev));
        specs.push_back(std::move(spec));
    }

    serve::ServiceOptions so;
    so.seed = splitmix64(o.seed ^ 0xC4A05EEDull);
    so.resultCacheTtlH = o.cacheTtlH;
    so.admission.maxQueueDepth = o.queueDepth;
    so.admission.maxQueuedPerTenant = o.tenantQuota;
    so.scheduler.minShardShots = 32;
    static const serve::AggregationMode modes[] = {
        serve::AggregationMode::FidelityWeighted,
        serve::AggregationMode::EquiWeighted,
        serve::AggregationMode::MajorityVote,
    };
    so.aggregation = modes[o.seed % 3];

    SteadyClock steady(o.timescaleS);
    serve::ServiceNode node(devices, so,
                            o.steadyClock ? &steady : nullptr);
    journal_.config = describeNode(
        so, specs,
        {{"heisenberg_vqe", 7}, {"ring_maxcut_qaoa", 7}});
    if (o.steadyClock)
        journal_.config.clock = "steady";
    node.setJournalSink(&journal_);

    VqaProblem vqe = problemByName("heisenberg_vqe", 7);
    VqaProblem qaoa = problemByName("ring_maxcut_qaoa", 7);
    const serve::WorkloadId wVqe =
        node.registerWorkload(vqe.ansatz, vqe.hamiltonian);
    const serve::WorkloadId wQaoa =
        node.registerWorkload(qaoa.ansatz, qaoa.hamiltonian);

    std::vector<bool> dead(static_cast<std::size_t>(members), false);
    // Catalog devices not in the starting lineup: the join pool.
    int nextSpare = members;
    const int pairs = (o.tenants + 1) / 2;
    std::vector<int> lastRoundKey(static_cast<std::size_t>(pairs), -1);
    double baseH = 0.0;
    const int shotSteps = std::max(1, o.maxShots / 64);

    for (int round = 0; round < o.rounds; ++round) {
        // Probabilistic restores first: a member brought back before
        // the round's submissions is eligible for planning again.
        for (std::size_t m = 0; m < dead.size(); ++m) {
            if (dead[m] && rng.bernoulli(o.restoreProb)) {
                node.restoreMember(m);
                dead[m] = false;
                ++rep.restores;
            }
        }

        // Live membership churn: join a spare catalog device or
        // retire an active member. All draws are gated on churnProb
        // so legacy seeds stay byte-stable with the knob off.
        if (o.churnProb > 0.0 && rng.bernoulli(o.churnProb)) {
            const bool canJoin =
                nextSpare < static_cast<int>(idx.size());
            if (canJoin && rng.bernoulli(0.5)) {
                Device dev = catalog[static_cast<std::size_t>(
                    idx[static_cast<std::size_t>(nextSpare++)])];
                node.addMember(std::move(dev),
                               baseH + rng.uniform(0.0, 0.2));
                dead.push_back(false);
                ++rep.joins;
            } else {
                const int m = rng.uniformInt(
                    0, static_cast<int>(dead.size()) - 1);
                node.removeMember(static_cast<std::size_t>(m),
                                  baseH + rng.uniform(0.0, 0.3));
                ++rep.leaves;
            }
        }

        // Per-pair round keys: a pair resubmitting an earlier round's
        // binding walks into the result cache; otherwise the pair's
        // two tenants still share a binding and coalesce.
        std::vector<int> roundKey(static_cast<std::size_t>(pairs),
                                  round);
        for (int p = 0; p < pairs; ++p) {
            if (lastRoundKey[static_cast<std::size_t>(p)] >= 0 &&
                rng.bernoulli(o.repeatProb))
                roundKey[static_cast<std::size_t>(p)] =
                    lastRoundKey[static_cast<std::size_t>(p)];
            lastRoundKey[static_cast<std::size_t>(p)] =
                roundKey[static_cast<std::size_t>(p)];
        }

        // Normal traffic: pairs of tenants submit identical bindings.
        for (int t = 0; t < o.tenants; ++t) {
            const int pair = t / 2;
            const bool useQaoa = pair % 2 == 1;
            const VqaProblem &prob = useQaoa ? qaoa : vqe;
            serve::JobRequest req;
            req.tenantId = t;
            req.workload = useQaoa ? wQaoa : wVqe;
            req.params = prob.initialParams;
            req.params[0] += 0.13 * pair;
            req.params.back() +=
                0.037 * roundKey[static_cast<std::size_t>(pair)];
            req.shots = 64 * rng.uniformInt(1, shotSteps);
            req.priority = rng.uniformInt(0, 2);
            req.submitH = baseH + rng.uniform(0.0, 0.05);
            if (rng.bernoulli(o.skewProb)) {
                // Clock-skewed burst: a submitter claiming an hour
                // already in the past (clamped to now) or far ahead.
                req.submitH =
                    rng.bernoulli(0.5)
                        ? std::max(0.0,
                                   baseH - rng.uniform(0.0, 0.3))
                        : baseH + rng.uniform(0.3, 0.8);
                ++rep.skewed;
            }
            if (o.deadlineProb > 0.0 &&
                rng.bernoulli(o.deadlineProb))
                // Tight enough that mid-flight sheds actually occur,
                // loose enough that most SLOs are attainable. Skewed
                // submitters can blow their own SLO at the door.
                req.deadlineH = req.submitH + rng.uniform(0.05, 0.6);
            node.submit(req);
        }

        // Tenant flood: one tenant hammers the door far past both the
        // node-wide depth and its own quota.
        if (rng.bernoulli(o.floodProb)) {
            ++rep.floods;
            serve::JobRequest flood;
            flood.tenantId = rng.uniformInt(0, o.tenants - 1);
            flood.workload = wVqe;
            flood.params = vqe.initialParams;
            flood.shots = 64;
            flood.priority = 0;
            flood.submitH = baseH;
            const int burst = static_cast<int>(o.queueDepth) + 4;
            for (int i = 0; i < burst; ++i)
                node.submit(flood);
        }

        // Kills aimed at the window the coming drain executes in:
        // nextTimeH() is the earliest pending intake, so a kill hour
        // shortly after it lands mid-run and forces requeues.
        const double windowH =
            std::isfinite(node.loop().nextTimeH())
                ? node.loop().nextTimeH()
                : baseH;
        for (std::size_t m = 0; m < dead.size(); ++m) {
            if (!dead[m] && rng.bernoulli(o.killProb)) {
                node.failMemberAt(m, windowH + rng.uniform(0.0, 0.5));
                dead[m] = true;
                ++rep.kills;
            }
        }

        std::vector<serve::JobOutcome> out = node.drain(pool);
        rep.jobsCompleted += static_cast<int>(out.size());
        baseH = node.loop().now() + 0.01;
    }

    node.setJournalSink(nullptr);
    rep.counters = node.counters();
    rep.sheds = static_cast<int>(rep.counters.deadlineSheds);
    rep.violations = InvariantChecker::check(journal_);

    // Wall-clock journals carry real timestamps and are not
    // bit-replayable; the invariant audit above still applies.
    if (o.verifyReplay && !o.steadyClock) {
        std::string err;
        EventJournal parsed =
            EventJournal::parse(journal_.serialize(), &err);
        if (!err.empty()) {
            flag(rep.violations, "journal-roundtrip", err);
        } else {
            Replayer replayer(std::move(parsed));
            ReplayResult rr = replayer.run(pool);
            rep.replayVerified = true;
            for (const std::string &m : rr.mismatches)
                flag(rep.violations, "replay-divergence", m);
        }
    }
    return rep;
}

ChaosReport
ChaosEngine::runRouted(TaskPool *pool)
{
    const ChaosOptions &o = opts_;
    journal_ = EventJournal();
    ChaosReport rep;
    rep.seed = o.seed;

    Rng rng = Rng(o.seed).fork("chaos-routed");
    const int N = std::max(2, o.nodes);

    // Per-node lineups drawn from the evaluation catalog. Nodes may
    // front the same catalog device (they are separate simulators);
    // drift spikes travel into the journal config per spec.
    std::vector<Device> catalog = evaluationEnsemble();
    const int members =
        std::max(1, std::min<int>(o.members,
                                  static_cast<int>(catalog.size())));

    // Every node shares one ServiceOptions (the journal config
    // describes the whole fleet); the Router spans their id ranges.
    serve::ServiceOptions so;
    so.seed = splitmix64(o.seed ^ 0xC4A05EEDull);
    so.resultCacheTtlH = o.cacheTtlH;
    so.admission.maxQueueDepth = o.queueDepth;
    so.admission.maxQueuedPerTenant = o.tenantQuota;
    so.scheduler.minShardShots = 32;
    static const serve::AggregationMode modes[] = {
        serve::AggregationMode::FidelityWeighted,
        serve::AggregationMode::EquiWeighted,
        serve::AggregationMode::MajorityVote,
    };
    so.aggregation = modes[o.seed % 3];

    serve::RouterOptions ro;
    ro.seed = splitmix64(o.seed ^ 0x526F7574ull);
    serve::Router router(ro);
    std::vector<DeviceSpec> specs;
    for (int n = 0; n < N; ++n) {
        std::vector<Device> devices;
        for (int i = 0; i < members; ++i) {
            const int j = rng.uniformInt(
                0, static_cast<int>(catalog.size()) - 1);
            Device dev = catalog[static_cast<std::size_t>(j)];
            DeviceSpec spec;
            spec.name = dev.name;
            spec.node = n;
            if (rng.bernoulli(o.driftSpikeProb)) {
                spec.spikeRatePerHour = rng.uniform(0.3, 2.0);
                spec.spikeSeverity = rng.uniform(3.0, 10.0);
                dev.drift = dev.drift.spiked(spec.spikeRatePerHour,
                                             spec.spikeSeverity);
                ++rep.driftSpikes;
            }
            devices.push_back(std::move(dev));
            specs.push_back(std::move(spec));
        }
        router.addNode(std::move(devices), so);
    }

    journal_.config = describeNode(
        so, specs,
        {{"heisenberg_vqe", 7}, {"ring_maxcut_qaoa", 7}});
    journal_.config.nodes = N;
    journal_.config.virtualNodes = ro.virtualNodes;
    journal_.config.forwardHops = ro.forwardHops;
    router.setJournalSink(&journal_);

    VqaProblem vqe = problemByName("heisenberg_vqe", 7);
    VqaProblem qaoa = problemByName("ring_maxcut_qaoa", 7);
    const serve::WorkloadId wVqe =
        router.registerWorkload(vqe.ansatz, vqe.hamiltonian);
    const serve::WorkloadId wQaoa =
        router.registerWorkload(qaoa.ansatz, qaoa.hamiltonian);

    // dead[n][m]: node n's member m is currently killed.
    std::vector<std::vector<bool>> dead(
        static_cast<std::size_t>(N),
        std::vector<bool>(static_cast<std::size_t>(members), false));
    const int pairs = (o.tenants + 1) / 2;
    std::vector<int> lastRoundKey(static_cast<std::size_t>(pairs), -1);
    double baseH = 0.0;
    const int shotSteps = std::max(1, o.maxShots / 64);

    for (int round = 0; round < o.rounds; ++round) {
        // Probabilistic restores, per node.
        for (int n = 0; n < N; ++n) {
            auto &d = dead[static_cast<std::size_t>(n)];
            for (std::size_t m = 0; m < d.size(); ++m) {
                if (d[m] && rng.bernoulli(o.restoreProb)) {
                    router.node(static_cast<std::size_t>(n))
                        .restoreMember(m);
                    d[m] = false;
                    ++rep.restores;
                }
            }
        }

        // Round keys as in the single-node schedule: pairs repeating
        // an earlier binding exercise their home node's cache.
        std::vector<int> roundKey(static_cast<std::size_t>(pairs),
                                  round);
        for (int p = 0; p < pairs; ++p) {
            if (lastRoundKey[static_cast<std::size_t>(p)] >= 0 &&
                rng.bernoulli(o.repeatProb))
                roundKey[static_cast<std::size_t>(p)] =
                    lastRoundKey[static_cast<std::size_t>(p)];
            lastRoundKey[static_cast<std::size_t>(p)] =
                roundKey[static_cast<std::size_t>(p)];
        }

        // Normal traffic through the router: distinct pair bindings
        // hash to distinct home nodes, so the keyspace spreads.
        for (int t = 0; t < o.tenants; ++t) {
            const int pair = t / 2;
            const bool useQaoa = pair % 2 == 1;
            const VqaProblem &prob = useQaoa ? qaoa : vqe;
            serve::JobRequest req;
            req.tenantId = t;
            req.workload = useQaoa ? wQaoa : wVqe;
            req.params = prob.initialParams;
            req.params[0] += 0.13 * pair;
            req.params.back() +=
                0.037 * roundKey[static_cast<std::size_t>(pair)];
            req.shots = 64 * rng.uniformInt(1, shotSteps);
            req.priority = rng.uniformInt(0, 2);
            req.submitH = baseH + rng.uniform(0.0, 0.05);
            if (rng.bernoulli(o.skewProb)) {
                req.submitH =
                    rng.bernoulli(0.5)
                        ? std::max(0.0,
                                   baseH - rng.uniform(0.0, 0.3))
                        : baseH + rng.uniform(0.3, 0.8);
                ++rep.skewed;
            }
            if (o.deadlineProb > 0.0 &&
                rng.bernoulli(o.deadlineProb))
                req.deadlineH = req.submitH + rng.uniform(0.05, 0.6);
            router.submit(req);
        }

        // Tenant flood: one binding hammered far past its home node's
        // depth and quota — the overflow walks the ring successors,
        // exercising forwards and rejected-everywhere tails.
        if (rng.bernoulli(o.floodProb)) {
            ++rep.floods;
            serve::JobRequest flood;
            flood.tenantId = rng.uniformInt(0, o.tenants - 1);
            flood.workload = wVqe;
            flood.params = vqe.initialParams;
            flood.params[0] += 0.13 * rng.uniformInt(0, pairs);
            flood.shots = 64;
            flood.priority = 0;
            flood.submitH = baseH;
            const int burst =
                (static_cast<int>(o.queueDepth) + 4) *
                std::min(N, 1 + ro.forwardHops);
            for (int i = 0; i < burst; ++i)
                router.submit(flood);
        }

        // Kills aimed per node at the window its coming drain
        // executes in.
        for (int n = 0; n < N; ++n) {
            serve::ServiceNode &node =
                router.node(static_cast<std::size_t>(n));
            const double windowH =
                std::isfinite(node.loop().nextTimeH())
                    ? node.loop().nextTimeH()
                    : baseH;
            auto &d = dead[static_cast<std::size_t>(n)];
            for (std::size_t m = 0; m < d.size(); ++m) {
                if (!d[m] && rng.bernoulli(o.killProb)) {
                    node.failMemberAt(m,
                                      windowH + rng.uniform(0.0, 0.5));
                    d[m] = true;
                    ++rep.kills;
                }
            }
        }

        std::vector<serve::JobOutcome> out = router.drain();
        rep.jobsCompleted += static_cast<int>(out.size());
        double maxNowH = 0.0;
        for (int n = 0; n < N; ++n)
            maxNowH = std::max(
                maxNowH,
                router.node(static_cast<std::size_t>(n)).loop().now());
        baseH = maxNowH + 0.01;
    }

    router.setJournalSink(nullptr);
    rep.counters = router.totals();
    rep.sheds = static_cast<int>(rep.counters.deadlineSheds);
    rep.forwards = static_cast<int>(router.counters().forwards);
    rep.forwardAdmits =
        static_cast<int>(router.counters().forwardAdmits);
    rep.violations = InvariantChecker::check(journal_);

    if (o.verifyReplay) {
        std::string err;
        EventJournal parsed =
            EventJournal::parse(journal_.serialize(), &err);
        if (!err.empty()) {
            flag(rep.violations, "journal-roundtrip", err);
        } else {
            Replayer replayer(std::move(parsed));
            ReplayResult rr = replayer.run(pool);
            rep.replayVerified = true;
            for (const std::string &m : rr.mismatches)
                flag(rep.violations, "replay-divergence", m);
        }
    }
    return rep;
}

} // namespace replay
} // namespace eqc
