/**
 * @file
 * Journal-driven reconstruction of a ServiceNode run.
 *
 * A journal (replay/journal.h) is a complete causal record of one
 * node's serving history: the config names the devices (with any
 * chaos drift overrides), options and workloads; the Admit/Reject
 * records carry every request verbatim; MemberFail/MemberRestore and
 * Drain records pin the fault and drive schedule. Because the node is
 * bit-deterministic under a VirtualClock, re-driving exactly that
 * sequence through a freshly built node must reproduce every recorded
 * outcome to the bit — the Replayer asserts it, field by field, with
 * hex bit patterns in the mismatch diagnostics.
 *
 * That turns any production incident or failing chaos seed into a
 * local repro: feed the journal artifact to the Replayer and the full
 * lifecycle (coalescing, cache hits, kills, requeues) re-executes
 * identically. This file also hosts the config<->serve bridges
 * (optionsFor / devicesFor / describeNode / problemByName) so
 * journal.h itself stays free of serve/device dependencies.
 */

#ifndef EQC_REPLAY_REPLAYER_H
#define EQC_REPLAY_REPLAYER_H

#include <string>
#include <unordered_map>
#include <vector>

#include "device/catalog.h"
#include "replay/journal.h"
#include "serve/service_node.h"
#include "vqa/problem.h"

namespace eqc {

class TaskPool;

namespace replay {

/** serve::ServiceOptions encoded by @p config (enums from ints). */
serve::ServiceOptions optionsFor(const JournalConfig &config);

/**
 * Rebuild the recorded ensemble: catalog lookup by name at the
 * journal's catalog seed, chaos drift-spike overrides re-applied.
 */
std::vector<Device> devicesFor(const JournalConfig &config);

/** Inverse bridge: describe a node-to-be for journaling. */
JournalConfig describeNode(const serve::ServiceOptions &options,
                           std::vector<DeviceSpec> devices,
                           std::vector<WorkloadSpec> workloads);

/** Problem-factory registry for WorkloadSpec names; fatals unknown. */
VqaProblem problemByName(const std::string &name, uint64_t initSeed);

/** Outcome of one replay. */
struct ReplayResult
{
    /** Jobs whose replayed outcome was compared against the record. */
    std::size_t jobsCompared = 0;
    /** Divergences, human-readable with hex bit patterns. Empty = the
     *  replay was hex-bit-identical to the journal. */
    std::vector<std::string> mismatches;

    bool identical() const { return mismatches.empty(); }
};

/**
 * Re-drives a journal through a freshly reconstructed ServiceNode on
 * its own VirtualClock and verifies every recorded Finalize (and
 * admission verdict) bit-for-bit. Only meaningful for journals whose
 * config.clock is "virtual" — wall-clock runs are not bit-replayable.
 */
class Replayer
{
  public:
    explicit Replayer(EventJournal journal)
        : journal_(std::move(journal))
    {
    }

    /**
     * Rebuild + re-drive + compare.
     * @param pool shard fan-out pool (nullptr = TaskPool::shared());
     *        any thread count yields the same bits by design.
     */
    ReplayResult run(TaskPool *pool = nullptr) const;

    const EventJournal &journal() const { return journal_; }

  private:
    EventJournal journal_;
};

} // namespace replay
} // namespace eqc

#endif // EQC_REPLAY_REPLAYER_H
