#include "replay/replayer.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "core/weighting.h"
#include "serve/router.h"
#include "vqa/expectation.h"

namespace eqc {
namespace replay {

// ---------------------------------------------------------------------------
// Config <-> serve bridges
// ---------------------------------------------------------------------------

serve::ServiceOptions
optionsFor(const JournalConfig &c)
{
    serve::ServiceOptions o;
    o.admission.maxQueueDepth =
        static_cast<std::size_t>(c.maxQueueDepth);
    o.admission.maxQueuedPerTenant = c.maxQueuedPerTenant;
    o.admission.maxShotsPerJob = c.maxShotsPerJob;
    o.scheduler.minShardShots = c.minShardShots;
    o.scheduler.minLatencyS = c.minLatencyS;
    o.scheduler.warmBoost = c.warmBoost;
    o.scheduler.coldStartPenalty = c.coldStartPenalty;
    o.scheduler.coldStartH = c.coldStartH;
    o.retryUnplannableH = c.parkRetryH;
    o.superviseBaseBackoffH = c.superviseBaseBackoffH;
    o.superviseMaxBackoffH = c.superviseMaxBackoffH;
    o.aggregation = static_cast<serve::AggregationMode>(c.aggregation);
    o.shotMode = static_cast<ShotMode>(c.shotMode);
    o.pCorrectMode = static_cast<PCorrectMode>(c.pCorrectMode);
    o.readoutMitigation = c.readoutMitigation;
    o.maxRequeueRounds = c.maxRequeueRounds;
    o.resultCacheTtlH = c.cacheTtlH;
    o.resultCacheCapacity =
        static_cast<std::size_t>(c.cacheCapacity);
    o.latencyReservoir = static_cast<std::size_t>(c.latencyReservoir);
    o.seed = c.seed;
    return o;
}

std::vector<Device>
devicesFor(const JournalConfig &c)
{
    std::vector<Device> devices;
    devices.reserve(c.devices.size());
    for (const DeviceSpec &spec : c.devices) {
        Device dev = deviceByName(spec.name, c.catalogSeed);
        if (spec.spikeRatePerHour >= 0.0 || spec.spikeSeverity >= 0.0)
            dev.drift = dev.drift.spiked(spec.spikeRatePerHour,
                                         spec.spikeSeverity);
        devices.push_back(std::move(dev));
    }
    return devices;
}

JournalConfig
describeNode(const serve::ServiceOptions &o,
             std::vector<DeviceSpec> devices,
             std::vector<WorkloadSpec> workloads)
{
    JournalConfig c;
    c.clock = "virtual";
    c.seed = o.seed;
    c.cacheTtlH = o.resultCacheTtlH;
    c.cacheCapacity = o.resultCacheCapacity;
    c.maxQueueDepth = o.admission.maxQueueDepth;
    c.maxQueuedPerTenant = o.admission.maxQueuedPerTenant;
    c.maxShotsPerJob = o.admission.maxShotsPerJob;
    c.minShardShots = o.scheduler.minShardShots;
    c.minLatencyS = o.scheduler.minLatencyS;
    c.warmBoost = o.scheduler.warmBoost;
    c.coldStartPenalty = o.scheduler.coldStartPenalty;
    c.coldStartH = o.scheduler.coldStartH;
    c.parkRetryH = o.retryUnplannableH;
    c.superviseBaseBackoffH = o.superviseBaseBackoffH;
    c.superviseMaxBackoffH = o.superviseMaxBackoffH;
    c.aggregation = static_cast<int>(o.aggregation);
    c.shotMode = static_cast<int>(o.shotMode);
    c.pCorrectMode = static_cast<int>(o.pCorrectMode);
    c.readoutMitigation = o.readoutMitigation;
    c.maxRequeueRounds = o.maxRequeueRounds;
    c.latencyReservoir = o.latencyReservoir;
    c.devices = std::move(devices);
    c.workloads = std::move(workloads);
    return c;
}

VqaProblem
problemByName(const std::string &name, uint64_t initSeed)
{
    if (name == "heisenberg_vqe")
        return makeHeisenbergVqe(initSeed);
    if (name == "ring_maxcut_qaoa")
        return makeRingMaxCutQaoa(initSeed);
    fatal("replay: unknown workload problem '" + name + "'");
    return VqaProblem{}; // unreachable
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

namespace {

std::string
fieldMismatch(uint64_t jobId, const char *field, double got,
              double want)
{
    return "job " + std::to_string(jobId) + ": " + field +
           " replayed " + hexBits(got) + " recorded " + hexBits(want);
}

std::string
intMismatch(uint64_t jobId, const char *field, long long got,
            long long want)
{
    return "job " + std::to_string(jobId) + ": " + field +
           " replayed " + std::to_string(got) + " recorded " +
           std::to_string(want);
}

/** Compare replayed @p outcomes against the journal's Finalizes. */
void
compareFinalizes(const EventJournal &journal,
                 const std::vector<serve::JobOutcome> &outcomes,
                 ReplayResult &res)
{
    std::unordered_map<uint64_t, const EventRecord *> finals;
    for (const EventRecord &r : journal.records())
        if (r.kind == EventKind::Finalize)
            finals.emplace(r.jobId, &r);
    for (const serve::JobOutcome &o : outcomes) {
        auto it = finals.find(o.jobId);
        if (it == finals.end()) {
            res.mismatches.push_back(
                "job " + std::to_string(o.jobId) +
                ": replay produced an outcome the journal never "
                "finalized");
            continue;
        }
        const EventRecord &f = *it->second;
        ++res.jobsCompared;
        if (!bitEqual(o.energy, f.energy))
            res.mismatches.push_back(
                fieldMismatch(o.jobId, "energy", o.energy, f.energy));
        if (!bitEqual(o.variance, f.variance))
            res.mismatches.push_back(fieldMismatch(
                o.jobId, "variance", o.variance, f.variance));
        if (!bitEqual(o.pCorrect, f.pCorrect))
            res.mismatches.push_back(fieldMismatch(
                o.jobId, "pCorrect", o.pCorrect, f.pCorrect));
        if (!bitEqual(o.completeH, f.doneH))
            res.mismatches.push_back(fieldMismatch(
                o.jobId, "completeH", o.completeH, f.doneH));
        if (o.shotsExecuted != f.shots)
            res.mismatches.push_back(intMismatch(
                o.jobId, "shotsExecuted", o.shotsExecuted, f.shots));
        if (o.shardsExecuted != f.shardsRun)
            res.mismatches.push_back(
                intMismatch(o.jobId, "shardsExecuted",
                            o.shardsExecuted, f.shardsRun));
        if (o.circuitsRun != f.circuits)
            res.mismatches.push_back(intMismatch(
                o.jobId, "circuitsRun", o.circuitsRun, f.circuits));
        if (o.requeues != f.round)
            res.mismatches.push_back(intMismatch(
                o.jobId, "requeues", o.requeues, f.round));
        if (o.shedShots != f.shedShots)
            res.mismatches.push_back(intMismatch(
                o.jobId, "shedShots", o.shedShots, f.shedShots));
        if (o.degraded != f.degraded || o.fromCache != f.fromCache ||
            o.coalesced != f.coalesced || o.shed != f.shed)
            res.mismatches.push_back(
                "job " + std::to_string(o.jobId) +
                ": outcome flags diverge from the record");
        finals.erase(it);
    }
    for (const auto &kv : finals)
        res.mismatches.push_back(
            "job " + std::to_string(kv.first) +
            ": journal finalized it but the replay never did");
}

/**
 * Routed replay (config.nodes > 1): rebuild the Router fleet, re-drive
 * every Route record through Router::submit — the router re-derives
 * the home node, forwards and verdicts deterministically, so the
 * terminal Admit/Reject of each routed request must match the journal
 * — plus node-dispatched member health transitions and drains.
 */
ReplayResult
replayRouted(const EventJournal &journal, TaskPool *pool)
{
    (void)pool; // nodes drain through their own single-thread pools
    ReplayResult res;
    const JournalConfig &c = journal.config;

    std::vector<std::vector<DeviceSpec>> byNode(
        static_cast<std::size_t>(c.nodes));
    for (const DeviceSpec &spec : c.devices) {
        if (spec.node < 0 || spec.node >= c.nodes) {
            res.mismatches.push_back(
                "device '" + spec.name + "' names node " +
                std::to_string(spec.node) + " outside the fleet of " +
                std::to_string(c.nodes));
            return res;
        }
        byNode[static_cast<std::size_t>(spec.node)].push_back(spec);
    }

    serve::RouterOptions ro;
    ro.virtualNodes = c.virtualNodes;
    ro.forwardHops = c.forwardHops;
    ro.seed = c.seed;
    serve::Router router(ro);
    for (int n = 0; n < c.nodes; ++n) {
        const auto &specs = byNode[static_cast<std::size_t>(n)];
        if (specs.empty()) {
            res.mismatches.push_back(
                "journal config lists no devices for node " +
                std::to_string(n));
            return res;
        }
        std::vector<Device> devices;
        devices.reserve(specs.size());
        for (const DeviceSpec &spec : specs) {
            Device dev = deviceByName(spec.name, c.catalogSeed);
            if (spec.spikeRatePerHour >= 0.0 ||
                spec.spikeSeverity >= 0.0)
                dev.drift = dev.drift.spiked(spec.spikeRatePerHour,
                                             spec.spikeSeverity);
            devices.push_back(std::move(dev));
        }
        router.addNode(std::move(devices), optionsFor(c));
    }
    for (const WorkloadSpec &w : c.workloads) {
        VqaProblem p = problemByName(w.problem, w.initSeed);
        router.registerWorkload(p.ansatz, p.hamiltonian);
    }

    // Terminal verdict of each routed request: the last Admit/Reject
    // stamped with its ruid (the chain's end after any forwards).
    std::unordered_map<uint64_t, const EventRecord *> terminal;
    for (const EventRecord &r : journal.records())
        if ((r.kind == EventKind::Admit ||
             r.kind == EventKind::Reject) &&
            r.ruid != 0)
            terminal[r.ruid] = &r;

    auto nodeOk = [&](const EventRecord &r) {
        if (r.node >= 0 &&
            static_cast<std::size_t>(r.node) < router.numNodes())
            return true;
        res.mismatches.push_back(
            std::string(kindName(r.kind)) + " record names node " +
            std::to_string(r.node) + " outside the fleet");
        return false;
    };

    std::vector<serve::JobOutcome> outcomes;
    for (const EventRecord &r : journal.records()) {
        switch (r.kind) {
        case EventKind::Route: {
            serve::JobRequest req;
            req.tenantId = r.tenant;
            req.workload = r.workload;
            req.params = r.params;
            req.shots = r.shots;
            req.priority = r.priority;
            req.submitH = r.submitH;
            req.deadlineH = r.deadlineH;
            const serve::Ticket t = router.submit(req);
            auto it = terminal.find(r.ruid);
            if (it == terminal.end()) {
                res.mismatches.push_back(
                    "ruid " + std::to_string(r.ruid) +
                    ": routed but the journal records no verdict");
                break;
            }
            const EventRecord &vr = *it->second;
            if (static_cast<int>(t.status) != vr.status)
                res.mismatches.push_back(intMismatch(
                    vr.jobId, "routed admit status",
                    static_cast<int>(t.status), vr.status));
            else if (vr.kind == EventKind::Admit &&
                     t.jobId != vr.jobId)
                res.mismatches.push_back(
                    intMismatch(vr.jobId, "routed job id",
                                static_cast<long long>(t.jobId),
                                static_cast<long long>(vr.jobId)));
            break;
        }
        case EventKind::MemberFail:
            if (nodeOk(r))
                router.node(static_cast<std::size_t>(r.node))
                    .failMemberAt(static_cast<std::size_t>(r.member),
                                  r.atH);
            break;
        case EventKind::MemberRestore:
            if (!r.autoRestore && nodeOk(r))
                router.node(static_cast<std::size_t>(r.node))
                    .restoreMember(
                        static_cast<std::size_t>(r.member));
            break;
        case EventKind::MemberJoin:
            if (nodeOk(r))
                router.node(static_cast<std::size_t>(r.node))
                    .addMember(deviceByName(r.name, c.catalogSeed),
                               r.atH);
            break;
        case EventKind::MemberLeave:
            if (nodeOk(r))
                router.node(static_cast<std::size_t>(r.node))
                    .removeMember(static_cast<std::size_t>(r.member),
                                  r.atH);
            break;
        case EventKind::Drain: {
            // A router drain journals one Drain per node, in node
            // order; node 0's record is the cue to re-drive the whole
            // fleet drain, the others are its echoes.
            if (r.node != 0)
                break;
            std::vector<serve::JobOutcome> got =
                std::isfinite(r.atH) ? router.runUntil(r.atH)
                                     : router.drain();
            outcomes.insert(outcomes.end(), got.begin(), got.end());
            break;
        }
        default:
            break; // Admit/Reject/Forward re-derive from Route
        }
    }
    bool pending = false;
    for (std::size_t n = 0; n < router.numNodes(); ++n)
        if (router.node(n).pendingJobs() > 0 ||
            !router.node(n).loop().empty())
            pending = true;
    if (pending) {
        std::vector<serve::JobOutcome> got = router.drain();
        outcomes.insert(outcomes.end(), got.begin(), got.end());
    }

    compareFinalizes(journal, outcomes, res);
    return res;
}

} // namespace

ReplayResult
Replayer::run(TaskPool *pool) const
{
    ReplayResult res;
    const JournalConfig &c = journal_.config;
    if (c.devices.empty()) {
        res.mismatches.push_back("journal config lists no devices");
        return res;
    }
    if (c.nodes > 1)
        return replayRouted(journal_, pool);

    serve::ServiceNode node(devicesFor(c), optionsFor(c));
    for (const WorkloadSpec &w : c.workloads) {
        VqaProblem p = problemByName(w.problem, w.initSeed);
        node.registerWorkload(p.ansatz, p.hamiltonian);
    }

    // Re-drive the recorded stimulus in publication order: requests
    // (admitted and rejected alike — admission verdicts are part of
    // the contract), member health transitions, and drains.
    std::vector<serve::JobOutcome> outcomes;
    for (const EventRecord &r : journal_.records()) {
        switch (r.kind) {
        case EventKind::Admit:
        case EventKind::Reject: {
            serve::JobRequest req;
            req.tenantId = r.tenant;
            req.workload = r.workload;
            req.params = r.params;
            req.shots = r.shots;
            req.priority = r.priority;
            req.submitH = r.submitH;
            req.deadlineH = r.deadlineH;
            serve::Ticket t = node.submit(req);
            if (static_cast<int>(t.status) != r.status)
                res.mismatches.push_back(intMismatch(
                    r.jobId, "admit status",
                    static_cast<int>(t.status), r.status));
            else if (r.kind == EventKind::Admit && t.jobId != r.jobId)
                res.mismatches.push_back(
                    intMismatch(r.jobId, "job id",
                                static_cast<long long>(t.jobId),
                                static_cast<long long>(r.jobId)));
            break;
        }
        case EventKind::MemberFail:
            node.failMemberAt(static_cast<std::size_t>(r.member),
                              r.atH);
            break;
        case EventKind::MemberRestore:
            // Supervised restores are produced by the node's own
            // backoff events — re-driving them would double-restore.
            if (!r.autoRestore)
                node.restoreMember(static_cast<std::size_t>(r.member));
            break;
        case EventKind::MemberJoin:
            node.addMember(deviceByName(r.name, c.catalogSeed), r.atH);
            break;
        case EventKind::MemberLeave:
            node.removeMember(static_cast<std::size_t>(r.member),
                              r.atH);
            break;
        case EventKind::Drain: {
            std::vector<serve::JobOutcome> got =
                std::isfinite(r.atH) ? node.runUntil(r.atH, pool)
                                     : node.drain(pool);
            outcomes.insert(outcomes.end(), got.begin(), got.end());
            break;
        }
        default:
            break; // derived records: verified via Finalize below
        }
    }
    if (node.pendingJobs() > 0 || !node.loop().empty()) {
        // Journals normally end on a drained loop; tolerate a live
        // capture cut mid-stream by finishing the pending work.
        std::vector<serve::JobOutcome> got = node.drain(pool);
        outcomes.insert(outcomes.end(), got.begin(), got.end());
    }

    compareFinalizes(journal_, outcomes, res);
    return res;
}

} // namespace replay
} // namespace eqc
