/**
 * @file
 * Chaos harness for the serving layer: seeded fault-injection
 * schedules plus a journal-auditing invariant suite.
 *
 * The paper's EQC keeps a VQA campaign alive through exactly the
 * conditions this harness manufactures — members dropping mid-run,
 * calibration falling off a cliff, demand spikes — via its
 * monitoring/adjustment daemon. ChaosEngine plays the adversary: one
 * seed deterministically composes
 *
 *  - randomized member kills (ServiceNode::failMemberAt) aimed with
 *    EventLoop::nextTimeH() at the window the next drain executes,
 *    plus probabilistic restores;
 *  - calibration drift spikes (DriftParams::spiked incident storms)
 *    flowing through the normal noise-context path;
 *  - tenant floods against a deliberately tight admission policy,
 *    exercising queue-full and per-tenant-quota rejections;
 *  - clock-skewed submit bursts (past-clamped and far-future hours);
 *  - coalescing tenant pairs and repeated bindings (cache hits).
 *
 * Every run records through an EventJournal, and InvariantChecker
 * audits the record for the system's core guarantees:
 *
 *  I1 admitted-completes: every Admit has exactly one Finalize, with
 *     the full requested shot budget unless the outcome is degraded —
 *     and degradation only ever follows a member failure;
 *  I2 backpressure-monotone: retry-after hints of capacity rejections
 *     at the same instant (and member-health epoch) strictly increase
 *     with observed backlog depth, and are always positive;
 *  I3 cache-freshness: no CacheHit serves an entry past the TTL, with
 *     fewer shots than requested, with reuse disabled, or with an
 *     energy no prior execution produced;
 *  I4 survivor-renormalization: re-aggregating each item's journaled
 *     shard results (failed shards excluded, so survivor weights
 *     renormalize to 1) reproduces the finalized energy/variance/
 *     pCorrect bit-for-bit;
 *  I5 no-zombie-shards: no shard completes at or after its member's
 *     active kill hour;
 *  I6 dispatch-resolution: every dispatched shard resolves exactly
 *     once (completion xor failure timeout, matching member/shots);
 *  I7 deadline-resolution: every admitted job with an SLO resolves to
 *     exactly one of met (finalized at or before the deadline) or shed
 *     (exactly one DeadlineShed record, outcome marked shed+degraded);
 *  I8 shed-shot-accounting: a shed item finalizes with exactly the
 *     shots its non-late completed shards produced, and completed +
 *     shed shots equal the item's budget (largest rider request);
 *  I9 membership-window: no shard dispatches onto a member before its
 *     join hour or at/after its leave hour;
 *  I10 coalesced-rider-consistency: all riders of one work item
 *     finalize with bitwise-identical aggregates and identical
 *     degraded/shed/shed-shot outcome bits;
 *  I11 event-order: journal timestamps of loop-fired events (shard
 *     resolutions, finalizes, deadline sheds) never run backwards;
 *  I12 shed-before-finalize: a work item's DeadlineShed record always
 *     precedes its first Finalize — no deadline fires after the
 *     item completed;
 *  I13 routed-exactly-once: in a routed (multi-node) journal every
 *     routed request has exactly one Route record, its Admit/Reject
 *     chain starts on the routed home node and hops only along the
 *     journaled Forward records, and at most one Admit ends the
 *     chain — no request is admitted twice or lands on a node the
 *     router never sent it to;
 *  I14 forward-only-on-rejection: every Forward record is preceded by
 *     a Reject on its from-node carrying a positive retry-after hint
 *     — the router never forwards admitted work or rejections that
 *     backpressure cannot fix (bad request, missed deadline).
 *
 * All per-node state (member health windows, backpressure epochs,
 * event-order clocks, cache energy sets) is keyed by the record's
 * node stamp, so single-node journals audit exactly as before and
 * multi-node journals audit each node's timeline independently.
 *
 * bench/chaos_storm.cc drives thousands of these schedules; a failing
 * seed's journal replays through replay::Replayer for a local repro.
 */

#ifndef EQC_REPLAY_CHAOS_H
#define EQC_REPLAY_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "replay/journal.h"
#include "serve/service.h"

namespace eqc {

class TaskPool;

namespace replay {

/** Knobs of one chaos schedule (all derived draws come from seed). */
struct ChaosOptions
{
    uint64_t seed = 1;
    /** Ensemble members drawn from the evaluation catalog. */
    int members = 4;
    int tenants = 6;
    /** Submit/drain rounds per schedule. */
    int rounds = 3;
    /** Per-job shot budgets are multiples of 64 up to this. */
    int maxShots = 256;
    /** Per member per round: kill an alive member. */
    double killProb = 0.35;
    /** Per member per round: restore a killed member. */
    double restoreProb = 0.5;
    /** Per member at setup: dial its drift incidents up. */
    double driftSpikeProb = 0.35;
    /** Per round: one tenant floods the admission queue. */
    double floodProb = 0.5;
    /** Per submission: skew submitH into the past or far future. */
    double skewProb = 0.25;
    /** Per tenant pair per round: resubmit last round's binding. */
    double repeatProb = 0.35;
    /** Result-cache TTL (serving hours); > 0 so hits occur. */
    double cacheTtlH = 0.4;
    /** Deliberately tight admission: floods must bounce. */
    std::size_t queueDepth = 10;
    int tenantQuota = 3;
    /** Also serialize->parse->replay the journal and cross-check. */
    bool verifyReplay = false;
    /**
     * Per submission: attach a latency SLO — deadlineH = submitH +
     * U(0.05, 0.6) — exercising graceful shedding and SLO rejections.
     * 0 draws nothing, keeping legacy seeds byte-stable.
     */
    double deadlineProb = 0.0;
    /**
     * Per round: live membership churn — join a spare catalog device
     * or retire an active member mid-schedule. 0 draws nothing.
     */
    double churnProb = 0.0;
    /**
     * Drive the schedule on a SteadyClock (real time at timescaleS
     * wall-seconds per serving hour) instead of a VirtualClock. Wall
     * journals are not bit-replayable — verifyReplay is skipped — but
     * every invariant is still audited, including the timing ones.
     */
    bool steadyClock = false;
    /** SteadyClock scale: wall seconds per serving hour. */
    double timescaleS = 0.002;
    /**
     * Service nodes fronted by a Router. 1 (the default) keeps the
     * legacy single-node schedules byte-stable; > 1 routes every
     * submission through a consistent-hash Router with overflow
     * forwarding — floods overflow across nodes, kills/deadlines are
     * drawn per node — and audits I13/I14 on top of I1..I12. Routed
     * schedules use `members` ensemble members per node.
     */
    int nodes = 1;
};

/** One invariant violation found in a journal. */
struct Violation
{
    /** Invariant id, e.g. "admitted-completes". */
    std::string invariant;
    std::string detail;
};

/** Audits a journal against invariants I1..I14 (see file comment). */
class InvariantChecker
{
  public:
    static std::vector<Violation> check(const EventJournal &journal);
};

/** Summary of one chaos schedule. */
struct ChaosReport
{
    uint64_t seed = 0;
    int jobsCompleted = 0;
    int kills = 0;
    int restores = 0;
    int driftSpikes = 0;
    int floods = 0;
    int skewed = 0;
    /** Live membership joins/leaves injected by churn. */
    int joins = 0;
    int leaves = 0;
    /** Deadline sheds the node performed (from its counters). */
    int sheds = 0;
    /** Overflow forwards attempted by the router (routed schedules). */
    int forwards = 0;
    /** Forwards that ended in an admission on the target node. */
    int forwardAdmits = 0;
    serve::ServiceCounters counters;
    std::vector<Violation> violations;
    /** A serialize->parse->replay cross-check ran. */
    bool replayVerified = false;

    bool passed() const { return violations.empty(); }
};

/**
 * Deterministic chaos-schedule generator/driver: same options (seed
 * included) => same journal text, same report, for any TaskPool
 * thread count. The journal of the last run() stays accessible for
 * artifact dumps of failing seeds.
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(ChaosOptions opts = {}) : opts_(opts) {}

    /** Run one schedule; audits the journal before returning. */
    ChaosReport run(TaskPool *pool = nullptr);

    const EventJournal &journal() const { return journal_; }
    const ChaosOptions &options() const { return opts_; }

  private:
    /** Multi-node schedule body (ChaosOptions::nodes > 1). */
    ChaosReport runRouted(TaskPool *pool);

    ChaosOptions opts_;
    EventJournal journal_;
};

} // namespace replay
} // namespace eqc

#endif // EQC_REPLAY_CHAOS_H
