#include "sim/event_queue.h"

#include "common/logging.h"

namespace eqc {

void
Simulation::schedule(double delayH, Handler fn)
{
    if (delayH < 0.0)
        panic("Simulation::schedule: negative delay");
    loop_.schedule(delayH, std::move(fn));
}

void
Simulation::scheduleAt(double timeH, Handler fn)
{
    if (timeH < loop_.now())
        panic("Simulation::scheduleAt: time in the past");
    loop_.scheduleAt(timeH, std::move(fn));
}

} // namespace eqc
