#include "sim/event_queue.h"

#include "common/logging.h"

namespace eqc {

void
Simulation::schedule(double delayH, Handler fn)
{
    if (delayH < 0.0)
        panic("Simulation::schedule: negative delay");
    scheduleAt(now_ + delayH, std::move(fn));
}

void
Simulation::scheduleAt(double timeH, Handler fn)
{
    if (timeH < now_)
        panic("Simulation::scheduleAt: time in the past");
    queue_.push(Event{timeH, nextSeq_++, std::move(fn)});
}

void
Simulation::run()
{
    while (!queue_.empty()) {
        Event e = queue_.top();
        queue_.pop();
        now_ = e.time;
        ++processed_;
        e.fn();
    }
}

void
Simulation::runUntil(double limitH)
{
    while (!queue_.empty() && queue_.top().time <= limitH) {
        Event e = queue_.top();
        queue_.pop();
        now_ = e.time;
        ++processed_;
        e.fn();
    }
    if (now_ < limitH && queue_.empty())
        now_ = limitH;
}

} // namespace eqc
