/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * EQC's virtual executor runs master/client interactions on this kernel:
 * queue waits, circuit execution times and calibration cycles advance a
 * virtual clock, so a "40-hour" training campaign replays in seconds and
 * bit-identically for a fixed seed. Events at equal timestamps fire in
 * scheduling order (a monotonically increasing sequence number breaks
 * ties), which keeps asynchronous-SGD traces deterministic.
 */

#ifndef EQC_SIM_EVENT_QUEUE_H
#define EQC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace eqc {

/** Virtual-time event loop. Time unit: hours (matching the paper). */
class Simulation
{
  public:
    using Handler = std::function<void()>;

    /** Current virtual time in hours. */
    double now() const { return now_; }

    /** Schedule @p fn to run @p delayH hours from now (>= 0). */
    void schedule(double delayH, Handler fn);

    /** Schedule @p fn at absolute time @p timeH (>= now). */
    void scheduleAt(double timeH, Handler fn);

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the event queue drains or virtual time would pass
     * @p limitH; events beyond the limit stay queued.
     */
    void runUntil(double limitH);

    /** Number of events executed so far. */
    uint64_t processed() const { return processed_; }

    /** true when no events are pending. */
    bool empty() const { return queue_.empty(); }

  private:
    struct Event
    {
        double time;
        uint64_t seq;
        Handler fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    double now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace eqc

#endif // EQC_SIM_EVENT_QUEUE_H
