/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * EQC's virtual executor runs master/client interactions on this kernel:
 * queue waits, circuit execution times and calibration cycles advance a
 * virtual clock, so a "40-hour" training campaign replays in seconds and
 * bit-identically for a fixed seed. Events at equal timestamps fire in
 * scheduling order (a monotonically increasing sequence number breaks
 * ties), which keeps asynchronous-SGD traces deterministic.
 *
 * The event-scheduling machinery itself lives in the shared
 * eqc::EventLoop (common/event_loop.h) so the serving layer can drive
 * the same core on a wall clock; Simulation is the deterministic
 * virtual-clock configuration of it, with the simulation-specific
 * contract that scheduling into the past is a hard error rather than a
 * clamp (a simulation that tries to rewrite history is a bug).
 */

#ifndef EQC_SIM_EVENT_QUEUE_H
#define EQC_SIM_EVENT_QUEUE_H

#include <cstdint>

#include "common/event_loop.h"

namespace eqc {

/** Virtual-time event loop. Time unit: hours (matching the paper). */
class Simulation
{
  public:
    using Handler = EventLoop::Handler;

    /** Current virtual time in hours. */
    double now() const { return loop_.now(); }

    /** Schedule @p fn to run @p delayH hours from now (>= 0). */
    void schedule(double delayH, Handler fn);

    /** Schedule @p fn at absolute time @p timeH (>= now). */
    void scheduleAt(double timeH, Handler fn);

    /** Run until the event queue drains. */
    void run() { loop_.run(); }

    /**
     * Run until the event queue drains or virtual time would pass
     * @p limitH; events beyond the limit stay queued.
     */
    void runUntil(double limitH) { loop_.runUntil(limitH); }

    /** Number of events executed so far. */
    uint64_t processed() const { return loop_.processed(); }

    /** true when no events are pending. */
    bool empty() const { return loop_.empty(); }

    /** The underlying shared event loop (virtual-clocked). */
    EventLoop &loop() { return loop_; }

  private:
    VirtualClock clock_;
    EventLoop loop_{clock_};
};

} // namespace eqc

#endif // EQC_SIM_EVENT_QUEUE_H
