/**
 * @file
 * Gate-fusion compilation pass for the simulation backends.
 *
 * VQA circuits transpiled to the IBMQ basis are dominated by long runs
 * of cheap gates: every logical 1q rotation becomes an RZ/SX/RZ/SX/RZ
 * chain, and each chain feeds a CX. Applying those gates one at a time
 * costs one full pass over the amplitude (or density-matrix) vector per
 * gate. This pass merges adjacent gates *before* plan compilation so
 * the simulators run one kernel per fused operator instead:
 *
 *  - runs of adjacent 1q gates on the same wire collapse into a single
 *    2x2 matrix (diagonal runs stay diagonal, keeping the elementwise
 *    fast path);
 *  - 1q gates are absorbed into a neighboring 2q gate they share a wire
 *    with, producing one 4x4 — input side in both modes, and output
 *    side too under Full fusion (a trailing 1q gate folds into the
 *    preceding 2q op);
 *  - adjacent 2q gates on the same qubit pair fold into one 4x4, with
 *    orientation remapping when the operand order differs.
 *
 * Symbolic (parameter-table) gates fuse too: a FusedOp records its
 * constituent gates, and fusedEntries() re-multiplies the (at most
 * 4x4) matrices per parameter binding — negligible next to the saved
 * vector passes.
 *
 * Two modes:
 *  - FusionMode::Full assumes unitary-only semantics (the noiseless
 *    statevector path) and merges everything the rules above allow.
 *  - FusionMode::NoisePreserving keeps every *physical* (noise-bearing)
 *    gate as its own FusedOp so the density-matrix executor can attach
 *    per-gate calibration noise exactly as it would to the unfused
 *    circuit; only virtual gates (RZ, which carries no noise on IBMQ
 *    hardware) are folded into the next physical gate on their wire.
 *
 * MEASURE and BARRIER ops are skipped: the executors apply all
 * unitaries before reading out probabilities, and barriers are
 * scheduling hints with no simulation semantics. Reordering performed
 * by the pass only ever moves a gate past ops on *disjoint* wires,
 * which commutes exactly (tensor factors), so fused and unfused
 * programs agree to rounding error.
 */

#ifndef EQC_SIM_FUSION_H
#define EQC_SIM_FUSION_H

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"

namespace eqc {

class Statevector;
class DensityMatrix;

/** How aggressively fuseForSimulation() may merge gates. */
enum class FusionMode {
    /** Unitary-only semantics: merge everything fusable. */
    Full,
    /**
     * One FusedOp per physical gate (noise attaches per op); only
     * virtual gates fold into the next physical gate on their wire.
     */
    NoisePreserving,
};

/**
 * One constituent gate of a FusedOp, kept so symbolic operators can be
 * re-evaluated per parameter binding (see fusedEntries()).
 */
struct FusedTerm
{
    GateType type = GateType::ID;
    int numParams = 0;
    ParamExpr params[3];
    /**
     * For a 1q gate inside a 2q FusedOp: which wire it acts on
     * (0 -> q0, 1 -> q1). -1 for 2q terms and for terms of 1q ops.
     */
    int wire = -1;
    /** 2q term whose operands are (q1, q0) relative to the FusedOp. */
    bool swapped = false;
};

/** One fused operator: the product of adjacent circuit gates. */
struct FusedOp
{
    /**
     * The noise-carrying gate of this op under NoisePreserving fusion
     * (drives the executor's calibration-noise dispatch): the single
     * physical constituent, RZ for virtual-only ops, ID for an explicit
     * idle. Set to the first constituent's type under Full fusion,
     * where it is informational only.
     */
    GateType primary = GateType::ID;
    bool twoQubit = false;
    /** All constituents diagonal: entries[] holds only the diagonal. */
    bool diagonal = false;
    /** References the parameter table: entries rebuilt per binding. */
    bool symbolic = false;
    int q0 = -1, q1 = -1;
    /** Constituents, in application order: [termBegin, termEnd). */
    int termBegin = 0, termEnd = 0;
    /**
     * Operator entries, prebuilt when !symbolic: row-major sub x sub
     * (sub = 2 or 4), or just the sub diagonal entries when diagonal.
     * An op with no terms (explicit idle) applies no unitary.
     */
    Complex entries[16];
};

/** A fused circuit: what the execution plans compile and cache. */
struct FusedProgram
{
    int numQubits = 0;
    std::vector<FusedOp> ops;
    /** Backing store for every op's [termBegin, termEnd) range. */
    std::vector<FusedTerm> terms;
    /** Unitary gates consumed by the pass (fusion-ratio telemetry). */
    std::size_t sourceGates = 0;
};

/**
 * Fuse @p circuit for simulation under @p mode.
 *
 * @param circuit any circuit over the gate vocabulary; MEASURE and
 *        BARRIER ops are skipped (see file comment)
 * @param mode merging rules (see FusionMode)
 */
FusedProgram fuseForSimulation(const QuantumCircuit &circuit,
                               FusionMode mode);

/**
 * Evaluate the operator entries of @p op under @p params into @p out:
 * the product of its constituent gate matrices in application order,
 * wire-embedded for 1q terms inside 2q ops. Layout matches
 * FusedOp::entries (full sub x sub, or the sub diagonal entries when
 * op.diagonal). Allocation-free; safe to call concurrently.
 */
void fusedEntries(const FusedProgram &prog, const FusedOp &op,
                  const std::vector<double> &params, Complex *out);

/**
 * Run every op of @p prog on a statevector (the noiseless execution
 * path; also the reference used by the fusion equivalence tests).
 */
void applyFusedProgram(const FusedProgram &prog,
                       const std::vector<double> &params, Statevector &sv);

/** Run every op of @p prog on a density matrix (unitaries only). */
void applyFusedProgram(const FusedProgram &prog,
                       const std::vector<double> &params,
                       DensityMatrix &dm);

} // namespace eqc

#endif // EQC_SIM_FUSION_H
