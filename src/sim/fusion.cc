#include "sim/fusion.h"

#include <cstring>

#include "common/logging.h"
#include "quantum/density_matrix.h"
#include "quantum/statevector.h"

namespace eqc {

namespace {

/** Swap the two sub-index bits of a 2q index. */
inline int
swapBits2(int j)
{
    return ((j & 1) << 1) | ((j >> 1) & 1);
}

/** acc = m * acc for row-major sub x sub matrices (sub <= 4). */
inline void
mulInto(Complex *acc, const Complex *m, int sub)
{
    Complex tmp[16];
    for (int r = 0; r < sub; ++r) {
        for (int c = 0; c < sub; ++c) {
            Complex s(0, 0);
            for (int k = 0; k < sub; ++k)
                s += m[r * sub + k] * acc[k * sub + c];
            tmp[r * sub + c] = s;
        }
    }
    std::memcpy(acc, tmp, sizeof(Complex) * sub * sub);
}

/**
 * Expand one term's gate into a full sub x sub matrix over the fused
 * op's wires. @p g holds gateEntries() output for the term (full or
 * diagonal depending on the gate).
 */
inline void
termMatrix(const FusedTerm &t, const Complex *g, bool opTwoQubit,
           Complex *full)
{
    const bool tdiag = isDiagonalGate(t.type);
    if (!opTwoQubit) {
        if (tdiag) {
            full[0] = g[0];
            full[1] = Complex(0, 0);
            full[2] = Complex(0, 0);
            full[3] = g[1];
        } else {
            std::memcpy(full, g, sizeof(Complex) * 4);
        }
        return;
    }
    if (t.wire >= 0) {
        // 1q gate embedded on one wire of a 2q op: sub-index bit
        // t.wire selects the acted-on qubit, the other bit is carried.
        Complex u[4];
        if (tdiag) {
            u[0] = g[0];
            u[1] = Complex(0, 0);
            u[2] = Complex(0, 0);
            u[3] = g[1];
        } else {
            std::memcpy(u, g, sizeof(Complex) * 4);
        }
        for (int r = 0; r < 4; ++r) {
            const int rb = (r >> t.wire) & 1;
            const int ro = (r >> (1 - t.wire)) & 1;
            for (int c = 0; c < 4; ++c) {
                const int cb = (c >> t.wire) & 1;
                const int co = (c >> (1 - t.wire)) & 1;
                full[r * 4 + c] =
                    (ro == co) ? u[rb * 2 + cb] : Complex(0, 0);
            }
        }
        return;
    }
    // 2q term, possibly recorded with swapped operand order.
    if (tdiag) {
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                full[r * 4 + c] = Complex(0, 0);
        for (int j = 0; j < 4; ++j) {
            const int jj = t.swapped ? swapBits2(j) : j;
            full[j * 4 + j] = g[jj];
        }
        return;
    }
    for (int r = 0; r < 4; ++r) {
        const int rr = t.swapped ? swapBits2(r) : r;
        for (int c = 0; c < 4; ++c) {
            const int cc = t.swapped ? swapBits2(c) : c;
            full[r * 4 + c] = g[rr * 4 + cc];
        }
    }
}

/** Per-op scratch while the pass runs; flattened at finalize. */
struct OpBuild
{
    GateType primary = GateType::ID;
    bool twoQubit = false;
    bool alive = true;
    /** Every term is a virtual gate (absorbable under NoisePreserving). */
    bool allVirtual = true;
    int q0 = -1, q1 = -1;
    /** Previous alive op index on each wire at emission time. */
    int prevOnWire[2] = {-1, -1};
    std::vector<FusedTerm> terms;
};

FusedTerm
makeTerm(const GateOp &op)
{
    FusedTerm t;
    t.type = op.type;
    t.numParams = static_cast<int>(op.params.size());
    for (int i = 0; i < t.numParams && i < 3; ++i)
        t.params[i] = op.params[i];
    return t;
}

} // namespace

FusedProgram
fuseForSimulation(const QuantumCircuit &circuit, FusionMode mode)
{
    const bool full = mode == FusionMode::Full;
    std::vector<OpBuild> build;
    std::vector<int> lastOnWire(
        static_cast<std::size_t>(circuit.numQubits()), -1);
    std::size_t consumed = 0;

    // Detach the most recent op on wire @p w when it is an absorbable
    // 1q op, returning its index (or -1). The wire's last-op link falls
    // back to the op emitted before it, so a same-pair 2q merge behind
    // it stays visible.
    auto takeAbsorbable1q = [&](int w) {
        const int i = lastOnWire[w];
        if (i < 0)
            return -1;
        OpBuild &o = build[i];
        if (o.twoQubit || o.terms.empty())
            return -1;
        if (!full && !o.allVirtual)
            return -1;
        o.alive = false;
        lastOnWire[w] = o.prevOnWire[0];
        return i;
    };

    auto emit = [&](OpBuild &&o) {
        const int idx = static_cast<int>(build.size());
        o.prevOnWire[0] = lastOnWire[o.q0];
        lastOnWire[o.q0] = idx;
        if (o.twoQubit) {
            o.prevOnWire[1] = lastOnWire[o.q1];
            lastOnWire[o.q1] = idx;
        }
        build.push_back(std::move(o));
    };

    for (const GateOp &op : circuit.ops()) {
        if (op.type == GateType::MEASURE || op.type == GateType::BARRIER)
            continue;
        ++consumed;

        if (op.type == GateType::ID) {
            if (full)
                continue; // exact identity: nothing to apply
            // Explicit idle: keeps its thermal-relaxation slot, absorbs
            // nothing (it applies no unitary to fold into).
            OpBuild o;
            o.primary = GateType::ID;
            o.q0 = op.qubits[0];
            o.allVirtual = false;
            emit(std::move(o));
            continue;
        }

        const int arity = gateArity(op.type);
        const bool isVirtual = isVirtualGate(op.type);

        if (arity == 1) {
            const int q = op.qubits[0];
            const int i = lastOnWire[q];
            const bool canJoin =
                i >= 0 && build[i].alive && !build[i].twoQubit &&
                !build[i].terms.empty() &&
                (full || (build[i].allVirtual && isVirtual));
            if (canJoin) {
                build[i].terms.push_back(makeTerm(op));
                build[i].allVirtual &= isVirtual;
                if (!isVirtual)
                    build[i].primary = op.type;
                continue;
            }
            // Output-side absorption (Full mode): a 1q gate trailing a
            // 2q op folds into it as a wire-embedded term. The 2q op
            // stays the last op on both wires, so later same-pair
            // merges still see it.
            if (full && i >= 0 && build[i].alive && build[i].twoQubit) {
                FusedTerm t = makeTerm(op);
                t.wire = (build[i].q0 == q) ? 0 : 1;
                build[i].terms.push_back(t);
                build[i].allVirtual &= isVirtual;
                continue;
            }
            if (!full && !isVirtual) {
                // Physical 1q gate: absorb a pending virtual run on its
                // wire (input side), then stand alone for its noise.
                OpBuild o;
                o.primary = op.type;
                o.q0 = q;
                o.allVirtual = false;
                const int a = takeAbsorbable1q(q);
                if (a >= 0)
                    o.terms = std::move(build[a].terms);
                o.terms.push_back(makeTerm(op));
                emit(std::move(o));
                continue;
            }
            OpBuild o;
            o.primary = op.type;
            o.q0 = q;
            o.allVirtual = isVirtual;
            o.terms.push_back(makeTerm(op));
            emit(std::move(o));
            continue;
        }

        // 2q gate: absorb pending 1q runs on both wires (input side).
        const int a = op.qubits[0], b = op.qubits[1];
        const int absA = takeAbsorbable1q(a);
        const int absB = takeAbsorbable1q(b);

        if (full) {
            // Same-pair merge: the last alive op on both wires is one
            // 2q op over {a, b} with nothing else between.
            const int i = lastOnWire[a];
            if (i >= 0 && i == lastOnWire[b] && build[i].alive &&
                build[i].twoQubit &&
                ((build[i].q0 == a && build[i].q1 == b) ||
                 (build[i].q0 == b && build[i].q1 == a))) {
                OpBuild &o = build[i];
                if (absA >= 0)
                    for (FusedTerm &t : build[absA].terms) {
                        t.wire = (o.q0 == a) ? 0 : 1;
                        o.terms.push_back(t);
                    }
                if (absB >= 0)
                    for (FusedTerm &t : build[absB].terms) {
                        t.wire = (o.q0 == b) ? 0 : 1;
                        o.terms.push_back(t);
                    }
                FusedTerm t = makeTerm(op);
                t.swapped = (o.q0 != a);
                o.terms.push_back(t);
                o.allVirtual &= isVirtual;
                continue;
            }
        }

        OpBuild o;
        o.primary = op.type;
        o.twoQubit = true;
        o.q0 = a;
        o.q1 = b;
        o.allVirtual = isVirtual;
        if (absA >= 0)
            for (FusedTerm &t : build[absA].terms) {
                t.wire = 0;
                o.terms.push_back(t);
            }
        if (absB >= 0)
            for (FusedTerm &t : build[absB].terms) {
                t.wire = 1;
                o.terms.push_back(t);
            }
        o.terms.push_back(makeTerm(op));
        emit(std::move(o));
    }

    FusedProgram prog;
    prog.numQubits = circuit.numQubits();
    prog.sourceGates = consumed;
    for (OpBuild &o : build) {
        if (!o.alive)
            continue;
        FusedOp f;
        f.primary = o.terms.empty()
                        ? GateType::ID
                        : (o.allVirtual ? GateType::RZ : o.primary);
        if (!o.terms.empty() && full)
            f.primary = o.terms.front().type;
        f.twoQubit = o.twoQubit;
        f.q0 = o.q0;
        f.q1 = o.q1;
        f.diagonal = true;
        f.symbolic = false;
        f.termBegin = static_cast<int>(prog.terms.size());
        for (const FusedTerm &t : o.terms) {
            f.diagonal = f.diagonal && isDiagonalGate(t.type);
            for (int i = 0; i < t.numParams; ++i)
                f.symbolic = f.symbolic || t.params[i].isSymbolic();
            prog.terms.push_back(t);
        }
        f.termEnd = static_cast<int>(prog.terms.size());
        if (!f.symbolic && f.termBegin != f.termEnd)
            fusedEntries(prog, f, {}, f.entries);
        prog.ops.push_back(f);
    }
    return prog;
}

void
fusedEntries(const FusedProgram &prog, const FusedOp &op,
             const std::vector<double> &params, Complex *out)
{
    const int sub = op.twoQubit ? 4 : 2;
    double angles[3] = {0, 0, 0};
    Complex g[16];

    if (op.diagonal) {
        for (int j = 0; j < sub; ++j)
            out[j] = Complex(1, 0);
        for (int ti = op.termBegin; ti < op.termEnd; ++ti) {
            const FusedTerm &t = prog.terms[ti];
            for (int i = 0; i < t.numParams; ++i)
                angles[i] = t.params[i].evaluate(params);
            gateEntries(t.type, angles, g);
            if (!op.twoQubit) {
                out[0] *= g[0];
                out[1] *= g[1];
            } else if (t.wire >= 0) {
                for (int j = 0; j < 4; ++j)
                    out[j] *= g[(j >> t.wire) & 1];
            } else {
                for (int j = 0; j < 4; ++j)
                    out[j] *= g[t.swapped ? swapBits2(j) : j];
            }
        }
        return;
    }

    for (int r = 0; r < sub; ++r)
        for (int c = 0; c < sub; ++c)
            out[r * sub + c] =
                (r == c) ? Complex(1, 0) : Complex(0, 0);
    Complex full[16];
    for (int ti = op.termBegin; ti < op.termEnd; ++ti) {
        const FusedTerm &t = prog.terms[ti];
        for (int i = 0; i < t.numParams; ++i)
            angles[i] = t.params[i].evaluate(params);
        gateEntries(t.type, angles, g);
        termMatrix(t, g, op.twoQubit, full);
        mulInto(out, full, sub);
    }
}

namespace {

/** Shared apply loop over any simulator exposing the 4 entry paths. */
template <typename Sim>
void
applyFusedProgramImpl(const FusedProgram &prog,
                      const std::vector<double> &params, Sim &sim)
{
    Complex scratch[16];
    for (const FusedOp &op : prog.ops) {
        if (op.termBegin == op.termEnd)
            continue; // explicit idle: no unitary
        const Complex *u = op.entries;
        if (op.symbolic) {
            fusedEntries(prog, op, params, scratch);
            u = scratch;
        }
        if (op.twoQubit) {
            op.diagonal ? sim.applyDiag2(u, op.q0, op.q1)
                        : sim.applyGate2(u, op.q0, op.q1);
        } else {
            op.diagonal ? sim.applyDiag1(u, op.q0)
                        : sim.applyGate1(u, op.q0);
        }
    }
}

} // namespace

void
applyFusedProgram(const FusedProgram &prog,
                  const std::vector<double> &params, Statevector &sv)
{
    applyFusedProgramImpl(prog, params, sv);
}

void
applyFusedProgram(const FusedProgram &prog,
                  const std::vector<double> &params, DensityMatrix &dm)
{
    applyFusedProgramImpl(prog, params, dm);
}

} // namespace eqc
