/**
 * @file
 * eqc::Runtime — the public entry point of the EQC library.
 *
 * A Runtime accepts EQC jobs (problem + device list + options), picks
 * the execution engine named by the options ("virtual" DES replay,
 * "threaded" wall-clock TaskPool fleet, or anything registered with
 * the EngineRegistry), and hands back a JobHandle that carries the
 * resulting EqcTrace. Jobs are queued at submit time; they execute
 * either on first JobHandle::get()/take() (inline, lazily) or all at
 * once via Runtime::runAll(), which fans independent jobs across
 * worker threads — the multi-tenant "many VQA campaigns against one
 * fleet" shape the ROADMAP points at.
 *
 *   Runtime rt;
 *   EqcOptions opts;
 *   opts.master.epochs = 40;
 *   JobHandle job = rt.submit(problem, evaluationEnsemble(), opts);
 *   const EqcTrace &trace = job.get();
 *
 * Telemetry is streamed through TraceObserver (engine.h): the
 * recordIdealEnergy / recordWeights switches install the corresponding
 * built-in observers, and submit() accepts extra user observers.
 */

#ifndef EQC_CORE_RUNTIME_H
#define EQC_CORE_RUNTIME_H

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"

namespace eqc {

namespace detail {
struct JobState;
} // namespace detail

/**
 * Handle to one submitted EQC job. Cheap to copy; all copies refer to
 * the same underlying job. A default-constructed handle is invalid.
 *
 * The finished trace is single-consumer: once a job is done, read it
 * from one thread at a time. get() hands out a reference into the job
 * and take() moves the trace out, so concurrent get()/take() through
 * different copies of the same handle race on the trace itself.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    /** true when the handle refers to a submitted job. */
    bool valid() const { return state_ != nullptr; }

    /** Stable id of the job within its Runtime (submission order). */
    int id() const;

    /** Name of the engine the job runs on. */
    const std::string &engine() const;

    /** true once the job has finished and its trace is available. */
    bool done() const;

    /**
     * The job's trace. Runs the job inline if it is still queued;
     * blocks if another thread (e.g. Runtime::runAll) is running it.
     * Rethrows here if the job's engine threw during execution.
     */
    const EqcTrace &get();

    /**
     * get(), then move the trace out of the job. After a take(),
     * get() through any copy of the handle observes an empty trace.
     */
    EqcTrace take();

  private:
    friend class Runtime;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::JobState> state_;
};

/** Runtime-wide configuration. */
struct RuntimeOptions
{
    /**
     * Worker threads used by runAll() to fan queued jobs out;
     * 0 means one per hardware thread.
     */
    int maxConcurrentJobs = 0;
};

/** Engine-pluggable EQC job runner (see file comment for usage). */
class Runtime
{
  public:
    explicit Runtime(const RuntimeOptions &options = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Queue one EQC job on the engine named by @p options.engine.
     * The problem and device list are copied, so the caller's copies
     * need not outlive the job.
     * @throws std::invalid_argument when the engine name is not
     *         registered (the message lists the registered engines).
     */
    JobHandle submit(const VqaProblem &problem,
                     const std::vector<Device> &devices,
                     const EqcOptions &options);

    /**
     * As above, with additional telemetry observers. The observers are
     * not owned and must outlive the job's execution.
     */
    JobHandle submit(const VqaProblem &problem,
                     const std::vector<Device> &devices,
                     const EqcOptions &options,
                     const std::vector<TraceObserver *> &observers);

    /**
     * Run every still-queued job, fanning independent jobs across up
     * to RuntimeOptions::maxConcurrentJobs worker threads. Jobs whose
     * handles were already get()-run are skipped. Returns when all
     * queued jobs have finished.
     */
    void runAll();

    /** Number of submitted jobs that have not finished yet. */
    std::size_t pendingJobs() const;

    /** Names of all registered engines (sorted). */
    static std::vector<std::string> engineNames();

  private:
    RuntimeOptions options_;
    std::vector<std::shared_ptr<detail::JobState>> jobs_;
    int nextId_ = 0;
};

} // namespace eqc

#endif // EQC_CORE_RUNTIME_H
