#include "core/engine.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "vqa/expectation.h"

namespace eqc {

// ---------------------------------------------------------------------------
// TraceObserver default (no-op) hooks.
// ---------------------------------------------------------------------------

void
TraceObserver::onResult(RunContext &, std::size_t, const GradientResult &,
                        double)
{
}

void
TraceObserver::onEpoch(RunContext &, EpochRecord &)
{
}

void
TraceObserver::onCooldown(RunContext &, std::size_t, double)
{
}

void
TraceObserver::onFinish(RunContext &)
{
}

// ---------------------------------------------------------------------------
// Built-in observers: the telemetry the legacy executors hard-coded.
// ---------------------------------------------------------------------------

void
WeightTimelineObserver::onResult(RunContext &ctx, std::size_t clientId,
                                 const GradientResult &result,
                                 double weight)
{
    ctx.trace().weights.push_back({ctx.nowH(),
                                   static_cast<int>(clientId),
                                   result.pCorrect, weight});
}

void
JobsPerDeviceObserver::onResult(RunContext &ctx, std::size_t clientId,
                                const GradientResult &, double)
{
    ++ctx.trace().jobsPerDevice[ctx.ensemble().client(clientId)
                                    .device()
                                    .name];
}

void
IdealEnergyObserver::onEpoch(RunContext &ctx, EpochRecord &record)
{
    record.energyIdeal =
        idealEnergy(ctx.problem().ansatz, ctx.problem().hamiltonian,
                    ctx.master().params());
}

// ---------------------------------------------------------------------------
// RunContext
// ---------------------------------------------------------------------------

RunContext::RunContext(const VqaProblem &problem,
                       const std::vector<Device> &devices,
                       const EqcOptions &options,
                       std::vector<TraceObserver *> observers)
    : problem_(problem), options_(options),
      ensemble_(problem_, devices, options.seed, options.client),
      master_(problem_, options.master),
      observers_(std::move(observers)),
      bottomStreak_(ensemble_.size(), 0),
      cooldownUntil_(ensemble_.size(), 0.0)
{
}

void
RunContext::applyResult(std::size_t ci,
                        const ClientNode::Processed &processed,
                        double nowH)
{
    nowH_ = nowH;
    clock_->advanceTo(nowH);
    const GradientResult &result = processed.result;
    double weight = master_.onResult(result);
    lastCompletionH_ = std::max(lastCompletionH_, nowH);
    trace_.circuitEvaluations += result.circuitsRun;
    for (TraceObserver *obs : observers_)
        obs->onResult(*this, ci, result, weight);

    // Adaptive management: cool down clients pinned at the bottom of
    // the weight range.
    const WeightBounds &b = master_.options().weightBounds;
    if (options_.adaptive.enabled && b.enabled()) {
        if (weight <= b.lo + options_.adaptive.margin * (b.hi - b.lo)) {
            if (++bottomStreak_[ci] >= options_.adaptive.unstableStreak) {
                cooldownUntil_[ci] = nowH + options_.adaptive.cooldownH;
                bottomStreak_[ci] = 0;
                ++trace_.cooldowns;
                for (TraceObserver *obs : observers_)
                    obs->onCooldown(*this, ci, cooldownUntil_[ci]);
            }
        } else {
            bottomStreak_[ci] = 0;
        }
    }
    recordEpochs(ci);
}

void
RunContext::recordEpochs(std::size_t applyingCi)
{
    // Pull epoch records as soon as the master's epoch counter advances.
    while (static_cast<int>(trace_.epochs.size()) <
               master_.epochsCompleted() &&
           static_cast<int>(trace_.epochs.size()) <
               options_.master.epochs) {
        EpochRecord rec;
        rec.epoch = static_cast<int>(trace_.epochs.size());
        rec.timeH = nowH_;
        // Diagnostic energy on an ensemble member (round-robin where
        // the engine allows it), so the plotted curve carries the
        // mixture's measurement noise.
        std::size_t evalCi =
            epochEvalPolicy_ == EpochEvalPolicy::RoundRobin
                ? rrEval_ % ensemble_.size()
                : applyingCi;
        ++rrEval_;
        ClientNode &ev = ensemble_.client(evalCi);
        rec.energyDevice =
            ev.evaluateEnergy(master_.params(), nowH_, enginePool_);
        for (TraceObserver *obs : observers_)
            obs->onEpoch(*this, rec);
        trace_.epochs.push_back(rec);
    }
}

void
RunContext::finish()
{
    trace_.terminated = !master_.done();
    trace_.finalParams = master_.params();
    trace_.staleness = master_.stalenessStats();
    trace_.totalHours = lastCompletionH_;
    trace_.epochsPerHour =
        trace_.totalHours > 0.0
            ? static_cast<double>(trace_.epochs.size()) /
                  trace_.totalHours
            : 0.0;
    for (TraceObserver *obs : observers_)
        obs->onFinish(*this);
}

// ---------------------------------------------------------------------------
// EngineRegistry
// ---------------------------------------------------------------------------

EngineRegistry::EngineRegistry()
{
    factories_["virtual"] = [] { return makeVirtualEngine(); };
    factories_["threaded"] = [] { return makeThreadedEngine(); };
    factories_["service"] = [] { return makeServiceEngine(); };
}

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    return registry;
}

void
EngineRegistry::add(const std::string &name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    factories_[name] = std::move(factory);
}

bool
EngineRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) > 0;
}

std::unique_ptr<ExecutionEngine>
EngineRegistry::create(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::ostringstream msg;
        msg << "unknown execution engine \"" << name
            << "\"; registered engines:";
        for (const auto &[key, factory] : factories_)
            msg << " \"" << key << "\"";
        throw std::invalid_argument(msg.str());
    }
    return it->second();
}

std::vector<std::string>
EngineRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[key, factory] : factories_)
        out.push_back(key);
    return out; // std::map iteration is already sorted
}

} // namespace eqc
