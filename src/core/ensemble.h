/**
 * @file
 * Ensemble formation and online management.
 *
 * The master "queries the quantum computing service provider(s)" and
 * admits every device with enough active qubits (paper Sec. III-C1);
 * heterogeneous ensembles are first-class. The optional adaptive policy
 * implements the paper's "online adjustment of the quantum ensemble
 * based on the runtime condition of the backend devices": clients whose
 * normalized weight pins the lower bound repeatedly are cooled down for
 * a while (typically until their next calibration rescues them).
 */

#ifndef EQC_CORE_ENSEMBLE_H
#define EQC_CORE_ENSEMBLE_H

#include <memory>
#include <vector>

#include "core/client.h"

namespace eqc {

/** Adaptive ensemble-management policy knobs. */
struct AdaptivePolicy
{
    /** Enable cooldown of persistently worst-weighted clients. */
    bool enabled = false;
    /** Consecutive bottom-weight results before cooling down. */
    int unstableStreak = 4;
    /** Hours a cooled-down client sits out. */
    double cooldownH = 6.0;
    /** Weight margin above lo counting as "pinned at the bottom". */
    double margin = 0.05;
};

/** The set of client nodes serving one EQC optimization. */
class Ensemble
{
  public:
    /**
     * Build clients for every eligible device.
     * @param problem the VQA under optimization
     * @param devices candidate devices (ineligible ones are skipped
     *        with a warning)
     * @param seed experiment seed
     * @param config per-client execution knobs
     */
    Ensemble(const VqaProblem &problem,
             const std::vector<Device> &devices, uint64_t seed,
             const ClientConfig &config);

    /**
     * The clients, in admission order (stable across the run: client
     * index == ClientNode::id()). Exposed mutably for engines that
     * need direct worker access; the container itself must not be
     * resized while a run is in flight.
     */
    std::vector<std::unique_ptr<ClientNode>> &clients()
    {
        return clients_;
    }

    /** Number of admitted clients. */
    std::size_t size() const { return clients_.size(); }

    /**
     * Client @p i (0-based admission index). Distinct clients are
     * independent — engines may drive them from different threads —
     * but each individual client is serial: at most one job in flight.
     */
    ClientNode &client(std::size_t i) { return *clients_[i]; }

    /** Devices from @p devices that can run @p circuitQubits qubits. */
    static std::vector<Device>
    eligible(const std::vector<Device> &devices, int circuitQubits);

  private:
    std::vector<std::unique_ptr<ClientNode>> clients_;
};

} // namespace eqc

#endif // EQC_CORE_ENSEMBLE_H
