/**
 * @file
 * The EQC master node (paper Alg. 1).
 *
 * Holds the global parameter vector and the loss definition, hands out
 * parameter-differentiation tasks cyclically to whichever client is
 * free, and applies returned gradients with the weighted ASGD rule
 * (Eq. 4). The master is execution-engine agnostic: the virtual (DES)
 * executor and the threaded executor both drive this same class, so the
 * asynchronous semantics — stale gradients, cyclic parameter order,
 * bounded delay — are identical in both deployments.
 */

#ifndef EQC_CORE_MASTER_H
#define EQC_CORE_MASTER_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/weighting.h"
#include "vqa/optimizer.h"
#include "vqa/problem.h"

namespace eqc {

/** One parameter-differentiation assignment. */
struct GradientTask
{
    int paramIndex = -1;
    /** Snapshot of the parameters at assignment time. */
    std::vector<double> params;
    /** Master version (update count) at assignment time. */
    uint64_t version = 0;
};

/** A completed gradient computation returned by a client. */
struct GradientResult
{
    int paramIndex = -1;
    double gradient = 0.0;
    /** Eq. 2 quality score computed by the client at induction time. */
    double pCorrect = 1.0;
    int clientId = -1;
    uint64_t version = 0;
    /** Virtual completion time (hours). */
    double completionTimeH = 0.0;
    int circuitsRun = 0;
};

/** Master-node configuration. */
struct MasterOptions
{
    int epochs = 250;
    double learningRate = 0.1;
    WeightBounds weightBounds{}; ///< {1,1} disables weighting
};

/** The single master of an EQC deployment. */
class MasterNode
{
  public:
    /**
     * @param problem the VQA under optimization
     * @param options epochs / learning rate / weight bounds
     */
    MasterNode(const VqaProblem &problem, const MasterOptions &options);

    /** true once the target number of epochs has been applied. */
    bool done() const;

    /** Next cyclic parameter assignment (Alg. 1 task queue). */
    GradientTask nextTask();

    /**
     * Apply a returned gradient with the weighted ASGD rule (Eq. 4).
     * @return the normalized weight that was applied
     */
    double onResult(const GradientResult &result);

    /** Live parameter vector. */
    const std::vector<double> &params() const { return params_; }

    /** Completed epochs (gradients received / parameter count). */
    int epochsCompleted() const;

    /** Gradients applied so far. */
    uint64_t gradientsReceived() const { return received_; }

    /** Staleness (in master updates) of the applied gradients. */
    const RunningStats &stalenessStats() const { return staleness_; }

    /** The Sec. V-D weight normalizer (exposed for recording). */
    WeightNormalizer &normalizer() { return normalizer_; }

    const MasterOptions &options() const { return options_; }

  private:
    MasterOptions options_;
    int numParams_;
    std::vector<double> params_;
    AsgdOptimizer optimizer_;
    WeightNormalizer normalizer_;
    int nextParam_ = 0;
    uint64_t received_ = 0;
    RunningStats staleness_;
};

} // namespace eqc

#endif // EQC_CORE_MASTER_H
