/**
 * @file
 * The execution-engine seam of the EQC runtime.
 *
 * The paper's master/client protocol (Alg. 1 / Alg. 2) is
 * deployment-agnostic: the same semantics run on a discrete-event
 * simulator or a Ray-style threaded fleet. This header pins that
 * separation down as an API:
 *
 *  - RunContext owns everything deployment-independent about one EQC
 *    job: the ensemble, the master, the adaptive cooldown policy, the
 *    round-robin epoch evaluation, and the trace under construction.
 *  - ExecutionEngine is the deployment: it decides *when* clients pull
 *    tasks and *how* latencies elapse (virtual clock vs wall clock),
 *    and drives the shared RunContext for everything else.
 *  - TraceObserver streams telemetry out of the run (weight timeline,
 *    staleness, jobs-per-device, ideal-energy annotation) instead of
 *    baking recording flags into each executor.
 *  - EngineRegistry maps engine names ("virtual", "threaded", future
 *    batched/remote deployments) to factories.
 *
 * Most callers should use the higher-level eqc::Runtime (runtime.h);
 * this layer is for implementing new engines or custom telemetry.
 */

#ifndef EQC_CORE_ENGINE_H
#define EQC_CORE_ENGINE_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/event_loop.h"
#include "core/eqc.h"

namespace eqc {

class RunContext;
class TaskPool;

/**
 * Streaming telemetry callbacks for one EQC run.
 *
 * Engines invoke these through RunContext while the run is in flight,
 * so telemetry is observed as it happens rather than reconstructed from
 * the finished trace. Calls are serialized by the same discipline as
 * RunContext::applyResult (the threaded engine holds its master mutex).
 */
class TraceObserver
{
  public:
    virtual ~TraceObserver() = default;

    /** A gradient result was applied; @p weight is the Eq. 4 weight. */
    virtual void onResult(RunContext &ctx, std::size_t clientId,
                          const GradientResult &result, double weight);

    /**
     * An epoch record is being finalized; observers may annotate it
     * (e.g. fill in the ideal-simulator energy) before it is appended
     * to the trace.
     */
    virtual void onEpoch(RunContext &ctx, EpochRecord &record);

    /** The adaptive policy cooled @p clientId down until @p untilH. */
    virtual void onCooldown(RunContext &ctx, std::size_t clientId,
                            double untilH);

    /** The run finished; the trace's tail fields are final. */
    virtual void onFinish(RunContext &ctx);
};

/** Streams (time, client, pCorrect, weight) samples into the trace. */
class WeightTimelineObserver : public TraceObserver
{
  public:
    void onResult(RunContext &ctx, std::size_t clientId,
                  const GradientResult &result, double weight) override;
};

/** Counts completed gradient jobs per device into the trace. */
class JobsPerDeviceObserver : public TraceObserver
{
  public:
    void onResult(RunContext &ctx, std::size_t clientId,
                  const GradientResult &result, double weight) override;
};

/** Annotates each epoch with the ideal-simulator energy. */
class IdealEnergyObserver : public TraceObserver
{
  public:
    void onEpoch(RunContext &ctx, EpochRecord &record) override;
};

/**
 * Deployment-independent state and orchestration logic of one EQC job.
 *
 * A RunContext is built once per job and handed to an ExecutionEngine.
 * The engine owns scheduling (when a client pulls its next task, how
 * the job latency elapses); the context owns everything the paper's
 * protocol says must be identical across deployments: the master
 * update rule, the adaptive cooldown policy, round-robin epoch
 * evaluation, and trace/telemetry recording.
 *
 * RunContext is not internally synchronized: single-threaded engines
 * use it directly, concurrent engines must serialize applyResult /
 * cooldownUntil / done under one lock (see threaded_executor.cc).
 */
class RunContext
{
  public:
    /**
     * Which ensemble member evaluates the diagnostic energy of a
     * finalized epoch. RoundRobin cycles through the ensemble (the
     * deterministic DES default); ApplyingClient uses the client
     * whose result is being applied — required by concurrent engines,
     * where that client's worker is provably idle (it is the thread
     * inside applyResult) while any other member may be mid-process()
     * on its own thread.
     */
    enum class EpochEvalPolicy { RoundRobin, ApplyingClient };

    /**
     * @param problem the VQA under optimization (copied, so the
     *        context is self-contained and cannot dangle; the copy is
     *        negligible next to per-client transpilation)
     * @param devices candidate devices (ineligible ones are skipped)
     * @param options full run configuration
     * @param observers telemetry sinks, invoked in order; not owned,
     *        must outlive the run
     */
    RunContext(const VqaProblem &problem,
               const std::vector<Device> &devices,
               const EqcOptions &options,
               std::vector<TraceObserver *> observers = {});

    const VqaProblem &problem() const { return problem_; }
    const EqcOptions &options() const { return options_; }
    Ensemble &ensemble() { return ensemble_; }
    MasterNode &master() { return master_; }
    EqcTrace &trace() { return trace_; }

    std::size_t numClients() const { return ensemble_.size(); }

    /** Engines choose their epoch-evaluation client before starting. */
    void setEpochEvalPolicy(EpochEvalPolicy policy)
    {
        epochEvalPolicy_ = policy;
    }

    /**
     * Fan-out pool the run's diagnostic evaluations use (epoch-energy
     * estimates). Engines that honor EqcOptions::engineThreads set
     * this to their own pool so the whole job stays bounded by it;
     * nullptr (the default) means TaskPool::shared().
     */
    void setEnginePool(TaskPool *pool) { enginePool_ = pool; }

    /** The pool set by setEnginePool (nullptr: shared pool). */
    TaskPool *enginePool() const { return enginePool_; }

    /**
     * The run's shared clock. Defaults to an internal VirtualClock;
     * engines that serve in real time (or hand the run to an
     * event-driven subsystem like serve::ServiceNode) install their
     * clock here so every component of the job agrees on what "now"
     * means. Engines advance it as results apply.
     */
    Clock &clock() { return *clock_; }

    /** Replace the run's clock (not owned; must outlive the run). */
    void setClock(Clock *clock) { clock_ = clock ? clock : &ownClock_; }

    /** Virtual time of the most recently applied result (hours). */
    double nowH() const { return nowH_; }

    /** true once the master has applied its target number of epochs. */
    bool done() const { return master_.done(); }

    /**
     * Hour until which the adaptive policy has cooled down client
     * @p ci; 0 when the client is free to pull tasks.
     */
    double cooldownUntil(std::size_t ci) const
    {
        return cooldownUntil_[ci];
    }

    /**
     * Apply one completed gradient at virtual time @p nowH: master
     * update, streamed telemetry, adaptive cooldown bookkeeping, and
     * epoch recording. Engines must serialize calls (the DES engine is
     * single-threaded by construction; the threaded engine wraps this
     * in its master mutex).
     */
    void applyResult(std::size_t ci, const ClientNode::Processed &processed,
                     double nowH);

    /** Fill the trace's tail fields once the engine has drained. */
    void finish();

    /** Move the finished trace out of the context. */
    EqcTrace takeTrace() { return std::move(trace_); }

  private:
    void recordEpochs(std::size_t applyingCi);

    VqaProblem problem_;
    EqcOptions options_;
    Ensemble ensemble_;
    MasterNode master_;
    EqcTrace trace_;
    std::vector<TraceObserver *> observers_;
    TaskPool *enginePool_ = nullptr;
    VirtualClock ownClock_;
    Clock *clock_ = &ownClock_;
    std::vector<int> bottomStreak_;
    std::vector<double> cooldownUntil_;
    EpochEvalPolicy epochEvalPolicy_ = EpochEvalPolicy::RoundRobin;
    std::size_t rrEval_ = 0;
    double nowH_ = 0.0;
    double lastCompletionH_ = 0.0;
};

/**
 * One EQC deployment: drives a RunContext from start to drain.
 *
 * Implementations decide how time passes and how clients are
 * scheduled; all protocol semantics live in the context. Engines are
 * created per job through the EngineRegistry and may keep per-run
 * state.
 */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Registry key of this engine ("virtual", "threaded", ...). */
    virtual std::string name() const = 0;

    /**
     * Execute the job to completion (or to the time budget). Must call
     * ctx.finish() before returning.
     */
    virtual void run(RunContext &ctx) = 0;
};

/**
 * String-keyed registry of execution-engine factories.
 *
 * The built-in "virtual" (deterministic discrete-event) and "threaded"
 * (wall-clock scheduler + TaskPool fleet) engines are pre-registered;
 * deployments can add their own (batched, remote, ...) under new names.
 */
class EngineRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<ExecutionEngine>()>;

    /** The process-wide registry. */
    static EngineRegistry &instance();

    /** Register (or replace) the factory for @p name. */
    void add(const std::string &name, Factory factory);

    /** true when an engine named @p name is registered. */
    bool has(const std::string &name) const;

    /**
     * Instantiate the engine registered under @p name.
     * @throws std::invalid_argument naming the unknown engine and
     *         listing every registered one (no silent default).
     */
    std::unique_ptr<ExecutionEngine> create(const std::string &name) const;

    /** Sorted names of all registered engines. */
    std::vector<std::string> names() const;

  private:
    EngineRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/**
 * Factory for the deterministic discrete-event engine ("virtual").
 * Gradient batches fan out through a TaskPool; the trace is
 * bit-identical for every thread count (see EqcOptions::engineThreads).
 */
std::unique_ptr<ExecutionEngine> makeVirtualEngine();

/**
 * Factory for the wall-clock engine ("threaded"): a single scheduler
 * thread owns the master, compute jobs run as TaskPool async tasks.
 * Intentionally non-deterministic (arrival order is the experiment).
 */
std::unique_ptr<ExecutionEngine> makeThreadedEngine();

/**
 * Factory for the serving-layer engine ("service"): gradients are
 * routed through a multi-tenant ServiceNode that shot-shards each
 * parameter-shift evaluation across the whole ensemble and applies
 * the aggregated gradient synchronously. Declared here (the pattern
 * of the other built-ins) and implemented by the serve layer
 * (src/serve/service_engine.cc), so core's headers never include
 * serve's — the layering stays one-directional at the include level.
 * Deterministic for every thread count.
 */
std::unique_ptr<ExecutionEngine> makeServiceEngine();

} // namespace eqc

#endif // EQC_CORE_ENGINE_H
