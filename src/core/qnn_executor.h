/**
 * @file
 * EQC executor for QNN workloads: dataset-level task decomposition
 * (paper Sec. III-A). A task is one (parameter, data point) pair; the
 * client returns dl(x_d; theta)/dtheta_i via the chain rule
 * 2(<O> - y_d) * d<O>/dtheta_i, and the master applies it with weight
 * lr/n — asynchronously accumulating the dataset-average gradient, as
 * the paper prescribes ("the gradients are applied asynchronously").
 */

#ifndef EQC_CORE_QNN_EXECUTOR_H
#define EQC_CORE_QNN_EXECUTOR_H

#include <map>
#include <string>
#include <vector>

#include "core/eqc.h"
#include "vqa/qnn.h"

namespace eqc {

/** One epoch record of a QNN training run. */
struct QnnEpochRecord
{
    int epoch = 0;
    double timeH = 0.0;
    /** Dataset MSE of the current parameters (ideal simulator). */
    double mseIdeal = 0.0;
};

/** Full record of one QNN training run. */
struct QnnTrace
{
    std::string label;
    std::vector<QnnEpochRecord> epochs;
    std::vector<double> finalParams;
    double totalHours = 0.0;
    double epochsPerHour = 0.0;
    bool terminated = false;
    std::map<std::string, int> jobsPerDevice;
};

/** Options for QNN training (subset of EqcOptions semantics). */
struct QnnOptions
{
    int epochs = 30;
    double learningRate = 0.2;
    WeightBounds weightBounds{};
    int shots = 8192;
    ShotMode shotMode = ShotMode::Gaussian;
    PCorrectMode pCorrectMode = PCorrectMode::Physical;
    double maxHours = 336.0;
    uint64_t seed = 1;
};

/**
 * Train a QNN on the EQC ensemble with dataset-level parallelism. One
 * epoch = numParams x numSamples gradient contributions, distributed
 * cyclically over the clients.
 */
QnnTrace runQnnEqcVirtual(const QnnProblem &problem,
                          const std::vector<Device> &devices,
                          const QnnOptions &options);

/** Single-device baseline with the same task decomposition. */
QnnTrace trainQnnSingleDevice(const QnnProblem &problem,
                              const Device &device,
                              const QnnOptions &options);

} // namespace eqc

#endif // EQC_CORE_QNN_EXECUTOR_H
