/**
 * @file
 * Threaded EQC executor: the Ray-style deployment with one std::thread
 * per client node and a mutex-guarded master, demonstrating that
 * MasterNode/ClientNode carry the full asynchronous protocol without
 * any DES support. Virtual queue latencies are scaled down to
 * wall-clock sleeps; the run is intentionally non-deterministic (thread
 * interleaving decides gradient arrival order), which is what the real
 * system looks like.
 */

#include "core/eqc.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace eqc {

EqcTrace
runEqcThreaded(const VqaProblem &problem,
               const std::vector<Device> &devices,
               const EqcOptions &options, double hoursPerWallSecond)
{
    if (hoursPerWallSecond <= 0.0)
        fatal("runEqcThreaded: time scale must be positive");

    EqcTrace trace;
    trace.label = "EQC-threaded";

    Ensemble ensemble(problem, devices, options.seed, options.client);
    MasterNode master(problem, options.master);
    std::mutex masterMutex;
    std::atomic<bool> stop{false};
    std::size_t rrEval = 0;
    double lastCompletionH = 0.0;

    const auto wallStart = std::chrono::steady_clock::now();
    auto virtualNow = [&]() {
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - wallStart;
        return dt.count() * hoursPerWallSecond;
    };

    // Caller must hold masterMutex.
    auto recordEpochsLocked = [&](double tH, ClientNode &evalClient) {
        while (static_cast<int>(trace.epochs.size()) <
                   master.epochsCompleted() &&
               static_cast<int>(trace.epochs.size()) <
                   options.master.epochs) {
            EpochRecord rec;
            rec.epoch = static_cast<int>(trace.epochs.size());
            rec.timeH = tH;
            rec.energyDevice =
                evalClient.evaluateEnergy(master.params(), tH);
            rec.energyIdeal =
                options.recordIdealEnergy
                    ? idealEnergy(problem.ansatz, problem.hamiltonian,
                                  master.params())
                    : 0.0;
            trace.epochs.push_back(rec);
            ++rrEval;
        }
    };

    auto worker = [&](std::size_t ci) {
        ClientNode &client = ensemble.client(ci);
        while (!stop.load()) {
            GradientTask task;
            {
                std::lock_guard<std::mutex> lock(masterMutex);
                if (master.done())
                    break;
                task = master.nextTask();
            }
            double submitH = virtualNow();
            if (submitH > options.maxHours) {
                std::lock_guard<std::mutex> lock(masterMutex);
                trace.terminated = true;
                break;
            }
            ClientNode::Processed processed =
                client.process(task, submitH);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                processed.latencyH / hoursPerWallSecond));
            {
                std::lock_guard<std::mutex> lock(masterMutex);
                if (master.done())
                    break;
                double weight = master.onResult(processed.result);
                double nowH = virtualNow();
                lastCompletionH = std::max(lastCompletionH, nowH);
                trace.circuitEvaluations +=
                    processed.result.circuitsRun;
                ++trace.jobsPerDevice[client.device().name];
                if (options.recordWeights) {
                    trace.weights.push_back(
                        {nowH, static_cast<int>(ci),
                         processed.result.pCorrect, weight});
                }
                recordEpochsLocked(nowH, client);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(ensemble.size());
    for (std::size_t ci = 0; ci < ensemble.size(); ++ci)
        threads.emplace_back(worker, ci);
    for (std::thread &t : threads)
        t.join();
    stop.store(true);

    trace.terminated = trace.terminated || !master.done();
    trace.finalParams = master.params();
    trace.staleness = master.stalenessStats();
    trace.totalHours = lastCompletionH;
    trace.epochsPerHour =
        trace.totalHours > 0.0
            ? static_cast<double>(trace.epochs.size()) / trace.totalHours
            : 0.0;
    return trace;
}

} // namespace eqc
