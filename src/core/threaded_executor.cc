/**
 * @file
 * Threaded EQC execution engine ("threaded"): the Ray-style wall-clock
 * deployment. Virtual queue latencies are scaled to wall-clock delays;
 * the run is intentionally non-deterministic (scheduling decides
 * gradient arrival order), which is what the real system looks like.
 *
 * Unlike the original one-std::thread-per-client design, the engine
 * now runs a single scheduler (the calling thread) that owns every
 * master interaction, plus a timer heap of due events; the heavy
 * gradient computations are submitted to the engine's TaskPool as
 * independent async jobs. Client count no longer dictates thread
 * count: a 50-client ensemble on an 8-way pool keeps 8 computations
 * in flight instead of 50 mostly-sleeping threads, and nothing sleeps
 * while holding compute resources.
 *
 *   dispatch(ci):  scheduler pulls the next task (serial, no lock
 *                  needed — only the scheduler touches the master) and
 *                  enqueues the compute job on the pool.
 *   compute job:   runs ClientNode::process on a pool worker, then
 *                  schedules the delivery event at now + latency.
 *   delivery:      scheduler applies the gradient (master update,
 *                  telemetry, epoch records) and re-dispatches.
 *
 * All protocol semantics live in the shared RunContext; every context
 * call below happens on the scheduler thread, so the paper's
 * asynchronous semantics (stale gradients, bounded delay) come purely
 * from job latencies, exactly as in the per-thread design.
 */

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/task_pool.h"
#include "core/engine.h"

namespace eqc {

namespace {

class ThreadedEngine final : public ExecutionEngine
{
  public:
    std::string name() const override { return "threaded"; }

    void
    run(RunContext &ctx) override
    {
        const double hoursPerWallSecond =
            ctx.options().hoursPerWallSecond;
        if (hoursPerWallSecond <= 0.0)
            fatal("threaded engine: time scale must be positive");

        ctx.trace().label = "EQC-threaded";
        // Epoch energies must be evaluated on the applying client: its
        // job is complete and not yet re-dispatched when the delivery
        // event runs, while any other client may be mid-process() on a
        // pool worker.
        ctx.setEpochEvalPolicy(
            RunContext::EpochEvalPolicy::ApplyingClient);

        std::unique_ptr<TaskPool> own;
        if (ctx.options().engineThreads > 0)
            own = std::make_unique<TaskPool>(
                ctx.options().engineThreads);
        TaskPool &pool = own ? *own : TaskPool::shared();
        ctx.setEnginePool(&pool);

        const auto wallStart = std::chrono::steady_clock::now();
        auto virtualNow = [&] {
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - wallStart;
            return dt.count() * hoursPerWallSecond;
        };

        struct Event
        {
            double dueH = 0.0;
            uint64_t seq = 0; ///< FIFO among equal due times
            std::size_t ci = 0;
            /** Delivery of a computed gradient vs a cooldown retry. */
            bool isDelivery = false;
        };
        struct Later
        {
            bool operator()(const Event &a, const Event &b) const
            {
                return a.dueH != b.dueH ? a.dueH > b.dueH
                                        : a.seq > b.seq;
            }
        };

        std::mutex mu;
        std::condition_variable cv;
        std::priority_queue<Event, std::vector<Event>, Later> heap;
        std::vector<ClientNode::Processed> slots(ctx.numClients());
        uint64_t seq = 0;
        int inflight = 0;

        // Scheduler-thread only: pull the client's next task and hand
        // the computation to the pool.
        auto dispatch = [&](std::size_t ci) {
            if (ctx.done())
                return;
            double nowH = virtualNow();
            if (nowH > ctx.options().maxHours)
                return; // client retires
            if (ctx.options().adaptive.enabled &&
                ctx.cooldownUntil(ci) > nowH) {
                std::lock_guard<std::mutex> lk(mu);
                heap.push({ctx.cooldownUntil(ci), seq++, ci, false});
                return;
            }
            GradientTask task = ctx.master().nextTask();
            {
                std::lock_guard<std::mutex> lk(mu);
                ++inflight;
            }
            pool.async([&ctx, &mu, &cv, &heap, &slots, &seq,
                        &inflight, &virtualNow, &pool, task, ci] {
                ClientNode &client = ctx.ensemble().client(ci);
                double submitH = virtualNow();
                bool retired = submitH > ctx.options().maxHours;
                ClientNode::Processed processed;
                if (!retired)
                    processed = client.process(task, submitH, &pool);
                std::lock_guard<std::mutex> lk(mu);
                if (!retired) {
                    slots[ci] = std::move(processed);
                    heap.push({virtualNow() + slots[ci].latencyH,
                               seq++, ci, true});
                }
                --inflight;
                cv.notify_all();
            });
        };

        for (std::size_t ci = 0; ci < ctx.numClients(); ++ci)
            dispatch(ci);

        std::unique_lock<std::mutex> lk(mu);
        while (!ctx.done() && (!heap.empty() || inflight > 0)) {
            if (heap.empty()) {
                cv.wait(lk);
                continue;
            }
            Event ev = heap.top();
            double nowH = virtualNow();
            if (ev.dueH > nowH) {
                cv.wait_for(lk, std::chrono::duration<double>(
                                    (ev.dueH - nowH) /
                                    hoursPerWallSecond));
                continue;
            }
            heap.pop();
            lk.unlock();
            if (ev.isDelivery && !ctx.done())
                ctx.applyResult(ev.ci, slots[ev.ci], virtualNow());
            dispatch(ev.ci);
            lk.lock();
        }
        // Let in-flight computations finish before tearing down: their
        // late deliveries are simply never applied.
        cv.wait(lk, [&] { return inflight == 0; });
        lk.unlock();

        ctx.finish();
        ctx.setEnginePool(nullptr); // pool dies with this frame
    }
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeThreadedEngine()
{
    return std::make_unique<ThreadedEngine>();
}

} // namespace eqc
