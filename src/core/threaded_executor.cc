/**
 * @file
 * Threaded EQC execution engine ("threaded"): the Ray-style deployment
 * with one std::thread per client node and a mutex-guarded master,
 * demonstrating that MasterNode/ClientNode carry the full asynchronous
 * protocol without any DES support. Virtual queue latencies are scaled
 * down to wall-clock sleeps; the run is intentionally non-deterministic
 * (thread interleaving decides gradient arrival order), which is what
 * the real system looks like.
 *
 * All protocol semantics (master update, adaptive cooldown, epoch
 * recording, telemetry) live in the shared RunContext; every context
 * call below is serialized under the master mutex.
 */

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"

namespace eqc {

namespace {

class ThreadedEngine final : public ExecutionEngine
{
  public:
    std::string name() const override { return "threaded"; }

    void
    run(RunContext &ctx) override
    {
        const double hoursPerWallSecond =
            ctx.options().hoursPerWallSecond;
        if (hoursPerWallSecond <= 0.0)
            fatal("threaded engine: time scale must be positive");

        ctx.trace().label = "EQC-threaded";
        // Epoch energies must be evaluated on the applying client: its
        // worker is the thread inside applyResult (idle under the
        // mutex), while a round-robin pick could hit a client whose
        // thread is concurrently mid-process() with no lock held.
        ctx.setEpochEvalPolicy(
            RunContext::EpochEvalPolicy::ApplyingClient);

        std::mutex masterMutex;
        const auto wallStart = std::chrono::steady_clock::now();
        auto virtualNow = [&]() {
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - wallStart;
            return dt.count() * hoursPerWallSecond;
        };
        auto sleepVirtual = [&](double hours) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                hours / hoursPerWallSecond));
        };

        auto worker = [&](std::size_t ci) {
            ClientNode &client = ctx.ensemble().client(ci);
            while (true) {
                GradientTask task;
                {
                    std::unique_lock<std::mutex> lock(masterMutex);
                    if (ctx.done())
                        break;
                    double coolUntil = ctx.cooldownUntil(ci);
                    double nowH = virtualNow();
                    if (ctx.options().adaptive.enabled &&
                        coolUntil > nowH) {
                        lock.unlock();
                        sleepVirtual(coolUntil - nowH);
                        continue;
                    }
                    task = ctx.master().nextTask();
                }
                double submitH = virtualNow();
                if (submitH > ctx.options().maxHours)
                    break;
                ClientNode::Processed processed =
                    client.process(task, submitH);
                sleepVirtual(processed.latencyH);
                {
                    std::lock_guard<std::mutex> lock(masterMutex);
                    if (ctx.done())
                        break;
                    ctx.applyResult(ci, processed, virtualNow());
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(ctx.numClients());
        for (std::size_t ci = 0; ci < ctx.numClients(); ++ci)
            threads.emplace_back(worker, ci);
        for (std::thread &t : threads)
            t.join();

        ctx.finish();
    }
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeThreadedEngine()
{
    return std::make_unique<ThreadedEngine>();
}

} // namespace eqc
