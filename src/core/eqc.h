/**
 * @file
 * EQC public facade: options and trace types shared by every execution
 * engine, plus trace-analysis helpers.
 *
 * Runs are launched through eqc::Runtime (core/runtime.h), which picks
 * the engine named by EqcOptions::engine from the EngineRegistry
 * (core/engine.h). The runEqcVirtual / runEqcThreaded free functions
 * below are deprecated wrappers kept for source compatibility.
 */

#ifndef EQC_CORE_EQC_H
#define EQC_CORE_EQC_H

#include <map>
#include <string>

#include "core/ensemble.h"
#include "core/master.h"
#include "vqa/trainer.h"

namespace eqc {

/** Full configuration of one EQC training run. */
struct EqcOptions
{
    /** Epochs / learning rate / weight bounds. */
    MasterOptions master;
    /** Shots / shot model / shift rule / Eq. 2 convention. */
    ClientConfig client;
    /** Online ensemble-management policy. */
    AdaptivePolicy adaptive;
    /** Termination rule in virtual hours. */
    double maxHours = 336.0;
    uint64_t seed = 1;
    /**
     * EngineRegistry key of the execution engine to run on. Built-in:
     * "virtual" (deterministic discrete-event replay) and "threaded"
     * (wall-clock scheduler fanning compute jobs over a TaskPool).
     */
    std::string engine = "virtual";
    /**
     * Threaded engine only: virtual hours simulated per wall-clock
     * second (queue latencies become scaled sleeps).
     */
    double hoursPerWallSecond = 50.0;
    /**
     * Size of the TaskPool the engines fan independent gradient jobs
     * out on: 0 uses the process-wide shared pool (sized by
     * EQC_THREADS or hardware concurrency), any other value gives the
     * job its own pool of that many participants. The "virtual"
     * engine's results are bit-identical for every value — fan-out
     * only trades wall-clock time.
     */
    int engineThreads = 0;
    /**
     * Record ideal-simulator energy of the evolving parameters
     * (installs an IdealEnergyObserver on the job).
     */
    bool recordIdealEnergy = true;
    /**
     * Record the per-result weight timeline, i.e. the Fig. 5 data
     * (installs a WeightTimelineObserver on the job).
     */
    bool recordWeights = true;
};

/** One weight observation (a Fig. 5 sample). */
struct WeightRecord
{
    double timeH = 0.0;
    int clientId = -1;
    double pCorrect = 0.0;
    double weight = 0.0;
};

/** Trace of an EQC run: a TrainingTrace plus ensemble telemetry. */
struct EqcTrace : TrainingTrace
{
    std::vector<WeightRecord> weights;
    /** Staleness (master updates) of the applied gradients. */
    RunningStats staleness;
    /** Gradient jobs completed per device. */
    std::map<std::string, int> jobsPerDevice;
    /** Cooldowns triggered by the adaptive policy. */
    int cooldowns = 0;
};

/**
 * Run EQC on the discrete-event engine (deterministic).
 *
 * @deprecated Thin wrapper over eqc::Runtime kept for source
 * compatibility; prefer Runtime::submit with EqcOptions::engine =
 * "virtual" (core/runtime.h), which also supports queued jobs and
 * streaming TraceObserver telemetry.
 */
[[deprecated("use eqc::Runtime::submit (core/runtime.h)")]]
EqcTrace runEqcVirtual(const VqaProblem &problem,
                       const std::vector<Device> &devices,
                       const EqcOptions &options);

/**
 * Run EQC with real std::thread client workers (the Ray-style
 * deployment). Virtual latencies are scaled to wall-clock sleeps by
 * @p hoursPerWallSecond. Non-deterministic by nature.
 *
 * @deprecated Thin wrapper over eqc::Runtime kept for source
 * compatibility; prefer Runtime::submit with EqcOptions::engine =
 * "threaded" and EqcOptions::hoursPerWallSecond set.
 */
[[deprecated("use eqc::Runtime::submit (core/runtime.h)")]]
EqcTrace runEqcThreaded(const VqaProblem &problem,
                        const std::vector<Device> &devices,
                        const EqcOptions &options,
                        double hoursPerWallSecond = 50.0);

/**
 * First index whose trailing @p window rolling mean of @p series stays
 * within @p tolAbs of @p target for the rest of the series; -1 if never.
 */
int convergenceEpoch(const std::vector<double> &series, double target,
                     double tolAbs, int window = 5);

/** Convenience overload on a trace's device-energy series. */
int convergenceEpoch(const TrainingTrace &trace, double target,
                     double tolAbs, int window = 5);

/** Mean device energy over the final @p lastK epochs of a trace. */
double finalEnergy(const TrainingTrace &trace, int lastK = 10);

/** Mean ideal-simulator energy over the final @p lastK epochs. */
double finalIdealEnergy(const TrainingTrace &trace, int lastK = 10);

/**
 * Error rate versus a reference energy, as the paper reports it:
 * |E - E_ref| / |E_ref| * 100 (percent).
 */
double errorVsReference(double energy, double reference);

} // namespace eqc

#endif // EQC_CORE_EQC_H
