#include "core/eqc.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

int
convergenceEpoch(const std::vector<double> &series, double target,
                 double tolAbs, int window)
{
    const int n = static_cast<int>(series.size());
    if (n == 0 || window < 1)
        return -1;

    // Trailing-window rolling mean at each index.
    std::vector<double> rolling(n, 0.0);
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
        acc += series[i];
        if (i >= window)
            acc -= series[i - window];
        int count = std::min(i + 1, window);
        rolling[i] = acc / count;
    }
    // First index from which the rolling mean stays within tolerance.
    for (int start = 0; start < n; ++start) {
        bool ok = true;
        for (int i = start; i < n; ++i) {
            if (std::fabs(rolling[i] - target) > tolAbs) {
                ok = false;
                break;
            }
        }
        if (ok)
            return start;
    }
    return -1;
}

int
convergenceEpoch(const TrainingTrace &trace, double target, double tolAbs,
                 int window)
{
    return convergenceEpoch(trace.deviceEnergySeries(), target, tolAbs,
                            window);
}

double
finalEnergy(const TrainingTrace &trace, int lastK)
{
    const auto &epochs = trace.epochs;
    if (epochs.empty())
        return 0.0;
    int k = std::min<int>(lastK, static_cast<int>(epochs.size()));
    double s = 0.0;
    for (int i = static_cast<int>(epochs.size()) - k;
         i < static_cast<int>(epochs.size()); ++i)
        s += epochs[i].energyDevice;
    return s / k;
}

double
finalIdealEnergy(const TrainingTrace &trace, int lastK)
{
    const auto &epochs = trace.epochs;
    if (epochs.empty())
        return 0.0;
    int k = std::min<int>(lastK, static_cast<int>(epochs.size()));
    double s = 0.0;
    for (int i = static_cast<int>(epochs.size()) - k;
         i < static_cast<int>(epochs.size()); ++i)
        s += epochs[i].energyIdeal;
    return s / k;
}

double
errorVsReference(double energy, double reference)
{
    if (reference == 0.0)
        panic("errorVsReference: zero reference energy");
    return std::fabs(energy - reference) / std::fabs(reference) * 100.0;
}

} // namespace eqc
