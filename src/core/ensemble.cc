#include "core/ensemble.h"

#include "common/logging.h"

namespace eqc {

Ensemble::Ensemble(const VqaProblem &problem,
                   const std::vector<Device> &devices, uint64_t seed,
                   const ClientConfig &config)
{
    int id = 0;
    for (const Device &d : devices) {
        if (!d.canRun(problem.ansatz.numQubits())) {
            warn("Ensemble: skipping '" + d.name +
                 "' (insufficient qubits)");
            continue;
        }
        clients_.push_back(std::make_unique<ClientNode>(
            id, d, problem, seed, config));
        ++id;
    }
    if (clients_.empty())
        fatal("Ensemble: no eligible devices");
}

std::vector<Device>
Ensemble::eligible(const std::vector<Device> &devices, int circuitQubits)
{
    std::vector<Device> out;
    for (const Device &d : devices)
        if (d.canRun(circuitQubits))
            out.push_back(d);
    return out;
}

} // namespace eqc
