/**
 * @file
 * The worker-QPU quality model of paper Sec. IV (Eq. 2) and the bounded
 * linear weight normalization of Sec. V-D.
 *
 *   P_correct = exp(-CD * mu / f(T1,T2)) *
 *               (1-gamma)^G1 * (1-beta)^G2 * (1-omega)^M
 *
 * where CD is the transpiled circuit's critical depth, mu the average
 * gate duration, gamma/beta/omega the 1q/CX/readout error rates and
 * G1/G2/M the gate/measurement counts. The decay term is implemented in
 * two flavours:
 *  - PaperLiteral: exp(-CD * mu / (T1*T2)) exactly as printed in Eq. 2
 *    (dimensionally odd — micro-seconds over squared micro-seconds);
 *  - Physical (default): exp(-CD * mu * (1/T1 + 1/T2) / 2), the
 *    dimensionally consistent combined-relaxation form.
 * Only the relative ordering of devices matters for weighting; the
 * ablation bench compares both.
 */

#ifndef EQC_CORE_WEIGHTING_H
#define EQC_CORE_WEIGHTING_H

#include <map>

#include "device/calibration.h"
#include "transpile/transpiler.h"

namespace eqc {

/** Decay-term convention for Eq. 2. */
enum class PCorrectMode { Physical, PaperLiteral };

/** Circuit-side inputs of Eq. 2, extracted from a transpiled circuit. */
struct CircuitQuality
{
    int criticalDepth = 0; ///< CD
    int g1 = 0;            ///< physical 1q gate count
    int g2 = 0;            ///< 2q gate count
    int measurements = 0;  ///< M
};

/** Extract Eq. 2 inputs from a transpilation result. */
CircuitQuality circuitQuality(const TranspiledCircuit &tc);

/**
 * Evaluate Eq. 2.
 *
 * @param quality transpiled-circuit census
 * @param cal calibration snapshot (the *reported* one at induction time)
 * @param mode decay-term convention
 * @return probability-like score clamped to [0, 1]
 */
double pCorrect(const CircuitQuality &quality,
                const CalibrationSnapshot &cal,
                PCorrectMode mode = PCorrectMode::Physical);

/** Weight bounds for the Sec. V-D normalization ([1,1] = unweighted). */
struct WeightBounds
{
    double lo = 1.0;
    double hi = 1.0;

    /** true when weighting actually varies. */
    bool enabled() const { return hi > lo; }
};

/**
 * Linear min/max rescaling of the ensemble's latest P_correct values
 * into [lo, hi] (paper Sec. V-D): the best device gets hi, the worst lo,
 * everyone else interpolates. With one client or all-equal values the
 * weight is the midpoint.
 */
class WeightNormalizer
{
  public:
    explicit WeightNormalizer(WeightBounds bounds) : bounds_(bounds) {}

    /** Record the latest P_correct reported by a client. */
    void update(int clientId, double pCorrectValue);

    /** Current normalized weight of a client (midpoint if unknown). */
    double weightFor(int clientId) const;

    /** Latest raw P_correct of a client (0 if unknown). */
    double rawFor(int clientId) const;

    const WeightBounds &bounds() const { return bounds_; }

    /** Number of clients with a recorded P_correct. */
    std::size_t knownClients() const { return latest_.size(); }

  private:
    WeightBounds bounds_;
    std::map<int, double> latest_;
};

} // namespace eqc

#endif // EQC_CORE_WEIGHTING_H
