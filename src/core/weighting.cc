#include "core/weighting.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eqc {

CircuitQuality
circuitQuality(const TranspiledCircuit &tc)
{
    CircuitQuality q;
    q.criticalDepth = tc.criticalDepth;
    q.g1 = tc.counts.g1;
    q.g2 = tc.counts.g2;
    q.measurements = tc.counts.measurements;
    return q;
}

double
pCorrect(const CircuitQuality &quality, const CalibrationSnapshot &cal,
         PCorrectMode mode)
{
    const double t1 = cal.avgT1Us();
    const double t2 = cal.avgT2Us();
    const double gamma = cal.avgGate1qError();
    const double beta = cal.avgCxError();
    const double omega = cal.avgReadoutError();
    // Average of 1q and 2q gate durations in micro-seconds (the
    // mu_{t-G1}, mu_{t-G2} of Eq. 2).
    const double muUs =
        0.5 * (cal.gate1qTimeNs + cal.avgCxTimeNs()) / 1000.0;

    if (t1 <= 0.0 || t2 <= 0.0)
        panic("pCorrect: non-positive coherence times");

    double decayExp;
    if (mode == PCorrectMode::PaperLiteral) {
        decayExp = quality.criticalDepth * muUs / (t1 * t2);
    } else {
        decayExp =
            quality.criticalDepth * muUs * 0.5 * (1.0 / t1 + 1.0 / t2);
    }
    double p = std::exp(-decayExp);
    p *= std::pow(std::clamp(1.0 - gamma, 0.0, 1.0), quality.g1);
    p *= std::pow(std::clamp(1.0 - beta, 0.0, 1.0), quality.g2);
    p *= std::pow(std::clamp(1.0 - omega, 0.0, 1.0),
                  quality.measurements);
    return std::clamp(p, 0.0, 1.0);
}

void
WeightNormalizer::update(int clientId, double pCorrectValue)
{
    latest_[clientId] = std::clamp(pCorrectValue, 0.0, 1.0);
}

double
WeightNormalizer::rawFor(int clientId) const
{
    auto it = latest_.find(clientId);
    return it == latest_.end() ? 0.0 : it->second;
}

double
WeightNormalizer::weightFor(int clientId) const
{
    const double mid = 0.5 * (bounds_.lo + bounds_.hi);
    if (!bounds_.enabled())
        return mid;
    auto it = latest_.find(clientId);
    if (it == latest_.end() || latest_.size() < 2)
        return mid;
    double pmin = latest_.begin()->second;
    double pmax = pmin;
    for (const auto &[id, p] : latest_) {
        pmin = std::min(pmin, p);
        pmax = std::max(pmax, p);
    }
    if (pmax - pmin < 1e-12)
        return mid;
    double u = (it->second - pmin) / (pmax - pmin);
    return bounds_.lo + u * (bounds_.hi - bounds_.lo);
}

} // namespace eqc
