#include "core/master.h"

#include "common/logging.h"

namespace eqc {

MasterNode::MasterNode(const VqaProblem &problem,
                       const MasterOptions &options)
    : options_(options), numParams_(problem.numParams()),
      params_(problem.initialParams),
      optimizer_(options.learningRate),
      normalizer_(options.weightBounds)
{
    if (numParams_ < 1)
        fatal("MasterNode: problem has no trainable parameters");
    if (static_cast<int>(params_.size()) != numParams_)
        fatal("MasterNode: initial parameter size mismatch");
}

bool
MasterNode::done() const
{
    return epochsCompleted() >= options_.epochs;
}

GradientTask
MasterNode::nextTask()
{
    GradientTask t;
    t.paramIndex = nextParam_;
    t.params = params_;
    t.version = optimizer_.updates();
    nextParam_ = (nextParam_ + 1) % numParams_;
    return t;
}

double
MasterNode::onResult(const GradientResult &result)
{
    normalizer_.update(result.clientId, result.pCorrect);
    double weight = normalizer_.bounds().enabled()
                        ? normalizer_.weightFor(result.clientId)
                        : 1.0;
    optimizer_.apply(params_, result.paramIndex, result.gradient,
                     weight);
    ++received_;
    staleness_.add(
        static_cast<double>(optimizer_.updates() - 1 - result.version));
    return weight;
}

int
MasterNode::epochsCompleted() const
{
    return static_cast<int>(received_ / numParams_);
}

} // namespace eqc
