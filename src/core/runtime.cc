#include "core/runtime.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace eqc {

namespace detail {

/**
 * Self-contained record of one submitted job. Owns copies of the
 * problem/devices/options and the built-in observers, so execution
 * never depends on the submitting Runtime or caller still being alive.
 */
struct JobState
{
    enum class Status { Queued, Running, Done };

    int id = -1;
    std::string engineName;
    /** Created (and the name validated) at submit; runs the job. */
    std::unique_ptr<ExecutionEngine> engine;
    VqaProblem problem;
    std::vector<Device> devices;
    EqcOptions options;
    std::vector<std::unique_ptr<TraceObserver>> ownedObservers;
    std::vector<TraceObserver *> observers;

    std::mutex mutex;
    std::condition_variable cv;
    Status status = Status::Queued;
    EqcTrace trace;
    std::exception_ptr error;

    /** Claim the job if still queued; false when taken or finished. */
    bool claim()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (status != Status::Queued)
            return false;
        status = Status::Running;
        return true;
    }

    /**
     * Execute the claimed job to completion and publish the trace.
     * An engine that throws still moves the job to Done (waiters must
     * not hang); the exception is stashed and rethrown from get().
     */
    void execute()
    {
        try {
            RunContext ctx(problem, devices, options, observers);
            engine->run(ctx);
            std::lock_guard<std::mutex> lock(mutex);
            trace = ctx.takeTrace();
            status = Status::Done;
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            error = std::current_exception();
            status = Status::Done;
        }
        cv.notify_all();
    }

    /** Run inline if queued, else wait for the running thread. */
    void ensureDone()
    {
        if (claim()) {
            execute();
            return;
        }
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return status == Status::Done; });
    }

    bool done()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return status == Status::Done;
    }
};

} // namespace detail

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

int
JobHandle::id() const
{
    return state_ ? state_->id : -1;
}

const std::string &
JobHandle::engine() const
{
    static const std::string kNone;
    return state_ ? state_->engineName : kNone;
}

bool
JobHandle::done() const
{
    return state_ && state_->done();
}

const EqcTrace &
JobHandle::get()
{
    if (!state_)
        fatal("JobHandle::get: invalid (default-constructed) handle");
    state_->ensureDone();
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->trace;
}

EqcTrace
JobHandle::take()
{
    get();
    // The lock serializes concurrent take() calls; readers holding a
    // reference from get() are NOT protected — see the header's
    // single-consumer contract.
    std::lock_guard<std::mutex> lock(state_->mutex);
    return std::move(state_->trace);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(const RuntimeOptions &options) : options_(options) {}

Runtime::~Runtime() = default;

JobHandle
Runtime::submit(const VqaProblem &problem,
                const std::vector<Device> &devices,
                const EqcOptions &options)
{
    return submit(problem, devices, options, {});
}

JobHandle
Runtime::submit(const VqaProblem &problem,
                const std::vector<Device> &devices,
                const EqcOptions &options,
                const std::vector<TraceObserver *> &observers)
{
    auto state = std::make_shared<detail::JobState>();
    state->id = nextId_++;
    state->engineName = options.engine;
    // Created here so an unknown engine name throws the registry's
    // "unknown execution engine ... registered engines: ..." message
    // at submit, not mid-runAll — and the validated instance is the
    // one that runs.
    state->engine = EngineRegistry::instance().create(options.engine);
    state->problem = problem;
    state->devices = devices;
    state->options = options;

    // Core telemetry every trace is expected to carry. (Staleness
    // needs no observer: the master tracks it and RunContext::finish
    // copies it into the trace.)
    state->ownedObservers.push_back(
        std::make_unique<JobsPerDeviceObserver>());
    // The legacy recording switches, as composable observers.
    if (options.recordWeights)
        state->ownedObservers.push_back(
            std::make_unique<WeightTimelineObserver>());
    if (options.recordIdealEnergy)
        state->ownedObservers.push_back(
            std::make_unique<IdealEnergyObserver>());
    for (const auto &obs : state->ownedObservers)
        state->observers.push_back(obs.get());
    for (TraceObserver *obs : observers)
        state->observers.push_back(obs);

    jobs_.push_back(state);
    return JobHandle(state);
}

void
Runtime::runAll()
{
    std::vector<std::shared_ptr<detail::JobState>> queued;
    for (const auto &job : jobs_)
        if (job->claim())
            queued.push_back(job);
    if (queued.empty())
        return;

    unsigned workers = options_.maxConcurrentJobs > 0
                           ? static_cast<unsigned>(
                                 options_.maxConcurrentJobs)
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    workers = std::min<unsigned>(workers,
                                 static_cast<unsigned>(queued.size()));

    if (workers <= 1) {
        for (const auto &job : queued)
            job->execute();
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < queued.size();
                 i = next.fetch_add(1))
                queued[i]->execute();
        });
    }
    for (std::thread &t : pool)
        t.join();
}

std::size_t
Runtime::pendingJobs() const
{
    std::size_t pending = 0;
    for (const auto &job : jobs_)
        if (!job->done())
            ++pending;
    return pending;
}

std::vector<std::string>
Runtime::engineNames()
{
    return EngineRegistry::instance().names();
}

// ---------------------------------------------------------------------------
// Legacy facade: the original free functions as thin wrappers.
// ---------------------------------------------------------------------------

EqcTrace
runEqcVirtual(const VqaProblem &problem,
              const std::vector<Device> &devices,
              const EqcOptions &options)
{
    EqcOptions opts = options;
    opts.engine = "virtual";
    Runtime runtime;
    return runtime.submit(problem, devices, opts).take();
}

EqcTrace
runEqcThreaded(const VqaProblem &problem,
               const std::vector<Device> &devices,
               const EqcOptions &options, double hoursPerWallSecond)
{
    EqcOptions opts = options;
    opts.engine = "threaded";
    opts.hoursPerWallSecond = hoursPerWallSecond;
    Runtime runtime;
    return runtime.submit(problem, devices, opts).take();
}

} // namespace eqc
