#include "core/client.h"

#include "common/logging.h"

namespace eqc {

ClientNode::ClientNode(int id, Device device, const VqaProblem &problem,
                       uint64_t seed, const ClientConfig &config)
    : id_(id), device_(std::move(device)), config_(config),
      backend_(device_, seed),
      estimator_(problem.hamiltonian, problem.ansatz),
      compiled_(estimator_.compileFor(device_.coupling)),
      rng_(Rng(seed).fork("client:" + device_.name)),
      durUs_(0.0)
{
    if (!device_.canRun(problem.ansatz.numQubits()))
        fatal("ClientNode: device '" + device_.name +
              "' too small for the circuit");
    durUs_ = circuitDurationUs(compiled_[0].compact,
                               device_.baseCalibration,
                               compiled_[0].compactToPhysical);
}

double
ClientNode::computePCorrect(double atTimeH) const
{
    CalibrationSnapshot reported =
        backend_.reportedCalibration(atTimeH);
    // Average Eq. 2 over the measurement-group circuits (they share the
    // ansatz and differ only in basis rotations).
    double sum = 0.0;
    for (const TranspiledCircuit &tc : compiled_)
        sum += pCorrect(circuitQuality(tc), reported,
                        config_.pCorrectMode);
    return sum / static_cast<double>(compiled_.size());
}

ClientNode::PendingJob
ClientNode::beginProcess(const GradientTask &task, double atTimeH)
{
    PendingJob job;
    job.task = task;
    job.submitH = atTimeH;
    const int groupCount = static_cast<int>(compiled_.size());
    double latencyS = backend_.queue().jobLatencyS(
        atTimeH, durUs_, config_.shots, 2 * groupCount, rng_);
    job.latencyH = latencyS / 3600.0;
    job.pCorrect = computePCorrect(atTimeH);
    job.jobRng = rng_.fork(++jobCounter_);
    return job;
}

ClientNode::Processed
ClientNode::finishProcess(PendingJob &job, TaskPool *pool)
{
    Processed out;
    out.latencyH = job.latencyH;
    double completionH = job.submitH + job.latencyH;

    GradientEstimate g = gradientParamShift(
        estimator_, backend_, compiled_, job.task.params,
        job.task.paramIndex, config_.shots, completionH, job.jobRng,
        config_.shotMode, config_.shiftMode, config_.readoutMitigation,
        pool);

    out.result.paramIndex = job.task.paramIndex;
    out.result.gradient = g.gradient;
    out.result.pCorrect = job.pCorrect;
    out.result.clientId = id_;
    out.result.version = job.task.version;
    out.result.completionTimeH = completionH;
    out.result.circuitsRun = g.circuitsRun;
    return out;
}

ClientNode::Processed
ClientNode::process(const GradientTask &task, double atTimeH,
                    TaskPool *pool)
{
    PendingJob job = beginProcess(task, atTimeH);
    return finishProcess(job, pool);
}

double
ClientNode::evaluateEnergy(const std::vector<double> &params,
                           double atTimeH, TaskPool *pool)
{
    EnergyEstimate e = estimator_.estimate(
        backend_, compiled_, params, config_.shots, atTimeH, rng_,
        config_.shotMode, config_.readoutMitigation, pool);
    return e.energy;
}

} // namespace eqc
