/**
 * @file
 * Discrete-event EQC executor.
 *
 * Each client is an actor on the virtual clock: it pulls the next
 * cyclic task from the master, samples its device's queue latency, and
 * schedules the gradient delivery at completion time. Because clients
 * complete at wildly different rates, gradients arrive stale — computed
 * against parameter snapshots several master updates old — which is
 * exactly the partially-asynchronous SGD regime of the paper's
 * convergence proof. Determinism: same seed, same trace.
 */

#include "core/eqc.h"

#include <functional>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace eqc {

EqcTrace
runEqcVirtual(const VqaProblem &problem,
              const std::vector<Device> &devices,
              const EqcOptions &options)
{
    EqcTrace trace;
    trace.label = "EQC";

    Ensemble ensemble(problem, devices, options.seed, options.client);
    MasterNode master(problem, options.master);
    Simulation sim;

    const std::size_t n = ensemble.size();
    std::vector<int> bottomStreak(n, 0);
    std::vector<double> cooldownUntil(n, 0.0);
    std::size_t rrEval = 0;
    double lastCompletionH = 0.0;

    // Pull epoch records as soon as the master's epoch counter advances.
    auto recordEpochs = [&](double tH) {
        while (static_cast<int>(trace.epochs.size()) <
                   master.epochsCompleted() &&
               static_cast<int>(trace.epochs.size()) <
                   options.master.epochs) {
            EpochRecord rec;
            rec.epoch = static_cast<int>(trace.epochs.size());
            rec.timeH = tH;
            // Diagnostic energy on a round-robin ensemble member, so the
            // plotted curve carries the mixture's measurement noise.
            ClientNode &ev = ensemble.client(rrEval % n);
            ++rrEval;
            rec.energyDevice = ev.evaluateEnergy(master.params(), tH);
            rec.energyIdeal =
                options.recordIdealEnergy
                    ? idealEnergy(problem.ansatz, problem.hamiltonian,
                                  master.params())
                    : 0.0;
            trace.epochs.push_back(rec);
        }
    };

    std::function<void(std::size_t)> startClient =
        [&](std::size_t ci) {
        if (master.done())
            return;
        double now = sim.now();
        if (now > options.maxHours)
            return;
        if (options.adaptive.enabled && cooldownUntil[ci] > now) {
            sim.scheduleAt(cooldownUntil[ci],
                           [&, ci] { startClient(ci); });
            return;
        }
        ClientNode &client = ensemble.client(ci);
        GradientTask task = master.nextTask();
        ClientNode::Processed processed = client.process(task, now);
        sim.schedule(processed.latencyH, [&, ci, processed] {
            if (master.done())
                return;
            double weight = master.onResult(processed.result);
            lastCompletionH = sim.now();
            trace.circuitEvaluations += processed.result.circuitsRun;
            ++trace.jobsPerDevice[ensemble.client(ci).device().name];
            if (options.recordWeights) {
                trace.weights.push_back({sim.now(),
                                         static_cast<int>(ci),
                                         processed.result.pCorrect,
                                         weight});
            }
            // Adaptive management: cool down clients pinned at the
            // bottom of the weight range.
            const WeightBounds &b = master.options().weightBounds;
            if (options.adaptive.enabled && b.enabled()) {
                if (weight <= b.lo + options.adaptive.margin *
                                         (b.hi - b.lo)) {
                    if (++bottomStreak[ci] >=
                        options.adaptive.unstableStreak) {
                        cooldownUntil[ci] =
                            sim.now() + options.adaptive.cooldownH;
                        bottomStreak[ci] = 0;
                        ++trace.cooldowns;
                    }
                } else {
                    bottomStreak[ci] = 0;
                }
            }
            recordEpochs(sim.now());
            startClient(ci);
        });
    };

    for (std::size_t ci = 0; ci < n; ++ci)
        sim.scheduleAt(0.0, [&, ci] { startClient(ci); });
    sim.run();

    trace.terminated = !master.done();
    trace.finalParams = master.params();
    trace.staleness = master.stalenessStats();
    trace.totalHours = lastCompletionH;
    trace.epochsPerHour =
        trace.totalHours > 0.0
            ? static_cast<double>(trace.epochs.size()) / trace.totalHours
            : 0.0;
    return trace;
}

} // namespace eqc
