/**
 * @file
 * Discrete-event EQC execution engine ("virtual").
 *
 * Each client is an actor on the virtual clock: it pulls the next
 * cyclic task from the master, samples its device's queue latency, and
 * schedules the gradient delivery at completion time. Because clients
 * complete at wildly different rates, gradients arrive stale — computed
 * against parameter snapshots several master updates old — which is
 * exactly the partially-asynchronous SGD regime of the paper's
 * convergence proof. Determinism: same seed, same trace.
 *
 * All protocol semantics (master update, adaptive cooldown, epoch
 * recording, telemetry) live in the shared RunContext; this engine
 * only owns the virtual clock and the scheduling of client turns.
 */

#include <functional>

#include "core/engine.h"
#include "sim/event_queue.h"

namespace eqc {

namespace {

class VirtualEngine final : public ExecutionEngine
{
  public:
    std::string name() const override { return "virtual"; }

    void
    run(RunContext &ctx) override
    {
        ctx.trace().label = "EQC";

        Simulation sim;
        const std::size_t n = ctx.numClients();

        std::function<void(std::size_t)> startClient =
            [&](std::size_t ci) {
            if (ctx.done())
                return;
            double now = sim.now();
            if (now > ctx.options().maxHours)
                return;
            if (ctx.options().adaptive.enabled &&
                ctx.cooldownUntil(ci) > now) {
                sim.scheduleAt(ctx.cooldownUntil(ci),
                               [&, ci] { startClient(ci); });
                return;
            }
            ClientNode &client = ctx.ensemble().client(ci);
            GradientTask task = ctx.master().nextTask();
            ClientNode::Processed processed = client.process(task, now);
            sim.schedule(processed.latencyH, [&, ci, processed] {
                if (ctx.done())
                    return;
                ctx.applyResult(ci, processed, sim.now());
                startClient(ci);
            });
        };

        for (std::size_t ci = 0; ci < n; ++ci)
            sim.scheduleAt(0.0, [&, ci] { startClient(ci); });
        sim.run();

        ctx.finish();
    }
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeVirtualEngine()
{
    return std::make_unique<VirtualEngine>();
}

} // namespace eqc
