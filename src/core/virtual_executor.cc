/**
 * @file
 * Discrete-event EQC execution engine ("virtual").
 *
 * Each client is an actor on the virtual clock: it pulls the next
 * cyclic task from the master, samples its device's queue latency, and
 * schedules the gradient delivery at completion time. Because clients
 * complete at wildly different rates, gradients arrive stale — computed
 * against parameter snapshots several master updates old — which is
 * exactly the partially-asynchronous SGD regime of the paper's
 * convergence proof. Determinism: same seed, same trace, for every
 * fan-out thread count.
 *
 * Gradient *scheduling* and gradient *computation* are decoupled:
 * pulls happen in event order (beginProcess: latency sampling, Eq. 2
 * score, per-job RNG fork — all serial), while the heavy circuit
 * evaluations accumulate in a batch that is flushed through the
 * engine's TaskPool the first time an uncomputed delivery fires. At
 * t = 0 the whole ensemble pulls at once, so the flush fans one job
 * per client across the pool; each job owns a forked RNG stream and
 * writes its own slot, which keeps the trace bit-identical whether the
 * pool has 1 thread or 64 (see EqcOptions::engineThreads).
 *
 * All protocol semantics (master update, adaptive cooldown, epoch
 * recording, telemetry) live in the shared RunContext; this engine
 * only owns the virtual clock and the scheduling of client turns.
 */

#include <functional>
#include <memory>
#include <vector>

#include "common/task_pool.h"
#include "core/engine.h"
#include "sim/event_queue.h"

namespace eqc {

namespace {

class VirtualEngine final : public ExecutionEngine
{
  public:
    std::string name() const override { return "virtual"; }

    void
    run(RunContext &ctx) override
    {
        ctx.trace().label = "EQC";

        Simulation sim;
        const std::size_t n = ctx.numClients();

        std::unique_ptr<TaskPool> own;
        if (ctx.options().engineThreads > 0)
            own = std::make_unique<TaskPool>(
                ctx.options().engineThreads);
        TaskPool &pool = own ? *own : TaskPool::shared();
        ctx.setEnginePool(&pool);

        struct Slot
        {
            ClientNode::PendingJob job;
            ClientNode::Processed out;
            bool computed = false;
        };
        std::vector<Slot> slots(n);
        std::vector<std::size_t> batch;

        // Compute every pending job in one fan-out. Jobs of different
        // clients are independent (own backend, own forked stream) and
        // write disjoint slots, so the flush is bit-deterministic for
        // any chunking the pool picks.
        auto flush = [&] {
            if (batch.empty())
                return;
            pool.parallelJobs(
                batch.size(), [&](uint64_t b, uint64_t e) {
                    for (uint64_t i = b; i < e; ++i) {
                        Slot &s = slots[batch[i]];
                        s.out = ctx.ensemble()
                                    .client(batch[i])
                                    .finishProcess(s.job, &pool);
                        s.computed = true;
                    }
                });
            batch.clear();
        };

        std::function<void(std::size_t)> startClient =
            [&](std::size_t ci) {
            if (ctx.done())
                return;
            double now = sim.now();
            if (now > ctx.options().maxHours)
                return;
            if (ctx.options().adaptive.enabled &&
                ctx.cooldownUntil(ci) > now) {
                sim.scheduleAt(ctx.cooldownUntil(ci),
                               [&, ci] { startClient(ci); });
                return;
            }
            ClientNode &client = ctx.ensemble().client(ci);
            slots[ci].job =
                client.beginProcess(ctx.master().nextTask(), now);
            slots[ci].computed = false;
            batch.push_back(ci);
            sim.schedule(slots[ci].job.latencyH, [&, ci] {
                if (ctx.done())
                    return;
                if (!slots[ci].computed)
                    flush();
                ctx.applyResult(ci, slots[ci].out, sim.now());
                startClient(ci);
            });
        };

        for (std::size_t ci = 0; ci < n; ++ci)
            sim.scheduleAt(0.0, [&, ci] { startClient(ci); });
        sim.run();

        ctx.finish();
        ctx.setEnginePool(nullptr); // pool dies with this frame
    }
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeVirtualEngine()
{
    return std::make_unique<VirtualEngine>();
}

} // namespace eqc
