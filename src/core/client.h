/**
 * @file
 * The EQC client node (paper Alg. 2).
 *
 * One client fronts one QPU. At construction it transpiles the problem's
 * measurement-group circuits for its device topology once (circuits stay
 * symbolically parameterized, so every subsequent iteration only
 * re-binds angles). For each task it:
 *   1. samples its device's queue latency,
 *   2. computes P_correct from the transpiled circuit census and the
 *      device's *reported* calibration at induction time (Eq. 2),
 *   3. runs the forward/backward parameter-shift circuits on the
 *      backend (which applies the *actual*, drifted noise),
 *   4. hands the gradient and P_correct back to the master.
 */

#ifndef EQC_CORE_CLIENT_H
#define EQC_CORE_CLIENT_H

#include <memory>

#include "core/master.h"
#include "device/backend.h"
#include "vqa/parameter_shift.h"

namespace eqc {

class TaskPool;

/** Per-client execution configuration. */
struct ClientConfig
{
    int shots = 8192;
    ShotMode shotMode = ShotMode::Gaussian;
    ShiftMode shiftMode = ShiftMode::WholeParameter;
    PCorrectMode pCorrectMode = PCorrectMode::Physical;
    /** Reported-calibration measurement-error mitigation. */
    bool readoutMitigation = true;
};

/** One QPU-attached worker. */
class ClientNode
{
  public:
    /**
     * @param id stable client identifier (index in the ensemble)
     * @param device catalog device this client manages
     * @param problem the VQA under optimization
     * @param seed experiment seed (forked per client)
     * @param config execution knobs
     */
    ClientNode(int id, Device device, const VqaProblem &problem,
               uint64_t seed, const ClientConfig &config);

    /** Outcome of processing one task. */
    struct Processed
    {
        GradientResult result;
        /** Sampled job latency in hours (queue + execution). */
        double latencyH = 0.0;
    };

    /**
     * A pulled-but-not-yet-computed gradient job: everything the
     * pull side decides (queue latency, Eq. 2 score, the job's own
     * random stream) so the heavy circuit evaluation can run later —
     * and concurrently with other clients' jobs — without touching the
     * client's serial state. See the "virtual" engine's batched flush.
     */
    struct PendingJob
    {
        GradientTask task;
        /** Virtual submission time (hours). */
        double submitH = 0.0;
        /** Sampled job latency in hours (queue + execution). */
        double latencyH = 0.0;
        /** Eq. 2 score against the reported calibration at submitH. */
        double pCorrect = 1.0;
        /**
         * Per-job stream forked from the client's root seed and a job
         * counter: gradient randomness is a pure function of (client,
         * job index), independent of which thread computes it.
         */
        Rng jobRng;
    };

    /**
     * Pull side of process(): sample the queue latency, compute the
     * Eq. 2 score and fork the job's random stream. Must be called
     * serially per client (it advances the client's stream and job
     * counter); cheap — no circuit is executed.
     */
    PendingJob beginProcess(const GradientTask &task, double atTimeH);

    /**
     * Compute side of process(): run the parameter-shift circuits at
     * the job's completion time. Safe to call concurrently for
     * *different* clients (each client may have at most one job in
     * flight); consumes @p job's stream.
     * @param pool fan-out pool for the shift evaluations; nullptr
     *        means TaskPool::shared(). Engines pass their own pool so
     *        EqcOptions::engineThreads bounds the whole job.
     */
    Processed finishProcess(PendingJob &job, TaskPool *pool = nullptr);

    /**
     * Process a gradient task submitted at @p atTimeH — shorthand for
     * beginProcess + finishProcess. The returned result's completion
     * time is atTimeH + latencyH; the circuits are executed under the
     * device's noise at completion time.
     */
    Processed process(const GradientTask &task, double atTimeH,
                      TaskPool *pool = nullptr);

    /**
     * Evaluate the energy of @p params on this device at @p atTimeH
     * (diagnostic; does not consume queue time).
     * @param pool fan-out pool (see finishProcess)
     */
    double evaluateEnergy(const std::vector<double> &params,
                          double atTimeH, TaskPool *pool = nullptr);

    /** Eq. 2 score against the reported calibration at time t. */
    double computePCorrect(double atTimeH) const;

    int id() const { return id_; }
    const Device &device() const { return device_; }
    SimulatedQpu &backend() { return backend_; }
    const std::vector<TranspiledCircuit> &compiled() const
    {
        return compiled_;
    }

  private:
    int id_;
    Device device_;
    ClientConfig config_;
    SimulatedQpu backend_;
    ExpectationEstimator estimator_;
    std::vector<TranspiledCircuit> compiled_;
    Rng rng_;
    double durUs_;
    uint64_t jobCounter_ = 0;
};

} // namespace eqc

#endif // EQC_CORE_CLIENT_H
