/**
 * @file
 * The EQC client node (paper Alg. 2).
 *
 * One client fronts one QPU. At construction it transpiles the problem's
 * measurement-group circuits for its device topology once (circuits stay
 * symbolically parameterized, so every subsequent iteration only
 * re-binds angles). For each task it:
 *   1. samples its device's queue latency,
 *   2. computes P_correct from the transpiled circuit census and the
 *      device's *reported* calibration at induction time (Eq. 2),
 *   3. runs the forward/backward parameter-shift circuits on the
 *      backend (which applies the *actual*, drifted noise),
 *   4. hands the gradient and P_correct back to the master.
 */

#ifndef EQC_CORE_CLIENT_H
#define EQC_CORE_CLIENT_H

#include <memory>

#include "core/master.h"
#include "device/backend.h"
#include "vqa/parameter_shift.h"

namespace eqc {

/** Per-client execution configuration. */
struct ClientConfig
{
    int shots = 8192;
    ShotMode shotMode = ShotMode::Gaussian;
    ShiftMode shiftMode = ShiftMode::WholeParameter;
    PCorrectMode pCorrectMode = PCorrectMode::Physical;
    /** Reported-calibration measurement-error mitigation. */
    bool readoutMitigation = true;
};

/** One QPU-attached worker. */
class ClientNode
{
  public:
    /**
     * @param id stable client identifier (index in the ensemble)
     * @param device catalog device this client manages
     * @param problem the VQA under optimization
     * @param seed experiment seed (forked per client)
     * @param config execution knobs
     */
    ClientNode(int id, Device device, const VqaProblem &problem,
               uint64_t seed, const ClientConfig &config);

    /** Outcome of processing one task. */
    struct Processed
    {
        GradientResult result;
        /** Sampled job latency in hours (queue + execution). */
        double latencyH = 0.0;
    };

    /**
     * Process a gradient task submitted at @p atTimeH. The returned
     * result's completion time is atTimeH + latencyH; the circuits are
     * executed under the device's noise at completion time.
     */
    Processed process(const GradientTask &task, double atTimeH);

    /**
     * Evaluate the energy of @p params on this device at @p atTimeH
     * (diagnostic; does not consume queue time).
     */
    double evaluateEnergy(const std::vector<double> &params,
                          double atTimeH);

    /** Eq. 2 score against the reported calibration at time t. */
    double computePCorrect(double atTimeH) const;

    int id() const { return id_; }
    const Device &device() const { return device_; }
    SimulatedQpu &backend() { return backend_; }
    const std::vector<TranspiledCircuit> &compiled() const
    {
        return compiled_;
    }

  private:
    int id_;
    Device device_;
    ClientConfig config_;
    SimulatedQpu backend_;
    ExpectationEstimator estimator_;
    std::vector<TranspiledCircuit> compiled_;
    Rng rng_;
    double durUs_;
};

} // namespace eqc

#endif // EQC_CORE_CLIENT_H
