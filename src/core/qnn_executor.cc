#include "core/qnn_executor.h"

#include <functional>
#include <memory>

#include "common/logging.h"
#include "sim/event_queue.h"
#include "vqa/parameter_shift.h"

namespace eqc {

namespace {

/**
 * QPU-attached worker for QNN tasks. Holds one compiled estimator per
 * dataset sample (each sample has a different encoding prefix).
 */
class QnnClient
{
  public:
    QnnClient(int id, Device device, const QnnProblem &problem,
              uint64_t seed, const QnnOptions &options)
        : id_(id), device_(std::move(device)), problem_(problem),
          options_(options), backend_(device_, seed),
          rng_(Rng(seed).fork("qnn-client:" + device_.name))
    {
        for (const QnnSample &s : problem.dataset) {
            PerSample ps{ExpectationEstimator(problem.observable,
                                              problem.circuitFor(s)),
                         {}};
            ps.compiled = ps.est.compileFor(device_.coupling);
            samples_.push_back(std::move(ps));
        }
        durUs_ = circuitDurationUs(
            samples_[0].compiled[0].compact, device_.baseCalibration,
            samples_[0].compiled[0].compactToPhysical);
    }

    struct Out
    {
        double gradient = 0.0;
        double pCorrect = 1.0;
        double latencyH = 0.0;
    };

    /** Compute dl(x_d)/dtheta_i at the given submission time. */
    Out
    process(int paramIndex, int dataIndex,
            const std::vector<double> &params, double atTimeH)
    {
        PerSample &ps = samples_[dataIndex];
        const int groups = static_cast<int>(ps.compiled.size());
        Out out;
        // One job = center + forward + backward circuits.
        double latencyS = backend_.queue().jobLatencyS(
            atTimeH, durUs_, options_.shots, 3 * groups, rng_);
        out.latencyH = latencyS / 3600.0;
        double tH = atTimeH + out.latencyH;

        EnergyEstimate center =
            ps.est.estimate(backend_, ps.compiled, params,
                            options_.shots, tH, rng_,
                            options_.shotMode);
        GradientEstimate dO = gradientParamShift(
            ps.est, backend_, ps.compiled, params, paramIndex,
            options_.shots, tH, rng_, options_.shotMode,
            ShiftMode::WholeParameter);
        double residual =
            center.energy - problem_.dataset[dataIndex].label;
        out.gradient = 2.0 * residual * dO.gradient;

        CalibrationSnapshot reported =
            backend_.reportedCalibration(atTimeH);
        out.pCorrect = pCorrect(circuitQuality(ps.compiled[0]),
                                reported, options_.pCorrectMode);
        return out;
    }

    const Device &device() const { return device_; }

  private:
    struct PerSample
    {
        ExpectationEstimator est;
        std::vector<TranspiledCircuit> compiled;
    };

    int id_;
    Device device_;
    const QnnProblem &problem_;
    QnnOptions options_;
    SimulatedQpu backend_;
    Rng rng_;
    std::vector<PerSample> samples_;
    double durUs_ = 0.0;
};

/** Cyclic (parameter, data) task source + weighted-ASGD sink. */
class QnnMaster
{
  public:
    QnnMaster(const QnnProblem &problem, const QnnOptions &options)
        : problem_(problem), options_(options),
          params_(problem.initialParams),
          normalizer_(options.weightBounds)
    {
        if (problem.dataset.empty())
            fatal("QnnMaster: empty dataset");
    }

    bool
    done() const
    {
        uint64_t perEpoch =
            static_cast<uint64_t>(problem_.numParams()) *
            problem_.dataset.size();
        return received_ / perEpoch >=
               static_cast<uint64_t>(options_.epochs);
    }

    int
    epochsCompleted() const
    {
        uint64_t perEpoch =
            static_cast<uint64_t>(problem_.numParams()) *
            problem_.dataset.size();
        return static_cast<int>(received_ / perEpoch);
    }

    std::pair<int, int>
    nextTask()
    {
        auto task = std::make_pair(nextParam_, nextData_);
        ++nextData_;
        if (nextData_ >= static_cast<int>(problem_.dataset.size())) {
            nextData_ = 0;
            nextParam_ = (nextParam_ + 1) % problem_.numParams();
        }
        return task;
    }

    void
    onResult(int clientId, int paramIndex, double gradient,
             double pCorrectValue)
    {
        normalizer_.update(clientId, pCorrectValue);
        double w = normalizer_.bounds().enabled()
                       ? normalizer_.weightFor(clientId)
                       : 1.0;
        // Dataset-average accumulation: each contribution carries 1/n.
        params_[paramIndex] -=
            w * options_.learningRate * gradient /
            static_cast<double>(problem_.dataset.size());
        ++received_;
    }

    const std::vector<double> &params() const { return params_; }

  private:
    const QnnProblem &problem_;
    QnnOptions options_;
    std::vector<double> params_;
    WeightNormalizer normalizer_;
    int nextParam_ = 0;
    int nextData_ = 0;
    uint64_t received_ = 0;
};

} // namespace

QnnTrace
runQnnEqcVirtual(const QnnProblem &problem,
                 const std::vector<Device> &devices,
                 const QnnOptions &options)
{
    QnnTrace trace;
    trace.label = "EQC-QNN";

    std::vector<std::unique_ptr<QnnClient>> clients;
    int id = 0;
    for (const Device &d : devices) {
        if (d.numQubits < problem.numQubits) {
            warn("runQnnEqcVirtual: skipping '" + d.name + "'");
            continue;
        }
        clients.push_back(std::make_unique<QnnClient>(
            id, d, problem, options.seed, options));
        ++id;
    }
    if (clients.empty())
        fatal("runQnnEqcVirtual: no eligible devices");

    QnnMaster master(problem, options);
    Simulation sim;
    double lastCompletionH = 0.0;

    auto recordEpochs = [&](double tH) {
        while (static_cast<int>(trace.epochs.size()) <
                   master.epochsCompleted() &&
               static_cast<int>(trace.epochs.size()) < options.epochs) {
            QnnEpochRecord rec;
            rec.epoch = static_cast<int>(trace.epochs.size());
            rec.timeH = tH;
            rec.mseIdeal = qnnMseIdeal(problem, master.params());
            trace.epochs.push_back(rec);
        }
    };

    std::function<void(std::size_t)> startClient =
        [&](std::size_t ci) {
        if (master.done() || sim.now() > options.maxHours)
            return;
        auto [paramIndex, dataIndex] = master.nextTask();
        std::vector<double> params = master.params();
        QnnClient::Out out = clients[ci]->process(paramIndex, dataIndex,
                                                  params, sim.now());
        sim.schedule(out.latencyH, [&, ci, paramIndex, out] {
            if (master.done())
                return;
            master.onResult(static_cast<int>(ci), paramIndex,
                            out.gradient, out.pCorrect);
            lastCompletionH = sim.now();
            ++trace.jobsPerDevice[clients[ci]->device().name];
            recordEpochs(sim.now());
            startClient(ci);
        });
    };

    for (std::size_t ci = 0; ci < clients.size(); ++ci)
        sim.scheduleAt(0.0, [&, ci] { startClient(ci); });
    sim.run();

    trace.terminated = !master.done();
    trace.finalParams = master.params();
    trace.totalHours = lastCompletionH;
    trace.epochsPerHour =
        trace.totalHours > 0.0
            ? static_cast<double>(trace.epochs.size()) / trace.totalHours
            : 0.0;
    return trace;
}

QnnTrace
trainQnnSingleDevice(const QnnProblem &problem, const Device &device,
                     const QnnOptions &options)
{
    QnnTrace trace = runQnnEqcVirtual(problem, {device}, options);
    trace.label = device.name;
    return trace;
}

} // namespace eqc
