/**
 * @file
 * Lock-free metrics registry: named counters, gauges and fixed-bucket
 * histograms for the serving fleet.
 *
 * The paper's dispatch daemon *monitors* — drift, queue depth, member
 * fidelity — and feeds what it sees back into Eq. 2 weighting. This
 * registry is that monitoring surface made first-class: ServiceNode,
 * Router, TaskPool and the engines publish into one namespace of
 * metrics instead of a scatter of ad-hoc accessor structs.
 *
 * Concurrency model:
 *  - Registration (`counter()` / `gauge()` / `histogram()`) takes a
 *    mutex and may allocate; it happens once, at construction time of
 *    the instrumented component. Handles are stable raw pointers for
 *    the registry's lifetime (instruments live in a deque).
 *  - The hot path — `Counter::inc`, `Gauge::set/add`,
 *    `Histogram::observe` — is pure relaxed atomics through those
 *    handles: lock-free, zero allocation, safe from any thread.
 *  - `snapshot()` walks the instrument list under the registration
 *    mutex so the metric *set* is consistent; individual values are
 *    relaxed loads (scrapes race increments by design, like any
 *    Prometheus endpoint).
 *
 * Exposition (Prometheus text / JSON, snapshot diffs) lives in
 * obs/exposition.h so this header stays dependency-light enough for
 * common/ to include.
 */

#ifndef EQC_OBS_METRICS_H
#define EQC_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eqc {
namespace obs {

/** Monotone event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Drop-in for the hand-rolled `++counters_.x` field idiom. */
    Counter &
    operator++()
    {
        inc();
        return *this;
    }

    /** Drop-in for the hand-rolled `counters_.x += n` field idiom. */
    Counter &
    operator+=(uint64_t n)
    {
        inc(n);
        return *this;
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Instantaneous level (queue depth, active workers, load score). */
class Gauge
{
  public:
    void set(double v);

    /** Atomic read-modify-write delta (CAS loop on the double bits). */
    void add(double d);

    double value() const;

  private:
    /** Double stored as bits so the atomic stays lock-free. */
    std::atomic<uint64_t> bits_{0};
};

/**
 * Fixed-bucket histogram: cumulative-style buckets with upper bounds
 * chosen at registration (an implicit +inf bucket catches the rest).
 * An observation lands in the first bucket whose bound satisfies
 * `x <= bound` — Prometheus `le` semantics.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket (non-cumulative) counts; size bounds()+1 (+inf). */
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }

    double sum() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sumBits_{0};
};

/** One metric's values at scrape time (see Snapshot). */
struct MetricSample
{
    enum Kind { KindCounter, KindGauge, KindHistogram };

    std::string name;
    std::string help;
    /**
     * Prometheus-style label set, without braces (e.g. `node="2"`).
     * Set at registration for per-entity series, or stamped per
     * source registry by the merge tooling (Router, benches).
     */
    std::string labels;
    Kind kind = KindCounter;
    /** Counter value or gauge level. */
    double value = 0.0;
    /** Histogram only: bounds / per-bucket counts / totals. */
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
};

/** Point-in-time scrape of a registry (or a merge of several). */
struct Snapshot
{
    std::vector<MetricSample> samples;
};

/**
 * Named-instrument registry. Re-registering a (name, labels) pair
 * returns the existing instrument (same kind required), so components
 * sharing a registry converge on one instrument per identity. Labels
 * distinguish per-entity series inside one registry (e.g. the
 * router's per-node load gauges).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter *counter(const std::string &name, const std::string &help = "",
                     const std::string &labels = "");
    Gauge *gauge(const std::string &name, const std::string &help = "",
                 const std::string &labels = "");
    Histogram *histogram(const std::string &name,
                         std::vector<double> bounds,
                         const std::string &help = "",
                         const std::string &labels = "");

    /** Consistent scrape: samples sorted by name. */
    Snapshot snapshot() const;

  private:
    struct Entry
    {
        std::string name;
        std::string help;
        std::string labels;
        MetricSample::Kind kind;
        Counter counter;
        Gauge gauge;
        // Histogram is not default-constructible (bounds are fixed at
        // registration), so it sits behind a pointer.
        std::unique_ptr<Histogram> histogram;

        Entry(std::string n, std::string h, std::string l,
              MetricSample::Kind k)
            : name(std::move(n)), help(std::move(h)),
              labels(std::move(l)), kind(k)
        {
        }
    };

    Entry *find(const std::string &name, MetricSample::Kind kind,
                const std::string &help, const std::string &labels);

    mutable std::mutex mu_;
    /** Deque: handles stay valid as registrations grow. */
    std::deque<Entry> entries_;
};

} // namespace obs
} // namespace eqc

#endif // EQC_OBS_METRICS_H
