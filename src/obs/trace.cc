#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace eqc {
namespace obs {

using replay::EventKind;
using replay::EventRecord;

namespace {

std::string
fmtProblem(const char *what, uint64_t id)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s (id %" PRIu64 ")", what, id);
    return buf;
}

} // namespace

std::size_t
TraceBuilder::openJobs() const
{
    std::size_t n = 0;
    for (const auto &kv : jobs_)
        if (!kv.second.finalized)
            ++n;
    return n;
}

std::size_t
TraceBuilder::rejectedEverywhere() const
{
    std::size_t n = 0;
    for (const auto &kv : routes_) {
        auto it = routeAdmitted_.find(kv.first);
        if (it == routeAdmitted_.end() || !it->second)
            ++n;
    }
    return n;
}

void
TraceBuilder::add(const EventRecord &r)
{
    if (records_ == 0) {
        minTH_ = r.tH;
        maxTH_ = r.tH;
    } else {
        minTH_ = std::min(minTH_, r.tH);
        maxTH_ = std::max(maxTH_, r.tH);
    }
    ++records_;

    switch (r.kind) {
    case EventKind::Route:
        routes_[r.ruid] = r.tH;
        break;

    case EventKind::Forward: {
        char edge[32];
        std::snprintf(edge, sizeof(edge), "%d->%d", r.fromNode, r.node);
        ++forwardEdges_[edge];
        break;
    }

    case EventKind::Admit: {
        JobState &j = jobs_[r.jobId];
        j.admitH = r.tH;
        j.tenant = r.tenant;
        j.node = r.node;
        j.traceId = r.traceId ? r.traceId : r.jobId;
        if (r.ruid) {
            auto it = routes_.find(r.ruid);
            if (it != routes_.end()) {
                j.routed = true;
                j.routeH = it->second;
            }
            routeAdmitted_[r.ruid] = true;
        }
        break;
    }

    case EventKind::Reject:
        break;

    case EventKind::Coalesce:
    case EventKind::RiderJoin: {
        auto it = jobs_.find(r.jobId);
        if (it == jobs_.end()) {
            problems_.push_back(
                fmtProblem("coalesce of unadmitted job", r.jobId));
            break;
        }
        it->second.uid = r.workUid;
        it->second.coalesced = true;
        break;
    }

    case EventKind::CacheHit:
        items_[r.workUid].cacheHitH = r.tH;
        break;

    case EventKind::Dispatch: {
        ItemState &item = items_[r.workUid];
        if (item.shards.count(r.seq)) {
            problems_.push_back(
                fmtProblem("shard dispatched twice", r.workUid));
            break;
        }
        ShardState &s = item.shards[r.seq];
        s.dispatchH = r.tH;
        s.member = r.member;
        s.shots = r.shots;
        s.node = r.node;
        if (item.firstDispatchH < 0.0 || r.tH < item.firstDispatchH)
            item.firstDispatchH = r.tH;
        break;
    }

    case EventKind::ShardDone:
    case EventKind::ShardFail: {
        auto iit = items_.find(r.workUid);
        if (iit == items_.end() || !iit->second.shards.count(r.seq)) {
            problems_.push_back(
                fmtProblem("shard resolution without dispatch", r.workUid));
            break;
        }
        ShardState &s = iit->second.shards[r.seq];
        if (s.resolved) {
            problems_.push_back(
                fmtProblem("shard resolved twice", r.workUid));
            break;
        }
        s.resolved = true;
        if (r.tH < s.dispatchH)
            problems_.push_back(
                fmtProblem("shard span runs backwards", r.workUid));
        TraceSpan span;
        span.name = "shard";
        span.beginH = s.dispatchH;
        span.endH = r.tH;
        span.workUid = r.workUid;
        span.node = s.node;
        span.member = r.member;
        span.seq = r.seq;
        span.shots = r.shots;
        span.failed = r.kind == EventKind::ShardFail;
        span.late = r.late;
        spans_.push_back(std::move(span));
        if (!r.late) {
            ++iit->second.resolved;
            iit->second.lastResolveH =
                std::max(iit->second.lastResolveH, r.tH);
        }
        break;
    }

    case EventKind::Finalize:
        finalizeJob(r);
        break;

    case EventKind::MemberFail:
        instants_.push_back({"member_fail", r.tH, r.node, r.member});
        break;
    case EventKind::MemberRestore:
        instants_.push_back({"member_restore", r.tH, r.node, r.member});
        break;
    case EventKind::MemberJoin:
        instants_.push_back({"member_join", r.tH, r.node, r.member});
        break;
    case EventKind::MemberLeave:
        instants_.push_back({"member_leave", r.tH, r.node, r.member});
        break;

    case EventKind::Replan:
    case EventKind::Drain:
    case EventKind::DeadlineShed:
        break;
    }
}

void
TraceBuilder::finalizeJob(const EventRecord &r)
{
    auto jit = jobs_.find(r.jobId);
    if (jit == jobs_.end()) {
        problems_.push_back(
            fmtProblem("finalize without admit", r.jobId));
        return;
    }
    JobState &j = jit->second;
    if (j.finalized) {
        problems_.push_back(fmtProblem("job finalized twice", r.jobId));
        return;
    }
    j.finalized = true;
    j.uid = r.workUid;

    const double tA = j.admitH;
    const double tF = r.tH;
    // A clock-skewed rider can admit after its coalesced item
    // finalized; the service clamps such latencies to zero, and the
    // stage partition covers [tA, tEnd] to do the same.
    const double tEnd = std::max(tA, tF);

    JobPath p;
    p.traceId = j.traceId;
    p.jobId = r.jobId;
    p.workUid = r.workUid;
    p.tenant = r.tenant;
    p.node = r.node;
    p.admitH = tA;
    p.finalizeH = tF;
    p.routed = j.routed;
    p.fromCache = r.fromCache;
    p.coalesced = r.coalesced;
    p.shed = r.shed;
    p.degraded = r.degraded;
    p.shedShots = r.shedShots;

    const ItemState *item = nullptr;
    auto iit = items_.find(r.workUid);
    if (iit != items_.end()) {
        item = &iit->second;
        p.shards = item->resolved;
    }

    // Pre-admit route span (routed runs): not part of the chained
    // [admit, finalize] partition — routing happens before the home
    // node ever sees the job.
    if (j.routed && j.routeH <= tA) {
        TraceSpan route;
        route.name = "route";
        route.beginH = j.routeH;
        route.endH = tA;
        route.traceId = j.traceId;
        route.jobId = r.jobId;
        route.workUid = r.workUid;
        route.tenant = r.tenant;
        route.node = r.node;
        spans_.push_back(std::move(route));
    }

    // Chained stage anchors. Each anchor is consumed only if it keeps
    // the chain monotone inside [tA, tEnd] (riders joining mid-flight
    // admit after the item's dispatch, so their path starts deeper in
    // the pipeline); the final segment always closes at tEnd, so the
    // emitted spans partition [tA, tEnd] exactly by construction.
    const std::size_t firstSpan = spans_.size();
    double cur = tA;
    const double dispatchAnchor =
        item ? (item->firstDispatchH >= 0.0 ? item->firstDispatchH
                                            : item->cacheHitH)
             : -1.0;
    const bool startedExec = dispatchAnchor >= 0.0;

    auto emitStage = [&](const char *name, double beginH, double endH) {
        TraceSpan s;
        s.name = name;
        s.beginH = beginH;
        s.endH = endH;
        s.traceId = j.traceId;
        s.jobId = r.jobId;
        s.workUid = r.workUid;
        s.tenant = r.tenant;
        s.node = r.node;
        spans_.push_back(std::move(s));
    };

    if (dispatchAnchor >= cur && dispatchAnchor <= tEnd) {
        emitStage("queue_wait", cur, dispatchAnchor);
        cur = dispatchAnchor;
    }
    if (item && item->lastResolveH >= cur &&
        item->lastResolveH <= tEnd) {
        emitStage("execute", cur, item->lastResolveH);
        cur = item->lastResolveH;
    }
    emitStage(spans_.size() > firstSpan || startedExec ? "aggregate"
                                                       : "queue_wait",
              cur, tEnd);

    // Verify the chain bitwise (and fold stage durations into the
    // path) — trace_report's exactness guarantee rests on this.
    p.chainExact = true;
    double prev = tA;
    for (std::size_t i = firstSpan; i < spans_.size(); ++i) {
        const TraceSpan &s = spans_[i];
        if (!replay::bitEqual(s.beginH, prev) || s.endH < s.beginH)
            p.chainExact = false;
        prev = s.endH;
        if (s.name == "queue_wait")
            p.queueWaitH += s.durationH();
        else if (s.name == "execute")
            p.executeH += s.durationH();
        else
            p.aggregateH += s.durationH();
    }
    if (!replay::bitEqual(prev, tEnd))
        p.chainExact = false;
    if (!p.chainExact)
        problems_.push_back(
            fmtProblem("critical-path spans do not chain", r.jobId));

    paths_.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

namespace {

/** Model hours -> trace_event microseconds (true wall scale). */
double
usOf(double h)
{
    return h * 3600.0e6;
}

std::string
fmtUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

/** Stable per-trace lane id, clear of the member-lane tid range. */
int
jobLane(uint64_t traceId)
{
    return static_cast<int>(1000 + traceId % 1000000);
}

} // namespace

std::string
chromeTrace(const TraceBuilder &b)
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &ev) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  " + ev;
    };

    // Process/thread metadata: one process per node, one thread lane
    // per member (shards) — job lifecycle spans get per-trace lanes.
    std::map<int, std::map<int, bool>> members;
    for (const TraceSpan &s : b.spans())
        if (s.name == "shard")
            members[s.node][s.member] = true;
    for (const auto &nkv : members) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"M\", \"name\": \"process_name\", "
                      "\"pid\": %d, \"args\": {\"name\": \"node %d\"}}",
                      nkv.first, nkv.first);
        emit(buf);
        for (const auto &mkv : nkv.second) {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\": \"M\", \"name\": \"thread_name\", "
                          "\"pid\": %d, \"tid\": %d, "
                          "\"args\": {\"name\": \"member %d\"}}",
                          nkv.first, mkv.first, mkv.first);
            emit(buf);
        }
    }

    for (const TraceSpan &s : b.spans()) {
        const bool shard = s.name == "shard";
        const int tid = shard ? s.member : jobLane(s.traceId);
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", "
            "\"pid\": %d, \"tid\": %d, \"ts\": %s, \"dur\": %s, "
            "\"args\": {\"job\": %" PRIu64 ", \"trace\": %" PRIu64
            ", \"uid\": %" PRIu64 ", \"seq\": %d, \"shots\": %d, "
            "\"failed\": %s, \"late\": %s}}",
            s.name.c_str(), shard ? "shard" : "job", s.node, tid,
            fmtUs(usOf(s.beginH)).c_str(),
            fmtUs(usOf(s.durationH())).c_str(), s.jobId, s.traceId,
            s.workUid, s.seq, s.shots, s.failed ? "true" : "false",
            s.late ? "true" : "false");
        emit(buf);
    }

    for (const TraceInstant &i : b.instants()) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"i\", \"name\": \"%s\", \"s\": \"p\", "
                      "\"pid\": %d, \"tid\": %d, \"ts\": %s}",
                      i.name.c_str(), i.node, i.member >= 0 ? i.member : 0,
                      fmtUs(usOf(i.tH)).c_str());
        emit(buf);
    }

    out += "\n]}\n";
    return out;
}

// ---------------------------------------------------------------------------
// Journal-driven analysis (trace_report's data model)
// ---------------------------------------------------------------------------

namespace {

/** Exact quantile with the same interpolation as stats::Percentiles. */
double
exactQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    double pos = q * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

StageBreakdown
stageRow(const char *stage, std::vector<double> xs, double totalSum)
{
    StageBreakdown row;
    row.stage = stage;
    if (xs.empty())
        return row;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    std::sort(xs.begin(), xs.end());
    row.meanH = sum / static_cast<double>(xs.size());
    row.p50H = exactQuantile(xs, 0.50);
    row.p95H = exactQuantile(xs, 0.95);
    row.p99H = exactQuantile(xs, 0.99);
    row.maxH = xs.back();
    row.share = totalSum > 0.0 ? sum / totalSum : 0.0;
    return row;
}

/** Fraction of [lo, hi] covered by the union of intervals. */
double
coverage(const std::vector<std::pair<double, double>> &merged, double lo,
         double hi)
{
    if (hi <= lo)
        return 0.0;
    double covered = 0.0;
    for (const auto &iv : merged) {
        double a = std::max(iv.first, lo);
        double b = std::min(iv.second, hi);
        if (b > a)
            covered += b - a;
    }
    return covered / (hi - lo);
}

} // namespace

TraceAnalysis
analyze(const TraceBuilder &b)
{
    TraceAnalysis a;
    a.records = b.records();
    a.jobs = b.paths().size();
    a.openJobs = b.openJobs();
    a.windowStartH = b.windowStartH();
    a.windowEndH = b.windowEndH();
    a.problems = b.problems();
    a.forwardEdges = b.forwardEdges();
    a.rejectedEverywhere = b.rejectedEverywhere();

    // Critical-path breakdown over finalized jobs.
    std::vector<double> qw, ex, ag, tot;
    bool exact = true;
    double totalSum = 0.0;
    for (const JobPath &p : b.paths()) {
        qw.push_back(p.queueWaitH);
        ex.push_back(p.executeH);
        ag.push_back(p.aggregateH);
        tot.push_back(p.totalH());
        totalSum += p.totalH();
        exact = exact && p.chainExact;
        if (p.fromCache)
            ++a.cacheServed;
        if (p.coalesced)
            ++a.coalesced;
        if (p.shed) {
            ++a.shed;
            auto &row = a.shedsByTenant[p.tenant];
            row.first += 1;
            row.second += static_cast<uint64_t>(p.shedShots);
        }
        if (p.degraded)
            ++a.degraded;
    }
    a.criticalPathsExact = exact && a.problems.empty();
    a.breakdown.push_back(stageRow("queue_wait", std::move(qw), totalSum));
    a.breakdown.push_back(stageRow("execute", std::move(ex), totalSum));
    a.breakdown.push_back(stageRow("aggregate", std::move(ag), totalSum));
    a.breakdown.push_back(stageRow("total", std::move(tot), totalSum));

    // Per-member utilization from shard spans (late resolutions ran
    // real shots, so they count as busy time too).
    std::map<std::pair<int, int>, std::vector<std::pair<double, double>>>
        busy;
    std::map<std::pair<int, int>, MemberUtilization> rows;
    for (const TraceSpan &s : b.spans()) {
        if (s.name != "shard")
            continue;
        ++a.shardSpans;
        if (s.late)
            ++a.lateShards;
        if (s.failed)
            ++a.failedShards;
        auto key = std::make_pair(s.node, s.member);
        MemberUtilization &row = rows[key];
        row.node = s.node;
        row.member = s.member;
        ++row.shards;
        row.shots += static_cast<uint64_t>(s.shots);
        busy[key].push_back({s.beginH, s.endH});
    }
    const double lo = a.windowStartH, hi = a.windowEndH;
    for (auto &kv : rows) {
        auto &ivs = busy[kv.first];
        std::sort(ivs.begin(), ivs.end());
        std::vector<std::pair<double, double>> merged;
        for (const auto &iv : ivs) {
            if (!merged.empty() && iv.first <= merged.back().second)
                merged.back().second =
                    std::max(merged.back().second, iv.second);
            else
                merged.push_back(iv);
        }
        for (const auto &iv : merged)
            kv.second.busyH += iv.second - iv.first;
        if (hi > lo)
            kv.second.utilization = kv.second.busyH / (hi - lo);
        // 60-bucket busy-fraction sparkline over the journal window.
        std::string line;
        for (int t = 0; t < 60; ++t) {
            double bl = lo + (hi - lo) * t / 60.0;
            double bh = lo + (hi - lo) * (t + 1) / 60.0;
            double c = coverage(merged, bl, bh);
            line += c <= 0.0 ? ' ' : c <= 1.0 / 3 ? '.'
                                 : c <= 2.0 / 3   ? '+'
                                                  : '#';
        }
        kv.second.timeline = line;
        a.members.push_back(kv.second);
    }
    return a;
}

// ---------------------------------------------------------------------------
// Plain-text report
// ---------------------------------------------------------------------------

std::string
renderReport(const TraceAnalysis &a)
{
    std::string out;
    char buf[256];
    auto line = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
        out += "\n";
    };

    out += "== trace report ==\n";
    line("records %zu  window [%.6f, %.6f] h", a.records, a.windowStartH,
         a.windowEndH);
    line("jobs %zu (cache %zu, coalesced %zu, shed %zu, degraded %zu)  "
         "open %zu",
         a.jobs, a.cacheServed, a.coalesced, a.shed, a.degraded,
         a.openJobs);
    line("shards %zu (failed %zu, late %zu)", a.shardSpans, a.failedShards,
         a.lateShards);
    line("critical paths: %s (%zu jobs chain admit->finalize bitwise)",
         a.criticalPathsExact ? "exact" : "BROKEN", a.jobs);
    for (const std::string &p : a.problems)
        line("problem: %s", p.c_str());

    out += "\n-- critical path breakdown (hours) --\n";
    line("%-11s %10s %10s %10s %10s %10s %7s", "stage", "mean", "p50",
         "p95", "p99", "max", "share");
    for (const StageBreakdown &s : a.breakdown)
        line("%-11s %10.6f %10.6f %10.6f %10.6f %10.6f %6.1f%%",
             s.stage.c_str(), s.meanH, s.p50H, s.p95H, s.p99H, s.maxH,
             100.0 * s.share);

    out += "\n-- member utilization --\n";
    line("%-4s %-6s %7s %9s %10s %6s  %s", "node", "member", "shards",
         "shots", "busyH", "util", "timeline");
    for (const MemberUtilization &m : a.members)
        line("%-4d %-6d %7d %9" PRIu64 " %10.6f %5.1f%%  |%s|", m.node,
             m.member, m.shards, m.shots, m.busyH, 100.0 * m.utilization,
             m.timeline.c_str());

    if (!a.shedsByTenant.empty()) {
        out += "\n-- shed attribution --\n";
        line("%-6s %6s %9s", "tenant", "jobs", "shots");
        for (const auto &kv : a.shedsByTenant)
            line("%-6d %6" PRIu64 " %9" PRIu64, kv.first, kv.second.first,
                 kv.second.second);
    }

    if (!a.forwardEdges.empty() || a.rejectedEverywhere) {
        out += "\n-- forward attribution --\n";
        for (const auto &kv : a.forwardEdges)
            line("%-8s %6" PRIu64, kv.first.c_str(), kv.second);
        line("rejected-everywhere %zu", a.rejectedEverywhere);
    }

    return out;
}

} // namespace obs
} // namespace eqc
