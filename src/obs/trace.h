/**
 * @file
 * Per-job trace spans over the serving fleet's journal record stream.
 *
 * Every journal record the ServiceNode/Router publish already carries
 * the hours and attribution a tracer needs, so spans are *derived*
 * from the record stream instead of instrumented separately:
 *
 *  - TraceSink rides the existing replay::JournalSink observer seam:
 *    it forwards every record untouched to an optional inner sink
 *    (the EventJournal bytes with a collector attached are identical
 *    to a collector-free run) and feeds a TraceBuilder on the side.
 *    Detaching it costs nothing — the node's null-sink check is the
 *    only hot-path branch — and attaching it never perturbs event
 *    order or RNG (it only reads records already being published).
 *  - TraceBuilder turns records into spans. The same builder consumes
 *    a parsed journal, so tools/trace_report.cc analyzes any chaos or
 *    CI journal artifact post-hoc with exactly the live tracer's
 *    logic.
 *
 * Span taxonomy per job (trace id = JobRequest::traceId, defaulting
 * to the jobId assigned at admit):
 *
 *    route       Route record -> admit on the home node (routed runs)
 *    queue_wait  admit -> first dispatch of the job's work item
 *                (or its cache probe, for cache-served jobs)
 *    execute     first dispatch -> last in-flight shard resolution
 *    aggregate   last resolution -> finalize
 *    shard       one dispatched shard: dispatch -> done/fail, with
 *                node/member/seq/shots attribution (member lanes)
 *
 * The job-level spans partition [admit, finalize] *exactly*: each
 * span's end is bitwise the next span's begin, the first begins at
 * the admit hour and the last ends at the finalize hour, so the
 * telescoped sum of span durations equals finalize - admit by
 * construction. analyze() re-verifies that chain bitwise per job
 * (criticalPathsExact) and trace_report fails on any violation.
 *
 * Export: chromeTrace() renders Chrome trace_event JSON (complete "X"
 * events; pid = node, tid = member for shard lanes) that opens in
 * about://tracing or Perfetto; analyze()/renderReport() produce the
 * queue-wait vs. execute vs. aggregate percentile breakdown,
 * per-member utilization timelines and shed/forward attribution.
 */

#ifndef EQC_OBS_TRACE_H
#define EQC_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "replay/journal.h"

namespace eqc {
namespace obs {

/** One closed span, stamped in serving-clock hours. */
struct TraceSpan
{
    /** Stage name: route / queue_wait / execute / aggregate / shard. */
    std::string name;
    double beginH = 0.0;
    double endH = 0.0;
    uint64_t traceId = 0;
    uint64_t jobId = 0;
    uint64_t workUid = 0;
    int tenant = 0;
    int node = 0;
    /** Shard spans only: member / plan seq / shots. */
    int member = -1;
    int seq = -1;
    int shots = 0;
    /** Shard resolved by failure timeout. */
    bool failed = false;
    /** Shard resolved after its item finalized. */
    bool late = false;

    double durationH() const { return endH - beginH; }
};

/** One job's reconstructed critical path (emitted at finalize). */
struct JobPath
{
    uint64_t traceId = 0;
    uint64_t jobId = 0;
    uint64_t workUid = 0;
    int tenant = 0;
    int node = 0;
    double admitH = 0.0;
    double finalizeH = 0.0;
    /**
     * Stage durations; telescoping over [admitH, max(admitH,
     * finalizeH)]. A clock-skewed rider can admit after its coalesced
     * item finalized — the service clamps such latencies to zero, and
     * the stage partition does the same (totalH() is never negative).
     */
    double queueWaitH = 0.0;
    double executeH = 0.0;
    double aggregateH = 0.0;
    bool routed = false;
    bool fromCache = false;
    bool coalesced = false;
    bool shed = false;
    bool degraded = false;
    int shedShots = 0;
    /** Non-late shard resolutions of the job's work item. */
    int shards = 0;
    /**
     * The job's emitted spans chain bitwise from admitH to
     * max(admitH, finalizeH) (verified at emission; analyze()
     * aggregates the flag).
     */
    bool chainExact = false;

    double totalH() const
    {
        return finalizeH > admitH ? finalizeH - admitH : 0.0;
    }
};

/** Membership change (kill/restore/join/leave) for instant markers. */
struct TraceInstant
{
    std::string name;
    double tH = 0.0;
    int node = 0;
    int member = -1;
};

/**
 * Streaming record-to-span builder. Feed records in publication
 * order (live via TraceSink, or from EventJournal::records()); spans
 * close as their terminating record arrives. Structural problems
 * (resolutions without a dispatch, finalizes without an admit,
 * spans running backwards) are collected, not thrown — a truncated
 * journal still yields every span that did close.
 */
class TraceBuilder
{
  public:
    void add(const replay::EventRecord &r);

    const std::vector<TraceSpan> &spans() const { return spans_; }
    const std::vector<JobPath> &paths() const { return paths_; }
    const std::vector<TraceInstant> &instants() const { return instants_; }
    /** Structural-malformation descriptions (empty = clean). */
    const std::vector<std::string> &problems() const { return problems_; }
    /** Admitted jobs that have not finalized (yet). */
    std::size_t openJobs() const;
    /** Overflow forwards seen, keyed "from->to" node pair. */
    const std::map<std::string, uint64_t> &forwardEdges() const
    {
        return forwardEdges_;
    }
    /** Routed requests whose every hop rejected (no admit). */
    std::size_t rejectedEverywhere() const;
    /** Records consumed so far. */
    std::size_t records() const { return records_; }
    /** Hour of the earliest / latest record seen (0 when empty). */
    double windowStartH() const { return records_ ? minTH_ : 0.0; }
    double windowEndH() const { return records_ ? maxTH_ : 0.0; }

  private:
    struct JobState
    {
        double admitH = 0.0;
        double routeH = -1.0;
        bool routed = false;
        int tenant = 0;
        int node = 0;
        uint64_t traceId = 0;
        uint64_t uid = 0;
        bool coalesced = false;
        bool finalized = false;
    };

    struct ShardState
    {
        double dispatchH = 0.0;
        int member = -1;
        int shots = 0;
        int node = 0;
        bool resolved = false;
    };

    struct ItemState
    {
        double firstDispatchH = -1.0;
        double lastResolveH = -1.0;
        double cacheHitH = -1.0;
        int resolved = 0;
        std::map<int, ShardState> shards;
    };

    void finalizeJob(const replay::EventRecord &r);

    std::map<uint64_t, JobState> jobs_;
    std::map<uint64_t, ItemState> items_;
    /** Routed-request uid -> route hour (for route spans). */
    std::map<uint64_t, double> routes_;
    std::map<uint64_t, bool> routeAdmitted_;
    std::map<std::string, uint64_t> forwardEdges_;
    std::vector<TraceSpan> spans_;
    std::vector<JobPath> paths_;
    std::vector<TraceInstant> instants_;
    std::vector<std::string> problems_;
    std::size_t records_ = 0;
    double minTH_ = 0.0;
    double maxTH_ = 0.0;
};

/**
 * JournalSink tee: forwards records to @p inner byte-for-byte (a
 * journaled run with a collector attached serializes identically to
 * one without) and builds spans on the side. @p inner may be null —
 * a pure live collector.
 */
class TraceSink final : public replay::JournalSink
{
  public:
    explicit TraceSink(replay::JournalSink *inner = nullptr)
        : inner_(inner)
    {
    }

    void
    record(const replay::EventRecord &r) override
    {
        if (inner_)
            inner_->record(r);
        builder_.add(r);
    }

    TraceBuilder &builder() { return builder_; }
    const TraceBuilder &builder() const { return builder_; }

  private:
    replay::JournalSink *inner_;
    TraceBuilder builder_;
};

/** Chrome trace_event JSON (about://tracing, Perfetto). */
std::string chromeTrace(const TraceBuilder &b);

/** Per-member utilization over the journal's time window. */
struct MemberUtilization
{
    int node = 0;
    int member = -1;
    int shards = 0;
    uint64_t shots = 0;
    double busyH = 0.0;
    /** busyH over the journal's [first, last] event window. */
    double utilization = 0.0;
    /** Coarse busy-fraction timeline (one char per time bucket). */
    std::string timeline;
};

/** Percentile row of one critical-path stage. */
struct StageBreakdown
{
    std::string stage;
    double meanH = 0.0;
    double p50H = 0.0;
    double p95H = 0.0;
    double p99H = 0.0;
    double maxH = 0.0;
    /** Stage share of summed job totals. */
    double share = 0.0;
};

/** Everything trace_report prints, as data. */
struct TraceAnalysis
{
    std::size_t records = 0;
    std::size_t jobs = 0;
    std::size_t openJobs = 0;
    std::size_t shardSpans = 0;
    std::size_t lateShards = 0;
    std::size_t failedShards = 0;
    std::size_t cacheServed = 0;
    std::size_t coalesced = 0;
    std::size_t shed = 0;
    std::size_t degraded = 0;
    double windowStartH = 0.0;
    double windowEndH = 0.0;
    /**
     * Every job's spans chain bitwise: first begins at admit, each
     * end equals the next begin, last ends at finalize — i.e. the
     * summed span durations telescope to finalize - admit exactly.
     */
    bool criticalPathsExact = false;
    std::vector<std::string> problems;
    std::vector<StageBreakdown> breakdown;
    std::vector<MemberUtilization> members;
    /** Shed attribution: tenant -> (jobs shed, shots abandoned). */
    std::map<int, std::pair<uint64_t, uint64_t>> shedsByTenant;
    std::map<std::string, uint64_t> forwardEdges;
    std::size_t rejectedEverywhere = 0;
};

TraceAnalysis analyze(const TraceBuilder &b);

/** Deterministic plain-text report (golden-tested). */
std::string renderReport(const TraceAnalysis &a);

} // namespace obs
} // namespace eqc

#endif // EQC_OBS_TRACE_H
