#include "obs/exposition.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace eqc {
namespace obs {

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    // Shortest round-trip-safe form keeps scrapes diffable run to run.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char *
kindName(MetricSample::Kind k)
{
    switch (k) {
    case MetricSample::KindCounter:
        return "counter";
    case MetricSample::KindGauge:
        return "gauge";
    case MetricSample::KindHistogram:
        return "histogram";
    }
    return "counter";
}

std::string
labelBlock(const std::string &labels)
{
    if (labels.empty())
        return "";
    return "{" + labels + "}";
}

std::string
labelBlockWith(const std::string &labels, const std::string &extra)
{
    if (labels.empty())
        return "{" + extra + "}";
    return "{" + labels + "," + extra + "}";
}

} // namespace

std::string
toPrometheus(const Snapshot &snap)
{
    std::string out;
    const std::string *lastTyped = nullptr;
    for (const MetricSample &s : snap.samples) {
        // One HELP/TYPE header per family; labelled duplicates of the
        // same name (fleet merges) share it.
        if (!lastTyped || *lastTyped != s.name) {
            if (!s.help.empty())
                out += "# HELP " + s.name + " " + s.help + "\n";
            out += "# TYPE " + s.name + " ";
            out += kindName(s.kind);
            out += "\n";
            lastTyped = &s.name;
        }
        switch (s.kind) {
        case MetricSample::KindCounter:
            out += s.name + labelBlock(s.labels) + " " + fmtU64(s.count) +
                   "\n";
            break;
        case MetricSample::KindGauge:
            out += s.name + labelBlock(s.labels) + " " + fmtDouble(s.value) +
                   "\n";
            break;
        case MetricSample::KindHistogram: {
            uint64_t cum = 0;
            for (std::size_t i = 0; i < s.buckets.size(); ++i) {
                cum += s.buckets[i];
                std::string le = i < s.bounds.size()
                                     ? fmtDouble(s.bounds[i])
                                     : std::string("+Inf");
                out += s.name + "_bucket" +
                       labelBlockWith(s.labels, "le=\"" + le + "\"") + " " +
                       fmtU64(cum) + "\n";
            }
            out += s.name + "_sum" + labelBlock(s.labels) + " " +
                   fmtDouble(s.sum) + "\n";
            out += s.name + "_count" + labelBlock(s.labels) + " " +
                   fmtU64(s.count) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string
toJson(const Snapshot &snap)
{
    std::string out = "{\n  \"metrics\": [";
    bool first = true;
    for (const MetricSample &s : snap.samples) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + jsonEscape(s.name) + "\", \"type\": \"";
        out += kindName(s.kind);
        out += "\"";
        if (!s.labels.empty())
            out += ", \"labels\": \"" + jsonEscape(s.labels) + "\"";
        switch (s.kind) {
        case MetricSample::KindCounter:
            out += ", \"value\": " + fmtU64(s.count);
            break;
        case MetricSample::KindGauge:
            out += ", \"value\": " + fmtDouble(s.value);
            break;
        case MetricSample::KindHistogram: {
            out += ", \"count\": " + fmtU64(s.count);
            out += ", \"sum\": " + fmtDouble(s.sum);
            out += ", \"bounds\": [";
            for (std::size_t i = 0; i < s.bounds.size(); ++i)
                out += (i ? ", " : "") + fmtDouble(s.bounds[i]);
            out += "], \"buckets\": [";
            for (std::size_t i = 0; i < s.buckets.size(); ++i)
                out += (i ? ", " : "") + fmtU64(s.buckets[i]);
            out += "]";
            break;
        }
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

Snapshot
merge(const std::vector<std::pair<std::string, Snapshot>> &parts)
{
    Snapshot out;
    for (const auto &part : parts) {
        for (MetricSample s : part.second.samples) {
            if (!part.first.empty()) {
                s.labels = s.labels.empty()
                               ? part.first
                               : part.first + "," + s.labels;
            }
            out.samples.push_back(std::move(s));
        }
    }
    // Group families so the Prometheus renderer emits one HELP/TYPE
    // header per name; source order is kept within a family.
    std::stable_sort(out.samples.begin(), out.samples.end(),
                     [](const MetricSample &a, const MetricSample &b) {
                         return a.name < b.name;
                     });
    return out;
}

Snapshot
diff(const Snapshot &newer, const Snapshot &older)
{
    std::map<std::pair<std::string, std::string>, const MetricSample *> prev;
    for (const MetricSample &s : older.samples)
        prev[{s.name, s.labels}] = &s;

    Snapshot out;
    for (const MetricSample &s : newer.samples) {
        MetricSample d = s;
        auto it = prev.find({s.name, s.labels});
        const MetricSample *o =
            it != prev.end() && it->second->kind == s.kind ? it->second
                                                           : nullptr;
        switch (s.kind) {
        case MetricSample::KindCounter:
            if (o && o->count <= d.count)
                d.count -= o->count;
            d.value = static_cast<double>(d.count);
            break;
        case MetricSample::KindGauge:
            // Gauges are levels, not flows: keep the newer reading.
            break;
        case MetricSample::KindHistogram:
            if (o && o->count <= d.count &&
                o->buckets.size() == d.buckets.size()) {
                for (std::size_t i = 0; i < d.buckets.size(); ++i)
                    d.buckets[i] -= o->buckets[i];
                d.count -= o->count;
                d.sum -= o->sum;
            }
            break;
        }
        out.samples.push_back(std::move(d));
    }
    return out;
}

} // namespace obs
} // namespace eqc
