/**
 * @file
 * Exposition formats for obs::Snapshot scrapes: Prometheus text and
 * JSON, plus snapshot algebra (labelled merges across registries and
 * counter-diffs between two scrapes of the same fleet).
 *
 * A Snapshot is already consistent (one pass over the registry under
 * its registration mutex); everything here is pure formatting over
 * that immutable value, so a scrape can be rendered, diffed against
 * the previous scrape, or both, without touching the hot path.
 *
 * JSON schema (stable; the benches' --metrics-out files use it):
 *
 *   {
 *     "metrics": [
 *       {"name": "...", "type": "counter", "labels": "node=\"0\"",
 *        "value": 123},
 *       {"name": "...", "type": "gauge", "value": 1.5},
 *       {"name": "...", "type": "histogram", "count": 9, "sum": 12.5,
 *        "bounds": [0.1, 1.0], "buckets": [4, 3, 2]}
 *     ]
 *   }
 *
 * "labels" is omitted when empty; "buckets" has one more entry than
 * "bounds" (the +inf bucket); bucket counts are per-bucket, not
 * cumulative (the Prometheus renderer accumulates them for `le`).
 */

#ifndef EQC_OBS_EXPOSITION_H
#define EQC_OBS_EXPOSITION_H

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace eqc {
namespace obs {

/** Prometheus text exposition format (# HELP / # TYPE / samples). */
std::string toPrometheus(const Snapshot &snap);

/** JSON exposition (schema in the file comment). */
std::string toJson(const Snapshot &snap);

/**
 * Combine per-source scrapes into one fleet snapshot, stamping each
 * source's samples with its label set (e.g. {"node=\"0\"", snap0}).
 * Samples are grouped by metric name (families stay contiguous for
 * the Prometheus renderer); source order is kept within a family.
 */
Snapshot merge(const std::vector<std::pair<std::string, Snapshot>> &parts);

/**
 * Delta between two scrapes of the same fleet: counters and histogram
 * buckets subtract (samples missing from @p older count from zero),
 * gauges keep their @p newer level. Samples only present in @p older
 * are dropped — a diff describes what happened since, not what
 * disappeared.
 */
Snapshot diff(const Snapshot &newer, const Snapshot &older);

} // namespace obs
} // namespace eqc

#endif // EQC_OBS_EXPOSITION_H
