#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace eqc {
namespace obs {

namespace {

uint64_t
toBits(double v)
{
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v), "double must be 64-bit");
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

double
fromBits(uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

} // namespace

void
Gauge::set(double v)
{
    bits_.store(toBits(v), std::memory_order_relaxed);
}

void
Gauge::add(double d)
{
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, toBits(fromBits(old) + d),
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
}

double
Gauge::value() const
{
    return fromBits(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        panic("Histogram: bucket bounds must be sorted ascending");
}

void
Histogram::observe(double x)
{
    // First bucket with x <= bound; the trailing slot is +inf.
    std::size_t i =
        static_cast<std::size_t>(std::lower_bound(bounds_.begin(),
                                                  bounds_.end(), x) -
                                 bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t old = sumBits_.load(std::memory_order_relaxed);
    while (!sumBits_.compare_exchange_weak(old, toBits(fromBits(old) + x),
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
    }
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::sum() const
{
    return fromBits(sumBits_.load(std::memory_order_relaxed));
}

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name, MetricSample::Kind kind,
                      const std::string &help, const std::string &labels)
{
    for (Entry &e : entries_) {
        if (e.name != name || e.labels != labels)
            continue;
        if (e.kind != kind)
            panic("MetricsRegistry: '" + name +
                  "' re-registered with a different kind");
        return &e;
    }
    entries_.emplace_back(name, help, labels, kind);
    return &entries_.back();
}

Counter *
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    return &find(name, MetricSample::KindCounter, help, labels)->counter;
}

Gauge *
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    return &find(name, MetricSample::KindGauge, help, labels)->gauge;
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds,
                           const std::string &help,
                           const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry *e = find(name, MetricSample::KindHistogram, help, labels);
    if (!e->histogram)
        e->histogram = std::make_unique<Histogram>(std::move(bounds));
    return e->histogram.get();
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    {
        std::lock_guard<std::mutex> lock(mu_);
        snap.samples.reserve(entries_.size());
        for (const Entry &e : entries_) {
            MetricSample s;
            s.name = e.name;
            s.help = e.help;
            s.labels = e.labels;
            s.kind = e.kind;
            switch (e.kind) {
            case MetricSample::KindCounter:
                s.value = static_cast<double>(e.counter.value());
                s.count = e.counter.value();
                break;
            case MetricSample::KindGauge:
                s.value = e.gauge.value();
                break;
            case MetricSample::KindHistogram:
                s.bounds = e.histogram->bounds();
                s.buckets = e.histogram->bucketCounts();
                s.count = e.histogram->count();
                s.sum = e.histogram->sum();
                break;
            }
            snap.samples.push_back(std::move(s));
        }
    }
    std::sort(snap.samples.begin(), snap.samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name != b.name ? a.name < b.name
                                          : a.labels < b.labels;
              });
    return snap;
}

} // namespace obs
} // namespace eqc
