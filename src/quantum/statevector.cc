#include "quantum/statevector.h"

#include <cmath>

#include "common/logging.h"
#include "quantum/kernel.h"
#include "quantum/pauli.h"

namespace eqc {

Statevector::Statevector(int numQubits)
    : numQubits_(numQubits), amp_(uint64_t{1} << numQubits, Complex(0, 0))
{
    if (numQubits < 1 || numQubits > 26)
        fatal("Statevector: qubit count out of supported range [1,26]");
    amp_[0] = 1.0;
}

void
Statevector::reset()
{
    std::fill(amp_.begin(), amp_.end(), Complex(0, 0));
    amp_[0] = 1.0;
}

void
Statevector::applyGate(const CMatrix &u, const std::vector<int> &qubits)
{
    for (int q : qubits)
        if (q < 0 || q >= numQubits_)
            panic("Statevector::applyGate: qubit index out of range");
    detail::applyOperatorKernel(amp_, dim(), u, qubits);
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amp_.size());
    for (std::size_t i = 0; i < amp_.size(); ++i)
        p[i] = std::norm(amp_[i]);
    return p;
}

double
Statevector::expectation(const PauliString &pauli) const
{
    // P|b> = lambda(b) |b ^ xmask>; <psi|P|psi> =
    //   sum_b conj(psi[b ^ xmask]) * lambda(b) * psi[b].
    const uint64_t xmask = pauli.xMask();
    const uint64_t zmask = pauli.zMask();
    const uint64_t ymask = xmask & zmask;
    const int yCount = static_cast<int>(__builtin_popcountll(ymask));
    // i^yCount global factor from the Y = i*X*Z decomposition.
    static const Complex iPow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Complex global = iPow[yCount & 3];

    Complex acc(0, 0);
    for (uint64_t b = 0; b < dim(); ++b) {
        if (amp_[b] == Complex(0, 0))
            continue;
        // Sign from Z-type factors: (-1)^{popcount(b & zmask)}.
        int par = __builtin_popcountll(b & zmask) & 1;
        Complex lambda = par ? -global : global;
        acc += std::conj(amp_[b ^ xmask]) * lambda * amp_[b];
    }
    return acc.real();
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const Complex &a : amp_)
        s += std::norm(a);
    return s;
}

void
Statevector::normalize()
{
    double n = std::sqrt(norm());
    if (n <= 0.0)
        panic("Statevector::normalize: zero state");
    for (Complex &a : amp_)
        a /= n;
}

Complex
Statevector::inner(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::inner: qubit count mismatch");
    Complex acc(0, 0);
    for (std::size_t i = 0; i < amp_.size(); ++i)
        acc += std::conj(other.amp_[i]) * amp_[i];
    return acc;
}

std::vector<uint64_t>
Statevector::sample(uint64_t shots, Rng &rng) const
{
    return rng.multinomial(probabilities(), shots);
}

} // namespace eqc
