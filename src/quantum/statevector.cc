#include "quantum/statevector.h"

#include <cmath>

#include "common/logging.h"
#include "common/task_pool.h"
#include "quantum/kernel.h"
#include "quantum/pauli.h"

namespace eqc {

TaskPool *
Statevector::pool() const
{
    // Resolved once per instance: TaskPool::shared()'s thread-safe
    // static guard is measurable on the small-n fast paths.
    if (!pool_)
        pool_ = &TaskPool::shared();
    return pool_;
}

Statevector::Statevector(int numQubits)
    : numQubits_(numQubits), amp_(uint64_t{1} << numQubits, Complex(0, 0))
{
    if (numQubits < 1 || numQubits > 26)
        fatal("Statevector: qubit count out of supported range [1,26]");
    amp_[0] = 1.0;
}

void
Statevector::reset()
{
    std::fill(amp_.begin(), amp_.end(), Complex(0, 0));
    amp_[0] = 1.0;
}

void
Statevector::applyGate1(const Complex *u, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("Statevector::applyGate1: qubit index out of range");
    Complex d[2];
    detail::PermPhase pp;
    switch (detail::classifyGate(u, 2, d, pp)) {
      case detail::GateKind::Diagonal:
        detail::applyDiag1(amp_.data(), dim(), d[0], d[1], qubit, pool());
        break;
      case detail::GateKind::PermPhase:
        detail::applyPermPhase1(amp_.data(), dim(), pp, qubit, pool());
        break;
      case detail::GateKind::General:
        detail::applyGate1(amp_.data(), dim(), u, qubit, pool());
        break;
    }
}

void
Statevector::applyDiag1(const Complex *d, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("Statevector::applyDiag1: qubit index out of range");
    detail::applyDiag1(amp_.data(), dim(), d[0], d[1], qubit, pool());
}

void
Statevector::applyGate2(const Complex *u, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("Statevector::applyGate2: invalid qubits");
    }
    Complex d[4];
    detail::PermPhase pp;
    switch (detail::classifyGate(u, 4, d, pp)) {
      case detail::GateKind::Diagonal:
        detail::applyDiag2(amp_.data(), dim(), d, q0, q1, pool());
        break;
      case detail::GateKind::PermPhase:
        detail::applyPermPhase2(amp_.data(), dim(), pp, q0, q1, pool());
        break;
      case detail::GateKind::General:
        detail::applyGate2(amp_.data(), dim(), u, q0, q1, pool());
        break;
    }
}

void
Statevector::applyDiag2(const Complex *d, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("Statevector::applyDiag2: invalid qubits");
    }
    detail::applyDiag2(amp_.data(), dim(), d, q0, q1, pool());
}

void
Statevector::applyGate(const CMatrix &u, const std::vector<int> &qubits)
{
    for (int q : qubits)
        if (q < 0 || q >= numQubits_)
            panic("Statevector::applyGate: qubit index out of range");
    const std::size_t k = qubits.size();
    if (k == 1) {
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        applyGate1(m, qubits[0]);
        return;
    }
    if (k == 2) {
        Complex m[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                m[r * 4 + c] = u(r, c);
        applyGate2(m, qubits[0], qubits[1]);
        return;
    }
    // Rare k >= 3 path; scratch is local, so it allocates — callers on
    // hot paths only issue 1q/2q gates.
    detail::KernelScratch scratch;
    detail::applyGateK(amp_.data(), dim(), u, qubits.data(),
                       static_cast<int>(k), scratch);
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amp_.size());
    for (std::size_t i = 0; i < amp_.size(); ++i)
        p[i] = std::norm(amp_[i]);
    return p;
}

double
Statevector::expectation(const PauliString &pauli) const
{
    // P|b> = lambda(b) |b ^ xmask>; <psi|P|psi> =
    //   sum_b conj(psi[b ^ xmask]) * lambda(b) * psi[b].
    const uint64_t xmask = pauli.xMask();
    const uint64_t zmask = pauli.zMask();
    const uint64_t ymask = xmask & zmask;
    const int yCount = static_cast<int>(__builtin_popcountll(ymask));
    // i^yCount global factor from the Y = i*X*Z decomposition.
    static const Complex iPow[4] = {
        {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Complex global = iPow[yCount & 3];

    Complex acc(0, 0);
    for (uint64_t b = 0; b < dim(); ++b) {
        if (amp_[b] == Complex(0, 0))
            continue;
        // Sign from Z-type factors: (-1)^{popcount(b & zmask)}.
        int par = __builtin_popcountll(b & zmask) & 1;
        Complex lambda = par ? -global : global;
        acc += std::conj(amp_[b ^ xmask]) * lambda * amp_[b];
    }
    return acc.real();
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const Complex &a : amp_)
        s += std::norm(a);
    return s;
}

void
Statevector::normalize()
{
    double n = std::sqrt(norm());
    if (n <= 0.0)
        panic("Statevector::normalize: zero state");
    for (Complex &a : amp_)
        a /= n;
}

Complex
Statevector::inner(const Statevector &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("Statevector::inner: qubit count mismatch");
    Complex acc(0, 0);
    for (std::size_t i = 0; i < amp_.size(); ++i)
        acc += std::conj(other.amp_[i]) * amp_[i];
    return acc;
}

std::vector<uint64_t>
Statevector::sample(uint64_t shots, Rng &rng) const
{
    return rng.multinomial(probabilities(), shots);
}

} // namespace eqc
