/**
 * @file
 * Pauli-string algebra: the representation used for Hamiltonians (linear
 * combinations of Pauli strings, as produced by e.g. a Jordan-Wigner
 * decomposition) and for grouping observables into simultaneously
 * measurable sets (qubit-wise commuting groups).
 */

#ifndef EQC_QUANTUM_PAULI_H
#define EQC_QUANTUM_PAULI_H

#include <cstdint>
#include <string>
#include <vector>

#include "quantum/cmatrix.h"

namespace eqc {

/** Single-qubit Pauli factors. */
enum class Pauli : uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/**
 * An n-qubit Pauli string, e.g. "XXIZ".
 *
 * Stored as X/Z bit masks (Y = X and Z both set). Qubit q corresponds to
 * bit q of the masks and to character position q of label strings, i.e.
 * labels are written least-significant-qubit FIRST ("XY" means X on
 * qubit 0, Y on qubit 1).
 */
class PauliString
{
  public:
    /** Identity string over @p numQubits qubits. */
    explicit PauliString(int numQubits = 0);

    /**
     * Build from a label such as "XXIZ" (qubit 0 first).
     * @param label one of I/X/Y/Z per qubit
     */
    explicit PauliString(const std::string &label);

    /** Build with a single non-identity factor at @p qubit. */
    static PauliString single(int numQubits, int qubit, Pauli p);

    /** Factor acting on @p qubit. */
    Pauli at(int qubit) const;

    /** Set the factor on @p qubit. */
    void set(int qubit, Pauli p);

    int numQubits() const { return numQubits_; }

    /** Bit mask of qubits with an X or Y factor. */
    uint64_t xMask() const { return x_; }

    /** Bit mask of qubits with a Z or Y factor. */
    uint64_t zMask() const { return z_; }

    /** Number of non-identity factors. */
    int weight() const;

    /** Label string, qubit 0 first. */
    std::string label() const;

    /**
     * Qubit-wise commutation: on every qubit the factors are equal or at
     * least one is I. Strings that qubit-wise commute can be measured
     * from the same shots after a shared basis rotation.
     */
    bool qubitwiseCommutes(const PauliString &other) const;

    /** Full (symplectic) commutation test. */
    bool commutes(const PauliString &other) const;

    /** Dense 2^n x 2^n matrix (small n only; for tests and exact diag). */
    CMatrix matrix() const;

    bool operator==(const PauliString &other) const;

  private:
    int numQubits_;
    uint64_t x_ = 0;
    uint64_t z_ = 0;
};

/** One weighted term of a Hamiltonian. */
struct PauliTerm
{
    double coefficient = 0.0;
    PauliString pauli;
};

/**
 * Real-weighted sum of Pauli strings; the Hamiltonian representation used
 * across EQC (Heisenberg model, MaxCut Ising Hamiltonian, ...).
 */
class PauliSum
{
  public:
    PauliSum() = default;

    /** Empty sum over a fixed qubit count. */
    explicit PauliSum(int numQubits) : numQubits_(numQubits) {}

    /** Append a term; merges with an existing equal string. */
    void add(double coefficient, const PauliString &p);

    /** Append a term given by label, e.g. add(0.5, "ZZII"). */
    void add(double coefficient, const std::string &label);

    const std::vector<PauliTerm> &terms() const { return terms_; }

    int numQubits() const { return numQubits_; }

    /** Number of stored terms. */
    std::size_t size() const { return terms_.size(); }

    /** Sum of |coefficients| (useful for spectral bounds). */
    double coefficientNorm() const;

    /** Constant (identity-string) part of the sum. */
    double identityOffset() const;

    /** Dense matrix (small n; for exact diagonalization). */
    CMatrix matrix() const;

  private:
    int numQubits_ = 0;
    std::vector<PauliTerm> terms_;
};

/**
 * Partition term indices into qubit-wise commuting groups (greedy
 * first-fit). Every group can be measured with one basis-rotated circuit;
 * the identity term (weight 0) is placed in the first group it fits.
 *
 * @return list of groups, each a list of indices into sum.terms()
 */
std::vector<std::vector<std::size_t>>
groupQubitwiseCommuting(const PauliSum &sum);

} // namespace eqc

#endif // EQC_QUANTUM_PAULI_H
