#include "quantum/gates.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace eqc {

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::CZ:
      case GateType::SWAP:
      case GateType::RZZ:
        return 2;
      default:
        return 1;
    }
}

int
gateParamCount(GateType type)
{
    switch (type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::RZZ:
        return 1;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::ID: return "id";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::H: return "h";
      case GateType::S: return "s";
      case GateType::SDG: return "sdg";
      case GateType::T: return "t";
      case GateType::TDG: return "tdg";
      case GateType::SX: return "sx";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::U3: return "u3";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::SWAP: return "swap";
      case GateType::RZZ: return "rzz";
      case GateType::MEASURE: return "measure";
      case GateType::BARRIER: return "barrier";
    }
    panic("gateName: unknown gate type");
}

GateType
gateFromName(const std::string &name)
{
    static const std::unordered_map<std::string, GateType> table = {
        {"id", GateType::ID},       {"x", GateType::X},
        {"y", GateType::Y},         {"z", GateType::Z},
        {"h", GateType::H},         {"s", GateType::S},
        {"sdg", GateType::SDG},     {"t", GateType::T},
        {"tdg", GateType::TDG},     {"sx", GateType::SX},
        {"rx", GateType::RX},       {"ry", GateType::RY},
        {"rz", GateType::RZ},       {"u3", GateType::U3},
        {"cx", GateType::CX},       {"cz", GateType::CZ},
        {"swap", GateType::SWAP},   {"rzz", GateType::RZZ},
        {"measure", GateType::MEASURE},
        {"barrier", GateType::BARRIER},
    };
    auto it = table.find(name);
    if (it == table.end())
        fatal("gateFromName: unknown gate '" + name + "'");
    return it->second;
}

namespace {

const Complex kI(0.0, 1.0);

CMatrix
rx(double theta)
{
    double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix(2, 2, {c, -kI * s, -kI * s, c});
}

CMatrix
ry(double theta)
{
    double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix(2, 2, {c, -s, s, c});
}

CMatrix
rz(double theta)
{
    Complex em = std::exp(-kI * (theta / 2.0));
    Complex ep = std::exp(kI * (theta / 2.0));
    return CMatrix(2, 2, {em, 0.0, 0.0, ep});
}

CMatrix
u3(double theta, double phi, double lambda)
{
    // U3(theta, phi, lambda) = RZ(phi) RY(theta) RZ(lambda) up to global
    // phase; we use the OpenQASM convention with u3(0,0,0) == I.
    double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    return CMatrix(2, 2,
                   {c, -std::exp(kI * lambda) * s,
                    std::exp(kI * phi) * s,
                    std::exp(kI * (phi + lambda)) * c});
}

} // namespace

CMatrix
gateMatrix(GateType type, const std::vector<double> &params)
{
    int want = gateParamCount(type);
    if (static_cast<int>(params.size()) != want)
        panic("gateMatrix: wrong parameter count for gate " +
              gateName(type));
    switch (type) {
      case GateType::ID:
        return CMatrix::identity(2);
      case GateType::X:
        return CMatrix(2, 2, {0.0, 1.0, 1.0, 0.0});
      case GateType::Y:
        return CMatrix(2, 2, {0.0, -kI, kI, 0.0});
      case GateType::Z:
        return CMatrix(2, 2, {1.0, 0.0, 0.0, -1.0});
      case GateType::H: {
        double r = 1.0 / std::sqrt(2.0);
        return CMatrix(2, 2, {r, r, r, -r});
      }
      case GateType::S:
        return CMatrix(2, 2, {1.0, 0.0, 0.0, kI});
      case GateType::SDG:
        return CMatrix(2, 2, {1.0, 0.0, 0.0, -kI});
      case GateType::T:
        return CMatrix(2, 2, {1.0, 0.0, 0.0, std::exp(kI * (kPi / 4.0))});
      case GateType::TDG:
        return CMatrix(2, 2, {1.0, 0.0, 0.0, std::exp(-kI * (kPi / 4.0))});
      case GateType::SX: {
        // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
        Complex a(0.5, 0.5), b(0.5, -0.5);
        return CMatrix(2, 2, {a, b, b, a});
      }
      case GateType::RX:
        return rx(params[0]);
      case GateType::RY:
        return ry(params[0]);
      case GateType::RZ:
        return rz(params[0]);
      case GateType::U3:
        return u3(params[0], params[1], params[2]);
      case GateType::CX: {
        // Sub-index j = control + 2*target: control set flips target.
        // j=1 (c=1,t=0) <-> j=3 (c=1,t=1).
        CMatrix m(4, 4);
        m(0, 0) = 1.0;
        m(2, 2) = 1.0;
        m(1, 3) = 1.0;
        m(3, 1) = 1.0;
        return m;
      }
      case GateType::CZ: {
        CMatrix m = CMatrix::identity(4);
        m(3, 3) = -1.0;
        return m;
      }
      case GateType::SWAP: {
        CMatrix m(4, 4);
        m(0, 0) = 1.0;
        m(3, 3) = 1.0;
        m(1, 2) = 1.0;
        m(2, 1) = 1.0;
        return m;
      }
      case GateType::RZZ: {
        // exp(-i theta/2 Z(x)Z): diagonal phases by parity of the two bits.
        Complex em = std::exp(-kI * (params[0] / 2.0));
        Complex ep = std::exp(kI * (params[0] / 2.0));
        CMatrix m(4, 4);
        m(0, 0) = em;
        m(1, 1) = ep;
        m(2, 2) = ep;
        m(3, 3) = em;
        return m;
      }
      case GateType::MEASURE:
      case GateType::BARRIER:
        panic("gateMatrix: " + gateName(type) + " has no unitary");
    }
    panic("gateMatrix: unknown gate type");
}

bool
isBasisGate(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::ID:
      case GateType::RZ:
      case GateType::SX:
      case GateType::X:
      case GateType::MEASURE:
      case GateType::BARRIER:
        return true;
      default:
        return false;
    }
}

bool
isVirtualGate(GateType type)
{
    return type == GateType::RZ || type == GateType::BARRIER;
}

} // namespace eqc
