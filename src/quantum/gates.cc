#include "quantum/gates.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace eqc {

int
gateArity(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::CZ:
      case GateType::SWAP:
      case GateType::RZZ:
        return 2;
      default:
        return 1;
    }
}

int
gateParamCount(GateType type)
{
    switch (type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::RZZ:
        return 1;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::ID: return "id";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::H: return "h";
      case GateType::S: return "s";
      case GateType::SDG: return "sdg";
      case GateType::T: return "t";
      case GateType::TDG: return "tdg";
      case GateType::SX: return "sx";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::U3: return "u3";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::SWAP: return "swap";
      case GateType::RZZ: return "rzz";
      case GateType::MEASURE: return "measure";
      case GateType::BARRIER: return "barrier";
    }
    panic("gateName: unknown gate type");
}

GateType
gateFromName(const std::string &name)
{
    static const std::unordered_map<std::string, GateType> table = {
        {"id", GateType::ID},       {"x", GateType::X},
        {"y", GateType::Y},         {"z", GateType::Z},
        {"h", GateType::H},         {"s", GateType::S},
        {"sdg", GateType::SDG},     {"t", GateType::T},
        {"tdg", GateType::TDG},     {"sx", GateType::SX},
        {"rx", GateType::RX},       {"ry", GateType::RY},
        {"rz", GateType::RZ},       {"u3", GateType::U3},
        {"cx", GateType::CX},       {"cz", GateType::CZ},
        {"swap", GateType::SWAP},   {"rzz", GateType::RZZ},
        {"measure", GateType::MEASURE},
        {"barrier", GateType::BARRIER},
    };
    auto it = table.find(name);
    if (it == table.end())
        fatal("gateFromName: unknown gate '" + name + "'");
    return it->second;
}

namespace {

const Complex kI(0.0, 1.0);

} // namespace

bool
isDiagonalGate(GateType type)
{
    switch (type) {
      case GateType::ID:
      case GateType::Z:
      case GateType::S:
      case GateType::SDG:
      case GateType::T:
      case GateType::TDG:
      case GateType::RZ:
      case GateType::CZ:
      case GateType::RZZ:
        return true;
      default:
        return false;
    }
}

int
gateEntries(GateType type, const double *angles, Complex *out)
{
    switch (type) {
      case GateType::ID:
        out[0] = 1.0;
        out[1] = 1.0;
        return 2;
      case GateType::X:
        out[0] = 0.0;
        out[1] = 1.0;
        out[2] = 1.0;
        out[3] = 0.0;
        return 2;
      case GateType::Y:
        out[0] = 0.0;
        out[1] = -kI;
        out[2] = kI;
        out[3] = 0.0;
        return 2;
      case GateType::Z:
        out[0] = 1.0;
        out[1] = -1.0;
        return 2;
      case GateType::H: {
        double r = 1.0 / std::sqrt(2.0);
        out[0] = r;
        out[1] = r;
        out[2] = r;
        out[3] = -r;
        return 2;
      }
      case GateType::S:
        out[0] = 1.0;
        out[1] = kI;
        return 2;
      case GateType::SDG:
        out[0] = 1.0;
        out[1] = -kI;
        return 2;
      case GateType::T:
        out[0] = 1.0;
        out[1] = std::exp(kI * (kPi / 4.0));
        return 2;
      case GateType::TDG:
        out[0] = 1.0;
        out[1] = std::exp(-kI * (kPi / 4.0));
        return 2;
      case GateType::SX: {
        // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
        Complex a(0.5, 0.5), b(0.5, -0.5);
        out[0] = a;
        out[1] = b;
        out[2] = b;
        out[3] = a;
        return 2;
      }
      case GateType::RX: {
        double c = std::cos(angles[0] / 2.0);
        double s = std::sin(angles[0] / 2.0);
        out[0] = c;
        out[1] = -kI * s;
        out[2] = -kI * s;
        out[3] = c;
        return 2;
      }
      case GateType::RY: {
        double c = std::cos(angles[0] / 2.0);
        double s = std::sin(angles[0] / 2.0);
        out[0] = c;
        out[1] = -s;
        out[2] = s;
        out[3] = c;
        return 2;
      }
      case GateType::RZ:
        out[0] = std::exp(-kI * (angles[0] / 2.0));
        out[1] = std::exp(kI * (angles[0] / 2.0));
        return 2;
      case GateType::U3: {
        // U3(theta, phi, lambda) = RZ(phi) RY(theta) RZ(lambda) up to
        // global phase; OpenQASM convention with u3(0,0,0) == I.
        double c = std::cos(angles[0] / 2.0);
        double s = std::sin(angles[0] / 2.0);
        out[0] = c;
        out[1] = -std::exp(kI * angles[2]) * s;
        out[2] = std::exp(kI * angles[1]) * s;
        out[3] = std::exp(kI * (angles[1] + angles[2])) * c;
        return 2;
      }
      case GateType::CX:
        // Sub-index j = control + 2*target: control set flips target.
        // j=1 (c=1,t=0) <-> j=3 (c=1,t=1).
        std::fill(out, out + 16, Complex(0, 0));
        out[0 * 4 + 0] = 1.0;
        out[2 * 4 + 2] = 1.0;
        out[1 * 4 + 3] = 1.0;
        out[3 * 4 + 1] = 1.0;
        return 4;
      case GateType::CZ:
        out[0] = 1.0;
        out[1] = 1.0;
        out[2] = 1.0;
        out[3] = -1.0;
        return 4;
      case GateType::SWAP:
        std::fill(out, out + 16, Complex(0, 0));
        out[0 * 4 + 0] = 1.0;
        out[3 * 4 + 3] = 1.0;
        out[1 * 4 + 2] = 1.0;
        out[2 * 4 + 1] = 1.0;
        return 4;
      case GateType::RZZ: {
        // exp(-i theta/2 Z(x)Z): diagonal phases by parity of the bits.
        Complex em = std::exp(-kI * (angles[0] / 2.0));
        Complex ep = std::exp(kI * (angles[0] / 2.0));
        out[0] = em;
        out[1] = ep;
        out[2] = ep;
        out[3] = em;
        return 4;
      }
      case GateType::MEASURE:
      case GateType::BARRIER:
        panic("gateEntries: " + gateName(type) + " has no unitary");
    }
    panic("gateEntries: unknown gate type");
}

CMatrix
gateMatrix(GateType type, const std::vector<double> &params)
{
    int want = gateParamCount(type);
    if (static_cast<int>(params.size()) != want)
        panic("gateMatrix: wrong parameter count for gate " +
              gateName(type));
    Complex entries[16];
    int sub = gateEntries(type, params.data(), entries);
    CMatrix m(sub, sub);
    if (isDiagonalGate(type)) {
        for (int j = 0; j < sub; ++j)
            m(j, j) = entries[j];
    } else {
        for (int r = 0; r < sub; ++r)
            for (int c = 0; c < sub; ++c)
                m(r, c) = entries[r * sub + c];
    }
    return m;
}

bool
isBasisGate(GateType type)
{
    switch (type) {
      case GateType::CX:
      case GateType::ID:
      case GateType::RZ:
      case GateType::SX:
      case GateType::X:
      case GateType::MEASURE:
      case GateType::BARRIER:
        return true;
      default:
        return false;
    }
}

bool
isVirtualGate(GateType type)
{
    return type == GateType::RZ || type == GateType::BARRIER;
}

} // namespace eqc
