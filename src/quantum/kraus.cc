#include "quantum/kraus.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "quantum/gates.h"

namespace eqc {

bool
KrausChannel::isCPTP(double tol) const
{
    if (ops.empty())
        return false;
    std::size_t dim = ops.front().rows();
    CMatrix acc(dim, dim);
    for (const CMatrix &k : ops)
        acc = acc + k.dagger() * k;
    return acc.distance(CMatrix::identity(dim)) <
           tol * static_cast<double>(dim);
}

KrausChannel
KrausChannel::composeWith(const KrausChannel &after) const
{
    if (after.arity != arity)
        panic("KrausChannel::composeWith: arity mismatch");
    KrausChannel out;
    out.arity = arity;
    for (const CMatrix &b : after.ops)
        for (const CMatrix &a : ops)
            out.ops.push_back(b * a);
    return out;
}

const CVector &
KrausChannel::superopMatrix() const
{
    if (superop_.empty() && !ops.empty()) {
        const std::size_t sub = ops.front().rows();
        const std::size_t dim = sub * sub;
        superop_.assign(dim * dim, Complex(0, 0));
        for (const CMatrix &k : ops) {
            for (std::size_t rp = 0; rp < sub; ++rp)
                for (std::size_t sp = 0; sp < sub; ++sp)
                    for (std::size_t r = 0; r < sub; ++r)
                        for (std::size_t s = 0; s < sub; ++s) {
                            const std::size_t vp = rp + sub * sp;
                            const std::size_t v = r + sub * s;
                            superop_[vp * dim + v] +=
                                k(rp, r) * std::conj(k(sp, s));
                        }
        }
    }
    return superop_;
}

KrausChannel
depolarizing1q(double lambda)
{
    if (lambda < 0.0)
        lambda = 0.0;
    KrausChannel ch;
    ch.arity = 1;
    double pId = 1.0 - 3.0 * lambda / 4.0;
    double pP = lambda / 4.0;
    ch.ops.push_back(CMatrix::identity(2) * Complex(std::sqrt(pId), 0));
    if (pP > 0.0) {
        ch.ops.push_back(gateMatrix(GateType::X) *
                         Complex(std::sqrt(pP), 0));
        ch.ops.push_back(gateMatrix(GateType::Y) *
                         Complex(std::sqrt(pP), 0));
        ch.ops.push_back(gateMatrix(GateType::Z) *
                         Complex(std::sqrt(pP), 0));
    }
    return ch;
}

KrausChannel
depolarizing2q(double lambda)
{
    if (lambda < 0.0)
        lambda = 0.0;
    KrausChannel ch;
    ch.arity = 2;
    double pId = 1.0 - 15.0 * lambda / 16.0;
    double pP = lambda / 16.0;
    const CMatrix paulis[4] = {
        CMatrix::identity(2),
        gateMatrix(GateType::X),
        gateMatrix(GateType::Y),
        gateMatrix(GateType::Z),
    };
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            double w = (a == 0 && b == 0) ? pId : pP;
            if (w <= 0.0)
                continue;
            // Sub-index bit 0 = first qubit: kron(second, first).
            ch.ops.push_back(paulis[b].kron(paulis[a]) *
                             Complex(std::sqrt(w), 0));
        }
    }
    return ch;
}

KrausChannel
amplitudeDamping(double gamma)
{
    gamma = std::clamp(gamma, 0.0, 1.0);
    KrausChannel ch;
    ch.arity = 1;
    ch.ops.push_back(
        CMatrix(2, 2, {1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)}));
    if (gamma > 0.0)
        ch.ops.push_back(CMatrix(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0}));
    return ch;
}

KrausChannel
phaseDamping(double lambda)
{
    lambda = std::clamp(lambda, 0.0, 1.0);
    KrausChannel ch;
    ch.arity = 1;
    ch.ops.push_back(
        CMatrix(2, 2, {1.0, 0.0, 0.0, std::sqrt(1.0 - lambda)}));
    if (lambda > 0.0)
        ch.ops.push_back(
            CMatrix(2, 2, {0.0, 0.0, 0.0, std::sqrt(lambda)}));
    return ch;
}

KrausChannel
thermalRelaxation(double t1Us, double t2Us, double timeUs)
{
    if (t1Us <= 0.0 || t2Us <= 0.0)
        panic("thermalRelaxation: T1/T2 must be positive");
    // Physically T2 <= 2*T1; clamp silently (calibration jitter can
    // produce slight violations).
    t2Us = std::min(t2Us, 2.0 * t1Us);
    double gamma = 1.0 - std::exp(-timeUs / t1Us);
    // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1). Phase damping with
    // parameter l scales coherences by sqrt(1-l), and amplitude damping
    // already contributes exp(-t/(2 T1)); choosing l = 1 - exp(-2 t/Tphi)
    // makes the combined coherence decay exactly exp(-t/T2).
    double invTphi = 1.0 / t2Us - 1.0 / (2.0 * t1Us);
    double lambda = invTphi > 0.0
                        ? 1.0 - std::exp(-2.0 * timeUs * invTphi)
                        : 0.0;
    return amplitudeDamping(gamma).composeWith(phaseDamping(lambda));
}

void
applyReadoutError(std::vector<double> &probs, int qubit,
                  const ReadoutError &err)
{
    const std::size_t dim = probs.size();
    const std::size_t step = std::size_t{1} << qubit;
    if (step >= dim)
        panic("applyReadoutError: qubit out of range");
    for (std::size_t base = 0; base < dim; base += 2 * step) {
        for (std::size_t off = 0; off < step; ++off) {
            std::size_t i0 = base + off;
            std::size_t i1 = i0 + step;
            double p0 = probs[i0], p1 = probs[i1];
            probs[i0] = (1.0 - err.p01) * p0 + err.p10 * p1;
            probs[i1] = err.p01 * p0 + (1.0 - err.p10) * p1;
        }
    }
}

void
applyReadoutMitigation(std::vector<double> &probs, int qubit,
                       const ReadoutError &err)
{
    const std::size_t dim = probs.size();
    const std::size_t step = std::size_t{1} << qubit;
    if (step >= dim)
        panic("applyReadoutMitigation: qubit out of range");
    double det = 1.0 - err.p01 - err.p10;
    if (det < 0.1)
        panic("applyReadoutMitigation: confusion matrix near-singular");
    // Inverse of [[1-p01, p10], [p01, 1-p10]].
    double a = (1.0 - err.p10) / det, b = -err.p10 / det;
    double c = -err.p01 / det, d = (1.0 - err.p01) / det;
    for (std::size_t base = 0; base < dim; base += 2 * step) {
        for (std::size_t off = 0; off < step; ++off) {
            std::size_t i0 = base + off;
            std::size_t i1 = i0 + step;
            double p0 = probs[i0], p1 = probs[i1];
            probs[i0] = a * p0 + b * p1;
            probs[i1] = c * p0 + d * p1;
        }
    }
}

} // namespace eqc
