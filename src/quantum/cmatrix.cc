#include "quantum/cmatrix.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0))
{
}

CMatrix::CMatrix(std::size_t rows, std::size_t cols,
                 std::initializer_list<Complex> values)
    : rows_(rows), cols_(cols), data_(values)
{
    if (data_.size() != rows * cols)
        panic("CMatrix: initializer size does not match shape");
}

CMatrix
CMatrix::identity(std::size_t n)
{
    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Complex &
CMatrix::operator()(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

Complex
CMatrix::operator()(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

CMatrix
CMatrix::operator*(const CMatrix &rhs) const
{
    if (cols_ != rhs.rows_)
        panic("CMatrix::operator*: shape mismatch");
    CMatrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            Complex a = (*this)(i, k);
            if (a == Complex(0.0, 0.0))
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

CMatrix
CMatrix::operator+(const CMatrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        panic("CMatrix::operator+: shape mismatch");
    CMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

CMatrix
CMatrix::operator*(Complex s) const
{
    CMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * s;
    return out;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

CMatrix
CMatrix::conjugate() const
{
    CMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = std::conj(data_[i]);
    return out;
}

CMatrix
CMatrix::kron(const CMatrix &rhs) const
{
    CMatrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (std::size_t r1 = 0; r1 < rows_; ++r1)
        for (std::size_t c1 = 0; c1 < cols_; ++c1) {
            Complex a = (*this)(r1, c1);
            if (a == Complex(0.0, 0.0))
                continue;
            for (std::size_t r2 = 0; r2 < rhs.rows_; ++r2)
                for (std::size_t c2 = 0; c2 < rhs.cols_; ++c2)
                    out(r1 * rhs.rows_ + r2, c1 * rhs.cols_ + c2) =
                        a * rhs(r2, c2);
        }
    return out;
}

CVector
CMatrix::apply(const CVector &v) const
{
    if (v.size() != cols_)
        panic("CMatrix::apply: vector length mismatch");
    CVector out(rows_, Complex(0.0, 0.0));
    for (std::size_t r = 0; r < rows_; ++r) {
        Complex acc(0.0, 0.0);
        for (std::size_t c = 0; c < cols_; ++c)
            acc += (*this)(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

Complex
CMatrix::trace() const
{
    if (rows_ != cols_)
        panic("CMatrix::trace: matrix not square");
    Complex t(0.0, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
CMatrix::distance(const CMatrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        panic("CMatrix::distance: shape mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        s += std::norm(data_[i] - rhs.data_[i]);
    return std::sqrt(s);
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    CMatrix prod = dagger() * (*this);
    return prod.distance(identity(rows_)) < tol * static_cast<double>(rows_);
}

bool
CMatrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return distance(dagger()) < tol * static_cast<double>(rows_);
}

bool
CMatrix::equalsUpToPhase(const CMatrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    // Find the largest-magnitude entry of *this and derive the phase.
    std::size_t best = 0;
    double bestMag = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i]) > bestMag) {
            bestMag = std::abs(data_[i]);
            best = i;
        }
    }
    if (bestMag < tol)
        return distance(rhs) < tol;
    if (std::abs(rhs.data_[best]) < tol)
        return false;
    Complex phase = rhs.data_[best] / data_[best];
    double mag = std::abs(phase);
    if (std::fabs(mag - 1.0) > tol)
        return false;
    return ((*this) * phase).distance(rhs) < tol * std::sqrt(
        static_cast<double>(data_.size()));
}

} // namespace eqc
