/**
 * @file
 * Shared gather/scatter kernel applying a k-qubit linear operator to a
 * dense amplitude vector. Used by both the state-vector simulator (on a
 * 2^n vector) and the density-matrix simulator (on a 4^n vectorized rho,
 * where ket and bra indices act as two banks of n qubits each).
 */

#ifndef EQC_QUANTUM_KERNEL_H
#define EQC_QUANTUM_KERNEL_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "quantum/cmatrix.h"

namespace eqc {
namespace detail {

/**
 * Apply a 2^k x 2^k operator to @p amp over bit positions @p qubits.
 * Sub-index bit m of the operator corresponds to qubits[m]. The operator
 * need not be unitary (Kraus operators are applied this way too).
 */
inline void
applyOperatorKernel(CVector &amp, uint64_t dim, const CMatrix &u,
                    const std::vector<int> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t sub = std::size_t{1} << k;
    if (u.rows() != sub || u.cols() != sub)
        panic("applyOperatorKernel: matrix does not match qubit count");

    if (k == 1) {
        const uint64_t step = uint64_t{1} << qubits[0];
        const Complex u00 = u(0, 0), u01 = u(0, 1);
        const Complex u10 = u(1, 0), u11 = u(1, 1);
        for (uint64_t base = 0; base < dim; base += 2 * step) {
            for (uint64_t off = 0; off < step; ++off) {
                uint64_t i0 = base + off;
                uint64_t i1 = i0 + step;
                Complex a0 = amp[i0], a1 = amp[i1];
                amp[i0] = u00 * a0 + u01 * a1;
                amp[i1] = u10 * a0 + u11 * a1;
            }
        }
        return;
    }

    std::vector<uint64_t> masks(k);
    for (std::size_t m = 0; m < k; ++m)
        masks[m] = uint64_t{1} << qubits[m];
    uint64_t targetMask = 0;
    for (uint64_t m : masks)
        targetMask |= m;

    std::vector<Complex> gathered(sub);
    for (uint64_t i = 0; i < dim; ++i) {
        if (i & targetMask)
            continue;
        for (std::size_t j = 0; j < sub; ++j) {
            uint64_t idx = i;
            for (std::size_t m = 0; m < k; ++m)
                if (j & (std::size_t{1} << m))
                    idx |= masks[m];
            gathered[j] = amp[idx];
        }
        for (std::size_t r = 0; r < sub; ++r) {
            Complex acc(0, 0);
            for (std::size_t c = 0; c < sub; ++c)
                acc += u(r, c) * gathered[c];
            uint64_t idx = i;
            for (std::size_t m = 0; m < k; ++m)
                if (r & (std::size_t{1} << m))
                    idx |= masks[m];
            amp[idx] = acc;
        }
    }
}

} // namespace detail
} // namespace eqc

#endif // EQC_QUANTUM_KERNEL_H
