/**
 * @file
 * Simulation kernels applying k-qubit linear operators to dense
 * amplitude vectors. Used by both the state-vector simulator (on a
 * 2^n vector) and the density-matrix simulator (on a 4^n vectorized rho,
 * where ket and bra indices act as two banks of n qubits each).
 *
 * Two layers live here:
 *  - applyOperatorKernel: the original skip-scan implementation, kept as
 *    the *reference* the randomized equivalence tests compare against.
 *  - the fast kernels (kernel.cc): block-enumeration over the dim >> k
 *    anchor indices via bit-deposit, hand-unrolled k=1/k=2 paths, a
 *    diagonal path for phase-type gates, fused superoperator/Kraus
 *    application for density matrices, and optional block-parallel
 *    sharding through a TaskPool. Blocks are disjoint, so results are
 *    bit-identical for every thread count.
 */

#ifndef EQC_QUANTUM_KERNEL_H
#define EQC_QUANTUM_KERNEL_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/task_pool.h"
#include "quantum/cmatrix.h"

namespace eqc {
namespace detail {

/**
 * Reference implementation: apply a 2^k x 2^k operator to @p amp over
 * bit positions @p qubits by scanning all @p dim indices and skipping
 * non-anchors. Sub-index bit m of the operator corresponds to
 * qubits[m]. The operator need not be unitary (Kraus operators are
 * applied this way too).
 *
 * Superseded by the block-enumeration kernels below on every hot path;
 * retained unchanged as the ground truth for tests/test_kernel.cc and
 * as the fallback for arities the unrolled kernels do not cover.
 */
inline void
applyOperatorKernel(CVector &amp, uint64_t dim, const CMatrix &u,
                    const std::vector<int> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t sub = std::size_t{1} << k;
    if (u.rows() != sub || u.cols() != sub)
        panic("applyOperatorKernel: matrix does not match qubit count");

    if (k == 1) {
        const uint64_t step = uint64_t{1} << qubits[0];
        const Complex u00 = u(0, 0), u01 = u(0, 1);
        const Complex u10 = u(1, 0), u11 = u(1, 1);
        for (uint64_t base = 0; base < dim; base += 2 * step) {
            for (uint64_t off = 0; off < step; ++off) {
                uint64_t i0 = base + off;
                uint64_t i1 = i0 + step;
                Complex a0 = amp[i0], a1 = amp[i1];
                amp[i0] = u00 * a0 + u01 * a1;
                amp[i1] = u10 * a0 + u11 * a1;
            }
        }
        return;
    }

    std::vector<uint64_t> masks(k);
    for (std::size_t m = 0; m < k; ++m)
        masks[m] = uint64_t{1} << qubits[m];
    uint64_t targetMask = 0;
    for (uint64_t m : masks)
        targetMask |= m;

    std::vector<Complex> gathered(sub);
    for (uint64_t i = 0; i < dim; ++i) {
        if (i & targetMask)
            continue;
        for (std::size_t j = 0; j < sub; ++j) {
            uint64_t idx = i;
            for (std::size_t m = 0; m < k; ++m)
                if (j & (std::size_t{1} << m))
                    idx |= masks[m];
            gathered[j] = amp[idx];
        }
        for (std::size_t r = 0; r < sub; ++r) {
            Complex acc(0, 0);
            for (std::size_t c = 0; c < sub; ++c)
                acc += u(r, c) * gathered[c];
            uint64_t idx = i;
            for (std::size_t m = 0; m < k; ++m)
                if (r & (std::size_t{1} << m))
                    idx |= masks[m];
            amp[idx] = acc;
        }
    }
}

/**
 * Minimum anchor-block count before an apply is sharded across the
 * pool; below this the fork/join overhead dominates the kernel body.
 */
constexpr uint64_t kMinBlocksParallel = uint64_t{1} << 15;

/**
 * Run @p rangeFn over block range [0, nBlocks): sharded through @p pool
 * when the range is large enough, inline otherwise. Blocks must write
 * disjoint memory, which also makes the result thread-count-invariant.
 *
 * @p rangeFn must be a small forwarding callable whose captures are BY
 * VALUE and whose body immediately calls a standalone worker function
 * with plain arguments. Keeping the hot loop out of the callable
 * matters: the callable's closure escapes into a std::function on the
 * pool path, and a hot loop compiled inside it loses alias analysis
 * (captured operands get reloaded from the closure every iteration).
 */
template <typename RangeFn>
inline void
shardBlocks(TaskPool *pool, uint64_t nBlocks, const RangeFn &rangeFn)
{
    if (pool && pool->threadCount() > 1 && nBlocks >= kMinBlocksParallel)
        pool->parallelFor(0, nBlocks, rangeFn);
    else
        rangeFn(0, nBlocks);
}

/** Insert a zero bit: @p lowMask covers the positions below it. */
inline uint64_t
depositZeroBit(uint64_t v, uint64_t lowMask)
{
    return ((v & ~lowMask) << 1) | (v & lowMask);
}

/**
 * Enumerate the anchor indices of block range [b, e) as *contiguous
 * runs*: anchors share their low bits below the lowest target position,
 * so the bit-deposit over @p lowMasks (NMASK entries, ascending;
 * lowMasks[m] = (1 << position_m) - 1) is only needed at run starts and
 * the per-element inner loop stays unit-stride — which is what lets the
 * compiler vectorize the complex arithmetic. Serial: call from inside a
 * worker function (see shardBlocks) with a non-escaping @p process
 * lambda, invoked as process(anchorStart, runLength).
 */
template <int NMASK, typename Process>
inline void
forAnchorRuns(uint64_t b, uint64_t e, const uint64_t *lowMasks,
              const Process &process)
{
    const uint64_t runCap = lowMasks[0] + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t i = t - lo;
        for (int m = 0; m < NMASK; ++m)
            i = depositZeroBit(i, lowMasks[m]);
        const uint64_t run = std::min(runCap - lo, e - t);
        process(i + lo, run);
        t += run;
    }
}

/**
 * Reusable scratch for the general-k kernel. Callers keep one instance
 * alive across calls so no kernel invocation allocates after warm-up.
 */
struct KernelScratch
{
    std::vector<Complex> gathered;
    std::vector<uint64_t> masks;
    std::vector<uint64_t> lowMasks;
    std::vector<uint64_t> offsets;
};

/// @name Amplitude-bank fast paths (state vector, or one bank of rho)
/// All enumerate the dim >> k anchor indices directly via bit-deposit;
/// @p pool (nullable) shards anchor ranges across threads when the
/// block count is large enough.
/// @{

/**
 * A permutation-phase gate action: output sub-index r takes
 * phase[r] * (input at sub-index perm[r]). X, CX, SWAP, CZ and every
 * other basis-permuting gate has this form, and applying it is pure
 * data movement (times a phase) instead of a dense matrix multiply.
 */
struct PermPhase
{
    int perm[4];
    Complex phase[4];
    /** All phases exactly 1 (CX/SWAP/X): no multiplies at all. */
    bool unitPhases = false;
};

/**
 * Detect a permutation-phase matrix: every row holds exactly one
 * nonzero entry. Fills @p out and returns true on match.
 */
bool isPermPhase(const Complex *u, int sub, PermPhase &out);

/** How a gate's matrix structure maps onto the fast apply paths. */
enum class GateKind {
    Diagonal,  ///< off-diagonals all zero: elementwise multiply
    PermPhase, ///< one nonzero per row: index shuffle (+ phases)
    General,   ///< dense matrix apply
};

/**
 * Classify a row-major sub x sub matrix (@p sub is 2 or 4) for
 * dispatch. On Diagonal the diagonal is written to @p diag (sub
 * entries); on PermPhase @p pp is filled. Shared by the statevector
 * and density-matrix apply fronts so they can never diverge.
 */
GateKind classifyGate(const Complex *u, int sub, Complex *diag,
                      PermPhase &pp);

/** 1q general gate; @p u is row-major {u00, u01, u10, u11}. */
void applyGate1(Complex *amp, uint64_t dim, const Complex *u, int qubit,
                TaskPool *pool);

/** 1q diagonal gate diag(d0, d1): a pure elementwise multiply. */
void applyDiag1(Complex *amp, uint64_t dim, Complex d0, Complex d1,
                int qubit, TaskPool *pool);

/**
 * 2q general gate; @p u is row-major 4x4, sub-index bit 0 corresponds
 * to @p q0 and bit 1 to @p q1 (the gateMatrix convention).
 */
void applyGate2(Complex *amp, uint64_t dim, const Complex *u, int q0,
                int q1, TaskPool *pool);

/** 2q diagonal gate diag(d[0..3]) over the same sub-index convention. */
void applyDiag2(Complex *amp, uint64_t dim, const Complex *d, int q0,
                int q1, TaskPool *pool);

/** 1q permutation-phase gate (X-like: perm must be {1, 0}). */
void applyPermPhase1(Complex *amp, uint64_t dim, const PermPhase &pp,
                     int qubit, TaskPool *pool);

/** 2q permutation-phase gate (CX/SWAP and friends). */
void applyPermPhase2(Complex *amp, uint64_t dim, const PermPhase &pp,
                     int q0, int q1, TaskPool *pool);

/**
 * General k-qubit operator via block enumeration with caller-provided
 * scratch (serial; every basis gate is covered by the unrolled paths).
 */
void applyGateK(Complex *amp, uint64_t dim, const CMatrix &u,
                const int *qubits, int k, KernelScratch &scratch);

/// @}

/// @name Fused density-matrix superoperators
/// rho is the 4^n vectorization (index = row + 2^n * col); each routine
/// applies U rho U^dagger (or the Kraus sum) to every (ket, bra) block
/// in a single pass, instead of one ket-bank pass plus one conjugate
/// bra-bank pass over the full vector.
/// @{

/** 1q unitary: U (x) conj(U) on each 4-element block. */
void applySuperop1(Complex *rho, int numQubits, const Complex *u,
                   int qubit, TaskPool *pool);

/** 1q diagonal unitary diag(d[0..1]): elementwise phase factors. */
void applySuperopDiag1(Complex *rho, int numQubits, const Complex *d,
                       int qubit, TaskPool *pool);

/** 2q unitary on each 16-element block. */
void applySuperop2(Complex *rho, int numQubits, const Complex *u, int q0,
                   int q1, TaskPool *pool);

/** 2q diagonal unitary diag(d[0..3]). */
void applySuperopDiag2(Complex *rho, int numQubits, const Complex *d,
                       int q0, int q1, TaskPool *pool);

/**
 * 1q permutation-phase unitary: each block entry (r, s) moves to
 * (perm r, perm s) with factor phase[r] * conj(phase[s]) — no matrix
 * arithmetic, and a pure index shuffle for unit phases (X).
 */
void applySuperopPerm1(Complex *rho, int numQubits, const PermPhase &pp,
                       int qubit, TaskPool *pool);

/** 2q permutation-phase unitary (CX/SWAP: a pure 16-element shuffle). */
void applySuperopPerm2(Complex *rho, int numQubits, const PermPhase &pp,
                       int q0, int q1, TaskPool *pool);

/**
 * Apply a precomputed 4x4 channel superoperator to every 4-element
 * (ket, bra) block of a 1q channel; @p s is row-major over the
 * vectorized sub-index j = ketBit + 2 braBit. One pass for a whole
 * composed gate + noise sequence (see SimulatedQpu::execute).
 */
void applySuperopMat1(Complex *rho, int numQubits, const Complex *s,
                      int qubit, TaskPool *pool);

/**
 * Apply a precomputed 16x16 channel superoperator to every 16-element
 * (ket, bra) block of a 2q channel: one 16-dim mat-vec per block
 * instead of one K b K^dagger triple product per Kraus operator (16
 * flops/element instead of 8 * numOps — an 8x cut for the 16-operator
 * depolarizing channel). Vector index v = ketSub + 4 * braSub; @p S is
 * row-major S[v'][v] = sum_k K_k[r', r] conj(K_k[s', s]).
 * (1q channels reuse applyGate2 on the 4x4 superoperator via the ket
 * and bra bit positions directly.)
 */
void applySuperopMat2(Complex *rho, int numQubits, const Complex *S,
                      int q0, int q1, TaskPool *pool);

/// @}

} // namespace detail
} // namespace eqc

#endif // EQC_QUANTUM_KERNEL_H
