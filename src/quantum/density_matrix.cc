#include "quantum/density_matrix.h"

#include <cmath>

#include "common/logging.h"
#include "quantum/kernel.h"
#include "quantum/pauli.h"
#include "quantum/statevector.h"

namespace eqc {

DensityMatrix::DensityMatrix(int numQubits)
    : numQubits_(numQubits),
      rho_(uint64_t{1} << (2 * numQubits), Complex(0, 0))
{
    if (numQubits < 1 || numQubits > 13)
        fatal("DensityMatrix: qubit count out of supported range [1,13]");
    rho_[0] = 1.0;
}

DensityMatrix
DensityMatrix::fromStatevector(const Statevector &sv)
{
    DensityMatrix dm(sv.numQubits());
    uint64_t d = dm.dim();
    for (uint64_t r = 0; r < d; ++r)
        for (uint64_t c = 0; c < d; ++c)
            dm.rho_[r + d * c] =
                sv.amplitude(r) * std::conj(sv.amplitude(c));
    return dm;
}

void
DensityMatrix::reset()
{
    std::fill(rho_.begin(), rho_.end(), Complex(0, 0));
    rho_[0] = 1.0;
}

void
DensityMatrix::applyUnitary(const CMatrix &u, const std::vector<int> &qubits)
{
    for (int q : qubits)
        if (q < 0 || q >= numQubits_)
            panic("DensityMatrix::applyUnitary: qubit out of range");
    const uint64_t full = uint64_t{1} << (2 * numQubits_);
    // Ket bank.
    detail::applyOperatorKernel(rho_, full, u, qubits);
    // Bra bank: conj(U) on the column bits.
    std::vector<int> bra(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
        bra[i] = qubits[i] + numQubits_;
    detail::applyOperatorKernel(rho_, full, u.conjugate(), bra);
}

void
DensityMatrix::applyChannel(const KrausChannel &ch,
                            const std::vector<int> &qubits)
{
    if (static_cast<int>(qubits.size()) != ch.arity)
        panic("DensityMatrix::applyChannel: arity mismatch");
    if (ch.ops.size() == 1) {
        // Single Kraus operator: apply in place (may be non-unitary).
        const uint64_t full = uint64_t{1} << (2 * numQubits_);
        std::vector<int> bra(qubits.size());
        for (std::size_t i = 0; i < qubits.size(); ++i)
            bra[i] = qubits[i] + numQubits_;
        detail::applyOperatorKernel(rho_, full, ch.ops[0], qubits);
        detail::applyOperatorKernel(rho_, full, ch.ops[0].conjugate(), bra);
        return;
    }
    const uint64_t full = uint64_t{1} << (2 * numQubits_);
    std::vector<int> bra(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
        bra[i] = qubits[i] + numQubits_;
    CVector acc(rho_.size(), Complex(0, 0));
    for (const CMatrix &k : ch.ops) {
        CVector tmp = rho_;
        detail::applyOperatorKernel(tmp, full, k, qubits);
        detail::applyOperatorKernel(tmp, full, k.conjugate(), bra);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += tmp[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::applyDepolarizing1q(double lambda, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyDepolarizing1q: qubit out of range");
    if (lambda <= 0.0)
        return;
    const uint64_t d = dim();
    const uint64_t kBit = uint64_t{1} << qubit;           // ket bank
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_); // bra bank
    const double keep = 1.0 - lambda;
    const uint64_t full = d * d;
    for (uint64_t i = 0; i < full; ++i) {
        if (i & (kBit | bBit))
            continue; // enumerate block anchors only
        // Block elements: (ket bit, bra bit) in {0,1}^2.
        uint64_t i00 = i;
        uint64_t i10 = i | kBit;
        uint64_t i01 = i | bBit;
        uint64_t i11 = i | kBit | bBit;
        Complex d0 = rho_[i00], d1 = rho_[i11];
        Complex avg = 0.5 * (d0 + d1);
        rho_[i00] = keep * d0 + lambda * avg;
        rho_[i11] = keep * d1 + lambda * avg;
        rho_[i10] *= keep;
        rho_[i01] *= keep;
    }
}

void
DensityMatrix::applyDepolarizing2q(double lambda, int qubitA, int qubitB)
{
    if (qubitA < 0 || qubitB < 0 || qubitA >= numQubits_ ||
        qubitB >= numQubits_ || qubitA == qubitB) {
        panic("applyDepolarizing2q: invalid qubits");
    }
    if (lambda <= 0.0)
        return;
    const uint64_t d = dim();
    const uint64_t kA = uint64_t{1} << qubitA;
    const uint64_t kB = uint64_t{1} << qubitB;
    const uint64_t bA = uint64_t{1} << (qubitA + numQubits_);
    const uint64_t bB = uint64_t{1} << (qubitB + numQubits_);
    const uint64_t blockMask = kA | kB | bA | bB;
    const double keep = 1.0 - lambda;
    const uint64_t full = d * d;
    for (uint64_t i = 0; i < full; ++i) {
        if (i & blockMask)
            continue;
        // Gather the 4x4 sub-block over (ket sub-index, bra sub-index).
        uint64_t idx[4][4];
        for (int ks = 0; ks < 4; ++ks) {
            for (int bs = 0; bs < 4; ++bs) {
                uint64_t j = i;
                if (ks & 1)
                    j |= kA;
                if (ks & 2)
                    j |= kB;
                if (bs & 1)
                    j |= bA;
                if (bs & 2)
                    j |= bB;
                idx[ks][bs] = j;
            }
        }
        Complex tr(0, 0);
        for (int s = 0; s < 4; ++s)
            tr += rho_[idx[s][s]];
        Complex mix = 0.25 * lambda * tr;
        for (int ks = 0; ks < 4; ++ks) {
            for (int bs = 0; bs < 4; ++bs) {
                Complex &v = rho_[idx[ks][bs]];
                v *= keep;
                if (ks == bs)
                    v += mix;
            }
        }
    }
}

void
DensityMatrix::applyThermalRelaxation(int qubit, double gamma,
                                      double coherence)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyThermalRelaxation: qubit out of range");
    const uint64_t d = dim();
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t full = d * d;
    const double keepPop = 1.0 - gamma;
    for (uint64_t i = 0; i < full; ++i) {
        if (i & (kBit | bBit))
            continue;
        uint64_t i00 = i;
        uint64_t i10 = i | kBit;
        uint64_t i01 = i | bBit;
        uint64_t i11 = i | kBit | bBit;
        rho_[i00] += gamma * rho_[i11];
        rho_[i11] *= keepPop;
        rho_[i10] *= coherence;
        rho_[i01] *= coherence;
    }
}

Complex
DensityMatrix::element(uint64_t row, uint64_t col) const
{
    return rho_[row + dim() * col];
}

std::vector<double>
DensityMatrix::probabilities() const
{
    const uint64_t d = dim();
    std::vector<double> p(d);
    for (uint64_t b = 0; b < d; ++b)
        p[b] = std::max(0.0, rho_[b + d * b].real());
    return p;
}

double
DensityMatrix::expectation(const PauliString &pauli) const
{
    // Tr(P rho) = sum_c lambda(c) <c| rho |c ^ xmask>.
    const uint64_t xmask = pauli.xMask();
    const uint64_t zmask = pauli.zMask();
    const int yCount =
        static_cast<int>(__builtin_popcountll(xmask & zmask));
    static const Complex iPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Complex global = iPow[yCount & 3];
    const uint64_t d = dim();
    Complex acc(0, 0);
    for (uint64_t c = 0; c < d; ++c) {
        int par = __builtin_popcountll(c & zmask) & 1;
        Complex lambda = par ? -global : global;
        acc += lambda * rho_[c + d * (c ^ xmask)];
    }
    return acc.real();
}

double
DensityMatrix::trace() const
{
    const uint64_t d = dim();
    double t = 0.0;
    for (uint64_t b = 0; b < d; ++b)
        t += rho_[b + d * b].real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho[r,c] * rho[c,r] = sum |rho[r,c]|^2 for
    // Hermitian rho.
    double s = 0.0;
    for (const Complex &v : rho_)
        s += std::norm(v);
    return s;
}

} // namespace eqc
