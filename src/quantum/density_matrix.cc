#include "quantum/density_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/task_pool.h"
#include "quantum/kernel.h"
#include "quantum/pauli.h"
#include "quantum/simd_dispatch.h"
#include "quantum/statevector.h"

namespace eqc {

TaskPool *
DensityMatrix::pool() const
{
    // Resolved once per instance: TaskPool::shared()'s thread-safe
    // static guard is measurable on the small-n fast paths.
    if (!pool_)
        pool_ = &TaskPool::shared();
    return pool_;
}

DensityMatrix::DensityMatrix(int numQubits)
    : numQubits_(numQubits),
      rho_(uint64_t{1} << (2 * numQubits), Complex(0, 0))
{
    if (numQubits < 1 || numQubits > 13)
        fatal("DensityMatrix: qubit count out of supported range [1,13]");
    rho_[0] = 1.0;
}

DensityMatrix
DensityMatrix::fromStatevector(const Statevector &sv)
{
    DensityMatrix dm(sv.numQubits());
    uint64_t d = dm.dim();
    // Column-major iteration: rho_ is indexed row + dim * col, so the
    // inner loop must walk rows for unit-stride writes.
    for (uint64_t c = 0; c < d; ++c) {
        const Complex conjC = std::conj(sv.amplitude(c));
        Complex *col = dm.rho_.data() + d * c;
        for (uint64_t r = 0; r < d; ++r)
            col[r] = sv.amplitude(r) * conjC;
    }
    return dm;
}

void
DensityMatrix::reset()
{
    std::fill(rho_.begin(), rho_.end(), Complex(0, 0));
    rho_[0] = 1.0;
}

void
DensityMatrix::applyGate1(const Complex *u, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("DensityMatrix::applyGate1: qubit out of range");
    Complex d[2];
    detail::PermPhase pp;
    switch (detail::classifyGate(u, 2, d, pp)) {
      case detail::GateKind::Diagonal:
        detail::applySuperopDiag1(rho_.data(), numQubits_, d, qubit,
                                  pool());
        break;
      case detail::GateKind::PermPhase:
        detail::applySuperopPerm1(rho_.data(), numQubits_, pp, qubit,
                                  pool());
        break;
      case detail::GateKind::General:
        detail::applySuperop1(rho_.data(), numQubits_, u, qubit, pool());
        break;
    }
}

void
DensityMatrix::applyDiag1(const Complex *d, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("DensityMatrix::applyDiag1: qubit out of range");
    detail::applySuperopDiag1(rho_.data(), numQubits_, d, qubit, pool());
}

void
DensityMatrix::applyGate2(const Complex *u, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("DensityMatrix::applyGate2: invalid qubits");
    }
    Complex d[4];
    detail::PermPhase pp;
    switch (detail::classifyGate(u, 4, d, pp)) {
      case detail::GateKind::Diagonal:
        detail::applySuperopDiag2(rho_.data(), numQubits_, d, q0, q1,
                                  pool());
        break;
      case detail::GateKind::PermPhase:
        detail::applySuperopPerm2(rho_.data(), numQubits_, pp, q0, q1,
                                  pool());
        break;
      case detail::GateKind::General:
        detail::applySuperop2(rho_.data(), numQubits_, u, q0, q1, pool());
        break;
    }
}

void
DensityMatrix::applyDiag2(const Complex *d, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("DensityMatrix::applyDiag2: invalid qubits");
    }
    detail::applySuperopDiag2(rho_.data(), numQubits_, d, q0, q1, pool());
}

void
DensityMatrix::applyUnitary(const CMatrix &u, const std::vector<int> &qubits)
{
    for (int q : qubits)
        if (q < 0 || q >= numQubits_)
            panic("DensityMatrix::applyUnitary: qubit out of range");
    const std::size_t k = qubits.size();
    if (k == 1) {
        const Complex m[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
        applyGate1(m, qubits[0]);
        return;
    }
    if (k == 2) {
        Complex m[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                m[r * 4 + c] = u(r, c);
        applyGate2(m, qubits[0], qubits[1]);
        return;
    }
    // k >= 3 never occurs on hot paths; fall back to the two-pass
    // reference kernel (ket bank, then conj(U) on the bra bank).
    const uint64_t full = uint64_t{1} << (2 * numQubits_);
    detail::applyOperatorKernel(rho_, full, u, qubits);
    std::vector<int> bra(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
        bra[i] = qubits[i] + numQubits_;
    detail::applyOperatorKernel(rho_, full, u.conjugate(), bra);
}

void
DensityMatrix::applyChannel(const KrausChannel &ch,
                            const std::vector<int> &qubits)
{
    if (static_cast<int>(qubits.size()) != ch.arity)
        panic("DensityMatrix::applyChannel: arity mismatch");
    if (ch.ops.empty())
        panic("DensityMatrix::applyChannel: empty channel");
    for (int q : qubits)
        if (q < 0 || q >= numQubits_)
            panic("DensityMatrix::applyChannel: qubit out of range");
    // Fused path: gather each (ket, bra) block once and apply the
    // channel's precomputed superoperator matrix in place — no full-rho
    // copy per operator, no conjugate allocations, and a flop count
    // independent of how many Kraus operators the channel has.
    if (ch.arity == 1) {
        // The 4x4 superoperator is a 2-"qubit" gate over the ket bit
        // and the bra bit of the vectorized rho.
        detail::applyGate2(rho_.data(), uint64_t{1} << (2 * numQubits_),
                           ch.superopMatrix().data(), qubits[0],
                           qubits[0] + numQubits_, pool());
        return;
    }
    if (ch.arity == 2) {
        detail::applySuperopMat2(rho_.data(), numQubits_,
                                 ch.superopMatrix().data(), qubits[0],
                                 qubits[1], pool());
        return;
    }
    // Reference path for arities the fused kernels do not cover.
    const uint64_t full = uint64_t{1} << (2 * numQubits_);
    std::vector<int> bra(qubits.size());
    for (std::size_t i = 0; i < qubits.size(); ++i)
        bra[i] = qubits[i] + numQubits_;
    CVector acc(rho_.size(), Complex(0, 0));
    for (const CMatrix &k : ch.ops) {
        CVector tmp = rho_;
        detail::applyOperatorKernel(tmp, full, k, qubits);
        detail::applyOperatorKernel(tmp, full, k.conjugate(), bra);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += tmp[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::applyChannelSuperop1(const Complex *s, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyChannelSuperop1: qubit out of range");
    detail::applySuperopMat1(rho_.data(), numQubits_, s, qubit, pool());
}

namespace {

// Hot-loop workers for the analytic noise fast paths; see shardBlocks()
// in kernel.h for why these live outside the forwarding lambdas.

void
depolarizing1qRange(Complex *rho, uint64_t b, uint64_t e, double lambda,
                    uint64_t kBit, uint64_t bBit)
{
    const double keep = 1.0 - lambda;
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    detail::forAnchorRuns<2>(b, e, lows,
                             [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            // Block elements: (ket bit, bra bit) in {0,1}^2.
            const uint64_t i00 = start + r;
            const uint64_t i10 = i00 + kBit;
            const uint64_t i01 = i00 + bBit;
            const uint64_t i11 = i10 + bBit;
            Complex d0 = rho[i00], d1 = rho[i11];
            Complex avg = 0.5 * (d0 + d1);
            rho[i00] = keep * d0 + lambda * avg;
            rho[i11] = keep * d1 + lambda * avg;
            rho[i10] *= keep;
            rho[i01] *= keep;
        }
    });
}

void
depolarizing2qRange(Complex *rho, uint64_t b, uint64_t e, double lambda,
                    uint64_t kA, uint64_t kB, uint64_t bA, uint64_t bB)
{
    const double keep = 1.0 - lambda;
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? kA : 0) | (j & 2 ? kB : 0);
        braOff[j] = (j & 1 ? bA : 0) | (j & 2 ? bB : 0);
    }
    const uint64_t lows[4] = {
        std::min(kA, kB) - 1, std::max(kA, kB) - 1,
        std::min(bA, bB) - 1, std::max(bA, bB) - 1};
    detail::forAnchorRuns<4>(b, e, lows,
                             [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex tr(0, 0);
            for (int s = 0; s < 4; ++s)
                tr += rho[i + ketOff[s] + braOff[s]];
            Complex mix = 0.25 * lambda * tr;
            for (int ks = 0; ks < 4; ++ks) {
                for (int bs = 0; bs < 4; ++bs) {
                    Complex &v = rho[i + ketOff[ks] + braOff[bs]];
                    v *= keep;
                    if (ks == bs)
                        v += mix;
                }
            }
        }
    });
}

#ifdef EQC_KERNEL_X86_DISPATCH

/**
 * AVX2 widening of the composed depolarizing + per-qubit thermal pass:
 * two anchors per iteration, sixteen 2-complex block vectors in flight.
 * Every operation is a real scalar times a complex value (componentwise
 * multiply/add, no complex products), applied in the exact scalar
 * sequence — plain mul/add intrinsics, no FMA — so the result is
 * bit-identical to depolThermal2qRange. Requires min(kA, kB) >= 2 (the
 * qubit pair (0, 1) degenerates to length-1 runs and stays scalar).
 */
__attribute__((target("avx2"))) void
depolThermal2qRangeAvx2(Complex *rho, uint64_t b, uint64_t e,
                        double lambda, double gA, double cA, double gB,
                        double cB, uint64_t kA, uint64_t kB, uint64_t bA,
                        uint64_t bB)
{
    double *d = reinterpret_cast<double *>(rho);
    const __m256d keep = _mm256_set1_pd(1.0 - lambda);
    const __m256d keepA = _mm256_set1_pd(1.0 - gA);
    const __m256d keepB = _mm256_set1_pd(1.0 - gB);
    const __m256d mixF = _mm256_set1_pd(0.25 * lambda);
    const __m256d vgA = _mm256_set1_pd(gA);
    const __m256d vcA = _mm256_set1_pd(cA);
    const __m256d vgB = _mm256_set1_pd(gB);
    const __m256d vcB = _mm256_set1_pd(cB);
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? kA : 0) | (j & 2 ? kB : 0);
        braOff[j] = (j & 1 ? bA : 0) | (j & 2 ? bB : 0);
    }
    const uint64_t lows[4] = {
        std::min(kA, kB) - 1, std::max(kA, kB) - 1,
        std::min(bA, bB) - 1, std::max(bA, bB) - 1};
    const uint64_t runCap = lows[0] + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = t - lo;
        for (int m = 0; m < 4; ++m)
            anchor = detail::depositZeroBit(anchor, lows[m]);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        uint64_t r = 0;
        for (; r + 2 <= run; r += 2) {
            const uint64_t i = start + r;
            __m256d v[16];
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    v[ks * 4 + bs] = _mm256_loadu_pd(
                        d + 2 * (i + ketOff[ks] + braOff[bs]));
            // Depolarizing: same add order as the scalar trace sum.
            const __m256d mix = _mm256_mul_pd(
                mixF, _mm256_add_pd(
                          _mm256_add_pd(_mm256_add_pd(v[0], v[5]),
                                        v[10]),
                          v[15]));
            for (int s = 0; s < 16; ++s)
                v[s] = _mm256_mul_pd(v[s], keep);
            v[0] = _mm256_add_pd(v[0], mix);
            v[5] = _mm256_add_pd(v[5], mix);
            v[10] = _mm256_add_pd(v[10], mix);
            v[15] = _mm256_add_pd(v[15], mix);
            // Thermal relaxation on qubit A (sub-bit 0 of ket/bra).
            for (int kB2 = 0; kB2 < 2; ++kB2)
                for (int bB2 = 0; bB2 < 2; ++bB2) {
                    const int base = 2 * kB2 * 4 + 2 * bB2;
                    v[base] = _mm256_add_pd(
                        v[base], _mm256_mul_pd(vgA, v[base + 5]));
                    v[base + 5] = _mm256_mul_pd(v[base + 5], keepA);
                    v[base + 4] = _mm256_mul_pd(v[base + 4], vcA);
                    v[base + 1] = _mm256_mul_pd(v[base + 1], vcA);
                }
            // Thermal relaxation on qubit B (sub-bit 1).
            for (int kA2 = 0; kA2 < 2; ++kA2)
                for (int bA2 = 0; bA2 < 2; ++bA2) {
                    const int base = kA2 * 4 + bA2;
                    v[base] = _mm256_add_pd(
                        v[base], _mm256_mul_pd(vgB, v[base + 10]));
                    v[base + 10] = _mm256_mul_pd(v[base + 10], keepB);
                    v[base + 8] = _mm256_mul_pd(v[base + 8], vcB);
                    v[base + 2] = _mm256_mul_pd(v[base + 2], vcB);
                }
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    _mm256_storeu_pd(
                        d + 2 * (i + ketOff[ks] + braOff[bs]),
                        v[ks * 4 + bs]);
        }
        for (; r < run; ++r) {
            const uint64_t i = start + r;
            const double keepS = 1.0 - lambda;
            const double keepAS = 1.0 - gA, keepBS = 1.0 - gB;
            Complex v[16];
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    v[ks * 4 + bs] = rho[i + ketOff[ks] + braOff[bs]];
            Complex mix = 0.25 * lambda * (v[0] + v[5] + v[10] + v[15]);
            for (int s = 0; s < 16; ++s)
                v[s] *= keepS;
            v[0] += mix;
            v[5] += mix;
            v[10] += mix;
            v[15] += mix;
            for (int kB2 = 0; kB2 < 2; ++kB2)
                for (int bB2 = 0; bB2 < 2; ++bB2) {
                    const int base = 2 * kB2 * 4 + 2 * bB2;
                    v[base] += gA * v[base + 5];
                    v[base + 5] *= keepAS;
                    v[base + 4] *= cA;
                    v[base + 1] *= cA;
                }
            for (int kA2 = 0; kA2 < 2; ++kA2)
                for (int bA2 = 0; bA2 < 2; ++bA2) {
                    const int base = kA2 * 4 + bA2;
                    v[base] += gB * v[base + 10];
                    v[base + 10] *= keepBS;
                    v[base + 8] *= cB;
                    v[base + 2] *= cB;
                }
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    rho[i + ketOff[ks] + braOff[bs]] = v[ks * 4 + bs];
        }
        t += run;
    }
}

#endif // EQC_KERNEL_X86_DISPATCH

void
depolThermal2qRange(Complex *rho, uint64_t b, uint64_t e, double lambda,
                    double gA, double cA, double gB, double cB,
                    uint64_t kA, uint64_t kB, uint64_t bA, uint64_t bB)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (std::min(kA, kB) > 1 && detail::cpuHasAvx2Fma()) {
        depolThermal2qRangeAvx2(rho, b, e, lambda, gA, cA, gB, cB, kA,
                                kB, bA, bB);
        return;
    }
#endif
    const double keep = 1.0 - lambda;
    const double keepA = 1.0 - gA, keepB = 1.0 - gB;
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? kA : 0) | (j & 2 ? kB : 0);
        braOff[j] = (j & 1 ? bA : 0) | (j & 2 ? bB : 0);
    }
    const uint64_t lows[4] = {
        std::min(kA, kB) - 1, std::max(kA, kB) - 1,
        std::min(bA, bB) - 1, std::max(bA, bB) - 1};
    detail::forAnchorRuns<4>(b, e, lows,
                             [&](uint64_t start, uint64_t run) {
        Complex v[16];
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    v[ks * 4 + bs] =
                        rho[i + ketOff[ks] + braOff[bs]];
            // Depolarizing.
            Complex mix =
                0.25 * lambda * (v[0] + v[5] + v[10] + v[15]);
            for (int s = 0; s < 16; ++s)
                v[s] *= keep;
            v[0] += mix;
            v[5] += mix;
            v[10] += mix;
            v[15] += mix;
            // Thermal relaxation on qubit A (sub-bit 0 of ket/bra).
            for (int kB2 = 0; kB2 < 2; ++kB2)
                for (int bB2 = 0; bB2 < 2; ++bB2) {
                    const int base = 2 * kB2 * 4 + 2 * bB2;
                    Complex &v00 = v[base];
                    Complex &v10 = v[base + 4];
                    Complex &v01 = v[base + 1];
                    Complex &v11 = v[base + 5];
                    v00 += gA * v11;
                    v11 *= keepA;
                    v10 *= cA;
                    v01 *= cA;
                }
            // Thermal relaxation on qubit B (sub-bit 1).
            for (int kA2 = 0; kA2 < 2; ++kA2)
                for (int bA2 = 0; bA2 < 2; ++bA2) {
                    const int base = kA2 * 4 + bA2;
                    Complex &v00 = v[base];
                    Complex &v10 = v[base + 8];
                    Complex &v01 = v[base + 2];
                    Complex &v11 = v[base + 10];
                    v00 += gB * v11;
                    v11 *= keepB;
                    v10 *= cB;
                    v01 *= cB;
                }
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    rho[i + ketOff[ks] + braOff[bs]] =
                        v[ks * 4 + bs];
        }
    });
}

void
thermalRange(Complex *rho, uint64_t b, uint64_t e, double gamma,
             double coherence, uint64_t kBit, uint64_t bBit)
{
    const double keepPop = 1.0 - gamma;
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    detail::forAnchorRuns<2>(b, e, lows,
                             [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i00 = start + r;
            const uint64_t i10 = i00 + kBit;
            const uint64_t i01 = i00 + bBit;
            const uint64_t i11 = i10 + bBit;
            rho[i00] += gamma * rho[i11];
            rho[i11] *= keepPop;
            rho[i10] *= coherence;
            rho[i01] *= coherence;
        }
    });
}

} // namespace

void
DensityMatrix::applyDepolarizing1q(double lambda, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyDepolarizing1q: qubit out of range");
    if (lambda <= 0.0)
        return;
    const uint64_t kBit = uint64_t{1} << qubit;           // ket bank
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_); // bra bank
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *rho = rho_.data();
    detail::shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        depolarizing1qRange(rho, b, e, lambda, kBit, bBit);
    });
}

void
DensityMatrix::applyDepolarizing2q(double lambda, int qubitA, int qubitB)
{
    if (qubitA < 0 || qubitB < 0 || qubitA >= numQubits_ ||
        qubitB >= numQubits_ || qubitA == qubitB) {
        panic("applyDepolarizing2q: invalid qubits");
    }
    if (lambda <= 0.0)
        return;
    const uint64_t kA = uint64_t{1} << qubitA;
    const uint64_t kB = uint64_t{1} << qubitB;
    const uint64_t bA = uint64_t{1} << (qubitA + numQubits_);
    const uint64_t bB = uint64_t{1} << (qubitB + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *rho = rho_.data();
    detail::shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        depolarizing2qRange(rho, b, e, lambda, kA, kB, bA, bB);
    });
}

void
DensityMatrix::applyDepolThermal2q(double lambda, int qubitA,
                                   double gammaA, double coherenceA,
                                   int qubitB, double gammaB,
                                   double coherenceB)
{
    if (qubitA < 0 || qubitB < 0 || qubitA >= numQubits_ ||
        qubitB >= numQubits_ || qubitA == qubitB) {
        panic("applyDepolThermal2q: invalid qubits");
    }
    const uint64_t kA = uint64_t{1} << qubitA;
    const uint64_t kB = uint64_t{1} << qubitB;
    const uint64_t bA = uint64_t{1} << (qubitA + numQubits_);
    const uint64_t bB = uint64_t{1} << (qubitB + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *rho = rho_.data();
    detail::shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        depolThermal2qRange(rho, b, e, lambda, gammaA, coherenceA,
                            gammaB, coherenceB, kA, kB, bA, bB);
    });
}

void
DensityMatrix::applyThermalRelaxation(int qubit, double gamma,
                                      double coherence)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyThermalRelaxation: qubit out of range");
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *rho = rho_.data();
    detail::shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        thermalRange(rho, b, e, gamma, coherence, kBit, bBit);
    });
}

Complex
DensityMatrix::element(uint64_t row, uint64_t col) const
{
    return rho_[row + dim() * col];
}

std::vector<double>
DensityMatrix::probabilities() const
{
    const uint64_t d = dim();
    std::vector<double> p(d);
    for (uint64_t b = 0; b < d; ++b)
        p[b] = std::max(0.0, rho_[b + d * b].real());
    return p;
}

double
DensityMatrix::expectation(const PauliString &pauli) const
{
    // Tr(P rho) = sum_c lambda(c) <c| rho |c ^ xmask>.
    const uint64_t xmask = pauli.xMask();
    const uint64_t zmask = pauli.zMask();
    const int yCount =
        static_cast<int>(__builtin_popcountll(xmask & zmask));
    static const Complex iPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    const Complex global = iPow[yCount & 3];
    const uint64_t d = dim();
    Complex acc(0, 0);
    for (uint64_t c = 0; c < d; ++c) {
        int par = __builtin_popcountll(c & zmask) & 1;
        Complex lambda = par ? -global : global;
        acc += lambda * rho_[c + d * (c ^ xmask)];
    }
    return acc.real();
}

double
DensityMatrix::trace() const
{
    const uint64_t d = dim();
    double t = 0.0;
    for (uint64_t b = 0; b < d; ++b)
        t += rho_[b + d * b].real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho[r,c] * rho[c,r] = sum |rho[r,c]|^2 for
    // Hermitian rho.
    double s = 0.0;
    for (const Complex &v : rho_)
        s += std::norm(v);
    return s;
}

} // namespace eqc
