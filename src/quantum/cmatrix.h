/**
 * @file
 * Small dense complex matrix used for gate unitaries, Kraus operators and
 * exact-diagonalization references. Not meant for large linear algebra:
 * everything in EQC that is performance-sensitive operates directly on
 * state vectors / density matrices with specialized kernels.
 */

#ifndef EQC_QUANTUM_CMATRIX_H
#define EQC_QUANTUM_CMATRIX_H

#include <cstddef>
#include <initializer_list>

#include "quantum/types.h"

namespace eqc {

/** Row-major dense complex matrix. */
class CMatrix
{
  public:
    /** Empty 0x0 matrix. */
    CMatrix() = default;

    /** Zero matrix of the given shape. */
    CMatrix(std::size_t rows, std::size_t cols);

    /** Build from a row-major initializer list; size must be rows*cols. */
    CMatrix(std::size_t rows, std::size_t cols,
            std::initializer_list<Complex> values);

    /** Identity of dimension n. */
    static CMatrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (row, col). */
    Complex &operator()(std::size_t r, std::size_t c);
    Complex operator()(std::size_t r, std::size_t c) const;

    /** Matrix product this * rhs. */
    CMatrix operator*(const CMatrix &rhs) const;

    /** Element-wise sum. */
    CMatrix operator+(const CMatrix &rhs) const;

    /** Scalar product. */
    CMatrix operator*(Complex s) const;

    /** Conjugate transpose. */
    CMatrix dagger() const;

    /** Element-wise complex conjugate (no transpose). */
    CMatrix conjugate() const;

    /** Kronecker product this (x) rhs. */
    CMatrix kron(const CMatrix &rhs) const;

    /** Matrix-vector product. @p v must have cols() entries. */
    CVector apply(const CVector &v) const;

    /** Trace (must be square). */
    Complex trace() const;

    /** Frobenius norm of (this - rhs). */
    double distance(const CMatrix &rhs) const;

    /** true if this^dagger * this == I within @p tol. */
    bool isUnitary(double tol = kTol) const;

    /** true if equal to own conjugate transpose within @p tol. */
    bool isHermitian(double tol = kTol) const;

    /**
     * true if the two matrices are equal up to a global phase factor
     * within @p tol (used to validate basis-gate decompositions).
     */
    bool equalsUpToPhase(const CMatrix &rhs, double tol = 1e-8) const;

    /** Raw storage (row-major). */
    const CVector &data() const { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    CVector data_;
};

} // namespace eqc

#endif // EQC_QUANTUM_CMATRIX_H
