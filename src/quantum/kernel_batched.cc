#include "quantum/kernel_batched.h"

#include <algorithm>

#include "common/logging.h"
#include "common/task_pool.h"
#include "quantum/simd_dispatch.h"

namespace eqc {
namespace detail {

// Same two-layer shape as kernel.cc: standalone workers own the hot
// loops, the class methods hand shardBlocks a by-value forwarding
// lambda. Block counts match the scalar kernels (per-rho-element
// anchors), so sharding stays disjoint and thread-count-invariant; the
// member axis rides inside each block as contiguous lanes.
//
// Every worker applies the *exact* per-member arithmetic of its scalar
// counterpart (same formulas, same evaluation order) — the bit-identity
// contract from kernel_batched.h. The member-inner loops are
// independent per member, so the compiler auto-vectorizing them across
// lanes cannot change results either.

namespace {

void
batchedSuperop1Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                     const Complex *uIn, uint64_t kBit, uint64_t bBit)
{
    const Complex u00 = uIn[0], u01 = uIn[1];
    const Complex u10 = uIn[2], u11 = uIn[3];
    const Complex c00 = std::conj(u00), c01 = std::conj(u01);
    const Complex c10 = std::conj(u10), c11 = std::conj(u11);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex *p00 = data + i * k;
            Complex *p01 = data + (i + bBit) * k;
            Complex *p10 = data + (i + kBit) * k;
            Complex *p11 = data + (i + kBit + bBit) * k;
            for (uint64_t m = 0; m < k; ++m) {
                const Complex b00 = p00[m], b01 = p01[m];
                const Complex b10 = p10[m], b11 = p11[m];
                const Complex t00 = u00 * b00 + u01 * b10;
                const Complex t01 = u00 * b01 + u01 * b11;
                const Complex t10 = u10 * b00 + u11 * b10;
                const Complex t11 = u10 * b01 + u11 * b11;
                p00[m] = t00 * c00 + t01 * c01;
                p01[m] = t00 * c10 + t01 * c11;
                p10[m] = t10 * c00 + t11 * c01;
                p11[m] = t10 * c10 + t11 * c11;
            }
        }
    });
}

void
batchedSuperopDiag1Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                         Complex d0, Complex d1, uint64_t kBit,
                         uint64_t bBit)
{
    const Complex f00 = d0 * std::conj(d0);
    const Complex f01 = d0 * std::conj(d1);
    const Complex f10 = d1 * std::conj(d0);
    const Complex f11 = d1 * std::conj(d1);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex *p00 = data + i * k;
            Complex *p01 = data + (i + bBit) * k;
            Complex *p10 = data + (i + kBit) * k;
            Complex *p11 = data + (i + kBit + bBit) * k;
            for (uint64_t m = 0; m < k; ++m) {
                p00[m] *= f00;
                p01[m] *= f01;
                p10[m] *= f10;
                p11[m] *= f11;
            }
        }
    });
}

void
batchedSuperopPerm1Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                         Complex p0, Complex p1, bool unit, uint64_t kBit,
                         uint64_t bBit)
{
    // Non-diagonal 1q perm is always the swap, as in superopPerm1Range.
    const Complex f00 = p0 * std::conj(p0);
    const Complex f01 = p0 * std::conj(p1);
    const Complex f10 = p1 * std::conj(p0);
    const Complex f11 = p1 * std::conj(p1);
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex *p00 = data + i * k;
            Complex *p01 = data + (i + bBit) * k;
            Complex *p10 = data + (i + kBit) * k;
            Complex *p11 = data + (i + kBit + bBit) * k;
            if (unit) {
                for (uint64_t m = 0; m < k; ++m) {
                    std::swap(p00[m], p11[m]);
                    std::swap(p10[m], p01[m]);
                }
            } else {
                for (uint64_t m = 0; m < k; ++m) {
                    const Complex b00 = p00[m], b01 = p01[m];
                    const Complex b10 = p10[m], b11 = p11[m];
                    p00[m] = f00 * b11;
                    p01[m] = f01 * b10;
                    p10[m] = f10 * b01;
                    p11[m] = f11 * b00;
                }
            }
        }
    });
}

void
batchedSuperop2Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                     const Complex *uIn, uint64_t mk0, uint64_t mk1,
                     uint64_t mb0, uint64_t mb1)
{
    Complex u[16], cu[16];
    for (int j = 0; j < 16; ++j) {
        u[j] = uIn[j];
        cu[j] = std::conj(uIn[j]);
    }
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex *p[16];
        Complex blk[16], tmp[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int r = 0; r < 4; ++r)
                for (int s = 0; s < 4; ++s)
                    p[r * 4 + s] =
                        data + (i + ketOff[r] + braOff[s]) * k;
            for (uint64_t m = 0; m < k; ++m) {
                for (int j = 0; j < 16; ++j)
                    blk[j] = p[j][m];
                // tmp = U blk, then rho' = tmp U^dagger.
                for (int r = 0; r < 4; ++r) {
                    const Complex *ur = u + 4 * r;
                    for (int s = 0; s < 4; ++s) {
                        tmp[r * 4 + s] =
                            ur[0] * blk[s] + ur[1] * blk[4 + s] +
                            ur[2] * blk[8 + s] + ur[3] * blk[12 + s];
                    }
                }
                for (int r = 0; r < 4; ++r) {
                    for (int s = 0; s < 4; ++s) {
                        const Complex *cs = cu + 4 * s;
                        p[r * 4 + s][m] = tmp[r * 4] * cs[0] +
                                          tmp[r * 4 + 1] * cs[1] +
                                          tmp[r * 4 + 2] * cs[2] +
                                          tmp[r * 4 + 3] * cs[3];
                    }
                }
            }
        }
    });
}

void
batchedSuperopDiag2Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                         const Complex *dIn, uint64_t mk0, uint64_t mk1,
                         uint64_t mb0, uint64_t mb1)
{
    uint64_t off[16];
    Complex f[16];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            off[r * 4 + s] = ((r & 1 ? mk0 : 0) | (r & 2 ? mk1 : 0)) +
                             ((s & 1 ? mb0 : 0) | (s & 2 ? mb1 : 0));
            f[r * 4 + s] = dIn[r] * std::conj(dIn[s]);
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j) {
                Complex *p = data + (i + off[j]) * k;
                const Complex fj = f[j];
                for (uint64_t m = 0; m < k; ++m)
                    p[m] *= fj;
            }
        }
    });
}

void
batchedSuperopPerm2Range(Complex *data, uint64_t k, uint64_t b, uint64_t e,
                         PermPhase pp, uint64_t mk0, uint64_t mk1,
                         uint64_t mb0, uint64_t mb1)
{
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    uint64_t dst[16], src[16];
    Complex f[16];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            dst[r * 4 + s] = ketOff[r] + braOff[s];
            src[r * 4 + s] = ketOff[pp.perm[r]] + braOff[pp.perm[s]];
            f[r * 4 + s] = pp.phase[r] * std::conj(pp.phase[s]);
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    const bool unit = pp.unitPhases;
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex *sp[16], *dp[16];
        Complex g[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j) {
                sp[j] = data + (i + src[j]) * k;
                dp[j] = data + (i + dst[j]) * k;
            }
            for (uint64_t m = 0; m < k; ++m) {
                for (int j = 0; j < 16; ++j)
                    g[j] = sp[j][m];
                if (unit) {
                    for (int j = 0; j < 16; ++j)
                        dp[j][m] = g[j];
                } else {
                    for (int j = 0; j < 16; ++j)
                        dp[j][m] = f[j] * g[j];
                }
            }
        }
    });
}

void
batchedPerm2PerMemberRange(Complex *data, uint64_t k, uint64_t b,
                           uint64_t e, PermPhase pp0, const Complex *f,
                           const unsigned char *unit, uint64_t mk0,
                           uint64_t mk1, uint64_t mb0, uint64_t mb1)
{
    // Shared permutation (caller-verified), per-member phase factors
    // f[m * 16 + r * 4 + s]; unit-phase members take the copy path.
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? mk0 : 0) | (j & 2 ? mk1 : 0);
        braOff[j] = (j & 1 ? mb0 : 0) | (j & 2 ? mb1 : 0);
    }
    uint64_t dst[16], src[16];
    for (int r = 0; r < 4; ++r) {
        for (int s = 0; s < 4; ++s) {
            dst[r * 4 + s] = ketOff[r] + braOff[s];
            src[r * 4 + s] = ketOff[pp0.perm[r]] + braOff[pp0.perm[s]];
        }
    }
    uint64_t lows[4] = {std::min(mk0, mk1) - 1, std::max(mk0, mk1) - 1,
                        std::min(mb0, mb1) - 1, std::max(mb0, mb1) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex *sp[16], *dp[16];
        Complex g[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int j = 0; j < 16; ++j) {
                sp[j] = data + (i + src[j]) * k;
                dp[j] = data + (i + dst[j]) * k;
            }
            for (uint64_t m = 0; m < k; ++m) {
                for (int j = 0; j < 16; ++j)
                    g[j] = sp[j][m];
                if (unit[m]) {
                    for (int j = 0; j < 16; ++j)
                        dp[j][m] = g[j];
                } else {
                    const Complex *fm = f + 16 * m;
                    for (int j = 0; j < 16; ++j)
                        dp[j][m] = fm[j] * g[j];
                }
            }
        }
    });
}

void
batchedThermalPerMemberRange(Complex *data, uint64_t k, uint64_t b,
                             uint64_t e, const double *gamma,
                             const double *coherence, uint64_t kBit,
                             uint64_t bBit)
{
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex *p00 = data + i * k;
            Complex *p10 = data + (i + kBit) * k;
            Complex *p01 = data + (i + bBit) * k;
            Complex *p11 = data + (i + kBit + bBit) * k;
            for (uint64_t m = 0; m < k; ++m) {
                p00[m] += gamma[m] * p11[m];
                p11[m] *= 1.0 - gamma[m];
                p10[m] *= coherence[m];
                p01[m] *= coherence[m];
            }
        }
    });
}

#ifdef EQC_KERNEL_X86_DISPATCH

/**
 * AVX2 member-pair widening of the per-member 4x4 channel superoperator:
 * one 256-bit vector holds two adjacent members' values of the same rho
 * element, with the pair's coefficients prepacked per 128-bit lane (see
 * applyChannelSuperop1PerMember for the pack layout). cxMul/cxMulAdd in
 * the scalar accumulation order keeps it bit-identical to the scalar
 * member loop. Pairing runs along the member axis, so no anchor-run
 * length requirement — qubit 0 vectorizes too.
 */
__attribute__((target("avx2"))) void
batchedSuperopMat1PerMemberRangeAvx2(Complex *dataC, uint64_t k,
                                     uint64_t b, uint64_t e,
                                     const Complex *s, const double *pack,
                                     uint64_t kBit, uint64_t bBit)
{
    double *d = reinterpret_cast<double *>(dataC);
    const uint64_t nPairs = k >> 1;
    const uint64_t lowA = kBit - 1;
    const uint64_t lowB = bBit - 1;
    const uint64_t runCap = kBit;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = depositZeroBit(t - lo, lowA);
        anchor = depositZeroBit(anchor, lowB);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            double *p0 = d + 2 * i * k;
            double *p1 = d + 2 * (i + kBit) * k;
            double *p2 = d + 2 * (i + bBit) * k;
            double *p3 = d + 2 * (i + kBit + bBit) * k;
            for (uint64_t p = 0; p < nPairs; ++p) {
                const double *cp = pack + p * 128;
                const __m256d v0 = _mm256_loadu_pd(p0 + 4 * p);
                const __m256d v1 = _mm256_loadu_pd(p1 + 4 * p);
                const __m256d v2 = _mm256_loadu_pd(p2 + 4 * p);
                const __m256d v3 = _mm256_loadu_pd(p3 + 4 * p);
                __m256d n0 = cxMul(v0, _mm256_loadu_pd(cp),
                                   _mm256_loadu_pd(cp + 4));
                n0 = cxMulAdd(n0, v1, _mm256_loadu_pd(cp + 8),
                              _mm256_loadu_pd(cp + 12));
                n0 = cxMulAdd(n0, v2, _mm256_loadu_pd(cp + 16),
                              _mm256_loadu_pd(cp + 20));
                n0 = cxMulAdd(n0, v3, _mm256_loadu_pd(cp + 24),
                              _mm256_loadu_pd(cp + 28));
                __m256d n1 = cxMul(v0, _mm256_loadu_pd(cp + 32),
                                   _mm256_loadu_pd(cp + 36));
                n1 = cxMulAdd(n1, v1, _mm256_loadu_pd(cp + 40),
                              _mm256_loadu_pd(cp + 44));
                n1 = cxMulAdd(n1, v2, _mm256_loadu_pd(cp + 48),
                              _mm256_loadu_pd(cp + 52));
                n1 = cxMulAdd(n1, v3, _mm256_loadu_pd(cp + 56),
                              _mm256_loadu_pd(cp + 60));
                __m256d n2 = cxMul(v0, _mm256_loadu_pd(cp + 64),
                                   _mm256_loadu_pd(cp + 68));
                n2 = cxMulAdd(n2, v1, _mm256_loadu_pd(cp + 72),
                              _mm256_loadu_pd(cp + 76));
                n2 = cxMulAdd(n2, v2, _mm256_loadu_pd(cp + 80),
                              _mm256_loadu_pd(cp + 84));
                n2 = cxMulAdd(n2, v3, _mm256_loadu_pd(cp + 88),
                              _mm256_loadu_pd(cp + 92));
                __m256d n3 = cxMul(v0, _mm256_loadu_pd(cp + 96),
                                   _mm256_loadu_pd(cp + 100));
                n3 = cxMulAdd(n3, v1, _mm256_loadu_pd(cp + 104),
                              _mm256_loadu_pd(cp + 108));
                n3 = cxMulAdd(n3, v2, _mm256_loadu_pd(cp + 112),
                              _mm256_loadu_pd(cp + 116));
                n3 = cxMulAdd(n3, v3, _mm256_loadu_pd(cp + 120),
                              _mm256_loadu_pd(cp + 124));
                _mm256_storeu_pd(p0 + 4 * p, n0);
                _mm256_storeu_pd(p1 + 4 * p, n1);
                _mm256_storeu_pd(p2 + 4 * p, n2);
                _mm256_storeu_pd(p3 + 4 * p, n3);
            }
            if (k & 1) {
                const uint64_t m = k - 1;
                const Complex *mm = s + 16 * m;
                Complex *q0 = dataC + i * k;
                Complex *q1 = dataC + (i + kBit) * k;
                Complex *q2 = dataC + (i + bBit) * k;
                Complex *q3 = dataC + (i + kBit + bBit) * k;
                const Complex v0 = q0[m], v1 = q1[m];
                const Complex v2 = q2[m], v3 = q3[m];
                q0[m] = mm[0] * v0 + mm[1] * v1 + mm[2] * v2 + mm[3] * v3;
                q1[m] = mm[4] * v0 + mm[5] * v1 + mm[6] * v2 + mm[7] * v3;
                q2[m] =
                    mm[8] * v0 + mm[9] * v1 + mm[10] * v2 + mm[11] * v3;
                q3[m] = mm[12] * v0 + mm[13] * v1 + mm[14] * v2 +
                        mm[15] * v3;
            }
        }
        t += run;
    }
}

/**
 * AVX2 member-pair widening of the per-member composed depolarizing +
 * 2q thermal pass. All real-scalar x complex operations (componentwise
 * mul/add, no complex products, no FMA) in the exact scalar sequence —
 * bit-identical to the scalar member loop.
 */
__attribute__((target("avx2"))) void
batchedDepolThermal2qPerMemberRangeAvx2(
    Complex *dataC, uint64_t k, uint64_t b, uint64_t e,
    const double *lambda, const double *gA, const double *cA,
    const double *gB, const double *cB, const double *pack, uint64_t kA,
    uint64_t kB, uint64_t bA, uint64_t bB)
{
    double *d = reinterpret_cast<double *>(dataC);
    const uint64_t nPairs = k >> 1;
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? kA : 0) | (j & 2 ? kB : 0);
        braOff[j] = (j & 1 ? bA : 0) | (j & 2 ? bB : 0);
    }
    const uint64_t lows[4] = {
        std::min(kA, kB) - 1, std::max(kA, kB) - 1,
        std::min(bA, bB) - 1, std::max(bA, bB) - 1};
    const uint64_t runCap = lows[0] + 1;
    uint64_t t = b;
    while (t < e) {
        const uint64_t lo = t & (runCap - 1);
        uint64_t anchor = t - lo;
        for (int m = 0; m < 4; ++m)
            anchor = depositZeroBit(anchor, lows[m]);
        const uint64_t run = std::min(runCap - lo, e - t);
        const uint64_t start = anchor + lo;
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            double *p[16];
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    p[ks * 4 + bs] =
                        d + 2 * (i + ketOff[ks] + braOff[bs]) * k;
            for (uint64_t pr = 0; pr < nPairs; ++pr) {
                const double *cp = pack + pr * 32;
                const __m256d keep = _mm256_loadu_pd(cp);
                const __m256d mixF = _mm256_loadu_pd(cp + 4);
                const __m256d vgA = _mm256_loadu_pd(cp + 8);
                const __m256d keepA = _mm256_loadu_pd(cp + 12);
                const __m256d vcA = _mm256_loadu_pd(cp + 16);
                const __m256d vgB = _mm256_loadu_pd(cp + 20);
                const __m256d keepB = _mm256_loadu_pd(cp + 24);
                const __m256d vcB = _mm256_loadu_pd(cp + 28);
                __m256d v[16];
                for (int j = 0; j < 16; ++j)
                    v[j] = _mm256_loadu_pd(p[j] + 4 * pr);
                // Depolarizing: same add order as the scalar trace sum.
                const __m256d mix = _mm256_mul_pd(
                    mixF,
                    _mm256_add_pd(
                        _mm256_add_pd(_mm256_add_pd(v[0], v[5]), v[10]),
                        v[15]));
                for (int s = 0; s < 16; ++s)
                    v[s] = _mm256_mul_pd(v[s], keep);
                v[0] = _mm256_add_pd(v[0], mix);
                v[5] = _mm256_add_pd(v[5], mix);
                v[10] = _mm256_add_pd(v[10], mix);
                v[15] = _mm256_add_pd(v[15], mix);
                // Thermal relaxation on qubit A (sub-bit 0).
                for (int kB2 = 0; kB2 < 2; ++kB2)
                    for (int bB2 = 0; bB2 < 2; ++bB2) {
                        const int base = 2 * kB2 * 4 + 2 * bB2;
                        v[base] = _mm256_add_pd(
                            v[base], _mm256_mul_pd(vgA, v[base + 5]));
                        v[base + 5] = _mm256_mul_pd(v[base + 5], keepA);
                        v[base + 4] = _mm256_mul_pd(v[base + 4], vcA);
                        v[base + 1] = _mm256_mul_pd(v[base + 1], vcA);
                    }
                // Thermal relaxation on qubit B (sub-bit 1).
                for (int kA2 = 0; kA2 < 2; ++kA2)
                    for (int bA2 = 0; bA2 < 2; ++bA2) {
                        const int base = kA2 * 4 + bA2;
                        v[base] = _mm256_add_pd(
                            v[base], _mm256_mul_pd(vgB, v[base + 10]));
                        v[base + 10] =
                            _mm256_mul_pd(v[base + 10], keepB);
                        v[base + 8] = _mm256_mul_pd(v[base + 8], vcB);
                        v[base + 2] = _mm256_mul_pd(v[base + 2], vcB);
                    }
                for (int j = 0; j < 16; ++j)
                    _mm256_storeu_pd(p[j] + 4 * pr, v[j]);
            }
            if (k & 1) {
                const uint64_t m = k - 1;
                Complex v[16];
                for (int j = 0; j < 16; ++j)
                    v[j] = reinterpret_cast<Complex *>(p[j])[m];
                Complex mix = 0.25 * lambda[m] *
                              (v[0] + v[5] + v[10] + v[15]);
                const double keepS = 1.0 - lambda[m];
                for (int s = 0; s < 16; ++s)
                    v[s] *= keepS;
                v[0] += mix;
                v[5] += mix;
                v[10] += mix;
                v[15] += mix;
                const double gAm = gA[m], cAm = cA[m];
                const double keepAS = 1.0 - gAm;
                for (int kB2 = 0; kB2 < 2; ++kB2)
                    for (int bB2 = 0; bB2 < 2; ++bB2) {
                        const int base = 2 * kB2 * 4 + 2 * bB2;
                        v[base] += gAm * v[base + 5];
                        v[base + 5] *= keepAS;
                        v[base + 4] *= cAm;
                        v[base + 1] *= cAm;
                    }
                const double gBm = gB[m], cBm = cB[m];
                const double keepBS = 1.0 - gBm;
                for (int kA2 = 0; kA2 < 2; ++kA2)
                    for (int bA2 = 0; bA2 < 2; ++bA2) {
                        const int base = kA2 * 4 + bA2;
                        v[base] += gBm * v[base + 10];
                        v[base + 10] *= keepBS;
                        v[base + 8] *= cBm;
                        v[base + 2] *= cBm;
                    }
                for (int j = 0; j < 16; ++j)
                    reinterpret_cast<Complex *>(p[j])[m] = v[j];
            }
        }
        t += run;
    }
}

#endif // EQC_KERNEL_X86_DISPATCH

void
batchedSuperopMat1PerMemberRange(Complex *data, uint64_t k, uint64_t b,
                                 uint64_t e, const Complex *s,
                                 const double *pack, uint64_t kBit,
                                 uint64_t bBit)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (pack) {
        batchedSuperopMat1PerMemberRangeAvx2(data, k, b, e, s, pack,
                                             kBit, bBit);
        return;
    }
#endif
    (void)pack;
    const uint64_t lows[2] = {kBit - 1, bBit - 1};
    forAnchorRuns<2>(b, e, lows, [&](uint64_t start, uint64_t run) {
        for (uint64_t r = 0; r < run; ++r) {
            const uint64_t i = start + r;
            Complex *p0 = data + i * k;
            Complex *p1 = data + (i + kBit) * k;
            Complex *p2 = data + (i + bBit) * k;
            Complex *p3 = data + (i + kBit + bBit) * k;
            for (uint64_t m = 0; m < k; ++m) {
                const Complex *mm = s + 16 * m;
                const Complex v0 = p0[m], v1 = p1[m];
                const Complex v2 = p2[m], v3 = p3[m];
                p0[m] = mm[0] * v0 + mm[1] * v1 + mm[2] * v2 + mm[3] * v3;
                p1[m] = mm[4] * v0 + mm[5] * v1 + mm[6] * v2 + mm[7] * v3;
                p2[m] =
                    mm[8] * v0 + mm[9] * v1 + mm[10] * v2 + mm[11] * v3;
                p3[m] = mm[12] * v0 + mm[13] * v1 + mm[14] * v2 +
                        mm[15] * v3;
            }
        }
    });
}

void
batchedDepolThermal2qPerMemberRange(Complex *data, uint64_t k, uint64_t b,
                                    uint64_t e, const double *lambda,
                                    const double *gA, const double *cA,
                                    const double *gB, const double *cB,
                                    const double *pack, uint64_t kA,
                                    uint64_t kB, uint64_t bA, uint64_t bB)
{
#ifdef EQC_KERNEL_X86_DISPATCH
    if (pack) {
        batchedDepolThermal2qPerMemberRangeAvx2(data, k, b, e, lambda,
                                                gA, cA, gB, cB, pack,
                                                kA, kB, bA, bB);
        return;
    }
#endif
    (void)pack;
    uint64_t ketOff[4], braOff[4];
    for (int j = 0; j < 4; ++j) {
        ketOff[j] = (j & 1 ? kA : 0) | (j & 2 ? kB : 0);
        braOff[j] = (j & 1 ? bA : 0) | (j & 2 ? bB : 0);
    }
    const uint64_t lows[4] = {
        std::min(kA, kB) - 1, std::max(kA, kB) - 1,
        std::min(bA, bB) - 1, std::max(bA, bB) - 1};
    forAnchorRuns<4>(b, e, lows, [&](uint64_t start, uint64_t run) {
        Complex *p[16];
        Complex v[16];
        for (uint64_t x = 0; x < run; ++x) {
            const uint64_t i = start + x;
            for (int ks = 0; ks < 4; ++ks)
                for (int bs = 0; bs < 4; ++bs)
                    p[ks * 4 + bs] =
                        data + (i + ketOff[ks] + braOff[bs]) * k;
            for (uint64_t m = 0; m < k; ++m) {
                for (int j = 0; j < 16; ++j)
                    v[j] = p[j][m];
                // Depolarizing.
                Complex mix = 0.25 * lambda[m] *
                              (v[0] + v[5] + v[10] + v[15]);
                const double keep = 1.0 - lambda[m];
                for (int s = 0; s < 16; ++s)
                    v[s] *= keep;
                v[0] += mix;
                v[5] += mix;
                v[10] += mix;
                v[15] += mix;
                // Thermal relaxation on qubit A (sub-bit 0).
                const double gAm = gA[m], cAm = cA[m];
                const double keepA = 1.0 - gAm;
                for (int kB2 = 0; kB2 < 2; ++kB2)
                    for (int bB2 = 0; bB2 < 2; ++bB2) {
                        const int base = 2 * kB2 * 4 + 2 * bB2;
                        v[base] += gAm * v[base + 5];
                        v[base + 5] *= keepA;
                        v[base + 4] *= cAm;
                        v[base + 1] *= cAm;
                    }
                // Thermal relaxation on qubit B (sub-bit 1).
                const double gBm = gB[m], cBm = cB[m];
                const double keepB = 1.0 - gBm;
                for (int kA2 = 0; kA2 < 2; ++kA2)
                    for (int bA2 = 0; bA2 < 2; ++bA2) {
                        const int base = kA2 * 4 + bA2;
                        v[base] += gBm * v[base + 10];
                        v[base + 10] *= keepB;
                        v[base + 8] *= cBm;
                        v[base + 2] *= cBm;
                    }
                for (int j = 0; j < 16; ++j)
                    p[j][m] = v[j];
            }
        }
    });
}

} // namespace

TaskPool *
BatchedDensityMatrix::pool() const
{
    if (!pool_)
        pool_ = &TaskPool::shared();
    return pool_;
}

BatchedDensityMatrix::BatchedDensityMatrix(int numQubits, int batch)
    : numQubits_(numQubits), batch_(batch),
      data_((uint64_t{1} << (2 * numQubits)) *
                static_cast<uint64_t>(batch),
            Complex(0, 0))
{
    if (numQubits < 1 || numQubits > 13)
        fatal("BatchedDensityMatrix: qubit count out of range [1,13]");
    if (batch < 1)
        fatal("BatchedDensityMatrix: batch must be >= 1");
    for (int m = 0; m < batch; ++m)
        data_[m] = 1.0;
}

void
BatchedDensityMatrix::applyGate1(const Complex *u, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("BatchedDensityMatrix::applyGate1: qubit out of range");
    Complex dg[2];
    PermPhase pp;
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *data = data_.data();
    const uint64_t k = static_cast<uint64_t>(batch_);
    switch (classifyGate(u, 2, dg, pp)) {
      case GateKind::Diagonal: {
        const Complex d0 = dg[0], d1 = dg[1];
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperopDiag1Range(data, k, b, e, d0, d1, kBit, bBit);
        });
        break;
      }
      case GateKind::PermPhase: {
        const Complex p0 = pp.phase[0], p1 = pp.phase[1];
        const bool unit = pp.unitPhases;
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperopPerm1Range(data, k, b, e, p0, p1, unit, kBit,
                                     bBit);
        });
        break;
      }
      case GateKind::General:
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperop1Range(data, k, b, e, u, kBit, bBit);
        });
        break;
    }
}

void
BatchedDensityMatrix::applyDiag1(const Complex *d, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("BatchedDensityMatrix::applyDiag1: qubit out of range");
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *data = data_.data();
    const uint64_t k = static_cast<uint64_t>(batch_);
    const Complex d0 = d[0], d1 = d[1];
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedSuperopDiag1Range(data, k, b, e, d0, d1, kBit, bBit);
    });
}

void
BatchedDensityMatrix::applyGate2(const Complex *u, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("BatchedDensityMatrix::applyGate2: invalid qubits");
    }
    Complex dg[4];
    PermPhase pp;
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits_);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *data = data_.data();
    const uint64_t k = static_cast<uint64_t>(batch_);
    switch (classifyGate(u, 4, dg, pp)) {
      case GateKind::Diagonal:
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperopDiag2Range(data, k, b, e, dg, mk0, mk1, mb0,
                                     mb1);
        });
        break;
      case GateKind::PermPhase:
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperopPerm2Range(data, k, b, e, pp, mk0, mk1, mb0,
                                     mb1);
        });
        break;
      case GateKind::General:
        shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
            batchedSuperop2Range(data, k, b, e, u, mk0, mk1, mb0, mb1);
        });
        break;
    }
}

void
BatchedDensityMatrix::applyDiag2(const Complex *d, int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("BatchedDensityMatrix::applyDiag2: invalid qubits");
    }
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits_);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *data = data_.data();
    const uint64_t k = static_cast<uint64_t>(batch_);
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedSuperopDiag2Range(data, k, b, e, d, mk0, mk1, mb0, mb1);
    });
}

void
BatchedDensityMatrix::applyPermPhase2PerMember(const PermPhase *pp,
                                               int q0, int q1)
{
    if (q0 < 0 || q1 < 0 || q0 >= numQubits_ || q1 >= numQubits_ ||
        q0 == q1) {
        panic("applyPermPhase2PerMember: invalid qubits");
    }
    const uint64_t k = static_cast<uint64_t>(batch_);
    for (uint64_t m = 1; m < k; ++m)
        for (int r = 0; r < 4; ++r)
            if (pp[m].perm[r] != pp[0].perm[r])
                panic("applyPermPhase2PerMember: permutations differ");
    std::vector<Complex> f(16 * k);
    std::vector<unsigned char> unit(k);
    for (uint64_t m = 0; m < k; ++m) {
        unit[m] = pp[m].unitPhases ? 1 : 0;
        for (int r = 0; r < 4; ++r)
            for (int s = 0; s < 4; ++s)
                f[m * 16 + r * 4 + s] =
                    pp[m].phase[r] * std::conj(pp[m].phase[s]);
    }
    const uint64_t mk0 = uint64_t{1} << q0;
    const uint64_t mk1 = uint64_t{1} << q1;
    const uint64_t mb0 = uint64_t{1} << (q0 + numQubits_);
    const uint64_t mb1 = uint64_t{1} << (q1 + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *data = data_.data();
    const PermPhase pp0 = pp[0];
    const Complex *fp = f.data();
    const unsigned char *up = unit.data();
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedPerm2PerMemberRange(data, k, b, e, pp0, fp, up, mk0, mk1,
                                   mb0, mb1);
    });
}

void
BatchedDensityMatrix::applyChannelSuperop1PerMember(const Complex *s,
                                                    int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyChannelSuperop1PerMember: qubit out of range");
    const uint64_t k = static_cast<uint64_t>(batch_);
    const double *pack = nullptr;
#ifdef EQC_KERNEL_X86_DISPATCH
    if (k >= 2 && cpuHasAvx2Fma()) {
        // Pack the member pair's coefficients per 128-bit lane:
        // pack[(pair * 16 + j) * 8] = [re_m, re_m, re_m1, re_m1,
        //                              im_m, im_m, im_m1, im_m1].
        const uint64_t nPairs = k >> 1;
        pack_.resize(nPairs * 128);
        for (uint64_t p = 0; p < nPairs; ++p) {
            const Complex *sa = s + 16 * (2 * p);
            const Complex *sb = s + 16 * (2 * p + 1);
            for (int j = 0; j < 16; ++j) {
                double *out = pack_.data() + (p * 16 + j) * 8;
                out[0] = out[1] = sa[j].real();
                out[2] = out[3] = sb[j].real();
                out[4] = out[5] = sa[j].imag();
                out[6] = out[7] = sb[j].imag();
            }
        }
        pack = pack_.data();
    }
#endif
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *data = data_.data();
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedSuperopMat1PerMemberRange(data, k, b, e, s, pack, kBit,
                                         bBit);
    });
}

void
BatchedDensityMatrix::applyThermalRelaxationPerMember(
    const double *gamma, const double *coherence, int qubit)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("applyThermalRelaxationPerMember: qubit out of range");
    const uint64_t kBit = uint64_t{1} << qubit;
    const uint64_t bBit = uint64_t{1} << (qubit + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 2;
    Complex *data = data_.data();
    const uint64_t k = static_cast<uint64_t>(batch_);
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedThermalPerMemberRange(data, k, b, e, gamma, coherence,
                                     kBit, bBit);
    });
}

void
BatchedDensityMatrix::applyDepolThermal2qPerMember(
    const double *lambda, int qubitA, const double *gammaA,
    const double *coherenceA, int qubitB, const double *gammaB,
    const double *coherenceB)
{
    if (qubitA < 0 || qubitB < 0 || qubitA >= numQubits_ ||
        qubitB >= numQubits_ || qubitA == qubitB) {
        panic("applyDepolThermal2qPerMember: invalid qubits");
    }
    const uint64_t k = static_cast<uint64_t>(batch_);
    const double *pack = nullptr;
#ifdef EQC_KERNEL_X86_DISPATCH
    if (k >= 2 && cpuHasAvx2Fma()) {
        // 8 broadcast slots per pair, each [x_m, x_m, x_m1, x_m1]:
        // keep, 0.25*lambda, gA, 1-gA, cA, gB, 1-gB, cB.
        const uint64_t nPairs = k >> 1;
        pack_.resize(nPairs * 32);
        for (uint64_t p = 0; p < nPairs; ++p) {
            double *out = pack_.data() + p * 32;
            const uint64_t m0 = 2 * p, m1 = 2 * p + 1;
            const double sl[8][2] = {
                {1.0 - lambda[m0], 1.0 - lambda[m1]},
                {0.25 * lambda[m0], 0.25 * lambda[m1]},
                {gammaA[m0], gammaA[m1]},
                {1.0 - gammaA[m0], 1.0 - gammaA[m1]},
                {coherenceA[m0], coherenceA[m1]},
                {gammaB[m0], gammaB[m1]},
                {1.0 - gammaB[m0], 1.0 - gammaB[m1]},
                {coherenceB[m0], coherenceB[m1]},
            };
            for (int j = 0; j < 8; ++j) {
                out[j * 4 + 0] = out[j * 4 + 1] = sl[j][0];
                out[j * 4 + 2] = out[j * 4 + 3] = sl[j][1];
            }
        }
        pack = pack_.data();
    }
#endif
    const uint64_t kA = uint64_t{1} << qubitA;
    const uint64_t kB = uint64_t{1} << qubitB;
    const uint64_t bA = uint64_t{1} << (qubitA + numQubits_);
    const uint64_t bB = uint64_t{1} << (qubitB + numQubits_);
    const uint64_t nBlocks = (uint64_t{1} << (2 * numQubits_)) >> 4;
    Complex *data = data_.data();
    shardBlocks(pool(), nBlocks, [=](uint64_t b, uint64_t e) {
        batchedDepolThermal2qPerMemberRange(data, k, b, e, lambda,
                                            gammaA, coherenceA, gammaB,
                                            coherenceB, pack, kA, kB,
                                            bA, bB);
    });
}

void
BatchedDensityMatrix::probabilities(int member,
                                    std::vector<double> &out) const
{
    const uint64_t d = dim();
    const uint64_t k = static_cast<uint64_t>(batch_);
    out.resize(d);
    for (uint64_t b = 0; b < d; ++b)
        out[b] = std::max(0.0, data_[(b + d * b) * k + member].real());
}

} // namespace detail
} // namespace eqc
