#include "quantum/pauli.h"

#include <cmath>

#include "common/logging.h"

namespace eqc {

PauliString::PauliString(int numQubits) : numQubits_(numQubits)
{
    if (numQubits < 0 || numQubits > 63)
        fatal("PauliString: qubit count out of range [0,63]");
}

PauliString::PauliString(const std::string &label)
    : numQubits_(static_cast<int>(label.size()))
{
    if (numQubits_ > 63)
        fatal("PauliString: label too long");
    for (int q = 0; q < numQubits_; ++q) {
        switch (label[q]) {
          case 'I': break;
          case 'X': set(q, Pauli::X); break;
          case 'Y': set(q, Pauli::Y); break;
          case 'Z': set(q, Pauli::Z); break;
          default:
            fatal(std::string("PauliString: bad label character '") +
                  label[q] + "'");
        }
    }
}

PauliString
PauliString::single(int numQubits, int qubit, Pauli p)
{
    PauliString s(numQubits);
    s.set(qubit, p);
    return s;
}

Pauli
PauliString::at(int qubit) const
{
    bool x = (x_ >> qubit) & 1;
    bool z = (z_ >> qubit) & 1;
    if (x && z)
        return Pauli::Y;
    if (x)
        return Pauli::X;
    if (z)
        return Pauli::Z;
    return Pauli::I;
}

void
PauliString::set(int qubit, Pauli p)
{
    if (qubit < 0 || qubit >= numQubits_)
        panic("PauliString::set: qubit out of range");
    uint64_t bit = uint64_t{1} << qubit;
    x_ &= ~bit;
    z_ &= ~bit;
    if (p == Pauli::X || p == Pauli::Y)
        x_ |= bit;
    if (p == Pauli::Z || p == Pauli::Y)
        z_ |= bit;
}

int
PauliString::weight() const
{
    return __builtin_popcountll(x_ | z_);
}

std::string
PauliString::label() const
{
    std::string s(numQubits_, 'I');
    for (int q = 0; q < numQubits_; ++q) {
        switch (at(q)) {
          case Pauli::I: break;
          case Pauli::X: s[q] = 'X'; break;
          case Pauli::Y: s[q] = 'Y'; break;
          case Pauli::Z: s[q] = 'Z'; break;
        }
    }
    return s;
}

bool
PauliString::qubitwiseCommutes(const PauliString &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("PauliString::qubitwiseCommutes: size mismatch");
    for (int q = 0; q < numQubits_; ++q) {
        Pauli a = at(q), b = other.at(q);
        if (a != Pauli::I && b != Pauli::I && a != b)
            return false;
    }
    return true;
}

bool
PauliString::commutes(const PauliString &other) const
{
    if (other.numQubits_ != numQubits_)
        panic("PauliString::commutes: size mismatch");
    // Symplectic product: strings anticommute iff the product is odd.
    int anti = __builtin_popcountll(x_ & other.z_) +
               __builtin_popcountll(z_ & other.x_);
    return (anti & 1) == 0;
}

CMatrix
PauliString::matrix() const
{
    if (numQubits_ > 12)
        fatal("PauliString::matrix: too many qubits for dense expansion");
    static const Complex kI(0.0, 1.0);
    CMatrix id = CMatrix::identity(1);
    CMatrix out = id;
    // Build kron from the most significant qubit down so that qubit 0 is
    // the least significant bit of the final index.
    for (int q = numQubits_ - 1; q >= 0; --q) {
        CMatrix f(2, 2);
        switch (at(q)) {
          case Pauli::I: f = CMatrix::identity(2); break;
          case Pauli::X: f = CMatrix(2, 2, {0.0, 1.0, 1.0, 0.0}); break;
          case Pauli::Y: f = CMatrix(2, 2, {0.0, -kI, kI, 0.0}); break;
          case Pauli::Z: f = CMatrix(2, 2, {1.0, 0.0, 0.0, -1.0}); break;
        }
        out = out.kron(f);
    }
    return out;
}

bool
PauliString::operator==(const PauliString &other) const
{
    return numQubits_ == other.numQubits_ && x_ == other.x_ &&
           z_ == other.z_;
}

void
PauliSum::add(double coefficient, const PauliString &p)
{
    if (numQubits_ == 0)
        numQubits_ = p.numQubits();
    if (p.numQubits() != numQubits_)
        panic("PauliSum::add: term qubit count mismatch");
    for (PauliTerm &t : terms_) {
        if (t.pauli == p) {
            t.coefficient += coefficient;
            return;
        }
    }
    terms_.push_back({coefficient, p});
}

void
PauliSum::add(double coefficient, const std::string &label)
{
    add(coefficient, PauliString(label));
}

double
PauliSum::coefficientNorm() const
{
    double s = 0.0;
    for (const PauliTerm &t : terms_)
        s += std::fabs(t.coefficient);
    return s;
}

double
PauliSum::identityOffset() const
{
    for (const PauliTerm &t : terms_)
        if (t.pauli.weight() == 0)
            return t.coefficient;
    return 0.0;
}

CMatrix
PauliSum::matrix() const
{
    if (numQubits_ > 12)
        fatal("PauliSum::matrix: too many qubits for dense expansion");
    std::size_t dim = std::size_t{1} << numQubits_;
    CMatrix out(dim, dim);
    for (const PauliTerm &t : terms_)
        out = out + t.pauli.matrix() * Complex(t.coefficient, 0.0);
    return out;
}

std::vector<std::vector<std::size_t>>
groupQubitwiseCommuting(const PauliSum &sum)
{
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < sum.terms().size(); ++i) {
        const PauliString &p = sum.terms()[i].pauli;
        bool placed = false;
        for (auto &group : groups) {
            bool fits = true;
            for (std::size_t j : group) {
                if (!p.qubitwiseCommutes(sum.terms()[j].pauli)) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                group.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({i});
    }
    return groups;
}

} // namespace eqc
