/**
 * @file
 * Gate vocabulary: every gate type EQC's circuits can contain, together
 * with its unitary, arity and metadata. The IBMQ native basis used by the
 * transpiler is {CX, ID, RZ, SX, X} (plus MEASURE), matching the basis
 * gate set the paper describes for IBMQ backends.
 */

#ifndef EQC_QUANTUM_GATES_H
#define EQC_QUANTUM_GATES_H

#include <string>

#include "quantum/cmatrix.h"

namespace eqc {

/** All gate types understood by the simulators and transpiler. */
enum class GateType {
    ID,      ///< identity (explicit idle)
    X,       ///< Pauli-X
    Y,       ///< Pauli-Y
    Z,       ///< Pauli-Z
    H,       ///< Hadamard
    S,       ///< sqrt(Z)
    SDG,     ///< S-dagger
    T,       ///< fourth root of Z
    TDG,     ///< T-dagger
    SX,      ///< sqrt(X) (IBMQ native)
    RX,      ///< X-axis rotation, one parameter
    RY,      ///< Y-axis rotation, one parameter
    RZ,      ///< Z-axis rotation, one parameter (virtual on IBMQ)
    U3,      ///< generic 1q rotation, used internally by the transpiler
    CX,      ///< controlled-X; qubit order (control, target)
    CZ,      ///< controlled-Z
    SWAP,    ///< swap two qubits
    RZZ,     ///< exp(-i theta/2 Z(x)Z), one parameter
    MEASURE, ///< Z-basis measurement marker
    BARRIER, ///< scheduling barrier (no-op for simulation)
};

/** Number of qubits the gate acts on (MEASURE/BARRIER report 1). */
int gateArity(GateType type);

/** Number of rotation parameters the gate takes (0, 1, or 3 for U3). */
int gateParamCount(GateType type);

/** Lower-case mnemonic, e.g. "cx", "rz". */
std::string gateName(GateType type);

/** Parse a mnemonic back to a GateType; panics on unknown names. */
GateType gateFromName(const std::string &name);

/**
 * Unitary matrix of a gate.
 *
 * For two-qubit gates the convention is: sub-index bit 0 corresponds to
 * the FIRST qubit argument and bit 1 to the SECOND. E.g. for CX(control,
 * target), basis states are |target control> ordered c + 2t... concretely
 * index j = control_bit + 2 * target_bit.
 *
 * @param type gate type (MEASURE/BARRIER are not valid here)
 * @param params rotation angles; length must equal gateParamCount()
 */
CMatrix gateMatrix(GateType type, const std::vector<double> &params = {});

/**
 * Write the unitary's entries into @p out without allocating.
 *
 * For non-diagonal gates @p out receives the full row-major matrix
 * (4 entries for 1q gates, 16 for 2q). For diagonal gates (see
 * isDiagonalGate) only the diagonal is written: out[0..sub). This is
 * the allocation-free twin of gateMatrix() used by the execution plan's
 * inner loop; gateMatrix() is implemented on top of it.
 *
 * @param type gate type (MEASURE/BARRIER are not valid here)
 * @param angles rotation angles, gateParamCount(type) entries (may be
 *        null when the gate takes none)
 * @return the sub-dimension (2 for 1q gates, 4 for 2q gates)
 */
int gateEntries(GateType type, const double *angles, Complex *out);

/** True for gates whose unitary is diagonal (ID/Z/S/SDG/T/TDG/RZ/CZ/RZZ). */
bool isDiagonalGate(GateType type);

/** True for gates in the IBMQ native basis {CX, ID, RZ, SX, X}. */
bool isBasisGate(GateType type);

/** True for RZ — implemented in software on IBMQ: zero duration/error. */
bool isVirtualGate(GateType type);

} // namespace eqc

#endif // EQC_QUANTUM_GATES_H
