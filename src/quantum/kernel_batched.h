/**
 * @file
 * Batched density-matrix state for the ensemble member sweep.
 *
 * EQC's dispatch loop runs the *same* fused circuit on every ensemble
 * member; members differ only in their noise contexts. Executing them
 * one at a time re-walks the gate stream (fusion dispatch, gate
 * classification, anchor enumeration) k times over k small states.
 * BatchedDensityMatrix instead holds k member density matrices in a
 * structure-of-arrays layout,
 *
 *     data[stateIndex * k + member]
 *
 * i.e. the k member values of each vectorized-rho element are adjacent
 * in memory. The batched kernels walk the block/anchor structure ONCE
 * and loop members innermost over contiguous lanes — shared-unitary
 * ops (same gate for every member) amortize their coefficients too,
 * per-member ops (noise superoperators, thermal factors, ZZ-folded CX
 * phases) take operand arrays indexed by member.
 *
 * Bit-identity contract: every batched kernel applies the exact
 * per-element arithmetic of its scalar counterpart in kernel.cc /
 * density_matrix.cc (same formulas, same evaluation order), so a
 * batched sweep produces results bit-identical to k sequential
 * DensityMatrix executions — for any thread count, and regardless of
 * which SIMD variant either side dispatched to (see
 * quantum/simd_dispatch.h for why the AVX2 paths are exact).
 */

#ifndef EQC_QUANTUM_KERNEL_BATCHED_H
#define EQC_QUANTUM_KERNEL_BATCHED_H

#include <cstdint>
#include <vector>

#include "quantum/kernel.h"
#include "quantum/types.h"

namespace eqc {

class TaskPool;

namespace detail {

/** k density matrices advancing together through one fused program. */
class BatchedDensityMatrix
{
  public:
    /**
     * All-members |0><0| initial state.
     *
     * @param numQubits width of each member's density matrix
     * @param batch member count k (>= 1)
     */
    BatchedDensityMatrix(int numQubits, int batch);

    int numQubits() const { return numQubits_; }
    int batch() const { return batch_; }
    uint64_t dim() const { return uint64_t{1} << numQubits_; }

    /// @name Shared-unitary applies (same operator for every member)
    /// Classification mirrors DensityMatrix::applyGate1/2 exactly.
    /// @{
    void applyGate1(const Complex *u, int qubit);
    void applyDiag1(const Complex *d, int qubit);
    void applyGate2(const Complex *u, int q0, int q1);
    void applyDiag2(const Complex *d, int q0, int q1);
    /// @}

    /// @name Per-member applies (operands indexed by member)
    /// @{

    /**
     * 2q permutation-phase unitary with a per-member phase vector (the
     * CX path: each member folds its own residual-ZZ diagonal into the
     * shared CX entries, which scales phases but never the perm). Each
     * member's PermPhase must have been produced by classifyGate on
     * that member's folded matrix, so unit-phase members take the
     * scalar kernel's copy path (multiplying by an exact 1 is not a
     * bitwise no-op for signed zeros).
     */
    void applyPermPhase2PerMember(const PermPhase *pp, int q0, int q1);

    /**
     * Per-member 4x4 channel superoperators; @p s holds batch()
     * row-major matrices, member-major (member m at s + 16 * m).
     */
    void applyChannelSuperop1PerMember(const Complex *s, int qubit);

    /** Per-member thermal relaxation (gamma/coherence per member). */
    void applyThermalRelaxationPerMember(const double *gamma,
                                         const double *coherence,
                                         int qubit);

    /** Per-member composed depolarizing + 2q thermal pass. */
    void applyDepolThermal2qPerMember(const double *lambda, int qubitA,
                                      const double *gammaA,
                                      const double *coherenceA,
                                      int qubitB, const double *gammaB,
                                      const double *coherenceB);
    /// @}

    /** Outcome distribution of one member (diagonal, clamped at 0). */
    void probabilities(int member, std::vector<double> &out) const;

    /** Member @p member's element <row| rho |col>. */
    Complex element(int member, uint64_t row, uint64_t col) const
    {
        return data_[(row + dim() * col) *
                         static_cast<uint64_t>(batch_) +
                     static_cast<uint64_t>(member)];
    }

    /**
     * Pool used for block-parallel apply (null: the shared pool).
     * Results are bit-identical for every pool size — blocks are
     * disjoint — so this only trades wall-clock time.
     */
    void setTaskPool(TaskPool *pool) { pool_ = pool; }

  private:
    TaskPool *pool() const;

    int numQubits_;
    int batch_;
    CVector data_;
    mutable TaskPool *pool_ = nullptr;
    /** Reusable prepack scratch for the AVX2 member-pair variants. */
    mutable std::vector<double> pack_;
};

} // namespace detail
} // namespace eqc

#endif // EQC_QUANTUM_KERNEL_BATCHED_H
