/**
 * @file
 * Quantum noise channels in Kraus form, plus the classical readout-error
 * model. These mirror the error taxonomy of the paper (Sec. II-B):
 * gate error as depolarization, coherence error as T1/T2 thermal
 * relaxation, and SPAM error as a per-qubit readout confusion matrix.
 */

#ifndef EQC_QUANTUM_KRAUS_H
#define EQC_QUANTUM_KRAUS_H

#include <vector>

#include "quantum/cmatrix.h"

namespace eqc {

/** A completely-positive trace-preserving map given by Kraus operators. */
struct KrausChannel
{
    /** Kraus operators; all square and of equal dimension. */
    std::vector<CMatrix> ops;

    /** Number of qubits the channel acts on (1 or 2). */
    int arity = 1;

    /** true when sum_k K^dagger K == I within @p tol. */
    bool isCPTP(double tol = 1e-9) const;

    /**
     * Sequential composition: first apply this channel, then @p after.
     * Both must have the same arity.
     */
    KrausChannel composeWith(const KrausChannel &after) const;

    /**
     * The channel's superoperator sum_k K_k (x) conj(K_k) as a
     * sub^2 x sub^2 row-major matrix over vectorized block indices
     * v = ketSub + sub * braSub: S[v'][v] = sum_k K_k[r', r] *
     * conj(K_k[s', s]). Built once per channel and cached; applying it
     * costs sub^2 flops per element regardless of the operator count,
     * which beats the Kraus-sum form for every multi-operator channel.
     * Invalidated by nothing: callers must not mutate `ops` after the
     * first apply. Not safe to race the first call from multiple
     * threads on a *shared* channel instance.
     */
    const CVector &superopMatrix() const;

  private:
    mutable CVector superop_;
};

/**
 * Single-qubit depolarizing channel: rho -> (1-l) rho + l I/2.
 * @param lambda depolarizing probability in [0, 4/3]
 */
KrausChannel depolarizing1q(double lambda);

/** Two-qubit depolarizing channel: rho -> (1-l) rho + l I/4. */
KrausChannel depolarizing2q(double lambda);

/** Amplitude damping with decay probability @p gamma. */
KrausChannel amplitudeDamping(double gamma);

/** Phase damping with dephasing probability @p lambda. */
KrausChannel phaseDamping(double lambda);

/**
 * Thermal relaxation over a gate of @p timeUs microseconds on a qubit
 * with relaxation times @p t1Us and @p t2Us (T2 clamped to 2*T1).
 * Modelled as amplitude damping followed by pure dephasing, matching the
 * standard decomposition used by Aer for T2 <= T1 regimes.
 */
KrausChannel thermalRelaxation(double t1Us, double t2Us, double timeUs);

/**
 * Per-qubit readout confusion.
 *
 * p01 = P(measured 1 | true 0), p10 = P(measured 0 | true 1).
 */
struct ReadoutError
{
    double p01 = 0.0;
    double p10 = 0.0;
};

/**
 * Apply readout confusion of one qubit to a probability distribution
 * over 2^n outcomes (in place).
 */
void applyReadoutError(std::vector<double> &probs, int qubit,
                       const ReadoutError &err);

/**
 * Invert readout confusion of one qubit on a measured distribution (in
 * place): the standard linear measurement-error mitigation applied by
 * IBMQ tooling. Exact when @p err matches the true confusion; with a
 * stale calibration the residual mismatch survives — which is exactly
 * the imperfect-knowledge regime EQC's weighting is designed around.
 * May produce slightly negative quasi-probabilities; callers computing
 * expectations can consume them directly.
 */
void applyReadoutMitigation(std::vector<double> &probs, int qubit,
                            const ReadoutError &err);

} // namespace eqc

#endif // EQC_QUANTUM_KRAUS_H
