/**
 * @file
 * Density-matrix simulator with Kraus-channel noise.
 *
 * rho is stored vectorized with index = row + dim * col; row bits are the
 * "ket bank" (qubits 0..n-1) and column bits the "bra bank" (qubits
 * n..2n-1), so both unitaries and Kraus operators reduce to the shared
 * state-vector kernel applied to each bank.
 *
 * This gives *exact* noisy expectation values for the <= 8-qubit circuits
 * EQC trains, which is why the reproduction uses density matrices instead
 * of Monte-Carlo trajectories: physics is exact, and shot noise is
 * injected only where the paper has it (measurement sampling).
 */

#ifndef EQC_QUANTUM_DENSITY_MATRIX_H
#define EQC_QUANTUM_DENSITY_MATRIX_H

#include <cstdint>
#include <vector>

#include "quantum/cmatrix.h"
#include "quantum/kraus.h"

namespace eqc {

class PauliString;
class Statevector;
class TaskPool;

/** Mixed-state simulator over n qubits (n <= 13). */
class DensityMatrix
{
  public:
    /** Initialize |0...0><0...0| over @p numQubits qubits. */
    explicit DensityMatrix(int numQubits);

    /** Build the pure-state density matrix of @p sv. */
    static DensityMatrix fromStatevector(const Statevector &sv);

    int numQubits() const { return numQubits_; }

    /** Hilbert-space dimension 2^n. */
    uint64_t dim() const { return uint64_t{1} << numQubits_; }

    /** Reset to |0...0><0...0|. */
    void reset();

    /** Apply a unitary on the given qubits: rho -> U rho U^dagger. */
    void applyUnitary(const CMatrix &u, const std::vector<int> &qubits);

    /// @name Allocation-free apply paths
    /// Raw-entry twins of applyUnitary used by precompiled execution
    /// plans: the caller hands the unitary's entries directly (the
    /// gateEntries() layout), skipping CMatrix construction.
    /// @{

    /** 1q unitary from row-major entries {u00, u01, u10, u11}. */
    void applyGate1(const Complex *u, int qubit);

    /** 1q diagonal unitary diag(d[0], d[1]). */
    void applyDiag1(const Complex *d, int qubit);

    /** 2q unitary from row-major 4x4 entries (bit 0 -> @p q0). */
    void applyGate2(const Complex *u, int q0, int q1);

    /** 2q diagonal unitary diag(d[0..3]). */
    void applyDiag2(const Complex *d, int q0, int q1);

    /// @}

    /** Apply a Kraus channel: rho -> sum_k K rho K^dagger. */
    void applyChannel(const KrausChannel &ch, const std::vector<int> &qubits);

    /**
     * Apply a precomposed 1q channel superoperator: one 4x4 matrix over
     * the vectorized (ket bit, bra bit) sub-index j = k + 2b of @p
     * qubit. Lets callers compose a whole unitary + noise sequence
     * offline and pay a single kernel pass (see SimulatedQpu).
     */
    void applyChannelSuperop1(const Complex *s, int qubit);

    /**
     * Analytic fast path for 1q depolarizing noise:
     * rho -> (1-l) rho + l Tr_q(rho) (x) I/2. Equivalent to
     * applyChannel(depolarizing1q(l)) at a fraction of the cost.
     */
    void applyDepolarizing1q(double lambda, int qubit);

    /** Analytic fast path for 2q depolarizing noise. */
    void applyDepolarizing2q(double lambda, int qubitA, int qubitB);

    /**
     * Analytic fast path for thermal relaxation: population decay by
     * @p gamma (= 1 - exp(-t/T1)) and coherence decay by @p coherence
     * (= exp(-t/T2)). Equivalent to applyChannel(thermalRelaxation(...))
     * with gamma/coherence derived from the same T1/T2/time.
     */
    void applyThermalRelaxation(int qubit, double gamma,
                                double coherence);

    /**
     * The full post-CX noise sequence in a single block-local pass:
     * 2q depolarizing by @p lambda, then thermal relaxation on
     * @p qubitA and on @p qubitB (same semantics as applying
     * applyDepolarizing2q and applyThermalRelaxation twice, at a third
     * of the memory traffic and per-call overhead).
     */
    void applyDepolThermal2q(double lambda, int qubitA, double gammaA,
                             double coherenceA, int qubitB,
                             double gammaB, double coherenceB);

    /** Element <row| rho |col>. */
    Complex element(uint64_t row, uint64_t col) const;

    /** Computational-basis probabilities (the real diagonal). */
    std::vector<double> probabilities() const;

    /** Tr(P rho) for a Pauli string (real by Hermiticity). */
    double expectation(const PauliString &p) const;

    /** Tr(rho); 1 up to rounding for valid evolutions. */
    double trace() const;

    /** Tr(rho^2); 1 for pure states, 1/2^n for maximally mixed. */
    double purity() const;

    /**
     * Pool used for block-parallel apply (null: the shared pool).
     * Results are bit-identical for every pool size — blocks are
     * disjoint — so this only trades wall-clock time.
     */
    void setTaskPool(TaskPool *pool) { pool_ = pool; }

  private:
    TaskPool *pool() const;

    int numQubits_;
    CVector rho_;
    mutable TaskPool *pool_ = nullptr;
};

} // namespace eqc

#endif // EQC_QUANTUM_DENSITY_MATRIX_H
