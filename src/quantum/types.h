/**
 * @file
 * Shared scalar types for the quantum simulation substrate.
 */

#ifndef EQC_QUANTUM_TYPES_H
#define EQC_QUANTUM_TYPES_H

#include <complex>
#include <cstdint>
#include <vector>

namespace eqc {

/** Complex amplitude type used throughout the simulators. */
using Complex = std::complex<double>;

/** Dense vector of complex amplitudes. */
using CVector = std::vector<Complex>;

/** Pi to double precision. */
inline constexpr double kPi = 3.14159265358979323846;

/** Tolerance used for unitarity/trace checks. */
inline constexpr double kTol = 1e-9;

} // namespace eqc

#endif // EQC_QUANTUM_TYPES_H
